package ropus

// Facade tests for the lifecycle APIs added on top of the core pipeline:
// exact placement, migrations, rebalancing, capacity planning, pool
// failure simulation and trace sanitization — all exercised through the
// public surface only.

import (
	"context"
	"math"
	"testing"
	"time"
)

// flatPlacementApp builds a constant-demand placement app (bin-packing
// semantics: required capacity is additive).
func flatPlacementApp(id string, size float64, slots int) PlacementApp {
	c2 := make([]float64, slots)
	for i := range c2 {
		c2[i] = size
	}
	return PlacementApp{ID: id, Workload: Workload{AppID: id, CoS1: make([]float64, slots), CoS2: c2}}
}

func facadeProblem(sizes []float64, cpus int) *PlacementProblem {
	apps := make([]PlacementApp, len(sizes))
	for i, s := range sizes {
		apps[i] = flatPlacementApp("app-"+string(rune('a'+i)), s, 28)
	}
	servers := make([]Server, len(sizes))
	for i := range servers {
		servers[i] = Server{ID: "srv-" + string(rune('a'+i)), CPUs: cpus, CPUCapacity: 1}
	}
	return &PlacementProblem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
	}
}

func TestFacadePlacementAlgorithms(t *testing.T) {
	p := facadeProblem([]float64{6, 6, 4, 4, 3, 3, 2}, 10)

	exact, err := ExactPlacement(context.Background(), p, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if exact.ServersUsed != 3 {
		t.Errorf("exact = %d servers, want 3", exact.ServersUsed)
	}
	for _, fn := range []func(context.Context, *PlacementProblem) (*Plan, error){
		FirstFitDecreasing, BestFitDecreasing, LeastCorrelatedFit,
	} {
		plan, err := fn(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible || plan.ServersUsed < exact.ServersUsed {
			t.Errorf("heuristic plan: feasible=%v servers=%d (optimum %d)",
				plan.Feasible, plan.ServersUsed, exact.ServersUsed)
		}
	}

	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(7)
	cfg.MaxGenerations = 80
	ga, err := ConsolidatePlacement(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	moves, err := Migrations(p, initial, ga.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Error("consolidation from one-per-server should move something")
	}
}

func TestFacadeRebalance(t *testing.T) {
	p := facadeProblem([]float64{3, 3}, 10)
	cfg := RebalanceConfig{GA: DefaultGAConfig(2), MinScoreGain: 0.5}
	cfg.GA.MaxGenerations = 40

	audit, err := AuditPlacement(p, Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Feasible {
		t.Fatal("spread assignment should be feasible")
	}
	prop, err := Rebalance(context.Background(), p, Assignment{0, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prop.Keep {
		t.Error("consolidation gain ignored")
	}
}

func TestFacadeCapacityPlanning(t *testing.T) {
	traces, err := GenerateFleet(FleetConfig{
		Smooth: 3, Weeks: 2, Interval: time.Hour, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	ga := DefaultGAConfig(5)
	ga.MaxGenerations = 30
	ga.Stagnation = 8
	f, err := NewFramework(Config{
		Commitment:           PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	plan, err := PlanCapacity(context.Background(), PlannerConfig{
		Framework:    f,
		Requirements: Requirements{Default: Requirement{Normal: q, Failure: q}},
		HorizonWeeks: 2,
		StepWeeks:    1,
		PoolServers:  3,
	}, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Errorf("%d steps, want 2", len(plan.Steps))
	}

	fc, err := ForecastWeeks(traces[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Weeks() != 1 {
		t.Errorf("forecast covers %d weeks", fc.Weeks())
	}
}

func TestFacadePoolFailureSimulation(t *testing.T) {
	traces, err := GenerateFleet(FleetConfig{
		Smooth: 2, Weeks: 1, Interval: time.Hour, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100}
	apps := make([]PoolApp, len(traces))
	for i, tr := range traces {
		part, err := Translate(tr, q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		apps[i] = PoolApp{Demand: tr, Normal: part, Failure: part}
	}
	res, err := SimulatePoolFailure(&PoolScenario{
		Apps:           apps,
		ServerCapacity: 32,
		Normal:         []int{0, 1},
		FailedServer:   0,
		FailAt:         24,
		MigrationDelay: 3,
		After:          []int{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutageDuration() != 3*time.Hour {
		t.Errorf("OutageDuration = %v, want 3h", res.OutageDuration())
	}
	if !res.Apps[0].Migrated || res.Apps[1].Migrated {
		t.Error("migration flags wrong")
	}
}

func TestFacadeSanitize(t *testing.T) {
	tr, res, err := SanitizeSamples("a", time.Hour, []float64{1, math.NaN(), 3}, GapInterpolate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 1 || tr.Samples[1] != 2 {
		t.Errorf("sanitize: %+v, sample %v", res, tr.Samples[1])
	}
	if _, _, err := SanitizeSamples("a", time.Hour, nil, GapZero); err == nil {
		t.Error("empty input accepted")
	}
}
