// Package ropus is a Go implementation of R-Opus, the composite
// framework for application performability and QoS in shared resource
// pools from Cherkasova & Rolia (DSN 2006).
//
// R-Opus brings four ingredients together:
//
//   - Per-application QoS requirements (qos.AppQoS) for normal and
//     failure modes: an acceptable utilization-of-allocation range
//     [Ulow, Uhigh], a budget Mdegr of measurements that may degrade up
//     to Udegr, and a limit Tdegr on contiguous degradation.
//   - Resource-pool QoS commitments (qos.PoolCommitment) for two classes
//     of service: CoS1 is guaranteed, CoS2 offers capacity with a
//     resource access probability θ and a make-up deadline.
//   - A QoS translation (portfolio) that splits each application's
//     demands across the two classes so the application requirement
//     holds whenever the pool honours its commitment.
//   - A workload placement service (sim + placement + failure) that
//     consolidates the translated workloads onto few servers and reports
//     whether single-server failures can be absorbed without a spare.
//
// The public API re-exports the internal building blocks with type
// aliases, so the documented behaviour lives next to the implementation
// while users import a single package:
//
//	f, err := ropus.NewFramework(ropus.Config{
//	    Commitment:           ropus.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
//	    ServerCPUs:           16,
//	    ServerCapacityPerCPU: 1,
//	    GA:                   ropus.DefaultGAConfig(1),
//	})
//	report, err := f.Run(traces, ropus.Requirements{Default: req})
//
// See the examples directory for runnable end-to-end scenarios and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package ropus

import (
	"context"
	"io"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/core"
	"ropus/internal/failure"
	"ropus/internal/faultinject"
	"ropus/internal/placement"
	"ropus/internal/planner"
	"ropus/internal/pool"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/rebalance"
	"ropus/internal/report"
	"ropus/internal/resilience"
	"ropus/internal/scenario"
	"ropus/internal/serve"
	"ropus/internal/sim"
	"ropus/internal/stress"
	"ropus/internal/telemetry"
	"ropus/internal/topology"
	"ropus/internal/trace"
	"ropus/internal/wlmgr"
	"ropus/internal/workload"
)

// Application QoS vocabulary (paper section III).
type (
	// AppQoS is a per-application QoS requirement for one operating mode.
	AppQoS = qos.AppQoS
	// Requirement pairs normal-mode and failure-mode QoS.
	Requirement = qos.Requirement
	// PoolCommitment is the pool operator's CoS2 access commitment
	// (paper section IV).
	PoolCommitment = qos.PoolCommitment
	// ClassOfService identifies CoS1 or CoS2.
	ClassOfService = qos.ClassOfService
)

// The two classes of service.
const (
	CoS1 = qos.CoS1
	CoS2 = qos.CoS2
)

// Consolidation score models (paper's U^(2Z) and a linear ablation).
const (
	ScorePaper  = placement.ScorePaper
	ScoreLinear = placement.ScoreLinear
)

// Common additional capacity attributes (any string works).
const (
	AttrMemory  = placement.AttrMemory
	AttrDiskIO  = placement.AttrDiskIO
	AttrNetwork = placement.AttrNetwork
)

// Demand traces (paper section II).
type (
	// Trace is a demand time series for one application workload.
	Trace = trace.Trace
	// TraceSet is an aligned collection of traces.
	TraceSet = trace.Set
	// GapPolicy selects how invalid monitoring samples are repaired.
	GapPolicy = trace.GapPolicy
	// SanitizeResult reports what trace sanitization repaired.
	SanitizeResult = trace.SanitizeResult
)

// Gap-repair policies for SanitizeSamples.
const (
	GapInterpolate = trace.GapInterpolate
	GapZero        = trace.GapZero
)

// DefaultInterval is the paper's five-minute measurement interval.
const DefaultInterval = trace.DefaultInterval

// QoS translation (paper section V).
type (
	// Partition is the result of translating one application's demands
	// onto the pool's two classes of service.
	Partition = portfolio.Partition
)

// Workload placement (paper section VI).
type (
	// Workload is an application's translated per-CoS allocation traces
	// for one capacity attribute.
	Workload = sim.Workload
	// Attribute names an additional capacity attribute.
	Attribute = placement.Attribute
	// PlacementApp is an application workload to place.
	PlacementApp = placement.App
	// Server describes one pool resource.
	Server = placement.Server
	// PlacementProblem is a consolidation exercise.
	PlacementProblem = placement.Problem
	// Assignment maps applications to servers.
	Assignment = placement.Assignment
	// Plan is an evaluated assignment.
	Plan = placement.Plan
	// GAConfig tunes the genetic consolidation search.
	GAConfig = placement.GAConfig
	// ScoreModel selects the consolidation score function.
	ScoreModel = placement.ScoreModel
	// FailureReport aggregates single-server failure scenarios.
	FailureReport = failure.Report
	// FailureScenario is the outcome for one server failure.
	FailureScenario = failure.Scenario
	// MultiFailureReport aggregates k-concurrent-failure scenarios.
	MultiFailureReport = failure.MultiReport
	// MultiFailureScenario is the outcome for one combination of
	// concurrently failed servers.
	MultiFailureScenario = failure.MultiScenario
	// ScenarioSpec names one concrete failure scenario for the
	// scenario-universe sweep: a failed-server set with optional cascade
	// closure, θ override and probability.
	ScenarioSpec = failure.ScenarioSpec
	// Economics prices applications for revenue-at-risk scoring.
	Economics = failure.Economics
	// AppValue is one application's revenue/penalty economics.
	AppValue = failure.AppValue
	// AppRisk is one application's share of a scenario's revenue at risk.
	AppRisk = failure.AppRisk
	// SimCache is a shared, size-bounded cross-run simulation cache;
	// attach one via PlacementProblem.Cache (or let the Framework manage
	// one via Config.CacheBytes) to reuse per-(server-shape, app-group)
	// results bit-exactly across searches, failure sweeps and planning.
	SimCache = placement.SimCache
	// SimCacheStats is a point-in-time snapshot of a SimCache's counters.
	SimCacheStats = placement.CacheStats
)

// NewSimCache builds a shared simulation cache bounded to maxBytes of
// accounted entry memory (<= 0 selects the default bound).
func NewSimCache(maxBytes int64) *SimCache { return placement.NewSimCache(maxBytes) }

// Time-domain pool simulation through a failure (performability).
type (
	// PoolApp couples a demand trace with normal/failure translations
	// for the pool simulator.
	PoolApp = pool.App
	// PoolScenario describes the failure event to simulate.
	PoolScenario = pool.Scenario
	// PoolResult is the simulated outcome.
	PoolResult = pool.Result
)

// SimulatePoolFailure replays the whole pool through a server failure
// and migration, reporting what each application experienced.
func SimulatePoolFailure(s *PoolScenario) (*PoolResult, error) { return pool.Run(s) }

// Medium-term rebalancing (paper Figure 1 / section II).
type (
	// RebalanceAudit is the service-level evaluation of an assignment.
	RebalanceAudit = rebalance.Audit
	// RebalanceConfig tunes a rebalancing pass.
	RebalanceConfig = rebalance.Config
	// RebalanceProposal is the outcome of a rebalancing pass.
	RebalanceProposal = rebalance.Proposal
)

// Long-term capacity planning (paper Figure 1).
type (
	// PlannerConfig parameterizes a capacity-planning run.
	PlannerConfig = planner.Config
	// PlannerStep is one horizon step of a capacity plan.
	PlannerStep = planner.Step
	// CapacityPlan is the outcome of a capacity-planning run.
	CapacityPlan = planner.Plan
	// Move is one container migration between servers.
	Move = placement.Move
)

// The composite framework (paper Figure 2).
type (
	// Config parameterizes a Framework.
	Config = core.Config
	// Framework is the R-Opus capacity self-management system.
	Framework = core.Framework
	// Requirements maps applications to QoS requirements.
	Requirements = core.Requirements
	// Translation is the output of the QoS translation stage.
	Translation = core.Translation
	// Consolidation is the output of the placement stage.
	Consolidation = core.Consolidation
	// Report is the full output of a capacity-management pass.
	Report = core.Report
)

// Synthetic workloads and the stress-test substrate.
type (
	// AppProfile parameterizes the synthetic demand generator.
	AppProfile = workload.AppProfile
	// FleetConfig describes a synthetic fleet.
	FleetConfig = workload.FleetConfig
	// StressApplication models a system under stress test.
	StressApplication = stress.Application
	// StressTargets are stress-test responsiveness goals.
	StressTargets = stress.Targets
	// UtilizationRange is a derived (Ulow, Uhigh) operating range.
	UtilizationRange = stress.Range
)

// Workload-manager runtime simulation (paper section II).
type (
	// Container couples a demand trace with its translation for replay
	// through the workload-manager simulator.
	Container = wlmgr.Container
	// Compliance summarizes achieved QoS against a requirement.
	Compliance = wlmgr.Compliance
	// WorkloadManagerOptions configures a workload-manager replay (lag,
	// telemetry hooks, fault injection).
	WorkloadManagerOptions = wlmgr.Options
)

// Robustness: deterministic fault injection and graceful degradation.
// Long-running components accept a FaultInjector (nil = no faults) via
// Config.Inject, PlacementProblem.Inject, PlannerConfig.Inject and
// WorkloadManagerOptions.Inject; see docs/ROBUSTNESS.md for the
// injection points and the degradation semantics.
type (
	// FaultInjector decides the fate of each instrumented operation.
	FaultInjector = faultinject.Injector
	// FaultOutcome is what one injection decision produced.
	FaultOutcome = faultinject.Outcome
	// FaultRule scripts faults for one injection point.
	FaultRule = faultinject.Rule
	// FaultScript is a deterministic, seeded injector driven by rules.
	FaultScript = faultinject.Script
	// FaultFunc adapts a plain function to the FaultInjector interface.
	FaultFunc = faultinject.Func
)

// ErrFaultInjected is the base error of every scripted fault; match
// injected failures with errors.Is.
var ErrFaultInjected = faultinject.ErrInjected

// Self-healing: deterministic retry of transient failures and
// crash-safe checkpoint/resume of long sweeps. A RetryPolicy and a
// CheckpointJournal plug in via Config.Retry / Config.Journal (and the
// failure, planner and experiments configs); see docs/ROBUSTNESS.md
// for the classification rules and the byte-identical resume contract.
type (
	// RetryPolicy caps attempts per work unit and paces re-attempts
	// with deterministic seeded backoff.
	RetryPolicy = resilience.Policy
	// CheckpointJournal is an append-only fsync'd journal of completed
	// work units; a nil journal disables checkpointing.
	CheckpointJournal = checkpoint.Journal
)

// ErrTransient marks retryable failures; MarkTransient attaches it and
// Transient (or errors.Is against ErrTransient) detects it. Errors
// without the mark are permanent and never retried.
var ErrTransient = resilience.ErrTransient

// MarkTransient marks err as retryable under a RetryPolicy.
func MarkTransient(err error) error { return resilience.MarkTransient(err) }

// Transient reports whether err is marked retryable.
func Transient(err error) bool { return resilience.Transient(err) }

// OpenCheckpoint opens (resume=true: loads) a crash-safe checkpoint
// journal bound to runHash, which must fold every input that
// determines results — resuming under a different hash fails with
// checkpoint.ErrRunMismatch.
func OpenCheckpoint(path string, runHash uint64, resume bool, h Hooks) (*CheckpointJournal, error) {
	return checkpoint.Open(path, runHash, resume, h)
}

// NewRunHasher starts a content hash for binding a checkpoint journal
// to its run identity (traces, QoS, seeds — not worker counts).
func NewRunHasher() *checkpoint.Hasher { return checkpoint.NewHasher() }

// NewFaultScript builds a deterministic fault-injection script from
// validated rules.
func NewFaultScript(seed int64, rules ...FaultRule) (*FaultScript, error) {
	return faultinject.NewScript(seed, rules...)
}

// Telemetry: zero-dependency metrics, span tracing and progress hooks.
// Long-running components accept a Hooks (nil = no-op) via Config.Hooks,
// PlacementProblem.Hooks, PlannerConfig.Hooks and the *WithHooks entry
// points; see docs/OBSERVABILITY.md for the metric and span taxonomy.
type (
	// Hooks hands out metric and span handles to instrumented code.
	Hooks = telemetry.Hooks
	// MetricsRegistry is a concurrency-safe registry of counters,
	// gauges and histograms.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = telemetry.Snapshot
	// Tracer records spans for Chrome trace_event export.
	Tracer = telemetry.Tracer
	// SpanAttr is a key-value span attribute.
	SpanAttr = telemetry.Attr
)

// NopHooks is the no-op Hooks implementation instrumented code falls
// back to; every handle it returns is free to use.
var NopHooks = telemetry.Nop

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewTracer builds an empty span tracer.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewHooks couples a registry and a tracer into a Hooks; either may be
// nil to disable that half.
func NewHooks(reg *MetricsRegistry, tracer *Tracer) Hooks {
	return telemetry.New(reg, tracer)
}

// Serving: the long-running planning service behind `ropus serve`.
// A PlanningServer accepts translate/place/failover/plan jobs over
// HTTP/JSON with idempotent content-hashed identities, admission
// control, and a drain/resume contract that survives SIGTERM; see
// docs/SERVING.md for the API and the state-directory layout.
type (
	// ServeConfig configures a PlanningServer's job manager: state
	// directory, queue depth, per-class concurrency limits, retry
	// policy and drain budget.
	ServeConfig = serve.Config
	// ServeJobSpec is the JSON job submission body.
	ServeJobSpec = serve.JobSpec
	// PlanningServer is the HTTP planning service.
	PlanningServer = serve.Server
)

// NewPlanningServer binds addr and prepares (or recovers) the state
// directory; call Run to serve until the context is cancelled, then
// drain.
func NewPlanningServer(addr string, cfg ServeConfig) (*PlanningServer, error) {
	return serve.New(addr, cfg)
}

// Topology and the scenario DSL: rack/zone/power-domain structure over
// the pool's servers, and the declarative scenario classes that compile
// against it — correlated domain loss, k-of-domain samples, cascades,
// maintenance windows; see docs/ROBUSTNESS.md.
type (
	// Topology is a validated forest of failure domains over servers.
	Topology = topology.Topology
	// TopologyDomain is one node of the topology forest.
	TopologyDomain = topology.Domain
	// TopologyGenConfig parameterizes SynthesizeTopology.
	TopologyGenConfig = topology.GenConfig
	// ScenarioDoc is a decoded scenario DSL document.
	ScenarioDoc = scenario.Doc
	// ScenarioEntry is one declared scenario before compilation.
	ScenarioEntry = scenario.Entry
)

// ReadTopology decodes and validates a topology JSON document.
func ReadTopology(r io.Reader) (*Topology, error) { return topology.ReadJSON(r) }

// SynthesizeTopology builds a deterministic synthetic topology (zones,
// racks, striped power domains) over a pool of servers.
func SynthesizeTopology(cfg TopologyGenConfig) (*Topology, error) { return topology.Synthesize(cfg) }

// ReadScenarios decodes and validates a scenario DSL document; compile
// it against a topology with ScenarioDoc.Compile.
func ReadScenarios(r io.Reader) (*ScenarioDoc, error) { return scenario.ReadJSON(r) }

// AnalyzeFailureScenarios evaluates named failure scenarios against a
// consolidated configuration with revenue-at-risk economics; most
// callers should use Framework.RunScenarios instead.
func AnalyzeFailureScenarios(ctx context.Context, in failure.Input, basePlan *Plan, specs []ScenarioSpec, econ *Economics) (*MultiFailureReport, error) {
	return failure.AnalyzeScenarios(ctx, in, basePlan, specs, econ)
}

// NewFramework builds the composite framework from a configuration.
func NewFramework(cfg Config) (*Framework, error) { return core.New(cfg) }

// NewTrace builds a validated demand trace.
func NewTrace(appID string, interval time.Duration, samples []float64) (*Trace, error) {
	return trace.New(appID, interval, samples)
}

// SanitizeSamples builds a valid demand trace from raw monitoring
// samples, repairing gaps (NaN) and garbage (negative, infinite)
// according to the policy.
func SanitizeSamples(appID string, interval time.Duration, samples []float64, policy GapPolicy) (*Trace, SanitizeResult, error) {
	return trace.Sanitize(appID, interval, samples, policy)
}

// Translate maps one application's demand trace onto the pool's two
// classes of service (paper section V).
func Translate(tr *Trace, q AppQoS, theta float64) (*Partition, error) {
	return portfolio.Translate(tr, q, theta)
}

// Breakpoint computes the CoS1/CoS2 demand breakpoint p (formula 1).
func Breakpoint(uLow, uHigh, theta float64) (float64, error) {
	return portfolio.Breakpoint(uLow, uHigh, theta)
}

// MaxCapReductionBound is the formula-5 bound 1 - Uhigh/Udegr on the
// reduction of the maximum allocation from permitting degradation.
func MaxCapReductionBound(uHigh, uDegr float64) float64 {
	return portfolio.MaxCapReductionBound(uHigh, uDegr)
}

// GenerateFleet produces a deterministic synthetic fleet of application
// demand traces (the substitute for the paper's proprietary data).
func GenerateFleet(cfg FleetConfig) (TraceSet, error) { return workload.Fleet(cfg) }

// GenerateFleetFromProfiles produces traces from explicit application
// profiles (see ReadProfiles/WriteProfiles for the JSON form).
func GenerateFleetFromProfiles(profiles []AppProfile, weeks int, interval time.Duration, seed int64) (TraceSet, error) {
	return workload.FleetFromProfiles(profiles, weeks, interval, seed)
}

// ReadProfiles parses a JSON fleet specification.
func ReadProfiles(r io.Reader) ([]AppProfile, error) { return workload.ReadProfiles(r) }

// WriteProfiles serializes a fleet specification as JSON.
func WriteProfiles(w io.Writer, profiles []AppProfile) error {
	return workload.WriteProfiles(w, profiles)
}

// CaseStudyFleet returns the 26-application, four-week fleet standing in
// for the paper's case study.
func CaseStudyFleet(seed int64) (TraceSet, error) {
	return workload.Fleet(workload.CaseStudyConfig(seed))
}

// DefaultGAConfig returns the genetic-search configuration used for the
// case study.
func DefaultGAConfig(seed int64) GAConfig { return placement.DefaultGAConfig(seed) }

// EvaluatePlacement scores an assignment against a placement problem
// without searching.
func EvaluatePlacement(p *PlacementProblem, a Assignment) (*Plan, error) {
	return placement.Evaluate(p, a)
}

// ConsolidatePlacement runs the genetic consolidation search from the
// given initial assignment. Cancelling ctx (or exhausting the
// GAConfig.TimeBudget) returns the best feasible plan found so far with
// Plan.Truncated set; see docs/ROBUSTNESS.md for the degradation rules.
func ConsolidatePlacement(ctx context.Context, p *PlacementProblem, initial Assignment, cfg GAConfig) (*Plan, error) {
	return placement.Consolidate(ctx, p, initial, cfg)
}

// OneAppPerServer returns the trivial one-application-per-server
// assignment used as the usual starting configuration.
func OneAppPerServer(p *PlacementProblem) (Assignment, error) {
	return placement.OneAppPerServer(p)
}

// FirstFitDecreasing runs the greedy first-fit-decreasing baseline.
func FirstFitDecreasing(ctx context.Context, p *PlacementProblem) (*Plan, error) {
	return placement.FirstFitDecreasing(ctx, p)
}

// BestFitDecreasing runs the greedy best-fit-decreasing baseline.
func BestFitDecreasing(ctx context.Context, p *PlacementProblem) (*Plan, error) {
	return placement.BestFitDecreasing(ctx, p)
}

// LeastCorrelatedFit runs the correlation-aware greedy heuristic the
// paper's related-work section suggests exploring.
func LeastCorrelatedFit(ctx context.Context, p *PlacementProblem) (*Plan, error) {
	return placement.LeastCorrelatedFit(ctx, p)
}

// ExactPlacement finds the provably minimal number of servers by branch
// and bound (practical only for small instances, like the ILP approach
// the paper's earlier work abandoned for the genetic algorithm).
func ExactPlacement(ctx context.Context, p *PlacementProblem, maxNodes int) (*Plan, error) {
	return placement.Exact(ctx, p, maxNodes)
}

// Migrations returns the container moves needed to get from one
// assignment to another over the same problem.
func Migrations(p *PlacementProblem, from, to Assignment) ([]Move, error) {
	return placement.Migrations(p, from, to)
}

// AuditPlacement evaluates whether an existing assignment still
// satisfies the pool commitments under fresh traces.
func AuditPlacement(p *PlacementProblem, current Assignment) (*RebalanceAudit, error) {
	return rebalance.Evaluate(p, current)
}

// Rebalance audits an assignment and proposes migrations when the
// commitments are violated or consolidation can free servers.
func Rebalance(ctx context.Context, p *PlacementProblem, current Assignment, cfg RebalanceConfig) (*RebalanceProposal, error) {
	return rebalance.Run(ctx, p, current, cfg)
}

// PlanCapacity projects demand over the configured horizon and reports
// when the current pool will be exhausted (paper Figure 1's long-term
// capacity planning).
// Cancelling ctx returns the completed prefix of horizon steps with
// CapacityPlan.Truncated set.
func PlanCapacity(ctx context.Context, cfg PlannerConfig, traces TraceSet) (*CapacityPlan, error) {
	return planner.Run(ctx, cfg, traces)
}

// ForecastWeeks extrapolates a demand trace: the shape of the mean
// observed week at the level of the weekly trend.
func ForecastWeeks(tr *Trace, weeks int) (*Trace, error) {
	return trace.ForecastWeeks(tr, weeks)
}

// WriteReportText renders a capacity report for terminals.
func WriteReportText(w io.Writer, r *Report) error { return report.Text(w, r) }

// WriteReportJSON renders a capacity report as JSON.
func WriteReportJSON(w io.Writer, r *Report) error { return report.JSON(w, r) }

// ReportSummary is the JSON-friendly distillation of a Report.
type ReportSummary = report.Summary

// SummarizeReport distills a Report into a ReportSummary.
func SummarizeReport(r *Report) (*ReportSummary, error) { return report.Summarize(r) }

// DeriveUtilizationRange runs the stress-test substrate to find the
// (Ulow, Uhigh) operating range meeting the responsiveness targets.
func DeriveUtilizationRange(app StressApplication, targets StressTargets) (UtilizationRange, error) {
	return stress.DeriveRange(app, targets)
}

// RunWorkloadManager replays containers through the workload-manager
// simulator at the given capacity and allocation lag.
func RunWorkloadManager(ctx context.Context, capacity float64, containers []Container, lag int) (*wlmgr.RunResult, error) {
	return wlmgr.Run(ctx, capacity, containers, lag)
}

// RunWorkloadManagerWithHooks is RunWorkloadManager with telemetry.
func RunWorkloadManagerWithHooks(ctx context.Context, capacity float64, containers []Container, lag int, h Hooks) (*wlmgr.RunResult, error) {
	return wlmgr.RunWithHooks(ctx, capacity, containers, lag, h)
}

// ReplayWorkloadManager is the fully-optioned workload-manager replay:
// lag, telemetry hooks and fault injection in one Options struct.
func ReplayWorkloadManager(ctx context.Context, capacity float64, containers []Container, opts WorkloadManagerOptions) (*wlmgr.RunResult, error) {
	return wlmgr.Replay(ctx, capacity, containers, opts)
}

// TranslateWithHooks is Translate with telemetry.
func TranslateWithHooks(tr *Trace, q AppQoS, theta float64, h Hooks) (*Partition, error) {
	return portfolio.TranslateWithHooks(tr, q, theta, h)
}

// CheckCompliance evaluates achieved utilizations of allocation against
// an application QoS requirement.
func CheckCompliance(cs wlmgr.ContainerStats, q AppQoS, interval time.Duration) (Compliance, error) {
	return wlmgr.CheckCompliance(cs, q, interval)
}
