module ropus

go 1.22
