package ropus

// Fleet-scale contract for the hierarchical pool-of-pools placement:
// a 1000-application plan must complete inside the ordinary go test
// deadline and be byte-identical at any worker count. The companion
// TestFleetScaleBench (gated on ROPUS_BENCH_FLEET=1, run by
// `make bench-fleet`) records the throughput in BENCH_fleet_scale.json
// and fails when a run blows the wall-clock budget.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"ropus/internal/core"
	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/trace"
	"ropus/internal/workload"
)

const (
	fleetScaleApps          = 1000
	fleetScalePartitionApps = 25
	// fleetScaleBudget bounds the benchmarked end-to-end plan. The run
	// takes a few seconds on a developer laptop; the budget leaves an
	// order of magnitude for slow CI machines while still catching a
	// complexity regression (the flat GA at this size runs for hours).
	fleetScaleBudget = 120 * time.Second
)

// fleetScaleSet generates the deterministic 1000-app heterogeneous
// fleet: default class mix, one week of hourly samples, seed 2006.
func fleetScaleSet(t testing.TB) trace.Set {
	t.Helper()
	set, err := workload.ScaleFleet(workload.ScaleConfig{
		Apps: fleetScaleApps, Weeks: 1, Interval: time.Hour, Seed: 2006,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// fleetScalePlan runs translate + hierarchical consolidate over the
// fleet at the given worker count and returns the consolidation.
func fleetScalePlan(t testing.TB, set trace.Set, workers int) *core.Consolidation {
	t.Helper()
	f, err := core.New(core.Config{
		Commitment:           qos.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   placement.DefaultGAConfig(42),
		Tolerance:            0.1,
		Workers:              workers,
		PartitionApps:        fleetScalePartitionApps,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}
	tr, err := f.Translate(ctx, set, core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := f.Consolidate(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	return cons
}

// fleetPlanBytes fingerprints a consolidation: the full plan document
// plus the hierarchical stitch, byte-comparable across runs.
func fleetPlanBytes(t testing.TB, cons *core.Consolidation) []byte {
	t.Helper()
	doc := struct {
		Plan any
		Hier any
	}{cons.Plan, cons.Hier}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetScaleHierarchicalDeterminism: the 1000-app hierarchical
// plan is byte-identical at 1 and 8 workers, splits into the expected
// sub-pool count, and places every application.
func TestFleetScaleHierarchicalDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale plan skipped in -short mode")
	}
	set := fleetScaleSet(t)
	base := fleetScalePlan(t, set, 1)
	if base.Hier == nil {
		t.Fatal("PartitionApps set but consolidation is not hierarchical")
	}
	if want := fleetScaleApps / fleetScalePartitionApps; len(base.Hier.Partitions) != want {
		t.Errorf("partitions: got %d, want %d", len(base.Hier.Partitions), want)
	}
	if !base.Plan.Feasible {
		t.Error("fleet-scale plan infeasible")
	}
	placed := 0
	for _, u := range base.Plan.Usages {
		placed += len(u.AppIDs)
	}
	if placed != fleetScaleApps {
		t.Errorf("plan places %d of %d apps", placed, fleetScaleApps)
	}
	want := fleetPlanBytes(t, base)
	got := fleetPlanBytes(t, fleetScalePlan(t, set, 8))
	if !bytes.Equal(want, got) {
		t.Error("hierarchical plan differs between 1 and 8 workers")
	}
}

// TestFleetScaleBench is the recorded fleet-scale benchmark: skipped
// unless ROPUS_BENCH_FLEET=1, it times the full 1000-app pipeline and
// writes BENCH_fleet_scale.json, failing past the wall-clock budget.
func TestFleetScaleBench(t *testing.T) {
	if os.Getenv("ROPUS_BENCH_FLEET") == "" {
		t.Skip("set ROPUS_BENCH_FLEET=1 (or run `make bench-fleet`) to record the fleet-scale benchmark")
	}
	set := fleetScaleSet(t)
	start := time.Now()
	cons := fleetScalePlan(t, set, 0)
	elapsed := time.Since(start)
	doc := struct {
		Apps          int     `json:"apps"`
		PartitionApps int     `json:"partition_apps"`
		Partitions    int     `json:"partitions"`
		ServersUsed   int     `json:"servers_used"`
		WallSeconds   float64 `json:"wall_seconds"`
		AppsPerSecond float64 `json:"apps_per_second"`
		BudgetSeconds float64 `json:"budget_seconds"`
		Pass          bool    `json:"pass"`
	}{
		Apps:          fleetScaleApps,
		PartitionApps: fleetScalePartitionApps,
		Partitions:    len(cons.Hier.Partitions),
		ServersUsed:   cons.ServersUsed(),
		WallSeconds:   elapsed.Seconds(),
		AppsPerSecond: fleetScaleApps / elapsed.Seconds(),
		BudgetSeconds: fleetScaleBudget.Seconds(),
		Pass:          elapsed <= fleetScaleBudget,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_fleet_scale.json", data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("planned %d apps in %v (%.0f apps/s)", fleetScaleApps, elapsed.Round(time.Millisecond), doc.AppsPerSecond)
	if !doc.Pass {
		t.Errorf("fleet-scale plan took %v, budget %v", elapsed.Round(time.Millisecond), fleetScaleBudget)
	}
}
