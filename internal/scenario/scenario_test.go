package scenario

import (
	"errors"
	"strings"
	"testing"

	"ropus/internal/topology"
)

func testTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.Synthesize(topology.GenConfig{
		Servers: 6, Zones: 2, RacksPerZone: 1, PowerDomains: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCompileKinds(t *testing.T) {
	doc := `{
		"economics": {"defaultRevenuePerHour": 100, "defaultPenaltyPerHour": 10},
		"scenarios": [
			{"name": "one-server", "kind": "server-loss", "servers": ["srv-02"]},
			{"name": "zone-a-down", "kind": "domain-loss", "domain": "zone-a", "probability": 0.5},
			{"name": "pairs", "kind": "k-of-domain", "domain": "zone-b", "k": 2},
			{"name": "ripple", "kind": "cascade", "from": "zone-a-down", "overloadFactor": 0.9},
			{"name": "patch", "kind": "maintenance", "servers": ["srv-01"], "theta": 0.5}
		]
	}`
	d, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := d.Compile(testTopo(t))
	if err != nil {
		t.Fatal(err)
	}
	// zone-a holds srv-01, srv-03, srv-05 (round-robin into 2 racks);
	// zone-b holds srv-02, srv-04, srv-06 → C(3,2)=3 pair expansions.
	wantNames := []string{
		"one-server",
		"zone-a-down",
		"pairs/srv-02+srv-04", "pairs/srv-02+srv-06", "pairs/srv-04+srv-06",
		"ripple",
		"patch",
	}
	if len(specs) != len(wantNames) {
		t.Fatalf("compiled %d specs, want %d: %+v", len(specs), len(wantNames), specs)
	}
	for i, want := range wantNames {
		if specs[i].Name != want {
			t.Errorf("spec %d = %q, want %q", i, specs[i].Name, want)
		}
	}
	if got := specs[1].Probability; got != 0.5 {
		t.Errorf("zone-a-down probability = %v", got)
	}
	ripple := specs[5]
	if !ripple.Cascade || ripple.OverloadFactor != 0.9 {
		t.Errorf("ripple = %+v, want cascade with factor 0.9", ripple)
	}
	if len(ripple.Servers) != 3 {
		t.Errorf("ripple seed = %v, want zone-a's 3 servers", ripple.Servers)
	}
	if patch := specs[6]; patch.Theta != 0.5 || patch.Cascade {
		t.Errorf("patch = %+v, want theta 0.5 non-cascade", patch)
	}
}

func TestCompileIsDeterministic(t *testing.T) {
	doc := `{"scenarios": [
		{"name": "pairs", "kind": "k-of-domain", "domain": "zone-a", "k": 2},
		{"name": "loss", "kind": "server-loss", "servers": ["srv-06", "srv-02"]}
	]}`
	topo := testTopo(t)
	d, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || strings.Join(a[i].Servers, ",") != strings.Join(b[i].Servers, ",") {
			t.Errorf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Explicit server lists come out sorted.
	if a[len(a)-1].Servers[0] != "srv-02" {
		t.Errorf("server-loss seed not sorted: %v", a[len(a)-1].Servers)
	}
}

func TestRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", `{"scenarios": []}`, "no scenarios"},
		{"no name", `{"scenarios": [{"kind": "server-loss", "servers": ["s"]}]}`, "no name"},
		{"dup name", `{"scenarios": [
			{"name": "a", "kind": "server-loss", "servers": ["s"]},
			{"name": "a", "kind": "server-loss", "servers": ["s"]}]}`, "duplicate"},
		{"slash name", `{"scenarios": [{"name": "a/b", "kind": "server-loss", "servers": ["s"]}]}`, "reserved"},
		{"unknown kind", `{"scenarios": [{"name": "a", "kind": "meteor", "servers": ["s"]}]}`, "unknown kind"},
		{"no kind", `{"scenarios": [{"name": "a", "servers": ["s"]}]}`, "no kind"},
		{"dup server", `{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s", "s"]}]}`, "twice"},
		{"empty server", `{"scenarios": [{"name": "a", "kind": "server-loss", "servers": [""]}]}`, "empty server"},
		{"bad theta", `{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"], "theta": 2}]}`, "theta"},
		{"bad probability", `{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"], "probability": -1}]}`, "probability"},
		{"k too small", `{"scenarios": [{"name": "a", "kind": "k-of-domain", "domain": "d", "k": 0}]}`, "k >= 1"},
		{"maintenance no theta", `{"scenarios": [{"name": "a", "kind": "maintenance", "servers": ["s"]}]}`, "theta > 0"},
		{"rounds off cascade", `{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"], "maxRounds": 2}]}`, "only to cascade"},
		{"unknown from", `{"scenarios": [{"name": "a", "kind": "cascade", "from": "ghost"}]}`, "unknown scenario"},
		{"from cycle", `{"scenarios": [
			{"name": "a", "kind": "cascade", "from": "b"},
			{"name": "b", "kind": "cascade", "from": "a"}]}`, "cyclic"},
		{"self cycle", `{"scenarios": [{"name": "a", "kind": "cascade", "from": "a"}]}`, "cyclic"},
		{"two seeds", `{"scenarios": [{"name": "a", "kind": "cascade", "servers": ["s"], "domain": "d"}]}`, "exactly one"},
		{"unknown field", `{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"], "bogus": 1}]}`, "bogus"},
		{"bad economics", `{"economics": {"defaultRevenuePerHour": -1},
			"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"]}]}`, "finite non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("ReadJSON accepted %s", tc.doc)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Errorf("error %T is not a DecodeError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCompileRejections(t *testing.T) {
	topo := testTopo(t)
	cases := []struct {
		name string
		doc  string
		topo *topology.Topology
		want string
	}{
		{"unknown domain", `{"scenarios": [{"name": "a", "kind": "domain-loss", "domain": "zone-z"}]}`,
			topo, "unknown domain"},
		{"no topology", `{"scenarios": [{"name": "a", "kind": "domain-loss", "domain": "zone-a"}]}`,
			nil, "no topology"},
		{"k too big", `{"scenarios": [{"name": "a", "kind": "k-of-domain", "domain": "zone-a", "k": 9}]}`,
			topo, "exceeds"},
		{"from k-of-domain", `{"scenarios": [
			{"name": "pairs", "kind": "k-of-domain", "domain": "zone-a", "k": 2},
			{"name": "a", "kind": "cascade", "from": "pairs"}]}`,
			topo, "many sets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ReadJSON(strings.NewReader(tc.doc))
			if err != nil {
				t.Fatalf("ReadJSON: %v", err)
			}
			if _, err := d.Compile(tc.topo); err == nil {
				t.Fatalf("Compile accepted %s", tc.doc)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzScenarioDSL asserts the decoder's contract on arbitrary input:
// it never panics, and every rejection is a typed *DecodeError (or a
// wrapped topology error) rather than a raw panic or an untyped string
// from deep inside the compiler. Compilation of accepted documents is
// also exercised, with and without a topology.
func FuzzScenarioDSL(f *testing.F) {
	seeds := []string{
		`{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["srv-01"]}]}`,
		`{"scenarios": [{"name": "a", "kind": "domain-loss", "domain": "zone-a"}]}`,
		`{"scenarios": [{"name": "p", "kind": "k-of-domain", "domain": "zone-a", "k": 2}]}`,
		`{"scenarios": [{"name": "c", "kind": "cascade", "from": "c"}]}`,
		`{"economics": {"defaultRevenuePerHour": 1e308, "apps": {"x": {"revenuePerHour": -5}}},
		  "scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"]}]}`,
		`{"scenarios": [{"name": "a", "kind": "maintenance", "domain": "zone-a", "theta": 0.5}]}`,
		`{"scenarios": [{"name": "a", "kind": "meteor"}]}`,
		`{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s", "s"]}]}`,
		`not json at all`,
		`{"scenarios": [{"name": "a", "kind": "server-loss", "servers": ["s"], "probability": 1e999}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	topo, err := topology.Synthesize(topology.GenConfig{Servers: 4, Zones: 2, RacksPerZone: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data string) {
		d, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("ReadJSON rejection is not a DecodeError: %T %v", err, err)
			}
			return
		}
		for _, tp := range []*topology.Topology{topo, nil} {
			if _, err := d.Compile(tp); err != nil {
				var de *DecodeError
				if !errors.As(err, &de) && !errors.Is(err, topology.ErrNoTopology) {
					t.Fatalf("Compile rejection is not typed: %T %v", err, err)
				}
			}
		}
	})
}
