// Package scenario implements the JSON scenario DSL: a declarative
// document describing classes of correlated failures — "zone A fails",
// "any 2 servers of rack 3", "rack 1 fails and the evacuated load
// cascades", "half the pool is in maintenance at θ=0.5" — that compiles
// against a topology into the concrete failure.ScenarioSpec list the
// planner sweeps. The DSL is the operator-facing surface; the compiled
// specs are what checkpointing and determinism are defined over.
//
// Document shape:
//
//	{
//	  "economics": {
//	    "defaultRevenuePerHour": 100,
//	    "defaultPenaltyPerHour": 10,
//	    "apps": {"app-01": {"revenuePerHour": 500, "penaltyPerHour": 50}}
//	  },
//	  "scenarios": [
//	    {"name": "zone-a-down", "kind": "domain-loss", "domain": "zone-a",
//	     "probability": 0.02},
//	    {"name": "rack-pair", "kind": "k-of-domain", "domain": "zone-a", "k": 2},
//	    {"name": "ripple", "kind": "cascade", "from": "zone-a-down",
//	     "overloadFactor": 0.9, "maxRounds": 6},
//	    {"name": "patch-window", "kind": "maintenance",
//	     "servers": ["srv-01"], "theta": 0.5}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ropus/internal/failure"
	"ropus/internal/topology"
)

// Scenario kinds understood by the compiler.
const (
	// KindServerLoss fails an explicit server list.
	KindServerLoss = "server-loss"
	// KindDomainLoss fails every server in a topology domain.
	KindDomainLoss = "domain-loss"
	// KindKOfDomain expands into every k-server combination of a
	// domain, one compiled scenario per combination.
	KindKOfDomain = "k-of-domain"
	// KindCascade fails a seed set (servers, a domain, or another
	// scenario named by "from") and runs the overload closure.
	KindCascade = "cascade"
	// KindMaintenance takes servers out of rotation under a degraded θ
	// commitment — a maintenance window rather than a failure.
	KindMaintenance = "maintenance"
)

// Doc is a decoded scenario document.
type Doc struct {
	// Economics prices applications for revenue-at-risk scoring;
	// omitted, every application scores zero.
	Economics *failure.Economics `json:"economics,omitempty"`
	// Scenarios are the declared scenario entries, compiled in order.
	Scenarios []Entry `json:"scenarios"`
}

// Entry is one declared scenario before compilation.
type Entry struct {
	// Name identifies the scenario; unique across the document.
	Name string `json:"name"`
	// Kind selects the scenario class (see the Kind constants).
	Kind string `json:"kind"`
	// Domain names a topology domain (domain-loss, k-of-domain, and as
	// the seed of cascade/maintenance).
	Domain string `json:"domain,omitempty"`
	// Servers is an explicit server list (server-loss, and as the seed
	// of cascade/maintenance).
	Servers []string `json:"servers,omitempty"`
	// K is the combination size for k-of-domain.
	K int `json:"k,omitempty"`
	// From seeds a cascade with the failed set of the named scenario.
	From string `json:"from,omitempty"`
	// Theta is the degraded commitment for maintenance windows (>0) and
	// optionally any other kind.
	Theta float64 `json:"theta,omitempty"`
	// MaxRounds bounds the cascade closure; 0 selects the default.
	MaxRounds int `json:"maxRounds,omitempty"`
	// OverloadFactor scales the cascade overload threshold; 0 selects 1.
	OverloadFactor float64 `json:"overloadFactor,omitempty"`
	// Probability weights the scenario's revenue at risk; 0 selects 1.
	Probability float64 `json:"probability,omitempty"`
}

// DecodeError is the typed error for invalid scenario documents, so
// callers (and the fuzzer) can tell bad input from I/O faults.
type DecodeError struct{ Reason string }

func (e *DecodeError) Error() string { return "scenario: " + e.Reason }

func badDoc(format string, args ...any) error {
	return &DecodeError{Reason: fmt.Sprintf(format, args...)}
}

// ReadJSON decodes a scenario document and checks its document-level
// invariants. Topology-dependent resolution happens in Compile.
func ReadJSON(r io.Reader) (*Doc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Doc
	if err := dec.Decode(&d); err != nil {
		return nil, &DecodeError{Reason: err.Error()}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks everything that does not need a topology: names,
// kinds, per-kind field constraints, and economics finiteness.
func (d *Doc) Validate() error {
	if len(d.Scenarios) == 0 {
		return badDoc("no scenarios")
	}
	if err := d.Economics.Validate(); err != nil {
		return &DecodeError{Reason: err.Error()}
	}
	names := make(map[string]bool, len(d.Scenarios))
	for i, e := range d.Scenarios {
		if e.Name == "" {
			return badDoc("scenario %d has no name", i)
		}
		if strings.Contains(e.Name, "/") {
			return badDoc("scenario %q: names may not contain '/' (reserved for k-of-domain expansion)", e.Name)
		}
		if names[e.Name] {
			return badDoc("duplicate scenario name %q", e.Name)
		}
		names[e.Name] = true
		if err := e.validate(); err != nil {
			return err
		}
	}
	// From references must name a declared scenario; cycles are caught
	// here so Compile can resolve seeds without re-checking.
	for _, e := range d.Scenarios {
		if e.From == "" {
			continue
		}
		if !names[e.From] {
			return badDoc("scenario %q: from references unknown scenario %q", e.Name, e.From)
		}
	}
	return d.checkFromCycles()
}

func (e Entry) validate() error {
	bad := func(format string, args ...any) error {
		return badDoc("scenario %q: "+format, append([]any{e.Name}, args...)...)
	}
	seen := make(map[string]bool, len(e.Servers))
	for _, s := range e.Servers {
		if s == "" {
			return bad("lists an empty server ID")
		}
		if seen[s] {
			return bad("lists server %q twice", s)
		}
		seen[s] = true
	}
	if e.Theta < 0 || e.Theta > 1 {
		return bad("theta %v outside [0, 1]", e.Theta)
	}
	if e.Probability < 0 || e.Probability > 1 {
		return bad("probability %v outside [0, 1]", e.Probability)
	}
	if e.MaxRounds < 0 {
		return bad("maxRounds %d < 0", e.MaxRounds)
	}
	if e.OverloadFactor < 0 {
		return bad("overloadFactor %v < 0", e.OverloadFactor)
	}
	needSeed := func(allowFrom bool) error {
		hasServers, hasDomain := len(e.Servers) > 0, e.Domain != ""
		hasFrom := e.From != ""
		n := 0
		for _, b := range []bool{hasServers, hasDomain, hasFrom} {
			if b {
				n++
			}
		}
		if hasFrom && !allowFrom {
			return bad("%s does not accept from", e.Kind)
		}
		if n == 0 {
			if allowFrom {
				return bad("%s needs servers, a domain, or from", e.Kind)
			}
			return bad("%s needs servers or a domain", e.Kind)
		}
		if n > 1 {
			return bad("%s accepts exactly one of servers, domain%s", e.Kind,
				map[bool]string{true: ", from", false: ""}[allowFrom])
		}
		return nil
	}
	switch e.Kind {
	case KindServerLoss:
		if len(e.Servers) == 0 {
			return bad("server-loss needs servers")
		}
		if e.Domain != "" || e.From != "" {
			return bad("server-loss takes only servers")
		}
	case KindDomainLoss:
		if e.Domain == "" {
			return bad("domain-loss needs a domain")
		}
		if len(e.Servers) > 0 || e.From != "" {
			return bad("domain-loss takes only a domain")
		}
	case KindKOfDomain:
		if e.Domain == "" {
			return bad("k-of-domain needs a domain")
		}
		if len(e.Servers) > 0 || e.From != "" {
			return bad("k-of-domain takes only a domain")
		}
		if e.K < 1 {
			return bad("k-of-domain needs k >= 1, got %d", e.K)
		}
	case KindCascade:
		if err := needSeed(true); err != nil {
			return err
		}
	case KindMaintenance:
		if err := needSeed(false); err != nil {
			return err
		}
		if e.Theta <= 0 {
			return bad("maintenance needs theta > 0")
		}
	case "":
		return bad("has no kind")
	default:
		return bad("unknown kind %q", e.Kind)
	}
	if e.Kind != KindCascade && (e.MaxRounds != 0 || e.OverloadFactor != 0) {
		return bad("maxRounds/overloadFactor apply only to cascade")
	}
	return nil
}

// checkFromCycles walks every from chain with a step bound of the
// entry count; a cycle never terminates, so exceeding the bound is a
// cycle. (Validate has already checked that every From resolves.)
func (d *Doc) checkFromCycles() error {
	byName := make(map[string]Entry, len(d.Scenarios))
	for _, e := range d.Scenarios {
		byName[e.Name] = e
	}
	for _, e := range d.Scenarios {
		cur, steps := e.From, 0
		for cur != "" {
			if steps++; steps > len(d.Scenarios) {
				return badDoc("cyclic from reference through scenario %q", e.Name)
			}
			cur = byName[cur].From
		}
	}
	return nil
}

// Compile resolves the document against a topology (nil is accepted
// when no entry references a domain) into the concrete spec list the
// failure planner sweeps. k-of-domain entries expand into one spec per
// combination, named "<entry>/<s1>+<s2>+...". Compilation is
// deterministic: specs come out in document order, combinations in
// lexicographic server order.
func (d *Doc) Compile(topo *topology.Topology) ([]failure.ScenarioSpec, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	byName := make(map[string]Entry, len(d.Scenarios))
	for _, e := range d.Scenarios {
		byName[e.Name] = e
	}
	var specs []failure.ScenarioSpec
	for _, e := range d.Scenarios {
		if e.Kind == KindKOfDomain {
			servers, err := domainServers(topo, e.Name, e.Domain)
			if err != nil {
				return nil, err
			}
			if e.K > len(servers) {
				return nil, badDoc("scenario %q: k=%d exceeds the %d servers of domain %q",
					e.Name, e.K, len(servers), e.Domain)
			}
			for _, combo := range combinations(servers, e.K) {
				specs = append(specs, failure.ScenarioSpec{
					Name:        e.Name + "/" + strings.Join(combo, "+"),
					Servers:     combo,
					Theta:       e.Theta,
					Probability: e.Probability,
				})
			}
			continue
		}
		seed, err := resolveSeed(topo, byName, e, 0)
		if err != nil {
			return nil, err
		}
		specs = append(specs, failure.ScenarioSpec{
			Name:           e.Name,
			Servers:        seed,
			Theta:          e.Theta,
			Cascade:        e.Kind == KindCascade,
			MaxRounds:      e.MaxRounds,
			OverloadFactor: e.OverloadFactor,
			Probability:    e.Probability,
		})
	}
	return specs, nil
}

// resolveSeed produces an entry's initial failed set: explicit servers,
// a domain's transitive membership, or (for cascades) the resolved seed
// of the referenced scenario. depth guards the recursion; Validate has
// already rejected cycles, so the bound is belt-and-braces.
func resolveSeed(topo *topology.Topology, byName map[string]Entry, e Entry, depth int) ([]string, error) {
	if depth > len(byName) {
		return nil, badDoc("cyclic from reference through scenario %q", e.Name)
	}
	switch {
	case len(e.Servers) > 0:
		out := append([]string(nil), e.Servers...)
		sort.Strings(out)
		return out, nil
	case e.Domain != "":
		return domainServers(topo, e.Name, e.Domain)
	case e.From != "":
		ref := byName[e.From]
		if ref.Kind == KindKOfDomain {
			return nil, badDoc("scenario %q: from may not reference k-of-domain scenario %q (it expands to many sets)",
				e.Name, e.From)
		}
		return resolveSeed(topo, byName, ref, depth+1)
	}
	return nil, badDoc("scenario %q has no failed set", e.Name)
}

func domainServers(topo *topology.Topology, scenarioName, domain string) ([]string, error) {
	if topo == nil {
		return nil, fmt.Errorf("scenario %q: %w", scenarioName, topology.ErrNoTopology)
	}
	servers, err := topo.ServersIn(domain)
	if err != nil {
		return nil, badDoc("scenario %q: %v", scenarioName, err)
	}
	if len(servers) == 0 {
		return nil, badDoc("scenario %q: domain %q contains no servers", scenarioName, domain)
	}
	return servers, nil
}

// combinations enumerates the k-element subsets of items in
// lexicographic order. items must already be sorted.
func combinations(items []string, k int) [][]string {
	var out [][]string
	combo := make([]string, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]string(nil), combo...))
			return
		}
		for i := start; i <= len(items)-(k-depth); i++ {
			combo[depth] = items[i]
			rec(i+1, depth+1)
		}
	}
	if k >= 1 && k <= len(items) {
		rec(0, 0)
	}
	return out
}
