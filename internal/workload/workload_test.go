package workload

import (
	"math/rand"
	"testing"
	"time"

	"ropus/internal/stats"
	"ropus/internal/trace"
)

func validProfile() AppProfile {
	return AppProfile{
		ID:            "app-01",
		BaseCPU:       0.5,
		PeakCPU:       3,
		PeakHour:      14,
		BusinessWidth: 6,
		WeekendFactor: 0.3,
		NoiseSigma:    0.2,
		BurstsPerWeek: 4,
		BurstScale:    1,
		BurstAlpha:    1.5,
		BurstCap:      4,
		BurstMinDur:   10 * time.Minute,
		BurstMaxDur:   2 * time.Hour,
	}
}

func TestProfileValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*AppProfile)
		wantErr bool
	}{
		{name: "valid", mutate: func(p *AppProfile) {}},
		{name: "no bursts ok", mutate: func(p *AppProfile) { p.BurstsPerWeek = 0 }},
		{name: "missing ID", mutate: func(p *AppProfile) { p.ID = "" }, wantErr: true},
		{name: "negative base", mutate: func(p *AppProfile) { p.BaseCPU = -1 }, wantErr: true},
		{name: "peak below base", mutate: func(p *AppProfile) { p.PeakCPU = 0.1 }, wantErr: true},
		{name: "peak hour 24", mutate: func(p *AppProfile) { p.PeakHour = 24 }, wantErr: true},
		{name: "zero width", mutate: func(p *AppProfile) { p.BusinessWidth = 0 }, wantErr: true},
		{name: "weekend factor above 1", mutate: func(p *AppProfile) { p.WeekendFactor = 1.1 }, wantErr: true},
		{name: "negative noise", mutate: func(p *AppProfile) { p.NoiseSigma = -0.1 }, wantErr: true},
		{name: "negative burst rate", mutate: func(p *AppProfile) { p.BurstsPerWeek = -1 }, wantErr: true},
		{name: "bursts without scale", mutate: func(p *AppProfile) { p.BurstScale = 0 }, wantErr: true},
		{name: "bursts without alpha", mutate: func(p *AppProfile) { p.BurstAlpha = 0 }, wantErr: true},
		{name: "bursts without cap", mutate: func(p *AppProfile) { p.BurstCap = 0 }, wantErr: true},
		{name: "burst duration inverted", mutate: func(p *AppProfile) { p.BurstMaxDur = time.Minute }, wantErr: true},
		{name: "zero min duration", mutate: func(p *AppProfile) { p.BurstMinDur = 0 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validProfile()
			tt.mutate(&p)
			err := p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateArgumentErrors(t *testing.T) {
	p := validProfile()
	if _, err := p.Generate(0, trace.DefaultInterval, 1); err == nil {
		t.Error("weeks=0 should fail")
	}
	if _, err := p.Generate(1, 7*time.Minute, 1); err == nil {
		t.Error("non-dividing interval should fail")
	}
	if _, err := p.Generate(1, 0, 1); err == nil {
		t.Error("zero interval should fail")
	}
	bad := p
	bad.ID = ""
	if _, err := bad.Generate(1, trace.DefaultInterval, 1); err == nil {
		t.Error("invalid profile should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := validProfile()
	a, err := p.Generate(2, trace.DefaultInterval, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(2, trace.DefaultInterval, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i], b.Samples[i])
		}
	}
	c, err := p.Generate(2, trace.DefaultInterval, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	p := validProfile()
	p.BurstsPerWeek = 0 // isolate the deterministic shape
	p.NoiseSigma = 0
	tr, err := p.Generate(1, trace.DefaultInterval, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != 7*288 {
		t.Fatalf("Len = %d, want %d", got, 7*288)
	}

	// Demand at the peak hour on a weekday should equal PeakCPU, and at
	// 2am should be near BaseCPU.
	peakIdx := tr.Index(0, 0, int(14.0/24*288))
	if got := tr.Samples[peakIdx]; got < p.PeakCPU*0.99 {
		t.Errorf("weekday peak demand = %v, want ~%v", got, p.PeakCPU)
	}
	nightIdx := tr.Index(0, 0, int(2.0/24*288))
	if got := tr.Samples[nightIdx]; got > p.BaseCPU*1.2 {
		t.Errorf("night demand = %v, want ~%v", got, p.BaseCPU)
	}

	// Weekend peak should be scaled by WeekendFactor.
	wkndIdx := tr.Index(0, 6, int(14.0/24*288))
	wantWknd := p.BaseCPU + (p.PeakCPU-p.BaseCPU)*p.WeekendFactor
	if got := tr.Samples[wkndIdx]; got > wantWknd*1.05 || got < wantWknd*0.95 {
		t.Errorf("weekend peak demand = %v, want ~%v", got, wantWknd)
	}
}

func TestGenerateBurstsRaisePeak(t *testing.T) {
	p := validProfile()
	p.NoiseSigma = 0
	noBursts := p
	noBursts.BurstsPerWeek = 0
	quiet, err := noBursts.Generate(2, trace.DefaultInterval, 5)
	if err != nil {
		t.Fatal(err)
	}
	loud, err := p.Generate(2, trace.DefaultInterval, 5)
	if err != nil {
		t.Fatal(err)
	}
	if loud.Peak() <= quiet.Peak() {
		t.Errorf("bursts should raise the peak: %v <= %v", loud.Peak(), quiet.Peak())
	}
}

func TestGrowthPerWeekTrend(t *testing.T) {
	p := validProfile()
	p.NoiseSigma = 0
	p.BurstsPerWeek = 0
	p.GrowthPerWeek = 0.1
	tr, err := p.Generate(3, trace.DefaultInterval, 9)
	if err != nil {
		t.Fatal(err)
	}
	slotsPerWeek := 7 * tr.SlotsPerDay()
	// Same slot position across weeks grows by exactly 10% per week.
	pos := tr.Index(0, 2, 100)
	w0 := tr.Samples[pos]
	w1 := tr.Samples[pos+slotsPerWeek]
	w2 := tr.Samples[pos+2*slotsPerWeek]
	if w0 <= 0 {
		t.Fatal("zero baseline sample")
	}
	if r := w1 / w0; r < 1.0999 || r > 1.1001 {
		t.Errorf("week 1 growth ratio = %v, want 1.1", r)
	}
	if r := w2 / w0; r < 1.2099 || r > 1.2101 {
		t.Errorf("week 2 growth ratio = %v, want 1.21", r)
	}

	p.GrowthPerWeek = -1
	if err := p.Validate(); err == nil {
		t.Error("GrowthPerWeek = -1 accepted")
	}
	p.GrowthPerWeek = -0.5 // shrinking is fine
	if err := p.Validate(); err != nil {
		t.Errorf("shrinking trend rejected: %v", err)
	}
}

func TestFleetConfigValidate(t *testing.T) {
	good := CaseStudyConfig(1)
	if err := good.Validate(); err != nil {
		t.Errorf("case study config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{name: "no apps", mutate: func(c *FleetConfig) { c.Spiky, c.Bursty, c.Smooth = 0, 0, 0 }},
		{name: "negative class", mutate: func(c *FleetConfig) { c.Spiky = -1 }},
		{name: "zero weeks", mutate: func(c *FleetConfig) { c.Weeks = 0 }},
		{name: "bad interval", mutate: func(c *FleetConfig) { c.Interval = 7 * time.Minute }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := CaseStudyConfig(1)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
	if _, err := Fleet(FleetConfig{}); err == nil {
		t.Error("Fleet with invalid config should fail")
	}
}

func TestCaseStudyFleetCharacter(t *testing.T) {
	set, err := Fleet(CaseStudyConfig(2006))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 26 {
		t.Fatalf("fleet size = %d, want 26", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := set[0].Len(); got != 4*7*288 {
		t.Fatalf("trace length = %d, want %d", got, 4*7*288)
	}

	// Figure 6 character: the spiky apps have a 99.5th percentile far
	// below the peak; bursty apps have P97 well below the peak; the
	// pool is overbooked relative to a couple of 16-way servers.
	for i := 0; i < 2; i++ {
		p995, err := set[i].Percentile(99.5)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := p995 / set[i].Peak(); ratio > 0.55 {
			t.Errorf("spiky %s: P99.5/peak = %.2f, want <= 0.55", set[i].AppID, ratio)
		}
	}
	burstyBelow := 0
	for i := 2; i < 10; i++ {
		p97, err := set[i].Percentile(97)
		if err != nil {
			t.Fatal(err)
		}
		if p97/set[i].Peak() < 0.6 {
			burstyBelow++
		}
	}
	if burstyBelow < 5 {
		t.Errorf("only %d/8 bursty apps have P97 < 0.6*peak", burstyBelow)
	}

	total := set.TotalPeak()
	if total < 40 || total > 250 {
		t.Errorf("total peak demand = %.1f CPUs, want a case-study-like magnitude", total)
	}
}

func TestParetoAndPoissonHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		v := pareto(rng, 1.2)
		if v < 1 || v > 50 {
			t.Fatalf("pareto draw %v outside [1,50]", v)
		}
	}
	if got := poisson(rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d, want 0", got)
	}
	// Mean of many draws should be near the requested mean.
	sum := 0
	const n = 2000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 4)
	}
	mean := float64(sum) / n
	if mean < 3.5 || mean > 4.5 {
		t.Errorf("poisson mean = %v, want ~4", mean)
	}
	// Large-mean normal approximation should stay non-negative and
	// roughly centred.
	sum = 0
	for i := 0; i < 200; i++ {
		v := poisson(rng, 400)
		if v < 0 {
			t.Fatal("poisson returned negative count")
		}
		sum += v
	}
	mean = float64(sum) / 200
	if mean < 360 || mean > 440 {
		t.Errorf("poisson large mean = %v, want ~400", mean)
	}
}

func TestClassString(t *testing.T) {
	if ClassSpiky.String() != "spiky" || ClassBursty.String() != "bursty" ||
		ClassSmooth.String() != "smooth" || ClassBatch.String() != "batch" {
		t.Error("unexpected Class strings")
	}
	if got := Class(42).String(); got != "Class(42)" {
		t.Errorf("unknown class String = %q", got)
	}
}

func TestBatchClassIsNocturnalAndSteady(t *testing.T) {
	set, err := Fleet(FleetConfig{
		Smooth: 1, Batch: 1,
		Weeks: 1, Interval: time.Hour, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	interactive, batch := set[0], set[1]

	// Batch demand peaks at night: the 3am weekday mean exceeds the
	// 2pm mean; the interactive app is the other way round.
	nightMean := func(tr *trace.Trace, hour int) float64 {
		sum, n := 0.0, 0
		for d := 0; d < 5; d++ {
			sum += tr.Samples[tr.Index(0, d, hour)]
			n++
		}
		return sum / float64(n)
	}
	if nightMean(batch, 3) <= nightMean(batch, 14) {
		t.Errorf("batch 3am mean %v <= 2pm mean %v", nightMean(batch, 3), nightMean(batch, 14))
	}
	if nightMean(interactive, 14) <= nightMean(interactive, 3) {
		t.Errorf("interactive 2pm mean %v <= 3am mean %v",
			nightMean(interactive, 14), nightMean(interactive, 3))
	}

	// Batch runs weekends at full strength: Sunday 3am ~ Wednesday 3am.
	sun := batch.Samples[batch.Index(0, 6, 3)]
	wed := batch.Samples[batch.Index(0, 2, 3)]
	if sun < wed*0.7 || sun > wed*1.3 {
		t.Errorf("batch weekend level %v far from weekday %v", sun, wed)
	}

	// Interactive and batch anti-correlate — the property that makes
	// them good co-tenants.
	corr, err := stats.Correlation(interactive.Samples, batch.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if corr >= 0 {
		t.Errorf("interactive/batch correlation = %v, want negative", corr)
	}
}

func TestFleetDemandIsBursty(t *testing.T) {
	set, err := Fleet(CaseStudyConfig(2006))
	if err != nil {
		t.Fatal(err)
	}
	// The consolidation story requires aggregate demand well below the
	// sum of peaks: peaks must not all coincide.
	agg, err := set.Sum()
	if err != nil {
		t.Fatal(err)
	}
	aggPeak, err := stats.Max(agg.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if aggPeak >= set.TotalPeak() {
		t.Errorf("aggregate peak %v should be below sum of peaks %v", aggPeak, set.TotalPeak())
	}
}
