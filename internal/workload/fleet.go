package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ropus/internal/topology"
	"ropus/internal/trace"
)

// Class is a family of application behaviours observed in the paper's
// Figure 6.
type Class int

const (
	// ClassSpiky models the two leftmost applications of Figure 6: a
	// small percentage of points that are very large (up to an order of
	// magnitude) with respect to the remaining demands.
	ClassSpiky Class = iota + 1
	// ClassBursty models applications whose top 3% of demand values are
	// 2-10x higher than the remaining demands.
	ClassBursty
	// ClassSmooth models the remaining applications with a dominant
	// diurnal shape and moderate bursts.
	ClassSmooth
	// ClassBatch models overnight processing: demand peaks in the early
	// hours, runs seven days a week, and is nearly deterministic. Batch
	// workloads anti-correlate with the interactive classes, which is
	// what makes them attractive co-tenants for statistical
	// multiplexing.
	ClassBatch
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSpiky:
		return "spiky"
	case ClassBursty:
		return "bursty"
	case ClassSmooth:
		return "smooth"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// FleetConfig describes a synthetic fleet of application workloads.
type FleetConfig struct {
	// Spiky, Bursty, Smooth and Batch are the number of applications
	// of each class.
	Spiky, Bursty, Smooth, Batch int
	// Weeks of history to generate (the paper uses 4).
	Weeks int
	// Interval is the measurement interval (the paper uses 5 minutes).
	Interval time.Duration
	// Seed makes the whole fleet deterministic.
	Seed int64
}

// Validate checks the fleet configuration.
func (c FleetConfig) Validate() error {
	if c.Spiky < 0 || c.Bursty < 0 || c.Smooth < 0 || c.Batch < 0 ||
		c.Spiky+c.Bursty+c.Smooth+c.Batch == 0 {
		return fmt.Errorf("workload: fleet needs a positive number of apps, got %d/%d/%d/%d",
			c.Spiky, c.Bursty, c.Smooth, c.Batch)
	}
	if c.Weeks <= 0 {
		return fmt.Errorf("workload: fleet needs positive weeks, got %d", c.Weeks)
	}
	if c.Interval <= 0 || (24*time.Hour)%c.Interval != 0 {
		return fmt.Errorf("workload: bad interval %v", c.Interval)
	}
	return nil
}

// CaseStudyConfig returns the configuration used to stand in for the
// paper's case study: 26 applications (2 spiky, 8 bursty, 16 smooth),
// four weeks of five-minute samples.
func CaseStudyConfig(seed int64) FleetConfig {
	return FleetConfig{
		Spiky:    2,
		Bursty:   8,
		Smooth:   16,
		Weeks:    4,
		Interval: trace.DefaultInterval,
		Seed:     seed,
	}
}

// Fleet generates the demand traces for a synthetic fleet. Application
// IDs are app-01, app-02, ... in class order (spiky, bursty, smooth).
func Fleet(cfg FleetConfig) (trace.Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Spiky + cfg.Bursty + cfg.Smooth + cfg.Batch
	set := make(trace.Set, 0, total)
	for i := 0; i < total; i++ {
		class := ClassBatch
		switch {
		case i < cfg.Spiky:
			class = ClassSpiky
		case i < cfg.Spiky+cfg.Bursty:
			class = ClassBursty
		case i < cfg.Spiky+cfg.Bursty+cfg.Smooth:
			class = ClassSmooth
		}
		profile := classProfile(fmt.Sprintf("app-%02d", i+1), class, rng)
		tr, err := profile.Generate(cfg.Weeks, cfg.Interval, rng.Int63())
		if err != nil {
			return nil, fmt.Errorf("workload: generate %s: %w", profile.ID, err)
		}
		set = append(set, tr)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// FleetTopology synthesizes the rack/zone/power topology of the pool a
// fleet consolidates onto: the framework builds one candidate server
// per application (srv-01, srv-02, ...), so the topology covers exactly
// the servers a failover run of the fleet's traces will see. The result
// is deterministic in its arguments.
func FleetTopology(cfg FleetConfig, zones, racksPerZone, powerDomains int) (*topology.Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return topology.Synthesize(topology.GenConfig{
		Servers:      cfg.Spiky + cfg.Bursty + cfg.Smooth + cfg.Batch,
		Zones:        zones,
		RacksPerZone: racksPerZone,
		PowerDomains: powerDomains,
	})
}

// classProfile draws a heterogeneous profile for one application of the
// given class. The magnitudes are calibrated so that a 26-application
// case-study fleet lands in the same regime as the paper's: peak demands
// of a few CPUs each, summing to roughly 120 CPUs, so that the Table I
// consolidation needs nine 16-way servers in normal mode and eight
// under the degraded-QoS variants.
func classProfile(id string, class Class, rng *rand.Rand) AppProfile {
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	p := AppProfile{
		ID:            id,
		PeakHour:      uniform(10, 16),
		BusinessWidth: uniform(5, 8),
		WeekendFactor: uniform(0.1, 0.5),
	}
	switch class {
	case ClassSpiky:
		// Rare, very tall, short bursts: the top 0.1% of demands dwarf
		// the rest of the trace.
		p.BaseCPU = uniform(0.0957, 0.2871)
		p.PeakCPU = uniform(0.4785, 0.957)
		p.NoiseSigma = 0.20
		p.BurstsPerWeek = 1.0
		p.BurstScale = uniform(1.5, 2.5)
		p.BurstAlpha = 1.1
		p.BurstCap = 7
		p.BurstMinDur = 5 * time.Minute
		p.BurstMaxDur = 30 * time.Minute
		p.BurstRepeatMaxDays = 1
	case ClassBursty:
		// Frequent medium bursts with durations from minutes to hours:
		// the top 3% of demands are 2-10x the remaining demands.
		p.BaseCPU = uniform(0.1914, 0.4785)
		p.PeakCPU = uniform(0.7656, 1.5312)
		p.NoiseSigma = 0.25
		p.BurstsPerWeek = uniform(4, 9)
		p.BurstScale = uniform(0.5, 1.0)
		p.BurstAlpha = 1.5
		p.BurstCap = 2.4
		p.BurstMinDur = 10 * time.Minute
		p.BurstMaxDur = 3 * time.Hour
		p.BurstRepeatMaxDays = 5
	case ClassBatch:
		// Overnight processing: near-deterministic load centred in the
		// small hours, identical on weekends, no bursts to speak of.
		p.PeakHour = uniform(1, 4)
		p.BusinessWidth = uniform(3, 5)
		p.WeekendFactor = 1
		p.BaseCPU = uniform(0.1, 0.3)
		p.PeakCPU = uniform(1.5, 3.0)
		p.NoiseSigma = 0.05
		p.BurstsPerWeek = 0
	default:
		// Dominant diurnal shape. Noise and burst amplitude vary per
		// application so the fleet spans the paper's Figure 6 spectrum:
		// the calmest applications have a 97th percentile near their
		// peak, the rest sit in between.
		p.BaseCPU = uniform(0.3828, 0.957)
		p.PeakCPU = uniform(1.5312, 3.2538)
		p.NoiseSigma = uniform(0.04, 0.15)
		p.BurstsPerWeek = uniform(1, 3)
		p.BurstScale = uniform(0.15, 0.5)
		p.BurstAlpha = 2.0
		p.BurstCap = uniform(0.25, 1.2)
		p.BurstMinDur = 15 * time.Minute
		p.BurstMaxDur = 2 * time.Hour
		p.BurstRepeatMaxDays = 3
	}
	return p
}
