package workload

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// TestProfileValidateNonFinite: NaN/Inf in any float field must be
// rejected — they slip through plain range comparisons and would poison
// every downstream simulation.
func TestProfileValidateNonFinite(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AppProfile)
		field  string
	}{
		{name: "NaN base", mutate: func(p *AppProfile) { p.BaseCPU = math.NaN() }, field: "BaseCPU"},
		{name: "Inf base", mutate: func(p *AppProfile) { p.BaseCPU = math.Inf(1) }, field: "BaseCPU"},
		{name: "NaN peak", mutate: func(p *AppProfile) { p.PeakCPU = math.NaN() }, field: "PeakCPU"},
		{name: "-Inf peak", mutate: func(p *AppProfile) { p.PeakCPU = math.Inf(-1) }, field: "PeakCPU"},
		{name: "NaN peak hour", mutate: func(p *AppProfile) { p.PeakHour = math.NaN() }, field: "PeakHour"},
		{name: "NaN width", mutate: func(p *AppProfile) { p.BusinessWidth = math.NaN() }, field: "BusinessWidth"},
		{name: "NaN weekend", mutate: func(p *AppProfile) { p.WeekendFactor = math.NaN() }, field: "WeekendFactor"},
		{name: "NaN noise", mutate: func(p *AppProfile) { p.NoiseSigma = math.NaN() }, field: "NoiseSigma"},
		{name: "NaN burst rate", mutate: func(p *AppProfile) { p.BurstsPerWeek = math.NaN() }, field: "BurstsPerWeek"},
		{name: "NaN burst scale", mutate: func(p *AppProfile) { p.BurstScale = math.NaN() }, field: "BurstScale"},
		{name: "Inf burst alpha", mutate: func(p *AppProfile) { p.BurstAlpha = math.Inf(1) }, field: "BurstAlpha"},
		{name: "NaN burst cap", mutate: func(p *AppProfile) { p.BurstCap = math.NaN() }, field: "BurstCap"},
		{name: "NaN growth", mutate: func(p *AppProfile) { p.GrowthPerWeek = math.NaN() }, field: "GrowthPerWeek"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validProfile()
			tt.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("non-finite field accepted")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a FieldError", err)
			}
			if fe.Field != tt.field {
				t.Errorf("FieldError.Field = %q, want %q", fe.Field, tt.field)
			}
			if fe.Profile != p.ID {
				t.Errorf("FieldError.Profile = %q, want %q", fe.Profile, p.ID)
			}
		})
	}
}

// TestProfileValidateReportsEveryViolation: all invalid fields are
// reported in one pass, not just the first.
func TestProfileValidateReportsEveryViolation(t *testing.T) {
	p := validProfile()
	p.BaseCPU = -1
	p.PeakHour = 30
	p.NoiseSigma = math.NaN()
	err := p.Validate()
	if err == nil {
		t.Fatal("invalid profile accepted")
	}
	for _, field := range []string{"BaseCPU", "PeakHour", "NoiseSigma"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("joined error misses %s: %v", field, err)
		}
	}
}

// TestProfileValidateFieldErrors pins the structured reporting for the
// plain range violations too.
func TestProfileValidateFieldErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AppProfile)
		field  string
	}{
		{name: "negative base", mutate: func(p *AppProfile) { p.BaseCPU = -2 }, field: "BaseCPU"},
		{name: "peak below base", mutate: func(p *AppProfile) { p.PeakCPU = 0.1 }, field: "PeakCPU"},
		{name: "peak hour high", mutate: func(p *AppProfile) { p.PeakHour = 24 }, field: "PeakHour"},
		{name: "peak hour negative", mutate: func(p *AppProfile) { p.PeakHour = -1 }, field: "PeakHour"},
		{name: "inverted burst durations", mutate: func(p *AppProfile) { p.BurstMaxDur = p.BurstMinDur - time.Minute }, field: "BurstMaxDur"},
		{name: "zero burst min", mutate: func(p *AppProfile) { p.BurstMinDur = 0 }, field: "BurstMinDur"},
		{name: "missing ID", mutate: func(p *AppProfile) { p.ID = "" }, field: "ID"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validProfile()
			tt.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("invalid profile accepted")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a FieldError", err)
			}
			if fe.Field != tt.field {
				t.Errorf("FieldError.Field = %q, want %q", fe.Field, tt.field)
			}
		})
	}
}

// TestReadProfilesRejectsNonFinite: the JSON reader surfaces the
// per-field diagnosis for hand-authored fleet files. (JSON itself
// cannot encode NaN, but negative and out-of-range values arrive this
// way.)
func TestReadProfilesRejectsNonFinite(t *testing.T) {
	in := `[{"id":"a","baseCpu":-3,"peakCpu":1,"peakHour":25,"businessWidthHours":1}]`
	_, err := ReadProfiles(strings.NewReader(in))
	if err == nil {
		t.Fatal("invalid JSON profile accepted")
	}
	var fe *FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v does not expose a FieldError", err)
	}
	if fe.Profile != "a" {
		t.Errorf("FieldError.Profile = %q, want %q", fe.Profile, "a")
	}
}
