package workload

import (
	"errors"
	"fmt"
	"math"
	"time"

	"ropus/internal/trace"
)

// MaxScaleApps bounds fleet-scale generation: beyond ~100k applications
// a single host's trace storage, not the generator, is the limit.
const MaxScaleApps = 100000

// maxScaleWeeks bounds the generated history length (2 years).
const maxScaleWeeks = 104

// Mix apportions a fleet across the behaviour classes by weight. The
// weights are relative, not percentages: {1,1,1,1} and {25,25,25,25}
// describe the same fleet.
type Mix struct {
	Spiky  float64 `json:"spiky"`
	Bursty float64 `json:"bursty"`
	Smooth float64 `json:"smooth"`
	Batch  float64 `json:"batch"`
}

// DefaultMix extrapolates the paper's 26-application case study (2
// spiky, 8 bursty, 16 smooth) to fleet scale, with a batch share for
// the anti-correlated overnight workloads large pools always carry.
func DefaultMix() Mix { return Mix{Spiky: 0.07, Bursty: 0.29, Smooth: 0.52, Batch: 0.12} }

// zero reports an all-zero mix (the "use the default" sentinel).
func (m Mix) zero() bool { return m == Mix{} }

// weights returns the class weights in class order.
func (m Mix) weights() [4]float64 { return [4]float64{m.Spiky, m.Bursty, m.Smooth, m.Batch} }

// ScaleConfig describes a fleet-scale synthetic workload: 1k-10k (up to
// MaxScaleApps) heterogeneous applications drawn from the class mix,
// fully determined by the seed.
type ScaleConfig struct {
	// Apps is the total number of applications.
	Apps int
	// Mix is the class mix by weight; the zero value selects
	// DefaultMix.
	Mix Mix
	// Weeks of history to generate.
	Weeks int
	// Interval is the measurement interval; fleet-scale runs typically
	// use time.Hour rather than the paper's 5 minutes to keep a 10k-app
	// history in memory.
	Interval time.Duration
	// Seed makes the whole fleet deterministic.
	Seed int64
}

// Validate checks the configuration, joining one FieldError per invalid
// field (Profile is "scale" — the config is fleet-wide, not per app).
func (c ScaleConfig) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &FieldError{Profile: "scale", Field: field, Value: value, Reason: reason})
	}
	if c.Apps < 1 {
		bad("Apps", c.Apps, "must be >= 1")
	} else if c.Apps > MaxScaleApps {
		bad("Apps", c.Apps, fmt.Sprintf("must be <= %d", MaxScaleApps))
	}
	if c.Weeks < 1 {
		bad("Weeks", c.Weeks, "must be >= 1")
	} else if c.Weeks > maxScaleWeeks {
		bad("Weeks", c.Weeks, fmt.Sprintf("must be <= %d", maxScaleWeeks))
	}
	if c.Interval < time.Minute || c.Interval > 24*time.Hour || (24*time.Hour)%c.Interval != 0 {
		bad("Interval", c.Interval, "must divide 24h and be between 1m and 24h")
	}
	sum := 0.0
	for i, w := range c.Mix.weights() {
		field := "Mix." + [...]string{"Spiky", "Bursty", "Smooth", "Batch"}[i]
		if math.IsNaN(w) || math.IsInf(w, 0) {
			bad(field, w, "must be a finite number")
			continue
		}
		if w < 0 {
			bad(field, w, "must be >= 0")
			continue
		}
		sum += w
	}
	if !c.Mix.zero() && sum == 0 {
		bad("Mix", c.Mix, "weights must sum to a positive value")
	}
	return errors.Join(errs...)
}

// FleetConfig resolves the scale description into per-class counts
// using largest-remainder apportionment, so the counts always sum to
// Apps exactly and the split is deterministic (remainder ties go to the
// earlier class in spiky, bursty, smooth, batch order).
func (c ScaleConfig) FleetConfig() (FleetConfig, error) {
	if err := c.Validate(); err != nil {
		return FleetConfig{}, err
	}
	mix := c.Mix
	if mix.zero() {
		mix = DefaultMix()
	}
	w := mix.weights()
	sum := w[0] + w[1] + w[2] + w[3]
	var counts [4]int
	var fracs [4]float64
	assigned := 0
	for i, wi := range w {
		exact := float64(c.Apps) * wi / sum
		counts[i] = int(math.Floor(exact))
		fracs[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for rest := c.Apps - assigned; rest > 0; rest-- {
		best := 0
		for i := 1; i < 4; i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
	}
	return FleetConfig{
		Spiky: counts[0], Bursty: counts[1], Smooth: counts[2], Batch: counts[3],
		Weeks: c.Weeks, Interval: c.Interval, Seed: c.Seed,
	}, nil
}

// ScaleFleet generates a fleet-scale set of demand traces. Application
// IDs are app-01, app-02, ... in class order, exactly as Fleet names
// them, and the whole set is deterministic in the configuration.
func ScaleFleet(c ScaleConfig) (trace.Set, error) {
	fc, err := c.FleetConfig()
	if err != nil {
		return nil, err
	}
	return Fleet(fc)
}
