package workload

import (
	"errors"
	"math"
	"testing"
	"time"
)

// FuzzFleetGen drives the fleet-scale generator config through
// adversarial values: the contract is that Validate either rejects the
// config with structured FieldErrors or the apportionment sums exactly
// to Apps — and, for instances small enough to generate in a fuzz
// iteration, that the generated set validates and has one trace per
// app. Weight bits come in as uint64 so NaN/Inf/denormal patterns
// appear naturally.
func FuzzFleetGen(f *testing.F) {
	f.Add(100, 1, int64(time.Hour), int64(2006), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(26, 4, int64(5*time.Minute), int64(42),
		math.Float64bits(2), math.Float64bits(8), math.Float64bits(16), uint64(0))
	f.Add(1, 1, int64(time.Minute), int64(-1),
		math.Float64bits(math.Inf(1)), math.Float64bits(math.NaN()), uint64(1), uint64(1))
	f.Add(-5, 200, int64(7*time.Hour), int64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, apps, weeks int, interval, seed int64,
		spiky, bursty, smooth, batch uint64) {
		cfg := ScaleConfig{
			Apps:  apps,
			Weeks: weeks,
			Mix: Mix{
				Spiky:  math.Float64frombits(spiky),
				Bursty: math.Float64frombits(bursty),
				Smooth: math.Float64frombits(smooth),
				Batch:  math.Float64frombits(batch),
			},
			Interval: time.Duration(interval),
			Seed:     seed,
		}
		if err := cfg.Validate(); err != nil {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("non-structured validation error: %v", err)
			}
			if _, err := cfg.FleetConfig(); err == nil {
				t.Fatal("FleetConfig accepted a config Validate rejected")
			}
			return
		}
		fc, err := cfg.FleetConfig()
		if err != nil {
			t.Fatalf("valid config failed apportionment: %v", err)
		}
		if total := fc.Spiky + fc.Bursty + fc.Smooth + fc.Batch; total != cfg.Apps {
			t.Fatalf("apportioned %d apps, want %d", total, cfg.Apps)
		}
		if fc.Spiky < 0 || fc.Bursty < 0 || fc.Smooth < 0 || fc.Batch < 0 {
			t.Fatalf("negative class count: %+v", fc)
		}
		// Generate only tractable instances; the apportionment contract
		// above is the part that must hold at any size.
		if cfg.Apps > 32 || cfg.Weeks > 2 || cfg.Interval < time.Hour {
			return
		}
		set, err := ScaleFleet(cfg)
		if err != nil {
			t.Fatalf("valid config failed generation: %v", err)
		}
		if len(set) != cfg.Apps {
			t.Fatalf("generated %d traces, want %d", len(set), cfg.Apps)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("generated fleet does not validate: %v", err)
		}
	})
}
