package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ropus/internal/trace"
)

// Profile serialization: a fleet specification can be written to JSON,
// edited by hand (or produced by a capacity-management tool), and fed
// back to the generator — the reproducible way to model a concrete
// customer fleet instead of the built-in class mix.

// jsonProfile mirrors AppProfile with durations as strings, since
// encoding/json has no native duration support.
type jsonProfile struct {
	ID                 string  `json:"id"`
	BaseCPU            float64 `json:"baseCpu"`
	PeakCPU            float64 `json:"peakCpu"`
	PeakHour           float64 `json:"peakHour"`
	BusinessWidth      float64 `json:"businessWidthHours"`
	WeekendFactor      float64 `json:"weekendFactor"`
	NoiseSigma         float64 `json:"noiseSigma"`
	BurstsPerWeek      float64 `json:"burstsPerWeek"`
	BurstScale         float64 `json:"burstScale"`
	BurstAlpha         float64 `json:"burstAlpha"`
	BurstCap           float64 `json:"burstCap"`
	BurstMinDur        string  `json:"burstMinDur"`
	BurstMaxDur        string  `json:"burstMaxDur"`
	BurstRepeatMaxDays int     `json:"burstRepeatMaxDays"`
	GrowthPerWeek      float64 `json:"growthPerWeek"`
}

func toJSONProfile(p AppProfile) jsonProfile {
	return jsonProfile{
		ID:                 p.ID,
		BaseCPU:            p.BaseCPU,
		PeakCPU:            p.PeakCPU,
		PeakHour:           p.PeakHour,
		BusinessWidth:      p.BusinessWidth,
		WeekendFactor:      p.WeekendFactor,
		NoiseSigma:         p.NoiseSigma,
		BurstsPerWeek:      p.BurstsPerWeek,
		BurstScale:         p.BurstScale,
		BurstAlpha:         p.BurstAlpha,
		BurstCap:           p.BurstCap,
		BurstMinDur:        p.BurstMinDur.String(),
		BurstMaxDur:        p.BurstMaxDur.String(),
		BurstRepeatMaxDays: p.BurstRepeatMaxDays,
		GrowthPerWeek:      p.GrowthPerWeek,
	}
}

func (j jsonProfile) toProfile() (AppProfile, error) {
	parse := func(s, field string) (time.Duration, error) {
		if s == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("workload: profile %q: %s: %w", j.ID, field, err)
		}
		return d, nil
	}
	minDur, err := parse(j.BurstMinDur, "burstMinDur")
	if err != nil {
		return AppProfile{}, err
	}
	maxDur, err := parse(j.BurstMaxDur, "burstMaxDur")
	if err != nil {
		return AppProfile{}, err
	}
	p := AppProfile{
		ID:                 j.ID,
		BaseCPU:            j.BaseCPU,
		PeakCPU:            j.PeakCPU,
		PeakHour:           j.PeakHour,
		BusinessWidth:      j.BusinessWidth,
		WeekendFactor:      j.WeekendFactor,
		NoiseSigma:         j.NoiseSigma,
		BurstsPerWeek:      j.BurstsPerWeek,
		BurstScale:         j.BurstScale,
		BurstAlpha:         j.BurstAlpha,
		BurstCap:           j.BurstCap,
		BurstMinDur:        minDur,
		BurstMaxDur:        maxDur,
		BurstRepeatMaxDays: j.BurstRepeatMaxDays,
		GrowthPerWeek:      j.GrowthPerWeek,
	}
	return p, p.Validate()
}

// WriteProfiles serializes profiles as indented JSON.
func WriteProfiles(w io.Writer, profiles []AppProfile) error {
	if len(profiles) == 0 {
		return fmt.Errorf("workload: no profiles to write")
	}
	out := make([]jsonProfile, len(profiles))
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return err
		}
		out[i] = toJSONProfile(p)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadProfiles parses a profile list previously written by WriteProfiles
// (or authored by hand). Every profile is validated.
func ReadProfiles(r io.Reader) ([]AppProfile, error) {
	var raw []jsonProfile
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decode profiles: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("workload: no profiles in input")
	}
	seen := make(map[string]bool, len(raw))
	profiles := make([]AppProfile, len(raw))
	for i, j := range raw {
		p, err := j.toProfile()
		if err != nil {
			return nil, err
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("workload: duplicate profile ID %q", p.ID)
		}
		seen[p.ID] = true
		profiles[i] = p
	}
	return profiles, nil
}

// FleetFromProfiles generates an aligned trace set from explicit
// profiles, deriving one deterministic sub-seed per application.
func FleetFromProfiles(profiles []AppProfile, weeks int, interval time.Duration, seed int64) (trace.Set, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("workload: no profiles")
	}
	set := make(trace.Set, len(profiles))
	for i, p := range profiles {
		tr, err := p.Generate(weeks, interval, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		set[i] = tr
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}
