package workload

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestScaleFleetApportionment(t *testing.T) {
	tests := []struct {
		name string
		cfg  ScaleConfig
		want FleetConfig
	}{
		{
			name: "default mix 100",
			cfg:  ScaleConfig{Apps: 100, Weeks: 1, Interval: time.Hour, Seed: 1},
			want: FleetConfig{Spiky: 7, Bursty: 29, Smooth: 52, Batch: 12, Weeks: 1, Interval: time.Hour, Seed: 1},
		},
		{
			name: "single app lands on heaviest class",
			cfg:  ScaleConfig{Apps: 1, Weeks: 1, Interval: time.Hour, Seed: 1},
			want: FleetConfig{Smooth: 1, Weeks: 1, Interval: time.Hour, Seed: 1},
		},
		{
			name: "case-study proportions",
			cfg: ScaleConfig{Apps: 26, Mix: Mix{Spiky: 2, Bursty: 8, Smooth: 16},
				Weeks: 4, Interval: 5 * time.Minute, Seed: 2006},
			want: FleetConfig{Spiky: 2, Bursty: 8, Smooth: 16, Weeks: 4, Interval: 5 * time.Minute, Seed: 2006},
		},
		{
			name: "remainder distributed to largest fractions",
			cfg:  ScaleConfig{Apps: 10, Mix: Mix{Spiky: 1, Bursty: 1, Smooth: 1}, Weeks: 1, Interval: time.Hour},
			want: FleetConfig{Spiky: 4, Bursty: 3, Smooth: 3, Weeks: 1, Interval: time.Hour},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.cfg.FleetConfig()
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("FleetConfig() = %+v, want %+v", got, tt.want)
			}
			if total := got.Spiky + got.Bursty + got.Smooth + got.Batch; total != tt.cfg.Apps {
				t.Errorf("counts sum to %d, want %d", total, tt.cfg.Apps)
			}
		})
	}
}

func TestScaleFleetDeterministicAndSized(t *testing.T) {
	cfg := ScaleConfig{Apps: 64, Weeks: 1, Interval: time.Hour, Seed: 2006}
	a, err := ScaleFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 64 {
		t.Fatalf("got %d traces, want 64", len(a))
	}
	if a[0].Len() != 168 {
		t.Fatalf("got %d samples, want 168", a[0].Len())
	}
	for i := range a {
		if a[i].AppID != b[i].AppID {
			t.Fatalf("trace %d ID drifted: %s vs %s", i, a[i].AppID, b[i].AppID)
		}
		for j, v := range a[i].Samples {
			if v != b[i].Samples[j] {
				t.Fatalf("trace %s sample %d drifted", a[i].AppID, j)
			}
		}
	}
}

func TestScaleConfigValidation(t *testing.T) {
	good := ScaleConfig{Apps: 10, Weeks: 1, Interval: time.Hour, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name  string
		cfg   ScaleConfig
		field string
	}{
		{"no apps", ScaleConfig{Weeks: 1, Interval: time.Hour}, "Apps"},
		{"too many apps", ScaleConfig{Apps: MaxScaleApps + 1, Weeks: 1, Interval: time.Hour}, "Apps"},
		{"no weeks", ScaleConfig{Apps: 10, Interval: time.Hour}, "Weeks"},
		{"too many weeks", ScaleConfig{Apps: 10, Weeks: 1000, Interval: time.Hour}, "Weeks"},
		{"zero interval", ScaleConfig{Apps: 10, Weeks: 1}, "Interval"},
		{"non-dividing interval", ScaleConfig{Apps: 10, Weeks: 1, Interval: 7 * time.Hour}, "Interval"},
		{"sub-minute interval", ScaleConfig{Apps: 10, Weeks: 1, Interval: time.Second}, "Interval"},
		{"nan weight", ScaleConfig{Apps: 10, Weeks: 1, Interval: time.Hour,
			Mix: Mix{Spiky: math.NaN(), Smooth: 1}}, "Mix.Spiky"},
		{"negative weight", ScaleConfig{Apps: 10, Weeks: 1, Interval: time.Hour,
			Mix: Mix{Bursty: -1, Smooth: 1}}, "Mix.Bursty"},
		{"inf weight", ScaleConfig{Apps: 10, Weeks: 1, Interval: time.Hour,
			Mix: Mix{Batch: math.Inf(1)}}, "Mix.Batch"},
		// A non-zero mix whose only weight is invalid leaves nothing to
		// apportion: both the weight and the mix itself are reported.
		{"zero effective sum", ScaleConfig{Apps: 10, Weeks: 1, Interval: time.Hour,
			Mix: Mix{Spiky: -2}}, "Mix"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if err == nil {
				t.Fatal("Validate() accepted a malformed config")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a FieldError: %v", err)
			}
			if !scaleHasField(err, tt.field) {
				t.Errorf("no FieldError for %q in %v", tt.field, err)
			}
		})
	}
}

// scaleHasField reports whether a (possibly joined) error contains a
// FieldError for the field.
func scaleHasField(err error, field string) bool {
	var fe *FieldError
	if errors.As(err, &fe) && fe.Field == field {
		return true
	}
	type unwrapper interface{ Unwrap() []error }
	if u, ok := err.(unwrapper); ok {
		for _, e := range u.Unwrap() {
			if scaleHasField(e, field) {
				return true
			}
		}
	}
	return false
}
