// Package workload generates synthetic enterprise workload demand traces.
//
// The paper's case study uses four weeks of five-minute CPU demand
// measurements for 26 applications of a large enterprise order-entry
// system. That data is proprietary, so this package substitutes a
// seeded, deterministic generator that reproduces the character the
// paper reports (Figure 6):
//
//   - interactive diurnal shape with a business-hours peak,
//   - a pronounced weekday/weekend pattern,
//   - multiplicative lognormal measurement noise, and
//   - heavy-tailed demand bursts of varying duration, so that for many
//     applications the top few percent of demands are several times the
//     remaining demands.
//
// Every algorithm in R-Opus consumes only the empirical trace, so
// matching this character exercises the same code paths and decision
// structure as the original data.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ropus/internal/trace"
)

// AppProfile parameterizes the synthetic demand generator for one
// application workload.
type AppProfile struct {
	// ID is the application identifier used for the generated trace.
	ID string

	// BaseCPU is the overnight / idle demand level in CPUs.
	BaseCPU float64
	// PeakCPU is the business-hours demand plateau in CPUs (before
	// noise and bursts).
	PeakCPU float64
	// PeakHour is the hour of day (0..24) at which the diurnal shape
	// peaks, e.g. 14.0 for mid-afternoon.
	PeakHour float64
	// BusinessWidth is the half-width, in hours, of the raised-cosine
	// business-hours bump.
	BusinessWidth float64
	// WeekendFactor scales the diurnal bump on Saturdays and Sundays
	// (day-of-week indexes 5 and 6); 0 means weekends are base load only.
	WeekendFactor float64

	// NoiseSigma is the σ of multiplicative lognormal noise applied to
	// every sample.
	NoiseSigma float64

	// BurstsPerWeek is the expected number of demand bursts per week.
	BurstsPerWeek float64
	// BurstScale and BurstAlpha parameterize the Pareto-distributed
	// burst amplitude: a burst adds scale * pareto(alpha) * PeakCPU of
	// extra demand. Smaller alpha means heavier tails.
	BurstScale float64
	BurstAlpha float64
	// BurstCap bounds the burst multiple: the extra demand added by a
	// single burst never exceeds BurstCap * PeakCPU. It keeps a single
	// Pareto draw from dominating the fleet.
	BurstCap float64
	// BurstMinDur and BurstMaxDur bound the burst duration; durations
	// are drawn log-uniformly between them.
	BurstMinDur time.Duration
	BurstMaxDur time.Duration
	// BurstRepeatMaxDays makes bursts business-like: each burst repeats
	// at the same time of day for 1..BurstRepeatMaxDays consecutive
	// days (uniformly drawn). Zero or one means one-off bursts.
	BurstRepeatMaxDays int

	// GrowthPerWeek is a slow multiplicative demand trend: every
	// sample is scaled by (1 + GrowthPerWeek)^weekIndex. It models the
	// paper's observation that demands "change slowly (e.g., over
	// several months)" and exercises the forecasting path. It must be
	// greater than -1; zero means a stationary workload.
	GrowthPerWeek float64
}

// FieldError pinpoints one invalid field of a profile, so a hand-edited
// JSON fleet specification fails with the exact field and reason rather
// than a generic message. Use errors.As to recover it from Validate's
// (possibly joined) error.
type FieldError struct {
	// Profile is the profile's ID ("" when the ID itself is missing).
	Profile string
	// Field is the Go field name, matching the JSON key up to casing.
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what the field violated.
	Reason string
}

// Error implements the error interface.
func (e *FieldError) Error() string {
	id := e.Profile
	if id == "" {
		id = "(unnamed)"
	}
	return fmt.Sprintf("workload: profile %s: %s = %v: %s", id, e.Field, e.Value, e.Reason)
}

// Validate checks the profile parameters. Every violation is reported —
// the returned error joins one FieldError per invalid field — so a bad
// profile can be fixed in one pass. NaN and infinite values are
// rejected everywhere: they would silently poison the generated traces
// and everything downstream of them.
func (p AppProfile) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &FieldError{Profile: p.ID, Field: field, Value: value, Reason: reason})
	}
	// finite reports (and records) non-finite float fields; further
	// range checks on a non-finite field are skipped as redundant.
	finite := func(field string, v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad(field, v, "must be a finite number")
			return false
		}
		return true
	}

	if p.ID == "" {
		errs = append(errs, &FieldError{Field: "ID", Value: "", Reason: "profile needs an ID"})
	}
	baseOK := finite("BaseCPU", p.BaseCPU)
	if baseOK && p.BaseCPU < 0 {
		bad("BaseCPU", p.BaseCPU, "must be >= 0")
	}
	if finite("PeakCPU", p.PeakCPU) && baseOK && p.PeakCPU < p.BaseCPU {
		bad("PeakCPU", p.PeakCPU, fmt.Sprintf("must be >= BaseCPU (%v)", p.BaseCPU))
	}
	if finite("PeakHour", p.PeakHour) && (p.PeakHour < 0 || p.PeakHour >= 24) {
		bad("PeakHour", p.PeakHour, "must be in [0,24)")
	}
	if finite("BusinessWidth", p.BusinessWidth) && p.BusinessWidth <= 0 {
		bad("BusinessWidth", p.BusinessWidth, "must be > 0")
	}
	if finite("WeekendFactor", p.WeekendFactor) && (p.WeekendFactor < 0 || p.WeekendFactor > 1) {
		bad("WeekendFactor", p.WeekendFactor, "must be in [0,1]")
	}
	if finite("NoiseSigma", p.NoiseSigma) && p.NoiseSigma < 0 {
		bad("NoiseSigma", p.NoiseSigma, "must be >= 0")
	}
	burstsOK := finite("BurstsPerWeek", p.BurstsPerWeek)
	if burstsOK && p.BurstsPerWeek < 0 {
		bad("BurstsPerWeek", p.BurstsPerWeek, "must be >= 0")
	}
	if burstsOK && p.BurstsPerWeek > 0 {
		if finite("BurstScale", p.BurstScale) && p.BurstScale <= 0 {
			bad("BurstScale", p.BurstScale, "must be > 0 when bursts are enabled")
		}
		if finite("BurstAlpha", p.BurstAlpha) && p.BurstAlpha <= 0 {
			bad("BurstAlpha", p.BurstAlpha, "must be > 0 when bursts are enabled")
		}
		if finite("BurstCap", p.BurstCap) && p.BurstCap <= 0 {
			bad("BurstCap", p.BurstCap, "must be > 0 when bursts are enabled")
		}
		if p.BurstMinDur <= 0 {
			bad("BurstMinDur", p.BurstMinDur, "must be > 0 when bursts are enabled")
		} else if p.BurstMaxDur < p.BurstMinDur {
			bad("BurstMaxDur", p.BurstMaxDur, fmt.Sprintf("must be >= BurstMinDur (%v)", p.BurstMinDur))
		}
	}
	if p.BurstRepeatMaxDays < 0 {
		bad("BurstRepeatMaxDays", p.BurstRepeatMaxDays, "must be >= 0")
	}
	if finite("GrowthPerWeek", p.GrowthPerWeek) && p.GrowthPerWeek <= -1 {
		bad("GrowthPerWeek", p.GrowthPerWeek, "must be > -1")
	}
	return errors.Join(errs...)
}

// Generate produces a demand trace of the given number of weeks at the
// given measurement interval. The same (profile, weeks, interval, seed)
// always produces the identical trace.
func (p AppProfile) Generate(weeks int, interval time.Duration, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if weeks <= 0 {
		return nil, fmt.Errorf("workload: %s: weeks %d <= 0", p.ID, weeks)
	}
	if interval <= 0 || (24*time.Hour)%interval != 0 {
		return nil, fmt.Errorf("workload: %s: bad interval %v", p.ID, interval)
	}

	rng := rand.New(rand.NewSource(seed))
	slotsPerDay := int(24 * time.Hour / interval)
	n := weeks * 7 * slotsPerDay
	samples := make([]float64, n)

	// Deterministic diurnal + weekly baseline with lognormal noise.
	for i := range samples {
		day := i / slotsPerDay % 7
		hour := float64(i%slotsPerDay) / float64(slotsPerDay) * 24
		level := p.BaseCPU + (p.PeakCPU-p.BaseCPU)*p.diurnal(hour, day)
		noise := math.Exp(rng.NormFloat64() * p.NoiseSigma)
		samples[i] = level * noise
	}

	// Superimpose heavy-tailed bursts.
	if p.BurstsPerWeek > 0 {
		nBursts := poisson(rng, p.BurstsPerWeek*float64(weeks))
		for b := 0; b < nBursts; b++ {
			start := p.burstStart(rng, n, slotsPerDay)
			durSlots := p.burstSlots(rng, interval)
			extra := math.Min(p.BurstScale*pareto(rng, p.BurstAlpha), p.BurstCap) * p.PeakCPU
			repeats := 1
			if p.BurstRepeatMaxDays > 1 {
				repeats = 1 + rng.Intn(p.BurstRepeatMaxDays)
			}
			for rep := 0; rep < repeats; rep++ {
				dayStart := start + rep*slotsPerDay
				for j := dayStart; j < dayStart+durSlots && j < n; j++ {
					samples[j] += extra
				}
			}
		}
	}

	// Apply the slow weekly growth trend last so it scales bursts too.
	if p.GrowthPerWeek != 0 {
		slotsPerWeek := 7 * slotsPerDay
		for i := range samples {
			samples[i] *= math.Pow(1+p.GrowthPerWeek, float64(i/slotsPerWeek))
		}
	}

	return trace.New(p.ID, interval, samples)
}

// diurnal returns the 0..1 shape factor for the given hour of day and
// day of week (0=Monday ... 6=Sunday by convention; days 5 and 6 are the
// weekend).
func (p AppProfile) diurnal(hour float64, day int) float64 {
	// Distance to the peak hour on the 24h circle.
	d := math.Abs(hour - p.PeakHour)
	if d > 12 {
		d = 24 - d
	}
	shape := 0.0
	if d < p.BusinessWidth {
		shape = 0.5 * (1 + math.Cos(math.Pi*d/p.BusinessWidth))
	}
	if day >= 5 {
		shape *= p.WeekendFactor
	}
	return shape
}

// burstStart draws a burst start index biased toward business hours by
// rejection sampling against the diurnal shape: demand surges in an
// interactive enterprise workload coincide with user activity, which is
// also what keeps the per-(week,slot) resource access statistics
// meaningful. A small floor keeps night-time bursts possible but rare.
func (p AppProfile) burstStart(rng *rand.Rand, n, slotsPerDay int) int {
	const floor = 0.05
	for tries := 0; tries < 64; tries++ {
		i := rng.Intn(n)
		day := i / slotsPerDay % 7
		hour := float64(i%slotsPerDay) / float64(slotsPerDay) * 24
		if rng.Float64() < floor+(1-floor)*p.diurnal(hour, day) {
			return i
		}
	}
	return rng.Intn(n)
}

// burstSlots draws a burst duration log-uniformly in
// [BurstMinDur, BurstMaxDur] and converts it to whole slots (>= 1).
func (p AppProfile) burstSlots(rng *rand.Rand, interval time.Duration) int {
	lo := math.Log(float64(p.BurstMinDur))
	hi := math.Log(float64(p.BurstMaxDur))
	dur := time.Duration(math.Exp(lo + rng.Float64()*(hi-lo)))
	slots := int(dur / interval)
	if slots < 1 {
		slots = 1
	}
	return slots
}

// pareto draws from a Pareto distribution with x_m = 1 and the given
// shape alpha, i.e. values >= 1 with tail P(X > x) = x^-alpha. The draw
// is capped at 50 to keep single samples from dominating an entire fleet.
func pareto(rng *rand.Rand, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := math.Pow(u, -1/alpha)
	return math.Min(v, 50)
}

// poisson draws a Poisson-distributed count with the given mean using
// inversion by sequential search; fine for the small means used here.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// For large means, fall back to a normal approximation.
	if mean > 100 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
