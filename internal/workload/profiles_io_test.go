package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestProfilesRoundTrip(t *testing.T) {
	in := []AppProfile{validProfile()}
	in[0].GrowthPerWeek = 0.05
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("%d profiles", len(out))
	}
	if out[0] != in[0] {
		t.Errorf("round trip changed the profile:\n in: %+v\nout: %+v", in[0], out[0])
	}
}

func TestWriteProfilesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, nil); err == nil {
		t.Error("empty list accepted")
	}
	bad := validProfile()
	bad.ID = ""
	if err := WriteProfiles(&buf, []AppProfile{bad}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestReadProfilesErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{name: "not json", in: "zz"},
		{name: "empty list", in: "[]"},
		{name: "bad duration", in: `[{"id":"a","peakCpu":1,"peakHour":1,"businessWidthHours":1,"burstMinDur":"??"}]`},
		{name: "invalid profile", in: `[{"id":"a"}]`},
		{
			name: "duplicate ids",
			in: `[{"id":"a","peakCpu":1,"peakHour":1,"businessWidthHours":1},
			      {"id":"a","peakCpu":1,"peakHour":1,"businessWidthHours":1}]`,
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadProfiles(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadProfiles should fail")
			}
		})
	}
}

func TestFleetFromProfiles(t *testing.T) {
	profiles := []AppProfile{validProfile()}
	second := validProfile()
	second.ID = "app-02"
	profiles = append(profiles, second)

	set, err := FleetFromProfiles(profiles, 1, time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].AppID != "app-01" || set[1].AppID != "app-02" {
		t.Fatalf("unexpected set %v", set.IDs())
	}
	// Deterministic and per-app distinct.
	again, err := FleetFromProfiles(profiles, 1, time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		for j := range set[i].Samples {
			if set[i].Samples[j] != again[i].Samples[j] {
				t.Fatal("FleetFromProfiles not deterministic")
			}
		}
	}
	same := true
	for j := range set[0].Samples {
		if set[0].Samples[j] != set[1].Samples[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("identical profiles produced identical samples — sub-seeds not applied")
	}

	if _, err := FleetFromProfiles(nil, 1, time.Hour, 5); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := FleetFromProfiles(profiles, 0, time.Hour, 5); err == nil {
		t.Error("zero weeks accepted")
	}
}
