package serve

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/lease"
	"ropus/internal/telemetry"
)

// fleetManager builds a manager on a shared state dir with fast fleet
// timers, registering its metrics so tests can assert steal/adopt
// counters.
func fleetManager(t *testing.T, dir, instance string, mutate func(*Config)) (*Manager, *telemetry.Registry) {
	t.Helper()
	cfg := Config{
		StateDir:     dir,
		Instance:     instance,
		Workers:      1,
		ScanInterval: 50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	reg := telemetry.NewRegistry()
	m, err := NewManager(cfg, telemetry.New(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	return m, reg
}

// TestFleetPeerSeesRemoteCompletion: two instances share a state dir;
// a job submitted to (and run by) instance A becomes queryable on
// instance B — same state, same result hash, attributed to A.
func TestFleetPeerSeesRemoteCompletion(t *testing.T) {
	dir := t.TempDir()
	a, _ := fleetManager(t, dir, "alpha", nil)
	startManager(t, a)
	st, _, err := a.Submit(JobSpec{Kind: KindTranslate, TracesCSV: fleetCSV(t, 4, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, a, st.ID, StateDone)
	if want.Instance != "alpha" {
		t.Errorf("completing instance %q, want alpha", want.Instance)
	}

	b, _ := fleetManager(t, dir, "beta", nil)
	startManager(t, b)
	waitFor(t, "peer to adopt the finished job", func() bool {
		got, ok := b.Job(st.ID)
		return ok && got.State == StateDone
	})
	got, _ := b.Job(st.ID)
	if got.ResultHash != want.ResultHash || string(got.Result) != string(want.Result) {
		t.Errorf("peer result diverged: %s vs %s", got.ResultHash, want.ResultHash)
	}
	if got.Instance != "alpha" {
		t.Errorf("peer attributes the job to %q, want alpha", got.Instance)
	}
}

// TestFleetPeerAdoptsQueuedJob: a job admitted by a stopped-scheduler
// instance (persisted spec, never dispatched, lease never taken) is
// picked up and completed by a peer — queue-level work sharing.
func TestFleetPeerAdoptsQueuedJob(t *testing.T) {
	dir := t.TempDir()
	a, _ := fleetManager(t, dir, "alpha", nil)
	b, breg := fleetManager(t, dir, "beta", nil)
	startManager(t, b)
	// a is never started: the spec lands on disk and stays queued until
	// b's scanner (not its initial recovery) adopts it.
	st, _, err := a.Submit(JobSpec{Kind: KindTranslate, TracesCSV: fleetCSV(t, 4, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peer to adopt the queued job", func() bool {
		_, ok := b.Job(st.ID)
		return ok
	})
	done := waitState(t, b, st.ID, StateDone)
	if done.Instance != "beta" || done.Stolen {
		t.Errorf("adopted job: instance=%q stolen=%v, want beta/false", done.Instance, done.Stolen)
	}
	if breg.Snapshot().Counters["serve_jobs_adopted_total"] == 0 {
		t.Error("adoption not counted")
	}
}

// TestFleetStealResumesByteIdentically is the tentpole scenario: alpha
// runs a slow failover sweep and journals checkpoints; beta — with a
// scripted lease.expire fault standing in for alpha's crash — steals
// the job mid-sweep, resumes from alpha's journal in a fresh lease
// epoch, and finishes with the result hash of an undisturbed run.
// Alpha's heartbeat observes the loss and cancels its now-ownerless
// run; alpha's scanner then adopts beta's result.
func TestFleetStealResumesByteIdentically(t *testing.T) {
	csv := fleetCSV(t, 6, 1, 7)
	spec := JobSpec{Kind: KindFailover, TracesCSV: csv}

	// Baseline hash from an undisturbed run on a private state dir.
	base := newTestManager(t, nil)
	startManager(t, base)
	baseSt, _, err := base.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, base, baseSt.ID, StateDone)

	dir := t.TempDir()
	a, areg := fleetManager(t, dir, "alpha", func(c *Config) {
		c.Inject = slowSweeps(250 * time.Millisecond)
		c.LeaseTTL = 300 * time.Millisecond // heartbeat every 100ms: fast loss detection
	})
	startManager(t, a)
	st, _, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "alpha to journal a checkpoint", func() bool {
		got, _ := a.Job(st.ID)
		return got.Progress["checkpoint_records_written_total"] >= 1
	})

	b, breg := fleetManager(t, dir, "beta", func(c *Config) {
		c.Inject = faultinject.MustScript(1,
			faultinject.Rule{Point: "lease.expire", Key: "job-" + st.ID})
	})
	startManager(t, b)

	stolen := waitState(t, b, st.ID, StateDone)
	if !stolen.Stolen {
		t.Error("thief's job not marked stolen")
	}
	if stolen.Instance != "beta" {
		t.Errorf("thief instance %q, want beta", stolen.Instance)
	}
	if stolen.ResultHash != want.ResultHash {
		t.Errorf("stolen-and-resumed hash %s != undisturbed %s", stolen.ResultHash, want.ResultHash)
	}
	if string(stolen.Result) != string(want.Result) {
		t.Error("stolen-and-resumed result bytes differ from undisturbed run")
	}
	if breg.Snapshot().Counters["serve_jobs_stolen_total"] == 0 {
		t.Error("steal not counted on the thief")
	}

	// The victim converges: its heartbeat loses the lease, and its
	// scanner folds the thief's result into the local table.
	waitFor(t, "alpha to adopt the thief's result", func() bool {
		got, _ := a.Job(st.ID)
		return got.State == StateDone
	})
	victim, _ := a.Job(st.ID)
	if victim.Instance != "beta" {
		t.Errorf("victim attributes the job to %q, want beta", victim.Instance)
	}
	if victim.ResultHash != want.ResultHash {
		t.Errorf("victim's adopted hash %s != undisturbed %s", victim.ResultHash, want.ResultHash)
	}
	if areg.Snapshot().Counters["serve_lease_lost_total"] == 0 {
		t.Error("lease loss not counted on the victim")
	}

	// Completion cleans up every epoch's journal and the lease file.
	waitFor(t, "checkpoint journals cleaned up", func() bool {
		matches, _ := filepath.Glob(filepath.Join(dir, "ckpt", st.ID+"*.ckpt"))
		return len(matches) == 0
	})
	waitFor(t, "job lease discarded", func() bool {
		// The victim's zombie Release cannot resurrect it either.
		_, status := b.leases.Read("job-" + st.ID)
		return status == lease.StatusAbsent
	})
}

// TestFleetReleasedLeaseReclaimedWithoutTTLWait: a drained instance
// releases its job leases as tombstones; a peer reclaims the job
// immediately (no TTL expiry wait) and completes it from the journal.
func TestFleetReleasedLeaseReclaimedWithoutTTLWait(t *testing.T) {
	csv := fleetCSV(t, 6, 1, 7)
	spec := JobSpec{Kind: KindFailover, TracesCSV: csv}

	base := newTestManager(t, nil)
	startManager(t, base)
	baseSt, _, err := base.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, base, baseSt.ID, StateDone)

	dir := t.TempDir()
	a, _ := fleetManager(t, dir, "alpha", func(c *Config) {
		c.Inject = slowSweeps(250 * time.Millisecond)
		// A long TTL: if reclamation waited for expiry the test would
		// time out, so passing proves the tombstone path.
		c.LeaseTTL = 5 * time.Minute
	})
	ctxStart := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	a.Start(ctx)
	stopA := func() { cancel(); a.Wait() }
	st, _, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "alpha to journal a checkpoint", func() bool {
		got, _ := a.Job(st.ID)
		return got.Progress["checkpoint_records_written_total"] >= 1
	})
	stopA() // drain: the lease is released as a tombstone

	b, _ := fleetManager(t, dir, "beta", nil)
	startManager(t, b)
	final := waitState(t, b, st.ID, StateDone)
	if final.Stolen {
		t.Error("tombstone takeover misreported as a steal")
	}
	if !final.Resumed {
		t.Error("reclaimed job not marked resumed")
	}
	if final.ResultHash != want.ResultHash || string(final.Result) != string(want.Result) {
		t.Errorf("reclaimed result diverged: %s vs %s", final.ResultHash, want.ResultHash)
	}
	if elapsed := time.Since(ctxStart); elapsed > 2*time.Minute {
		t.Errorf("takeover took %v: waited for TTL expiry instead of the tombstone", elapsed)
	}
}
