// Package serve runs the R-Opus planner as a long-running,
// admission-controlled HTTP/JSON service: clients submit planning jobs
// (QoS translation, consolidation, failover analysis, long-term plans),
// the service executes them on a bounded pool of executors backed by
// the shared simulation cache and the retry/checkpoint machinery, and a
// SIGTERM'd server resumes its in-flight sweeps after a restart with
// byte-identical results.
//
// The deployment mode follows the provisioning-system literature the
// paper builds on: a planner in a shared pool is itself a service under
// load, so it needs idempotent submissions, explicit load shedding
// (429 + Retry-After instead of collapse), progress visibility, and a
// drain/resume contract. The service also runs as a fleet: N instances
// sharing one state directory arbitrate job ownership through leases
// (internal/lease), steal each other's jobs after a crash, and resume
// them byte-identically from the checkpoint journal. Admission is
// tenant-aware: per-tenant quotas and weighted deficit-round-robin
// dequeue keep one tenant's burst from starving the rest. See
// docs/SERVING.md for the API and the fleet protocol.
package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/failure"
	"ropus/internal/qos"
	"ropus/internal/scenario"
	"ropus/internal/topology"
	"ropus/internal/trace"
)

// Job kinds, mirroring the CLI subcommands.
const (
	KindTranslate = "translate"
	KindPlace     = "place"
	KindFailover  = "failover"
	KindPlan      = "plan"
)

// Duration marshals as a Go duration string ("30m") and also accepts
// integer nanoseconds, so specs round-trip through JSON unambiguously.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1h30m" strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v := v.(type) {
	case string:
		dur, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("serve: bad duration %q: %w", v, err)
		}
		*d = Duration(dur)
		return nil
	case float64:
		*d = Duration(v)
		return nil
	default:
		return fmt.Errorf("serve: bad duration %v", v)
	}
}

// QoSSpec is the JSON form of a per-application QoS requirement. Its
// defaults mirror the CLI flags.
type QoSSpec struct {
	ULow     float64  `json:"ulow"`
	UHigh    float64  `json:"uhigh"`
	UDegr    float64  `json:"udegr"`
	MPercent float64  `json:"mPercent"`
	TDegr    Duration `json:"tdegr"`
}

// defaultQoS matches the qosFlags defaults of cmd/ropus.
func defaultQoS() QoSSpec {
	return QoSSpec{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: Duration(30 * time.Minute)}
}

// appQoS converts the spec to the domain type.
func (q QoSSpec) appQoS() qos.AppQoS {
	return qos.AppQoS{ULow: q.ULow, UHigh: q.UHigh, UDegr: q.UDegr,
		MPercent: q.MPercent, TDegr: time.Duration(q.TDegr)}
}

// JobSpec is a submitted planning job. Every field that determines the
// result feeds the job key, so resubmitting an identical spec is
// idempotent: it lands on the same job. Omitted fields take the CLI
// defaults before hashing, so an explicit default and an omitted field
// name the same job.
type JobSpec struct {
	// Kind selects the pipeline: translate, place, failover or plan.
	Kind string `json:"kind"`
	// Tenant is the admission class the job is accounted to (weights,
	// quotas, DRR dequeue). It is deliberately excluded from Key: the
	// tenant does not change the result, so two tenants submitting the
	// same spec share one job. Empty means "default". Set from the
	// X-Ropus-Tenant header by the HTTP layer.
	Tenant string `json:"tenant,omitempty"`
	// TracesCSV is the demand history in the trace CSV format (the
	// output of "ropus gen").
	TracesCSV string `json:"tracesCsv"`
	// Theta and Deadline are the pool's CoS2 commitment.
	Theta    float64  `json:"theta,omitempty"`
	Deadline Duration `json:"deadline,omitempty"`
	// ServerCPUs is the per-server CPU count; GASeed seeds the
	// consolidation search. Islands > 1 runs the search as that many
	// deterministic islands with ring migration (0/1 = classic single
	// population).
	ServerCPUs int   `json:"serverCpus,omitempty"`
	GASeed     int64 `json:"gaSeed,omitempty"`
	Islands    int   `json:"islands,omitempty"`
	// PartitionApps > 0 consolidates with the hierarchical pool-of-pools
	// search, capping each sub-pool at this many applications; 0 keeps
	// the flat search (and the pre-hierarchical job keys).
	PartitionApps int `json:"partitionApps,omitempty"`
	// QoS is the normal-mode requirement; FailureQoS the failure-mode
	// one (failover jobs; defaults to QoS).
	QoS        *QoSSpec `json:"qos,omitempty"`
	FailureQoS *QoSSpec `json:"failureQos,omitempty"`
	// ScenariosJSON, for failover jobs, is a scenario DSL document (the
	// -scenarios file's contents): the job additionally sweeps the named
	// correlated-failure scenarios and ranks them by expected revenue at
	// risk. TopologyJSON resolves its domain references.
	ScenariosJSON string `json:"scenariosJson,omitempty"`
	TopologyJSON  string `json:"topologyJson,omitempty"`
	// Plan-only knobs.
	HorizonWeeks int `json:"horizonWeeks,omitempty"`
	StepWeeks    int `json:"stepWeeks,omitempty"`
	PoolServers  int `json:"poolServers,omitempty"`
}

// normalize fills the CLI defaults in place. It must run before Key so
// explicit defaults and omitted fields hash identically.
func (s *JobSpec) normalize() {
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.Theta == 0 {
		s.Theta = 0.6
	}
	if s.Deadline == 0 {
		s.Deadline = Duration(time.Hour)
	}
	if s.ServerCPUs == 0 {
		s.ServerCPUs = 16
	}
	if s.GASeed == 0 {
		s.GASeed = 42
	}
	if s.QoS == nil {
		q := defaultQoS()
		s.QoS = &q
	}
	if s.FailureQoS == nil {
		q := *s.QoS
		s.FailureQoS = &q
	}
	if s.Kind == KindPlan {
		if s.HorizonWeeks == 0 {
			s.HorizonWeeks = 12
		}
		if s.StepWeeks == 0 {
			s.StepWeeks = 4
		}
	}
}

// parse validates the spec and decodes its traces. It is the admission
// gate: anything that would fail the pipeline for structural reasons is
// rejected here with a client error instead of burning an executor.
func (s *JobSpec) parse() (trace.Set, error) {
	switch s.Kind {
	case KindTranslate, KindPlace, KindFailover, KindPlan:
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	if s.TracesCSV == "" {
		return nil, fmt.Errorf("serve: %s job needs tracesCsv", s.Kind)
	}
	if err := validTenant(s.Tenant); err != nil {
		return nil, err
	}
	set, err := trace.ReadCSV(strings.NewReader(s.TracesCSV))
	if err != nil {
		return nil, fmt.Errorf("serve: bad traces: %w", err)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("serve: bad traces: %w", err)
	}
	if err := s.QoS.appQoS().Validate(); err != nil {
		return nil, fmt.Errorf("serve: bad qos: %w", err)
	}
	if err := s.FailureQoS.appQoS().Validate(); err != nil {
		return nil, fmt.Errorf("serve: bad failureQos: %w", err)
	}
	commit := qos.PoolCommitment{Theta: s.Theta, Deadline: time.Duration(s.Deadline)}
	if err := commit.Validate(); err != nil {
		return nil, fmt.Errorf("serve: bad commitment: %w", err)
	}
	if s.Islands < 0 {
		return nil, fmt.Errorf("serve: islands %d < 0", s.Islands)
	}
	if s.PartitionApps < 0 {
		return nil, fmt.Errorf("serve: partitionApps %d < 0", s.PartitionApps)
	}
	if s.ServerCPUs <= 0 {
		return nil, fmt.Errorf("serve: serverCpus %d <= 0", s.ServerCPUs)
	}
	if s.Kind == KindPlan {
		if s.HorizonWeeks <= 0 || s.StepWeeks <= 0 || s.HorizonWeeks%s.StepWeeks != 0 {
			return nil, fmt.Errorf("serve: stepWeeks %d must divide horizonWeeks %d", s.StepWeeks, s.HorizonWeeks)
		}
	}
	if s.ScenariosJSON != "" && s.Kind != KindFailover {
		return nil, fmt.Errorf("serve: scenariosJson is only valid for failover jobs")
	}
	if s.TopologyJSON != "" && s.ScenariosJSON == "" {
		return nil, fmt.Errorf("serve: topologyJson is only meaningful with scenariosJson")
	}
	if _, _, err := s.compileScenarios(); err != nil {
		return nil, err
	}
	return set, nil
}

// compileScenarios decodes and compiles the spec's scenario universe at
// the admission gate, so a malformed document is a 4xx instead of a
// burned executor. It returns (nil, nil, nil) when the spec has none.
func (s *JobSpec) compileScenarios() ([]failure.ScenarioSpec, *failure.Economics, error) {
	if s.ScenariosJSON == "" {
		return nil, nil, nil
	}
	doc, err := scenario.ReadJSON(strings.NewReader(s.ScenariosJSON))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: bad scenarios: %w", err)
	}
	var topo *topology.Topology
	if s.TopologyJSON != "" {
		if topo, err = topology.ReadJSON(strings.NewReader(s.TopologyJSON)); err != nil {
			return nil, nil, fmt.Errorf("serve: bad topology: %w", err)
		}
	}
	specs, err := doc.Compile(topo)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: bad scenarios: %w", err)
	}
	return specs, doc.Economics, nil
}

// Key derives the job's idempotency key: the FNV run hash over every
// result-determining field, the same machinery the CLI binds checkpoint
// journals with. Executor-side knobs (workers, cache size) are
// deliberately excluded, so a job resumes at any parallelism.
func (s *JobSpec) Key(set trace.Set) uint64 {
	h := checkpoint.NewHasher().String("serve." + s.Kind)
	foldQoS(h, *s.QoS)
	foldQoS(h, *s.FailureQoS)
	h.Float(s.Theta).Int(int64(s.Deadline)).Int(int64(s.ServerCPUs)).Int(s.GASeed)
	// The island count changes results only when > 1; folding it in
	// only then keeps keys from pre-island clients (and journals bound
	// to them) stable.
	if s.Islands > 1 {
		h.Int(int64(s.Islands))
	}
	// Likewise the partition cap: folded only when the hierarchical
	// search is actually on, so pre-hierarchical keys stay stable.
	if s.PartitionApps > 0 {
		h.String("partitions").Int(int64(s.PartitionApps))
	}
	h.Int(int64(s.HorizonWeeks)).Int(int64(s.StepWeeks)).Int(int64(s.PoolServers))
	// Scenario and topology documents are folded only when present, so
	// keys (and the journals bound to them) from clients predating the
	// scenario universe stay stable.
	if s.ScenariosJSON != "" {
		h.String("scenarios").String(s.ScenariosJSON)
	}
	if s.TopologyJSON != "" {
		h.String("topology").String(s.TopologyJSON)
	}
	h.Int(int64(len(set)))
	for _, tr := range set {
		h.String(tr.AppID).Int(int64(tr.Interval)).Floats(tr.Samples)
	}
	return h.Sum()
}

// foldQoS mixes a QoS spec into a run hash.
func foldQoS(h *checkpoint.Hasher, q QoSSpec) {
	h.Float(q.ULow).Float(q.UHigh).Float(q.UDegr).Float(q.MPercent).Int(int64(q.TDegr))
}

// validTenant bounds tenant names: they key maps and appear in logs
// and metrics, so they must be short and structurally boring.
func validTenant(name string) error {
	if len(name) > 64 {
		return fmt.Errorf("serve: tenant name longer than 64 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: tenant name %q has invalid character %q", name, r)
		}
	}
	return nil
}

// jobID renders a key as the job's public identifier.
func jobID(key uint64) string { return fmt.Sprintf("%016x", key) }
