package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ropus/internal/telemetry"
)

// maxBodyBytes bounds a submission body; traces are inline CSV, so the
// limit is generous but finite.
const maxBodyBytes = 64 << 20

// Server is the HTTP face of the planning service.
//
//	POST /v1/jobs             submit a JobSpec     202 created / 200 existing /
//	                                               400 invalid / 429 shed / 503 draining
//	                          X-Ropus-Tenant names the admission class
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status, progress counters, result when done
//	GET  /v1/jobs/{id}/events Server-Sent Events stream of status changes
//	GET  /v1/jobs/{id}/trace  Chrome trace_event export of the job's spans
//	GET  /v1/slo              windowed latency quantiles and error-budget burn
//	GET  /metrics             Prometheus text exposition of the serve_* metrics
//	GET  /debug/flight        flight-recorder snapshot (?trace= filters by trace ID)
//	GET  /healthz             liveness and drain state
type Server struct {
	mgr      *Manager
	reg      *telemetry.Registry
	httpSrv  *http.Server
	ln       net.Listener
	draining atomic.Bool

	requestsC *telemetry.Counter
}

// New builds a server (and its manager) listening on addr. Pass addr
// "127.0.0.1:0" in tests and read the bound address from Addr.
func New(addr string, cfg Config) (*Server, error) {
	reg := telemetry.NewRegistry()
	hooks := telemetry.New(reg, nil)
	mgr, err := NewManager(cfg, hooks)
	if err != nil {
		return nil, err
	}
	s := &Server{
		mgr:       mgr,
		reg:       reg,
		requestsC: hooks.Counter("serve_http_requests_total"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.httpSrv = &http.Server{Handler: s.count(mux)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Manager exposes the job manager (tests and the CLI status line).
func (s *Server) Manager() *Manager { return s.mgr }

// Run serves until ctx is cancelled, then drains: admission flips to
// 503, in-flight jobs stop at their next checkpoint boundary and are
// journaled, and open connections get DrainTimeout to finish. A drained
// shutdown returns nil; the state directory lets a restarted server
// resume where this one stopped.
func (s *Server) Run(ctx context.Context) error {
	s.mgr.Start(ctx)
	errc := make(chan error, 1)
	go func() {
		if err := s.httpSrv.Serve(s.ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.mgr.SetDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.mgr.cfg.DrainTimeout)
	defer cancel()
	err := s.httpSrv.Shutdown(shutdownCtx)
	s.mgr.Wait()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// count wraps the mux with the request counter.
func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requestsC.Inc()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	// The header wins over a tenant embedded in the spec body: the
	// header is what a gateway stamps after authentication.
	if tenant := r.Header.Get("X-Ropus-Tenant"); tenant != "" {
		spec.Tenant = tenant
	}
	status, created, err := s.mgr.Submit(spec)
	switch {
	case err == nil:
		code := http.StatusOK
		if created {
			code = http.StatusAccepted
		}
		writeJSON(w, code, status)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		var overloaded *OverloadedError
		if errors.As(err, &overloaded) {
			secs := int(overloaded.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.Jobs()
	// The list view drops result payloads: a job's full result (which
	// can embed the entire report) is served by its own endpoint.
	for i := range jobs {
		jobs[i].Result = nil
		jobs[i].Progress = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	status, ok := s.mgr.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleJobEvents streams the job's status as Server-Sent Events: one
// "status" event per observed change (state transitions and progress-
// counter movement), then a terminal event and EOF once the job
// finishes. Clients watching a job stop polling GET /v1/jobs/{id}; the
// stream also survives the job being executed by a peer instance,
// because the scanner folds remote completions into the local table.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, ok := s.mgr.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(s.mgr.cfg.SSEPoll)
	defer ticker.Stop()
	var last []byte
	for {
		status.Result = nil // results can be huge; the job endpoint serves them
		data, err := json.Marshal(status)
		if err == nil && string(data) != string(last) {
			last = data
			fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
			flusher.Flush()
		}
		if status.State == StateDone || status.State == StateFailed {
			fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", status.State)
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		status, ok = s.mgr.Job(id)
		if !ok {
			return
		}
	}
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.mgr.Job(id); !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	tracer := s.mgr.Tracer(id)
	if tracer == nil {
		// Recovered-from-disk jobs ran in a previous process; their spans
		// are gone.
		writeError(w, http.StatusNotFound, "no trace recorded for this job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tracer.WriteChromeTrace(w)
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	// Sync so the JSON snapshot and the /metrics gauges agree.
	writeJSON(w, http.StatusOK, s.mgr.SLO().Sync(s.reg))
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.mgr.Flight().WriteJSON(w, "debug", r.URL.Query().Get("trace"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mgr.SLO().Sync(s.reg) // refresh the slo_* gauges before rendering
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheusText(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, running := s.mgr.QueueDepths()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"instance": s.mgr.Instance(),
		"draining": s.draining.Load(),
		"queued":   queued,
		"running":  running,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
