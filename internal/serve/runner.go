package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/core"
	"ropus/internal/flight"
	"ropus/internal/obslog"
	"ropus/internal/placement"
	"ropus/internal/planner"
	"ropus/internal/qos"
	"ropus/internal/report"
	"ropus/internal/resilience"
	"ropus/internal/telemetry"
)

// runJob executes one job and returns its JSON result document.
// Results are deterministic functions of the spec: struct-ordered JSON
// over the byte-identical pipeline outputs, so an interrupted-and-
// resumed job hashes the same as an uninterrupted one. The caller
// discards the result when ctx was cancelled during the run.
func (m *Manager) runJob(ctx context.Context, job *Job) (json.RawMessage, error) {
	spec := job.Spec
	set, err := spec.parse()
	if err != nil {
		return nil, err
	}
	h := telemetry.New(job.reg, job.tracer)
	// Correlate everything the job does: spans carry the job ID as trace
	// ID (and land in the flight recorder as they end), log records are
	// stamped from the context, and per-scenario sim timings are mirrored
	// into the server's SLO windows as they are observed.
	ctx = telemetry.WithTrace(ctx, telemetry.TraceContext{TraceID: job.ID})
	ctx = obslog.Into(ctx, m.logger)
	job.tracer.OnEnd(flight.SpanSink(m.flight))
	job.reg.OnObserve("failure_scenario_seconds", func(v float64) {
		m.slo.Observe(SeriesScenarioSim, v)
	})

	var journal *checkpoint.Journal
	if spec.Kind == KindFailover || spec.Kind == KindPlan {
		journal, err = m.openJournal(job, spec.Key(set), h)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	normal := spec.QoS.appQoS()
	failure := spec.FailureQoS.appQoS()

	switch spec.Kind {
	case KindTranslate:
		fw, err := m.framework(spec, h, resilience.Policy{}, nil)
		if err != nil {
			return nil, err
		}
		reqs := core.Requirements{Default: qos.Requirement{Normal: normal, Failure: normal}}
		t, err := fw.Translate(ctx, set, reqs)
		if err != nil {
			return nil, err
		}
		apps := make([]report.AppSummary, len(t.Normal))
		for i, p := range t.Normal {
			apps[i] = report.AppSummary{
				ID:                  p.AppID,
				Breakpoint:          p.P,
				PeakDemandCPU:       p.DMax,
				CappedDemandCPU:     p.DNewMax,
				MaxAllocationCPU:    p.MaxAllocation(),
				CapReductionPercent: p.MaxCapReduction() * 100,
			}
		}
		return marshalResult(apps)

	case KindPlace:
		fw, err := m.framework(spec, h, resilience.Policy{}, nil)
		if err != nil {
			return nil, err
		}
		reqs := core.Requirements{Default: qos.Requirement{Normal: normal, Failure: normal}}
		t, err := fw.Translate(ctx, set, reqs)
		if err != nil {
			return nil, err
		}
		c, err := fw.Consolidate(ctx, t)
		if err != nil {
			return nil, err
		}
		sum, err := report.Summarize(&core.Report{Translation: t, Consolidation: c})
		if err != nil {
			return nil, err
		}
		return marshalResult(sum)

	case KindFailover:
		fw, err := m.framework(spec, h, m.cfg.Retry, journal)
		if err != nil {
			return nil, err
		}
		reqs := core.Requirements{Default: qos.Requirement{Normal: normal, Failure: failure}}
		var r *core.Report
		if spec.ScenariosJSON != "" {
			// parse() already compiled the documents at admission; a
			// failure here would be a programming error, not a client one.
			specs, econ, err := spec.compileScenarios()
			if err != nil {
				return nil, err
			}
			r, err = fw.RunScenarios(ctx, set, reqs, specs, econ)
			if err != nil {
				return nil, err
			}
		} else {
			r, err = fw.Run(ctx, set, reqs)
			if err != nil {
				return nil, err
			}
		}
		sum, err := report.Summarize(r)
		if err != nil {
			return nil, err
		}
		return marshalResult(sum)

	case KindPlan:
		fw, err := m.framework(spec, h, resilience.Policy{}, nil)
		if err != nil {
			return nil, err
		}
		cfg := planner.Config{
			Framework:    fw,
			Requirements: core.Requirements{Default: qos.Requirement{Normal: normal, Failure: normal}},
			HorizonWeeks: spec.HorizonWeeks,
			StepWeeks:    spec.StepWeeks,
			PoolServers:  spec.PoolServers,
			Hooks:        h,
			Retry:        m.cfg.Retry,
			Journal:      journal,
		}
		plan, err := planner.Run(ctx, cfg, set)
		if err != nil {
			return nil, err
		}
		return marshalResult(plan)

	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
}

// openJournal opens the job's checkpoint journal for the current lease
// epoch in resume mode. Re-running the same epoch (a restart that
// re-acquired before anyone bumped the epoch) replays the epoch's own
// file; a stolen or re-leased job replays the newest decodable journal
// of any prior epoch — including the legacy pre-fleet <id>.ckpt — into
// a fresh per-epoch file, so a zombie holder still appending to its old
// epoch can never interleave with this run's journal. A journal the
// decoder rejects is skipped (prior epochs) or discarded and recreated
// (our own): a corrupt checkpoint must cost recomputation, not the job.
func (m *Manager) openJournal(job *Job, key uint64, h telemetry.Hooks) (*checkpoint.Journal, error) {
	own := m.ckptPath(job.ID, job.epoch)
	if _, err := os.Stat(own); err == nil {
		j, err := checkpoint.OpenWith(own, key, true, h, checkpoint.Options{Epoch: job.epoch})
		if err == nil {
			return j, nil
		}
		m.hooks.Counter("serve_checkpoint_discarded_total").Inc()
		os.Remove(own)
	}
	for _, prev := range m.ckptCandidates(job.ID, job.epoch) {
		j, err := checkpoint.OpenWith(own, key, true, h,
			checkpoint.Options{Epoch: job.epoch, ResumeFrom: prev})
		if err == nil {
			return j, nil
		}
		// Undecodable or wrong-run prior journal: try the next-older
		// epoch. Leave the file in place — its owner may still be
		// mid-append and a later scan may find it whole.
		m.hooks.Counter("serve_checkpoint_skipped_total").Inc()
		os.Remove(own)
	}
	return checkpoint.OpenWith(own, key, false, h, checkpoint.Options{Epoch: job.epoch})
}

// specGA builds the job's genetic search configuration.
func specGA(spec JobSpec) placement.GAConfig {
	ga := placement.DefaultGAConfig(spec.GASeed)
	ga.Islands = spec.Islands
	return ga
}

// framework builds the per-job framework on the server's shared
// simulation cache and executor-level worker bound.
func (m *Manager) framework(spec JobSpec, h telemetry.Hooks, retry resilience.Policy, j *checkpoint.Journal) (*core.Framework, error) {
	cfg := core.Config{
		Commitment:           qos.PoolCommitment{Theta: spec.Theta, Deadline: time.Duration(spec.Deadline)},
		ServerCPUs:           spec.ServerCPUs,
		ServerCapacityPerCPU: 1,
		GA:                   specGA(spec),
		Tolerance:            0.1,
		Hooks:                h,
		Inject:               m.cfg.Inject,
		Workers:              m.cfg.Workers,
		Retry:                retry,
		Journal:              j,
		PartitionApps:        spec.PartitionApps,
	}
	if m.cache != nil {
		cfg.Cache = m.cache
	} else {
		cfg.CacheBytes = -1
	}
	return core.New(cfg)
}

// marshalResult encodes a result document once; the same bytes are
// stored, served and hashed.
func marshalResult(v any) (json.RawMessage, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: encode result: %w", err)
	}
	return data, nil
}
