package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"log/slog"

	"ropus/internal/faultinject"
	"ropus/internal/flight"
	"ropus/internal/obslog"
	"ropus/internal/telemetry"
)

// syncBuffer is a goroutine-safe log sink for asserting on the
// service's structured log stream.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestJobProvenance is the end-to-end observability acceptance test: a
// seeded plan job submitted through the HTTP surface must yield (a) a
// trace export whose every span carries the job's trace ID, (b) log
// records with the same trace ID at each pipeline stage, (c) a non-zero
// windowed p99 for submit→complete on /v1/slo, and (d) the job's
// correlated events in the flight recorder — plus a /metrics exposition
// that survives the promlint validator.
func TestJobProvenance(t *testing.T) {
	logs := &syncBuffer{}
	logger := obslog.New(logs, obslog.Options{Level: slog.LevelDebug, Deterministic: true})
	_, base, _ := startServer(t, Config{StateDir: t.TempDir(), Workers: 1, Logger: logger})

	csv := fleetCSV(t, 4, 3, 5)
	resp, st := postJob(t, base, JobSpec{Kind: KindPlan, TracesCSV: csv, HorizonWeeks: 2, StepWeeks: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitHTTPState(t, base, st.ID, StateDone)

	// (a) Every span in the Chrome trace export is attributed to the job.
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	getJSON(t, base+"/v1/jobs/"+st.ID+"/trace", &tr)
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace export has no spans")
	}
	spanNames := make(map[string]bool)
	for _, ev := range tr.TraceEvents {
		if got, _ := ev.Args["trace_id"].(string); got != st.ID {
			t.Errorf("span %q trace_id %v, want %s", ev.Name, ev.Args["trace_id"], st.ID)
		}
		spanNames[ev.Name] = true
	}
	for _, want := range []string{"planner.run", "planner.step", "core.translate", "placement.consolidate"} {
		if !spanNames[want] {
			t.Errorf("trace export missing span %q (have %v)", want, spanNames)
		}
	}

	// (b) The pipeline stages logged under the same trace ID.
	stages := make(map[string]bool)
	for _, line := range logs.Lines() {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		if rec["trace_id"] == st.ID {
			if msg, ok := rec["msg"].(string); ok {
				stages[msg] = true
			}
		}
	}
	for _, want := range []string{"serve.job.submitted", "planner.run", "planner.step", "core.translate", "serve.job.finished"} {
		if !stages[want] {
			t.Errorf("no log record %q carrying trace_id %s (have %v)", want, st.ID, stages)
		}
	}

	// A failover job feeds the scenario_sim series (plans run no failure
	// sweeps), so the SLO snapshot below covers all three series.
	foResp, fo := postJob(t, base, JobSpec{Kind: KindFailover, TracesCSV: csv})
	if foResp.StatusCode != http.StatusAccepted {
		t.Fatalf("failover submit: %d", foResp.StatusCode)
	}
	waitHTTPState(t, base, fo.ID, StateDone)

	// (c) The SLO snapshot reports a populated submit→complete window.
	var snap struct {
		Series []struct {
			Series string  `json:"series"`
			Count  int     `json:"window_count"`
			P99    float64 `json:"p99_seconds"`
		} `json:"series"`
		Objectives []struct {
			Name string `json:"name"`
			Good int64  `json:"good_total"`
			Bad  int64  `json:"bad_total"`
		} `json:"objectives"`
	}
	getJSON(t, base+"/v1/slo", &snap)
	series := make(map[string]bool)
	for _, s := range snap.Series {
		series[s.Series] = true
		if s.Series == SeriesSubmitComplete && (s.Count == 0 || s.P99 <= 0) {
			t.Errorf("submit_complete window count=%d p99=%v, want both non-zero", s.Count, s.P99)
		}
	}
	for _, want := range []string{SeriesSubmitAccept, SeriesSubmitComplete, SeriesScenarioSim} {
		if !series[want] {
			t.Errorf("SLO snapshot missing series %q", want)
		}
	}
	scored := int64(0)
	for _, o := range snap.Objectives {
		scored += o.Good + o.Bad
	}
	if scored == 0 {
		t.Error("no objective scored any observation")
	}

	// (d) The flight recorder correlates the job's events and spans.
	var dump flight.Dump
	getJSON(t, base+"/debug/flight?trace="+st.ID, &dump)
	if len(dump.Events) == 0 {
		t.Fatal("flight recorder holds no events for the job")
	}
	kinds := make(map[string]bool)
	for _, ev := range dump.Events {
		if ev.TraceID != st.ID {
			t.Errorf("flight event %q trace %q leaked into the filtered dump", ev.Name, ev.TraceID)
		}
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"event", "span", "log"} {
		if !kinds[want] {
			t.Errorf("flight dump missing kind %q (have %v)", want, kinds)
		}
	}

	// The full exposition parses cleanly under the promlint validator.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := telemetry.LintPrometheusText(mresp.Body); err != nil {
		t.Errorf("/metrics fails lint: %v", err)
	}
}

// TestJobProvenanceDeterministic: the same seeded spec yields the same
// trace ID (= job ID) on a fresh server, so provenance survives
// re-submission elsewhere.
func TestJobProvenanceDeterministic(t *testing.T) {
	csv := fleetCSV(t, 3, 1, 5)
	spec := JobSpec{Kind: KindTranslate, TracesCSV: csv}
	ids := make([]string, 2)
	for i := range ids {
		m := newTestManager(t, nil)
		st, _, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	if ids[0] != ids[1] {
		t.Errorf("same spec produced different trace IDs: %s vs %s", ids[0], ids[1])
	}
}

// TestFailedJobDumpsFlight: a job killed by injected scenario faults
// must leave a flight-recorder dump named after it, filtered to its
// trace, in the state directory.
func TestFailedJobDumpsFlight(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Config{
		StateDir: dir,
		Workers:  1,
		// Every scenario errors: the sweep degrades to all-inconclusive,
		// which fails the job deterministically.
		Inject: faultinject.MustScript(1, faultinject.Rule{Point: "failure.scenario"}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	startManager(t, m)
	st, _, err := m.Submit(JobSpec{Kind: KindFailover, TracesCSV: fleetCSV(t, 4, 1, 5)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateFailed)

	data, err := os.ReadFile(filepath.Join(dir, "flight", st.ID+".json"))
	if err != nil {
		t.Fatalf("no flight dump for failed job: %v", err)
	}
	var dump flight.Dump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("flight dump not JSON: %v", err)
	}
	if dump.Reason != "job_failed" || dump.TraceID != st.ID {
		t.Errorf("dump reason=%q trace=%q, want job_failed/%s", dump.Reason, dump.TraceID, st.ID)
	}
	if len(dump.Events) == 0 {
		t.Error("flight dump is empty")
	}
	for _, ev := range dump.Events {
		if ev.TraceID != st.ID {
			t.Errorf("foreign trace %q in the job's dump", ev.TraceID)
		}
	}
}
