package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPartitionAppsKeyCompat: partitionApps is folded into the
// idempotency key only when hierarchical placement is actually on, so
// keys (and the journals bound to them) from clients predating the
// field stay stable.
func TestPartitionAppsKeyCompat(t *testing.T) {
	csv := fleetCSV(t, 4, 1, 5)
	spec := JobSpec{Kind: KindPlace, TracesCSV: csv}
	spec.normalize()
	set, err := spec.parse()
	if err != nil {
		t.Fatal(err)
	}
	base := spec.Key(set)

	zero := spec
	zero.PartitionApps = 0
	if got := zero.Key(set); got != base {
		t.Errorf("partitionApps 0 changed the key: %016x vs %016x", got, base)
	}
	hier := spec
	hier.PartitionApps = 2
	hierKey := hier.Key(set)
	if hierKey == base {
		t.Error("partitionApps 2 did not change the key")
	}
	other := spec
	other.PartitionApps = 3
	if got := other.Key(set); got == hierKey || got == base {
		t.Errorf("partitionApps 3 key %016x collides", got)
	}
}

// TestPartitionAppsValidation: a negative partition bound is rejected
// at admission, not at run time.
func TestPartitionAppsValidation(t *testing.T) {
	m := newTestManager(t, nil)
	spec := JobSpec{Kind: KindPlace, TracesCSV: fleetCSV(t, 3, 1, 5), PartitionApps: -1}
	if _, _, err := m.Submit(spec); err == nil || !strings.Contains(err.Error(), "partitionApps") {
		t.Errorf("negative partitionApps: got %v", err)
	}
}

// TestPlaceJobHierarchical: a place job with partitionApps set runs the
// hierarchical pipeline end to end and still produces a plan summary
// that accounts for every application.
func TestPlaceJobHierarchical(t *testing.T) {
	m := newTestManager(t, nil)
	startManager(t, m)
	spec := JobSpec{Kind: KindPlace, TracesCSV: fleetCSV(t, 6, 1, 5), PartitionApps: 2, GASeed: 7}
	st, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if len(done.Result) == 0 {
		t.Fatalf("no result for %s", done.ID)
	}
	var sum struct {
		Applications int `json:"applications"`
		Servers      []struct {
			AppIDs []string `json:"appIds"`
		} `json:"servers"`
	}
	if err := json.Unmarshal(done.Result, &sum); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	placed := 0
	for _, s := range sum.Servers {
		placed += len(s.AppIDs)
	}
	if sum.Applications != 6 || placed != 6 {
		t.Errorf("hierarchical place summary accounts for %d of %d apps:\n%s",
			placed, sum.Applications, done.Result)
	}
}
