package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/telemetry"
)

// slowSweeps injects a per-scenario delay so failover jobs stay running
// long enough for admission tests to observe them. Delays do not change
// results.
func slowSweeps(delay time.Duration) faultinject.Injector {
	return faultinject.MustScript(1, faultinject.Rule{Point: "failure.scenario", Delay: delay})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedsWhenQueueFull: with one slow executor and a
// one-deep queue, a third distinct job is shed with a 429-shaped
// OverloadedError carrying a sane Retry-After, and the shed job is not
// admitted (no lost-vs-ghost ambiguity).
func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.QueueDepth = 1
		c.MaxConcurrent = 1
		c.Inject = slowSweeps(300 * time.Millisecond)
	})
	startManager(t, m)

	csv := fleetCSV(t, 4, 1, 5)
	spec := func(seed int64) JobSpec {
		return JobSpec{Kind: KindFailover, TracesCSV: csv, GASeed: seed}
	}
	first, _, err := m.Submit(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool {
		st, _ := m.Job(first.ID)
		return st.State == StateRunning
	})
	if _, _, err := m.Submit(spec(2)); err != nil {
		t.Fatalf("second job should queue: %v", err)
	}
	_, _, err = m.Submit(spec(3))
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("third job: got %v, want OverloadedError", err)
	}
	if overloaded.RetryAfter < time.Second || overloaded.RetryAfter > time.Minute {
		t.Errorf("Retry-After %v outside [1s, 60s]", overloaded.RetryAfter)
	}
	if len(m.Jobs()) != 2 {
		t.Errorf("shed job leaked into the table: %d jobs", len(m.Jobs()))
	}
	// Resubmitting an already-admitted spec is never shed: idempotency
	// outranks admission.
	if _, created, err := m.Submit(spec(2)); err != nil || created {
		t.Errorf("dedup resubmission: created=%v err=%v", created, err)
	}
}

// TestRetryAfterGaugeExported: the EWMA-driven Retry-After estimate is
// published as the serve_retry_after_seconds gauge from construction
// on, stays inside the advertised [1s, 60s] clamp, and matches what a
// shed submission is told.
func TestRetryAfterGaugeExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, err := NewManager(Config{
		StateDir:   t.TempDir(),
		QueueDepth: 1,
		Workers:    1,
	}, telemetry.New(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	gauge := func() float64 {
		v, ok := reg.Snapshot().Gauges["serve_retry_after_seconds"]
		if !ok {
			t.Fatal("serve_retry_after_seconds gauge not registered")
		}
		return v
	}
	if v := gauge(); v < 1 || v > 60 {
		t.Errorf("initial Retry-After gauge %v outside [1, 60]", v)
	}

	// Fill the queue (the manager is not started, so jobs stay queued)
	// and shed one; the error's estimate and the gauge must agree.
	csv := fleetCSV(t, 3, 1, 5)
	if _, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 1}); err != nil {
		t.Fatal(err)
	}
	_, _, err = m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 2})
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("second submit: got %v, want OverloadedError", err)
	}
	if got, want := gauge(), overloaded.RetryAfter.Seconds(); got != want {
		t.Errorf("gauge %v disagrees with shed Retry-After %v", got, want)
	}
}

// TestRetryAfterTracksInFlightElapsed (regression): the Retry-After
// estimate is recomputed at response time from live state. The EWMA
// only moves at job completions, so during a sustained burst of slow
// jobs it goes stale and under-advertises; the age of the longest
// in-flight job is a live lower bound on the true duration and must
// dominate the estimate once it exceeds the EWMA.
func TestRetryAfterTracksInFlightElapsed(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.QueueDepth = 1
		c.MaxConcurrent = 1
	})
	csv := fleetCSV(t, 3, 1, 5)
	if _, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 1}); err != nil {
		t.Fatal(err)
	}

	// Stale-EWMA scenario: completed jobs averaged ~1s, but the job
	// occupying the executor has already been running for 20s and has
	// completed nothing. The manager is not started, so the fake
	// in-flight entry is entirely under test control.
	m.mu.Lock()
	m.avgSeconds = 1
	m.running = 1
	m.runningSince["in-flight"] = time.Now().Add(-20 * time.Second)
	m.mu.Unlock()

	_, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 2})
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("got %v, want OverloadedError", err)
	}
	// With the stale EWMA alone the estimate would be ~3s (1s x 3
	// waves); the 20s in-flight elapsed must pull it to >= 20s.
	if overloaded.RetryAfter < 20*time.Second {
		t.Errorf("Retry-After %v advertises the stale EWMA; want >= 20s from in-flight elapsed", overloaded.RetryAfter)
	}

	// And it keeps growing while the burst continues: the estimate is
	// recomputed per response, not cached at enqueue time.
	m.mu.Lock()
	m.runningSince["in-flight"] = time.Now().Add(-40 * time.Second)
	m.mu.Unlock()
	_, _, err = m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 3})
	if !errors.As(err, &overloaded) {
		t.Fatalf("got %v, want OverloadedError", err)
	}
	if overloaded.RetryAfter < 40*time.Second {
		t.Errorf("second shed Retry-After %v did not track the still-running job", overloaded.RetryAfter)
	}
}

// TestClassLimitSchedulesAroundBusyClass: a saturated class must not
// starve other classes — a translate job overtakes queued failover work.
func TestClassLimitSchedulesAroundBusyClass(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.MaxConcurrent = 2
		c.ClassLimits = map[string]int{KindFailover: 1}
		c.Inject = slowSweeps(300 * time.Millisecond)
	})
	startManager(t, m)

	csv := fleetCSV(t, 4, 1, 5)
	fo1, _, err := m.Submit(JobSpec{Kind: KindFailover, TracesCSV: csv, GASeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first failover running", func() bool {
		st, _ := m.Job(fo1.ID)
		return st.State == StateRunning
	})
	fo2, _, err := m.Submit(JobSpec{Kind: KindFailover, TracesCSV: csv, GASeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv})
	if err != nil {
		t.Fatal(err)
	}
	// The translate job finishes while failover #2 is still class-blocked
	// behind #1.
	trSt := waitState(t, m, tr.ID, StateDone)
	fo2St, _ := m.Job(fo2.ID)
	if fo2St.State == StateDone && fo2St.Finished.Before(*trSt.Finished) {
		t.Error("class-blocked failover finished before the translate that should have overtaken it")
	}
	waitState(t, m, fo1.ID, StateDone)
	waitState(t, m, fo2.ID, StateDone)
}

// TestDrainStopsAdmission: after SetDraining every submission fails
// with ErrDraining, including previously unseen specs.
func TestDrainStopsAdmission(t *testing.T) {
	m := newTestManager(t, nil)
	csv := fleetCSV(t, 3, 1, 5)
	st, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv})
	if err != nil {
		t.Fatal(err)
	}
	m.SetDraining()
	if _, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 9}); !errors.Is(err, ErrDraining) {
		t.Errorf("draining submit: got %v, want ErrDraining", err)
	}
	// Idempotent lookups of known jobs still answer during the drain.
	if got, created, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv}); err != nil || created || got.ID != st.ID {
		t.Errorf("draining dedup: id=%s created=%v err=%v", got.ID, created, err)
	}
}

// TestDrainMarksInterrupted: cancelling the manager context mid-sweep
// marks the running job interrupted without persisting a result, and a
// manager recovered from the same state dir re-queues it and finishes
// with the same result hash as an undisturbed run.
func TestDrainMarksInterrupted(t *testing.T) {
	dir := t.TempDir()
	csv := fleetCSV(t, 6, 1, 7)
	spec := JobSpec{Kind: KindFailover, TracesCSV: csv}

	// Baseline on its own state dir: the uninterrupted result hash.
	base := newTestManager(t, nil)
	startManager(t, base)
	baseSt, _, err := base.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, base, baseSt.ID, StateDone)

	// Interrupted run: slow sweeps, cancel once the first scenario has
	// been journaled.
	m1, err := NewManager(Config{StateDir: dir, Workers: 1, Inject: slowSweeps(250 * time.Millisecond)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m1.Start(ctx)
	st, _, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != baseSt.ID {
		t.Fatalf("same spec hashed differently across managers: %s vs %s", st.ID, baseSt.ID)
	}
	waitFor(t, "first checkpoint record", func() bool {
		got, _ := m1.Job(st.ID)
		return got.Progress["checkpoint_records_written_total"] >= 1
	})
	cancel()
	m1.Wait()
	interrupted, _ := m1.Job(st.ID)
	if interrupted.State != StateInterrupted && interrupted.State != StateDone {
		t.Fatalf("after drain: state %q", interrupted.State)
	}

	// Restart on the same state dir: the job is re-queued (Resumed) and
	// completes byte-identically.
	m2, err := NewManager(Config{StateDir: dir, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	startManager(t, m2)
	recovered, ok := m2.Job(st.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if interrupted.State == StateInterrupted && !recovered.Resumed {
		t.Error("interrupted job not marked Resumed after recovery")
	}
	final := waitState(t, m2, st.ID, StateDone)
	if final.ResultHash != want.ResultHash {
		t.Errorf("resumed result hash %s differs from uninterrupted %s", final.ResultHash, want.ResultHash)
	}
	if string(final.Result) != string(want.Result) {
		t.Error("resumed result bytes differ from uninterrupted run")
	}
}
