package serve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// testScenarioDoc is a scenario universe over the 4-server pool a
// 4-app fleet consolidates onto (srv-01..srv-04), with a topology
// grouping the odd and even servers into two zones.
const testScenarioDoc = `{
  "economics": {"defaultRevenuePerHour": 100, "defaultPenaltyPerHour": 10},
  "scenarios": [
    {"name": "zone-loss", "kind": "domain-loss", "domain": "zone-a", "probability": 0.05},
    {"name": "cascade", "kind": "cascade", "servers": ["srv-01"], "overloadFactor": 0.5, "probability": 0.01},
    {"name": "maintenance", "kind": "maintenance", "servers": ["srv-02"], "theta": 0.4}
  ]
}`

const testTopologyDoc = `{
  "domains": [
    {"id": "zone-a", "kind": "zone", "servers": ["srv-01", "srv-03"]},
    {"id": "zone-b", "kind": "zone", "servers": ["srv-02", "srv-04"]}
  ]
}`

// TestScenarioFailoverJob runs a scenario-file failover job end to end
// through the manager: the result document must carry the ranked
// scenario universe alongside the single-failure sweep.
func TestScenarioFailoverJob(t *testing.T) {
	m := newTestManager(t, nil)
	startManager(t, m)
	csv := fleetCSV(t, 4, 3, 5)
	st, created, err := m.Submit(JobSpec{
		Kind: KindFailover, TracesCSV: csv,
		ScenariosJSON: testScenarioDoc, TopologyJSON: testTopologyDoc,
	})
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	done := waitState(t, m, st.ID, StateDone)
	var sum struct {
		Failures  []map[string]any `json:"failures"`
		Scenarios []struct {
			Name                  string  `json:"name"`
			Probability           float64 `json:"probability"`
			ExpectedRevenueAtRisk float64 `json:"expectedRevenueAtRisk"`
		} `json:"scenarios"`
		Total float64 `json:"totalExpectedRevenueAtRiskPerHour"`
	}
	if err := json.Unmarshal(done.Result, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Error("scenario job dropped the single-failure sweep")
	}
	if len(sum.Scenarios) != 3 {
		t.Fatalf("result has %d scenarios, want 3", len(sum.Scenarios))
	}
	names := make(map[string]bool)
	var total float64
	for i, sc := range sum.Scenarios {
		names[sc.Name] = true
		total += sc.ExpectedRevenueAtRisk
		if i > 0 && sc.ExpectedRevenueAtRisk > sum.Scenarios[i-1].ExpectedRevenueAtRisk {
			t.Errorf("scenarios not ranked: %q above %q", sc.Name, sum.Scenarios[i-1].Name)
		}
	}
	for _, want := range []string{"zone-loss", "cascade", "maintenance"} {
		if !names[want] {
			t.Errorf("result missing scenario %q", want)
		}
	}
	if total != sum.Total {
		t.Errorf("scenario expectations sum to %v, total reports %v", total, sum.Total)
	}

	// The same spec resubmitted is the same job; dropping the scenario
	// document is a different job (and a stable legacy key).
	again, created, err := m.Submit(JobSpec{
		Kind: KindFailover, TracesCSV: csv,
		ScenariosJSON: testScenarioDoc, TopologyJSON: testTopologyDoc,
	})
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v", created, err)
	}
	if again.ID != st.ID {
		t.Errorf("scenario job not idempotent: %s vs %s", again.ID, st.ID)
	}
	plain, _, err := m.Submit(JobSpec{Kind: KindFailover, TracesCSV: csv})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID == st.ID {
		t.Error("scenario document leaked out of the job key")
	}
}

// TestScenarioSpecValidation: malformed scenario/topology documents are
// client errors at admission, not executor failures.
func TestScenarioSpecValidation(t *testing.T) {
	m := newTestManager(t, nil)
	csv := fleetCSV(t, 4, 1, 5)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"scenarios on translate", JobSpec{Kind: KindTranslate, TracesCSV: csv, ScenariosJSON: testScenarioDoc}},
		{"topology without scenarios", JobSpec{Kind: KindFailover, TracesCSV: csv, TopologyJSON: testTopologyDoc}},
		{"garbage scenarios", JobSpec{Kind: KindFailover, TracesCSV: csv, ScenariosJSON: "not json"}},
		{"garbage topology", JobSpec{Kind: KindFailover, TracesCSV: csv,
			ScenariosJSON: testScenarioDoc, TopologyJSON: "not json"}},
		{"domain without topology", JobSpec{Kind: KindFailover, TracesCSV: csv,
			ScenariosJSON: `{"scenarios":[{"name":"z","kind":"domain-loss","domain":"zone-a"}]}`}},
		{"unknown kind", JobSpec{Kind: KindFailover, TracesCSV: csv,
			ScenariosJSON: `{"scenarios":[{"name":"z","kind":"meteor"}]}`}},
	}
	for _, tc := range cases {
		if _, _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if got, _ := m.QueueDepths(); got != 0 {
		t.Errorf("rejected submissions left %d jobs queued", got)
	}
}

// TestValueShedLowestFirst: with tenant values configured, overload
// sheds the lowest-revenue tenant at its proportional threshold while
// the high-value tenant keeps the full queue depth — and values trump
// weights for the shed order.
func TestValueShedLowestFirst(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.QueueDepth = 4
		// Weights would favour "batch"; values must override for shedding.
		c.TenantWeights = map[string]int{"batch": 4, "revenue": 1}
		c.TenantValues = map[string]float64{"revenue": 1000, "batch": 250}
	})
	csv := fleetCSV(t, 3, 1, 5)
	// Threshold for batch is 4 * 250/1000 = 1: one queued job sheds it.
	if _, err := submitTenant(t, m, "revenue", 1, csv); err != nil {
		t.Fatal(err)
	}
	_, err := submitTenant(t, m, "batch", 2, csv)
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("batch at threshold: got %v, want OverloadedError", err)
	}
	if overloaded.Tenant != "batch" || !strings.Contains(overloaded.Reason, "value share") {
		t.Errorf("shed error: tenant=%q reason=%q", overloaded.Tenant, overloaded.Reason)
	}
	// The high-value tenant still has the full depth.
	for seed := int64(3); seed <= 5; seed++ {
		if _, err := submitTenant(t, m, "revenue", seed, csv); err != nil {
			t.Fatalf("high-value tenant shed below the full depth: %v", err)
		}
	}
	_, err = submitTenant(t, m, "revenue", 6, csv)
	if !errors.As(err, &overloaded) {
		t.Fatalf("full queue: got %v, want OverloadedError", err)
	}
	if overloaded.Reason != "queue full" {
		t.Errorf("full-queue reason %q", overloaded.Reason)
	}
}
