package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// State directory layout (shared by every fleet instance):
//
//	<state>/jobs/<id>.json          submitted spec (written at admission)
//	<state>/results/<id>.json       result document (written at completion)
//	<state>/ckpt/<id>.e<N>.ckpt     checkpoint journal of lease epoch N
//	<state>/ckpt/<id>.ckpt          legacy pre-fleet journal (epoch 0)
//	<state>/leases/job-<id>.lease   job ownership lease
//
// A job with a spec but no result is unfinished: the scanner adopts it
// and any instance that wins the lease runs it. Journals are written
// per lease epoch so a zombie holder's appends land in its own file and
// can never interleave with the thief's journal; a new epoch resumes by
// replaying the highest decodable prior epoch, so the re-run is
// byte-identical to an uninterrupted one.

func (m *Manager) specPath(id string) string {
	return filepath.Join(m.cfg.StateDir, "jobs", id+".json")
}

func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.cfg.StateDir, "results", id+".json")
}

// ckptPath names the journal of one lease epoch. Epoch zero is the
// pre-fleet layout, kept readable so journals written before the lease
// protocol existed still resume.
func (m *Manager) ckptPath(id string, epoch uint64) string {
	if epoch == 0 {
		return filepath.Join(m.cfg.StateDir, "ckpt", id+".ckpt")
	}
	return filepath.Join(m.cfg.StateDir, "ckpt", fmt.Sprintf("%s.e%d.ckpt", id, epoch))
}

// ckptCandidates lists the job's journals from prior epochs, newest
// epoch first — the resume order for a stealing instance. The current
// epoch's own file is excluded.
func (m *Manager) ckptCandidates(id string, below uint64) []string {
	matches, _ := filepath.Glob(filepath.Join(m.cfg.StateDir, "ckpt", id+"*.ckpt"))
	type cand struct {
		epoch uint64
		path  string
	}
	var cands []cand
	for _, path := range matches {
		name := filepath.Base(path)
		rest, ok := strings.CutPrefix(name, id)
		if !ok {
			continue
		}
		var epoch uint64
		switch {
		case rest == ".ckpt":
			epoch = 0
		case strings.HasPrefix(rest, ".e") && strings.HasSuffix(rest, ".ckpt"):
			n, err := strconv.ParseUint(rest[2:len(rest)-len(".ckpt")], 10, 64)
			if err != nil {
				continue
			}
			epoch = n
		default:
			continue
		}
		if epoch >= below {
			continue
		}
		cands = append(cands, cand{epoch, path})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].epoch > cands[j].epoch })
	paths := make([]string, len(cands))
	for i, c := range cands {
		paths[i] = c.path
	}
	return paths
}

// removeCkpts drops every epoch's journal for a finished job.
func (m *Manager) removeCkpts(id string) {
	matches, _ := filepath.Glob(filepath.Join(m.cfg.StateDir, "ckpt", id+"*.ckpt"))
	for _, path := range matches {
		os.Remove(path)
	}
}

// resultDoc is the persisted form of a finished job.
type resultDoc struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"` // done or failed
	// Instance records which fleet member completed the job.
	Instance   string          `json:"instance,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	ResultHash string          `json:"resultHash,omitempty"`
}

// writeAtomic lands data at path via a temp file, fsync and rename, so
// a crash mid-write leaves either the old content or the new — never a
// torn file that recovery would misread.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// persistSpec makes an admitted job durable before Submit acknowledges
// it: an accepted job must survive a crash, and peers adopt it from
// this file.
func (m *Manager) persistSpec(id string, spec JobSpec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("serve: encode spec: %w", err)
	}
	if err := writeAtomic(m.specPath(id), data); err != nil {
		return fmt.Errorf("serve: persist spec: %w", err)
	}
	return nil
}

// persistResultLocked records a finished job. A write failure is
// counted, not fatal: the in-memory result still serves status queries,
// and a restart simply re-runs the job. Concurrent writers (a zombie
// racing the thief) are harmless: results are deterministic functions
// of the spec, so both write the same bytes, and writeAtomic's rename
// makes each replacement whole.
func (m *Manager) persistResultLocked(job *Job) {
	doc := resultDoc{
		ID:         job.ID,
		Kind:       job.Spec.Kind,
		State:      job.State,
		Instance:   job.Instance,
		Error:      job.Err,
		Result:     job.Result,
		ResultHash: job.ResultHash,
	}
	data, err := json.Marshal(doc)
	if err == nil {
		err = writeAtomic(m.resultPath(job.ID), data)
	}
	if err != nil {
		m.hooks.Counter("serve_state_write_errors_total").Inc()
		return
	}
	// The finished journals have served their purpose; drop every
	// epoch's file so the state directory does not accumulate one
	// journal per historical job attempt.
	m.removeCkpts(job.ID)
}

// scanDisk reconciles the job table with the shared state directory.
// On the initial call (construction) unfinished jobs are re-queued
// marked Resumed, exactly like the single-instance recover of old. On
// scanner ticks it adopts jobs a peer admitted — finished ones become
// queryable, unfinished ones are enqueued locally and the job lease
// decides who actually runs them. A spec that no longer hashes to its
// filename is quarantined rather than trusted: it was torn or tampered
// with.
func (m *Manager) scanDisk(initial bool) error {
	entries, err := os.ReadDir(filepath.Join(m.cfg.StateDir, "jobs"))
	if err != nil {
		if initial {
			return fmt.Errorf("serve: recover: %w", err)
		}
		m.hooks.Counter("serve_state_read_errors_total").Inc()
		return err
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)

	adopted := false
	for _, id := range ids {
		m.mu.Lock()
		_, known := m.jobs[id]
		m.mu.Unlock()
		if known {
			continue
		}
		data, err := os.ReadFile(m.specPath(id))
		if err != nil {
			if initial {
				return fmt.Errorf("serve: recover %s: %w", id, err)
			}
			continue // raced a quarantine or an external cleanup
		}
		var spec JobSpec
		if uerr := json.Unmarshal(data, &spec); uerr != nil {
			m.quarantine(id)
			continue
		}
		spec.normalize()
		set, perr := spec.parse()
		if perr != nil || jobID(spec.Key(set)) != id {
			m.quarantine(id)
			continue
		}
		job := &Job{ID: id, Spec: spec, Tenant: spec.Tenant, Submitted: modTime(m.specPath(id))}
		if doc, ok := m.loadResult(id); ok && (doc.State == StateDone || doc.State == StateFailed) {
			job.State = doc.State
			job.Err = doc.Error
			job.Result = doc.Result
			job.ResultHash = doc.ResultHash
			job.Instance = doc.Instance
			job.remote = doc.Instance != "" && doc.Instance != m.cfg.Instance
			job.Finished = modTime(m.resultPath(id))
		} else {
			job.State = StateQueued
			job.Resumed = initial
		}
		m.mu.Lock()
		if _, dup := m.jobs[id]; dup {
			// Raced a local Submit between our read and now; the table
			// entry from Submit wins.
			m.mu.Unlock()
			continue
		}
		m.jobs[id] = job
		m.order = append(m.order, id)
		if job.State == StateQueued {
			m.enqueueLocked(job)
			if !initial {
				adopted = true
				m.adoptedC.Inc()
				m.flight.Record("event", "serve.job.adopted", id, map[string]any{"kind": spec.Kind, "tenant": job.Tenant})
			}
		}
		m.mu.Unlock()
	}
	if adopted {
		m.kick()
	}
	return nil
}

// loadResult reads a persisted result document; a missing or unreadable
// file means the job is unfinished.
func (m *Manager) loadResult(id string) (resultDoc, bool) {
	data, err := os.ReadFile(m.resultPath(id))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			m.hooks.Counter("serve_state_read_errors_total").Inc()
		}
		return resultDoc{}, false
	}
	var doc resultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		m.hooks.Counter("serve_state_read_errors_total").Inc()
		return resultDoc{}, false
	}
	return doc, true
}

// quarantine sidelines an unreadable spec file so recovery is not
// wedged on it forever. The event is surfaced three ways: the legacy
// corrupt-spec counter, the quarantine counter the fleet dashboards
// watch, and a structured warning carrying the quarantined path so an
// operator can find the sidelined file without grepping the state dir.
func (m *Manager) quarantine(id string) {
	quarantined := m.specPath(id) + ".corrupt"
	m.hooks.Counter("serve_state_corrupt_specs_total").Inc()
	m.hooks.Counter("serve_state_quarantined_total").Inc()
	err := os.Rename(m.specPath(id), quarantined)
	attrs := []slog.Attr{
		slog.String("job_id", id),
		slog.String("quarantined_path", quarantined),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	m.logger.LogAttrs(context.Background(), slog.LevelWarn, "serve.state.quarantined", attrs...)
}

func modTime(path string) time.Time {
	if info, err := os.Stat(path); err == nil {
		return info.ModTime()
	}
	return time.Time{}
}
