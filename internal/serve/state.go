package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// State directory layout:
//
//	<state>/jobs/<id>.json     submitted spec (written at admission)
//	<state>/results/<id>.json  result document (written at completion)
//	<state>/ckpt/<id>.ckpt     checkpoint journal (failover/plan jobs)
//
// A job with a spec but no result is unfinished: recover re-queues it,
// and its journal (if any) replays the units the interrupted attempt
// completed, so the re-run is byte-identical to an uninterrupted one.

func (m *Manager) specPath(id string) string {
	return filepath.Join(m.cfg.StateDir, "jobs", id+".json")
}

func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.cfg.StateDir, "results", id+".json")
}

func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.cfg.StateDir, "ckpt", id+".ckpt")
}

// resultDoc is the persisted form of a finished job.
type resultDoc struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	State      string          `json:"state"` // done or failed
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	ResultHash string          `json:"resultHash,omitempty"`
}

// writeAtomic lands data at path via a temp file, fsync and rename, so
// a crash mid-write leaves either the old content or the new — never a
// torn file that recovery would misread.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// persistSpec makes an admitted job durable before Submit acknowledges
// it: an accepted job must survive a crash.
func (m *Manager) persistSpec(id string, spec JobSpec) error {
	data, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("serve: encode spec: %w", err)
	}
	if err := writeAtomic(m.specPath(id), data); err != nil {
		return fmt.Errorf("serve: persist spec: %w", err)
	}
	return nil
}

// persistResultLocked records a finished job. A write failure is
// counted, not fatal: the in-memory result still serves status queries,
// and a restart simply re-runs the job.
func (m *Manager) persistResultLocked(job *Job) {
	doc := resultDoc{
		ID:         job.ID,
		Kind:       job.Spec.Kind,
		State:      job.State,
		Error:      job.Err,
		Result:     job.Result,
		ResultHash: job.ResultHash,
	}
	data, err := json.Marshal(doc)
	if err == nil {
		err = writeAtomic(m.resultPath(job.ID), data)
	}
	if err != nil {
		m.hooks.Counter("serve_state_write_errors_total").Inc()
		return
	}
	// The finished journal has served its purpose; drop it so the state
	// directory does not accumulate one journal per historical job.
	os.Remove(m.ckptPath(job.ID))
}

// recover rebuilds the job table from the state directory. Finished
// jobs come back queryable; unfinished ones are re-queued (marked
// Resumed) in deterministic ID order. A spec that no longer hashes to
// its filename is quarantined rather than trusted: it was torn or
// tampered with.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(filepath.Join(m.cfg.StateDir, "jobs"))
	if err != nil {
		return fmt.Errorf("serve: recover: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)

	for _, id := range ids {
		data, err := os.ReadFile(m.specPath(id))
		if err != nil {
			return fmt.Errorf("serve: recover %s: %w", id, err)
		}
		var spec JobSpec
		if uerr := json.Unmarshal(data, &spec); uerr != nil {
			m.quarantine(id)
			continue
		}
		spec.normalize()
		set, perr := spec.parse()
		if perr != nil || jobID(spec.Key(set)) != id {
			m.quarantine(id)
			continue
		}
		job := &Job{ID: id, Spec: spec, Submitted: modTime(m.specPath(id))}
		if doc, ok := m.loadResult(id); ok && (doc.State == StateDone || doc.State == StateFailed) {
			job.State = doc.State
			job.Err = doc.Error
			job.Result = doc.Result
			job.ResultHash = doc.ResultHash
			job.Finished = modTime(m.resultPath(id))
		} else {
			job.State = StateQueued
			job.Resumed = true
			m.queue = append(m.queue, id)
		}
		m.jobs[id] = job
		m.order = append(m.order, id)
	}
	m.queuedG.Set(float64(len(m.queue)))
	return nil
}

// loadResult reads a persisted result document; a missing or unreadable
// file means the job is unfinished.
func (m *Manager) loadResult(id string) (resultDoc, bool) {
	data, err := os.ReadFile(m.resultPath(id))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			m.hooks.Counter("serve_state_read_errors_total").Inc()
		}
		return resultDoc{}, false
	}
	var doc resultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		m.hooks.Counter("serve_state_read_errors_total").Inc()
		return resultDoc{}, false
	}
	return doc, true
}

// quarantine sidelines an unreadable spec file so recovery is not
// wedged on it forever, and counts the event.
func (m *Manager) quarantine(id string) {
	m.hooks.Counter("serve_state_corrupt_specs_total").Inc()
	os.Rename(m.specPath(id), m.specPath(id)+".corrupt")
}

func modTime(path string) time.Time {
	if info, err := os.Stat(path); err == nil {
		return info.ModTime()
	}
	return time.Time{}
}
