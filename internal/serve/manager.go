package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/telemetry"
)

// Job states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// OverloadedError sheds a submission that would overflow the queue.
// RetryAfter estimates when a slot should free up.
type OverloadedError struct {
	Queued     int
	QueueDepth int
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("serve: queue full (%d/%d), retry after %s", e.Queued, e.QueueDepth, e.RetryAfter)
}

// Config parameterizes a Manager (and the Server wrapping it).
type Config struct {
	// StateDir persists submitted specs, results and checkpoint
	// journals; a server restarted on the same directory resumes its
	// unfinished jobs (required).
	StateDir string
	// QueueDepth bounds the number of queued (admitted, not yet
	// running) jobs; submissions beyond it are shed with an
	// OverloadedError. <= 0 selects 64.
	QueueDepth int
	// MaxConcurrent bounds how many jobs execute at once across all
	// classes. <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// ClassLimits bounds per-kind concurrency ("failover": 1 keeps the
	// expensive sweeps from monopolizing the executors). A kind absent
	// or <= 0 is limited only by MaxConcurrent.
	ClassLimits map[string]int
	// Workers is the per-job failure-sweep worker count (core.Config
	// semantics: 0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// CacheBytes bounds the simulation cache shared by every job the
	// server runs (0 = default bound, negative disables).
	CacheBytes int64
	// Retry is the self-healing policy applied inside failover and plan
	// jobs (resilience.Policy semantics).
	Retry resilience.Policy
	// DrainTimeout bounds the graceful shutdown: how long Serve waits
	// for in-flight jobs to reach a checkpoint boundary and for open
	// connections to finish. <= 0 selects 30s.
	DrainTimeout time.Duration
	// Inject is the test-only fault injector threaded into every job's
	// framework; nil injects nothing.
	Inject faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Job is one admitted planning job. Fields are guarded by the owning
// Manager's mutex; JobStatus snapshots them for handlers.
type Job struct {
	ID    string
	Spec  JobSpec
	State string
	Err   string
	// Resumed marks a job re-queued by a restart; its checkpoint
	// journal replays the finished units of the interrupted attempt.
	Resumed bool
	// Result holds the finished job's JSON result document.
	Result     json.RawMessage
	ResultHash string
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	// reg collects the job's own telemetry while it runs; its counters
	// become the status endpoint's progress block.
	reg *telemetry.Registry
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	// Progress exposes the job's telemetry counters (scenarios swept,
	// checkpoint records written, GA generations, ...) while it runs
	// and after it finishes.
	Progress   map[string]int64 `json:"progress,omitempty"`
	Result     json.RawMessage  `json:"result,omitempty"`
	ResultHash string           `json:"resultHash,omitempty"`
	Submitted  time.Time        `json:"submitted"`
	Started    *time.Time       `json:"started,omitempty"`
	Finished   *time.Time       `json:"finished,omitempty"`
}

// Manager owns the job table, the admission decisions and the executor
// pool. It is the HTTP-free core of the service, so tests drive it
// directly.
type Manager struct {
	cfg     Config
	cache   *placement.SimCache
	limiter *parallel.Limiter
	hooks   telemetry.Hooks

	submittedC   *telemetry.Counter
	dedupC       *telemetry.Counter
	shedC        *telemetry.Counter
	completedC   *telemetry.Counter
	failedC      *telemetry.Counter
	interruptedC *telemetry.Counter
	queuedG      *telemetry.Gauge
	runningG     *telemetry.Gauge
	jobSeconds   *telemetry.Histogram

	ctx    context.Context
	wg     sync.WaitGroup
	notify chan struct{}

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string // submission order, for listing
	queue        []string // FIFO of queued job IDs
	classRunning map[string]int
	running      int
	avgSeconds   float64 // EWMA job duration, feeds Retry-After
	draining     bool
}

// NewManager builds a manager and recovers any unfinished jobs from the
// state directory. hooks (nil ok) receives the serve_* metrics.
func NewManager(cfg Config, hooks telemetry.Hooks) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	for _, sub := range []string{"jobs", "results", "ckpt"} {
		if err := os.MkdirAll(filepath.Join(cfg.StateDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	h := telemetry.OrNop(hooks)
	m := &Manager{
		cfg:          cfg,
		limiter:      parallel.NewLimiter(cfg.MaxConcurrent),
		hooks:        h,
		submittedC:   h.Counter("serve_jobs_submitted_total"),
		dedupC:       h.Counter("serve_jobs_deduplicated_total"),
		shedC:        h.Counter("serve_jobs_shed_total"),
		completedC:   h.Counter("serve_jobs_completed_total"),
		failedC:      h.Counter("serve_jobs_failed_total"),
		interruptedC: h.Counter("serve_jobs_interrupted_total"),
		queuedG:      h.Gauge("serve_jobs_queued"),
		runningG:     h.Gauge("serve_jobs_running"),
		jobSeconds:   h.Histogram("serve_job_seconds", nil),
		notify:       make(chan struct{}, 1),
		jobs:         make(map[string]*Job),
		classRunning: make(map[string]int),
		avgSeconds:   1, // optimistic prior until real durations arrive
	}
	if cfg.CacheBytes >= 0 {
		m.cache = placement.NewSimCache(cfg.CacheBytes)
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	return m, nil
}

// Start launches the scheduler; ctx cancellation begins the drain:
// dispatch stops, in-flight jobs stop at their next checkpoint boundary
// and are marked interrupted (their journals keep the completed
// prefix), and Wait returns once the executors settle.
func (m *Manager) Start(ctx context.Context) {
	m.ctx = ctx
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-m.notify:
			}
			for m.dispatchOne() {
			}
		}
	}()
	m.kick()
}

// Wait blocks until the scheduler and every executor have returned.
func (m *Manager) Wait() { m.wg.Wait() }

// kick nudges the scheduler without blocking.
func (m *Manager) kick() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// SetDraining flips admission off (Submit fails with ErrDraining).
func (m *Manager) SetDraining() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Submit admits a job. It is idempotent: a spec hashing to a known job
// returns that job with created=false. A full queue sheds the
// submission with an OverloadedError carrying a Retry-After estimate.
func (m *Manager) Submit(spec JobSpec) (JobStatus, bool, error) {
	spec.normalize()
	set, err := spec.parse()
	if err != nil {
		return JobStatus{}, false, err
	}
	id := jobID(spec.Key(set))

	m.mu.Lock()
	defer m.mu.Unlock()
	if job, ok := m.jobs[id]; ok {
		m.dedupC.Inc()
		return m.statusLocked(job), false, nil
	}
	if m.draining {
		return JobStatus{}, false, ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		m.shedC.Inc()
		return JobStatus{}, false, &OverloadedError{
			Queued:     len(m.queue),
			QueueDepth: m.cfg.QueueDepth,
			RetryAfter: m.retryAfterLocked(),
		}
	}
	if err := m.persistSpec(id, spec); err != nil {
		return JobStatus{}, false, err
	}
	job := &Job{ID: id, Spec: spec, State: StateQueued, Submitted: time.Now()}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.queue = append(m.queue, id)
	m.submittedC.Inc()
	m.queuedG.Set(float64(len(m.queue)))
	m.kick()
	return m.statusLocked(job), true, nil
}

// retryAfterLocked estimates how long until a queue slot frees: the
// EWMA job duration scaled by how many jobs stand in line per executor,
// clamped to [1s, 60s] so a misbehaving estimate cannot tell clients to
// hammer the server or to go away for an hour.
func (m *Manager) retryAfterLocked() time.Duration {
	waves := float64(len(m.queue)+m.running)/float64(m.cfg.MaxConcurrent) + 1
	est := time.Duration(m.avgSeconds * waves * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est.Round(time.Second)
}

// Job returns a status snapshot by ID.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(job), true
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// QueueDepths reports (queued, running) for admission introspection.
func (m *Manager) QueueDepths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue), m.running
}

func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:         job.ID,
		Kind:       job.Spec.Kind,
		State:      job.State,
		Error:      job.Err,
		Resumed:    job.Resumed,
		Result:     job.Result,
		ResultHash: job.ResultHash,
		Submitted:  job.Submitted,
	}
	if !job.Started.IsZero() {
		t := job.Started
		st.Started = &t
	}
	if !job.Finished.IsZero() {
		t := job.Finished
		st.Finished = &t
	}
	if job.reg != nil {
		snap := job.reg.Snapshot()
		if len(snap.Counters) > 0 {
			st.Progress = snap.Counters
		}
	}
	return st
}

// dispatchOne starts the first queued job whose class has a free slot,
// honouring the global limiter. It reports whether it dispatched
// anything, so the scheduler loops until the queue head is blocked.
func (m *Manager) dispatchOne() bool {
	if m.ctx.Err() != nil {
		return false
	}
	m.mu.Lock()
	idx := -1
	for i, id := range m.queue {
		kind := m.jobs[id].Spec.Kind
		if limit := m.cfg.ClassLimits[kind]; limit > 0 && m.classRunning[kind] >= limit {
			continue
		}
		idx = i
		break
	}
	if idx < 0 {
		m.mu.Unlock()
		return false
	}
	if !m.limiter.TryAcquire() {
		m.mu.Unlock()
		return false
	}
	id := m.queue[idx]
	m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
	job := m.jobs[id]
	job.State = StateRunning
	job.Started = time.Now()
	job.reg = telemetry.NewRegistry()
	m.classRunning[job.Spec.Kind]++
	m.running++
	m.queuedG.Set(float64(len(m.queue)))
	m.runningG.Set(float64(m.running))
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.limiter.Release()
		m.execute(job)
		m.mu.Lock()
		m.classRunning[job.Spec.Kind]--
		m.running--
		m.runningG.Set(float64(m.running))
		m.mu.Unlock()
		m.kick()
	}()
	return true
}

// execute runs one job to completion (or interruption) and records the
// outcome. Interrupted jobs keep their checkpoint journal and are
// re-queued by the next recover; they never persist a result.
func (m *Manager) execute(job *Job) {
	start := time.Now()
	result, err := m.runJob(m.ctx, job)
	elapsed := time.Since(start).Seconds()
	m.jobSeconds.Observe(elapsed)

	// Any job still in flight when the drain began is interrupted, even
	// if it appears to have finished: a cancellation landing mid-sweep
	// taints the report (truncated plans, scenarios recorded
	// inconclusive with the ctx error), and distinguishing a tainted
	// result from a clean one that won the race is not worth the risk of
	// persisting the former. Discarding costs one resume-from-journal.
	interrupted := m.ctx.Err() != nil
	m.mu.Lock()
	defer m.mu.Unlock()
	// EWMA with a 0.3 step: recent jobs dominate, one outlier does not.
	m.avgSeconds += 0.3 * (elapsed - m.avgSeconds)
	job.Finished = time.Now()
	switch {
	case interrupted:
		job.State = StateInterrupted
		job.Err = "interrupted by shutdown; will resume on restart"
		m.interruptedC.Inc()
	case err != nil:
		job.State = StateFailed
		job.Err = err.Error()
		m.failedC.Inc()
		m.persistResultLocked(job)
	default:
		job.State = StateDone
		job.Result = result
		job.ResultHash = jobID(checkpoint.HashBytes(result))
		m.completedC.Inc()
		m.persistResultLocked(job)
	}
}
