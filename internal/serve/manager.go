package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
	"ropus/internal/flight"
	"ropus/internal/lease"
	"ropus/internal/obslog"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/slo"
	"ropus/internal/telemetry"
)

// Job states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// DefaultTenant is the admission class of submissions that carry no
// tenant header.
const DefaultTenant = "default"

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// OverloadedError sheds a submission that would overflow the queue (or
// a tenant's share of it). RetryAfter estimates when a slot should
// free up.
type OverloadedError struct {
	Queued     int
	QueueDepth int
	// Tenant is the admission class the shed submission belonged to;
	// Reason distinguishes a globally full queue from a tenant that
	// exhausted its weighted share or hard quota.
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	reason := e.Reason
	if reason == "" {
		reason = "queue full"
	}
	return fmt.Sprintf("serve: %s for tenant %q (%d/%d queued), retry after %s",
		reason, e.Tenant, e.Queued, e.QueueDepth, e.RetryAfter)
}

// Config parameterizes a Manager (and the Server wrapping it).
type Config struct {
	// StateDir persists submitted specs, results, checkpoint journals
	// and job leases; a server restarted on the same directory resumes
	// its unfinished jobs (required). Multiple live instances may share
	// one StateDir: leases arbitrate job ownership, and an instance
	// steals a peer's job once its lease heartbeat expires.
	StateDir string
	// Instance identifies this process in lease files and result
	// documents. Empty selects host-pid-seq, unique per Manager.
	Instance string
	// LeaseTTL is the job-lease heartbeat budget: a holder that misses
	// renewals for this long is presumed dead and its jobs stealable.
	// <= 0 selects lease.DefaultTTL.
	LeaseTTL time.Duration
	// ScanInterval is how often the fleet scanner re-reads the shared
	// state directory for jobs submitted to peers, results completed by
	// peers, and expired leases to reclaim. <= 0 selects 1s.
	ScanInterval time.Duration
	// SSEPoll is the granularity of the /v1/jobs/{id}/events stream
	// (how often a subscriber's snapshot is refreshed). <= 0 selects
	// 150ms.
	SSEPoll time.Duration
	// QueueDepth bounds the number of queued (admitted, not yet
	// running) jobs; submissions beyond it are shed with an
	// OverloadedError. <= 0 selects 64.
	QueueDepth int
	// TenantWeights maps a tenant to its admission weight (default 1).
	// Weights shape both sides of admission: dequeue is deficit-round-
	// robin with each tenant's quantum equal to its weight, and
	// shedding is graduated — tenant t is shed once the queue holds
	// QueueDepth * weight(t) / maxWeight jobs, so the lowest-weight
	// tenants shed first as the queue fills while the highest-weight
	// tenant can use the full depth. Uniform weights reduce to plain
	// FIFO with a single shared threshold.
	TenantWeights map[string]int
	// TenantQuotas caps how many jobs a tenant may hold queued at once,
	// independent of global occupancy. Absent or <= 0 is uncapped.
	TenantQuotas map[string]int
	// TenantValues maps a tenant to its business value (revenue per hour,
	// or any consistent unit; default 1). When non-empty it overrides the
	// weight-derived shed order: tenant t is shed once the queue holds
	// QueueDepth * value(t) / maxValue jobs, so under overload the
	// lowest-value tenants shed first and the highest-value tenant keeps
	// the full depth. Dequeue order is still weighted DRR — values decide
	// who gets turned away, weights decide who goes first among the
	// admitted. Accepted jobs are never evicted.
	TenantValues map[string]float64
	// MaxConcurrent bounds how many jobs execute at once across all
	// classes. <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// ClassLimits bounds per-kind concurrency ("failover": 1 keeps the
	// expensive sweeps from monopolizing the executors). A kind absent
	// or <= 0 is limited only by MaxConcurrent.
	ClassLimits map[string]int
	// Workers is the per-job failure-sweep worker count (core.Config
	// semantics: 0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// CacheBytes bounds the simulation cache shared by every job the
	// server runs (0 = default bound, negative disables).
	CacheBytes int64
	// Retry is the self-healing policy applied inside failover and plan
	// jobs (resilience.Policy semantics).
	Retry resilience.Policy
	// DrainTimeout bounds the graceful shutdown: how long Serve waits
	// for in-flight jobs to reach a checkpoint boundary and for open
	// connections to finish. <= 0 selects 30s.
	DrainTimeout time.Duration
	// Inject is the test-only fault injector threaded into every job's
	// framework and into the lease keeper (lease.acquire, lease.expire,
	// lease.steal, lease.renew points); nil injects nothing.
	Inject faultinject.Injector
	// Logger receives the service's structured log records (job
	// lifecycle, pipeline stages via the jobs' contexts); nil discards
	// them.
	Logger *slog.Logger
	// FlightEvents bounds the server's flight-recorder ring (<= 0
	// selects flight.DefaultCapacity).
	FlightEvents int
	// SLOWindow is the per-series quantile window (<= 0 selects
	// slo.DefaultWindow).
	SLOWindow int
	// Objectives overrides the default latency objectives (nil selects
	// DefaultObjectives).
	Objectives []slo.Objective
}

// SLO series names the manager observes into. submit_accept times the
// synchronous admission path, submit_complete the whole submit→finished
// job lifetime, scenario_sim each failure-scenario analysis (mirrored
// from the jobs' failure_scenario_seconds histograms).
const (
	SeriesSubmitAccept   = "submit_accept"
	SeriesSubmitComplete = "submit_complete"
	SeriesScenarioSim    = "scenario_sim"
)

// DefaultObjectives are the serve SLOs: admission is interactive
// (100ms), job completion is batch-interactive (120s), and a single
// scenario analysis should stay inside 10s.
func DefaultObjectives() []slo.Objective {
	return []slo.Objective{
		{Name: SeriesSubmitAccept, Series: SeriesSubmitAccept, LatencyBound: 0.1, Budget: 0.01},
		{Name: SeriesSubmitComplete, Series: SeriesSubmitComplete, LatencyBound: 120, Budget: 0.05},
		{Name: SeriesScenarioSim, Series: SeriesScenarioSim, LatencyBound: 10, Budget: 0.05},
	}
}

// instanceSeq distinguishes Managers built in one process.
var instanceSeq atomic.Uint64

func defaultInstance() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "host"
	}
	return fmt.Sprintf("%s-%d-%d", host, os.Getpid(), instanceSeq.Add(1))
}

func (c Config) withDefaults() Config {
	if c.Instance == "" {
		c.Instance = defaultInstance()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = lease.DefaultTTL
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = time.Second
	}
	if c.SSEPoll <= 0 {
		c.SSEPoll = 150 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Job is one admitted planning job. Fields are guarded by the owning
// Manager's mutex; JobStatus snapshots them for handlers.
type Job struct {
	ID     string
	Spec   JobSpec
	Tenant string
	State  string
	Err    string
	// Instance is the fleet member currently (or last) responsible for
	// the job: ourselves while running locally, the lease holder while
	// a peer runs it, the completing instance once finished.
	Instance string
	// Resumed marks a job re-queued by a restart or reclaimed after a
	// lease expiry; its checkpoint journal replays the finished units
	// of the interrupted attempt.
	Resumed bool
	// Stolen marks a job this instance took over from an expired peer
	// lease.
	Stolen bool
	// Result holds the finished job's JSON result document.
	Result     json.RawMessage
	ResultHash string
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	// epoch is the lease epoch of the current local run; checkpoint
	// journals are written per epoch so a zombie writer can never
	// interleave with the thief's journal.
	epoch uint64
	// remote marks a job another instance holds the lease for (or
	// finished); the scanner finalizes or reclaims it.
	remote bool
	// queuedLocal marks a job sitting in this instance's tenant queues.
	queuedLocal bool
	// reg collects the job's own telemetry while it runs; its counters
	// become the status endpoint's progress block.
	reg *telemetry.Registry
	// tracer collects the job's spans (trace ID = job ID); it backs
	// GET /v1/jobs/{id}/trace. Jobs recovered from disk have none.
	tracer *telemetry.Tracer
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Tenant  string `json:"tenant,omitempty"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	// Stolen marks a job taken over from an expired peer lease; Instance
	// is the fleet member responsible for the job right now.
	Stolen   bool   `json:"stolen,omitempty"`
	Instance string `json:"instance,omitempty"`
	// Progress exposes the job's telemetry counters (scenarios swept,
	// checkpoint records written, GA generations, ...) while it runs
	// and after it finishes.
	Progress   map[string]int64 `json:"progress,omitempty"`
	Result     json.RawMessage  `json:"result,omitempty"`
	ResultHash string           `json:"resultHash,omitempty"`
	Submitted  time.Time        `json:"submitted"`
	Started    *time.Time       `json:"started,omitempty"`
	Finished   *time.Time       `json:"finished,omitempty"`
}

// Manager owns the job table, the admission decisions and the executor
// pool. It is the HTTP-free core of the service, so tests drive it
// directly. In fleet mode N managers share one state directory and
// arbitrate job ownership through leases.
type Manager struct {
	cfg       Config
	cache     *placement.SimCache
	limiter   *parallel.Limiter
	hooks     telemetry.Hooks
	logger    *slog.Logger
	flight    *flight.Recorder
	slo       *slo.Tracker
	leases    *lease.Keeper
	maxWeight int
	maxValue  float64

	submittedC   *telemetry.Counter
	dedupC       *telemetry.Counter
	shedC        *telemetry.Counter
	completedC   *telemetry.Counter
	failedC      *telemetry.Counter
	interruptedC *telemetry.Counter
	stolenC      *telemetry.Counter
	adoptedC     *telemetry.Counter
	remoteDoneC  *telemetry.Counter
	leaseLostC   *telemetry.Counter
	heldSkipC    *telemetry.Counter
	queuedG      *telemetry.Gauge
	runningG     *telemetry.Gauge
	retryAfterG  *telemetry.Gauge
	jobSeconds   *telemetry.Histogram

	ctx    context.Context
	wg     sync.WaitGroup
	notify chan struct{}

	mu   sync.Mutex
	jobs map[string]*Job
	// order is submission/adoption order, for listing.
	order []string
	// Admission is tenant-major: one FIFO per tenant, dequeued by
	// deficit round robin over ring with per-tenant quantum = weight.
	queues      map[string][]string
	ring        []string
	ringMember  map[string]bool
	deficit     map[string]float64
	rrPos       int
	queuedTotal int

	classRunning map[string]int
	running      int
	runningSince map[string]time.Time
	avgSeconds   float64 // EWMA job duration, feeds Retry-After
	draining     bool
}

// NewManager builds a manager and recovers any unfinished jobs from the
// state directory. hooks (nil ok) receives the serve_* metrics.
func NewManager(cfg Config, hooks telemetry.Hooks) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	for _, sub := range []string{"jobs", "results", "ckpt", "flight", "leases"} {
		if err := os.MkdirAll(filepath.Join(cfg.StateDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	h := telemetry.OrNop(hooks)
	logger := cfg.Logger
	if logger == nil {
		logger = obslog.Discard()
	}
	objectives := cfg.Objectives
	if objectives == nil {
		objectives = DefaultObjectives()
	}
	// Tee the service's log records into its flight recorder, so a
	// job-failure dump carries the correlated log tail alongside events
	// and spans.
	rec := flight.NewRecorder(cfg.FlightEvents)
	logger = obslog.WithRecorder(logger, rec)
	maxWeight := 1
	for _, w := range cfg.TenantWeights {
		if w > maxWeight {
			maxWeight = w
		}
	}
	maxValue := 1.0
	for _, v := range cfg.TenantValues {
		if v > maxValue {
			maxValue = v
		}
	}
	m := &Manager{
		cfg:     cfg,
		limiter: parallel.NewLimiter(cfg.MaxConcurrent),
		hooks:   h,
		logger:  logger,
		flight:  rec,
		slo:     slo.NewTracker(cfg.SLOWindow, objectives...),
		leases: &lease.Keeper{
			Dir:      filepath.Join(cfg.StateDir, "leases"),
			Instance: cfg.Instance,
			TTL:      cfg.LeaseTTL,
			Inject:   cfg.Inject,
			Hooks:    h,
		},
		maxWeight:    maxWeight,
		maxValue:     maxValue,
		submittedC:   h.Counter("serve_jobs_submitted_total"),
		dedupC:       h.Counter("serve_jobs_deduplicated_total"),
		shedC:        h.Counter("serve_jobs_shed_total"),
		completedC:   h.Counter("serve_jobs_completed_total"),
		failedC:      h.Counter("serve_jobs_failed_total"),
		interruptedC: h.Counter("serve_jobs_interrupted_total"),
		stolenC:      h.Counter("serve_jobs_stolen_total"),
		adoptedC:     h.Counter("serve_jobs_adopted_total"),
		remoteDoneC:  h.Counter("serve_jobs_remote_completed_total"),
		leaseLostC:   h.Counter("serve_lease_lost_total"),
		heldSkipC:    h.Counter("serve_lease_held_skips_total"),
		queuedG:      h.Gauge("serve_jobs_queued"),
		runningG:     h.Gauge("serve_jobs_running"),
		retryAfterG:  h.Gauge("serve_retry_after_seconds"),
		jobSeconds:   h.Histogram("serve_job_seconds", nil),
		notify:       make(chan struct{}, 1),
		jobs:         make(map[string]*Job),
		queues:       make(map[string][]string),
		ringMember:   make(map[string]bool),
		deficit:      make(map[string]float64),
		classRunning: make(map[string]int),
		runningSince: make(map[string]time.Time),
		avgSeconds:   1, // optimistic prior until real durations arrive
	}
	if cfg.CacheBytes >= 0 {
		m.cache = placement.NewSimCache(cfg.CacheBytes)
	}
	if err := m.scanDisk(true); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.retryAfterLocked() // publish the initial Retry-After estimate
	m.mu.Unlock()
	return m, nil
}

// Instance returns this manager's fleet identity.
func (m *Manager) Instance() string { return m.cfg.Instance }

// Flight exposes the server-wide flight recorder (the /debug/flight
// handler and tests).
func (m *Manager) Flight() *flight.Recorder { return m.flight }

// SLO exposes the latency-objective tracker (the /v1/slo and /metrics
// handlers and tests).
func (m *Manager) SLO() *slo.Tracker { return m.slo }

// Tracer returns the span tracer of a job that ran in this process
// (nil for unknown jobs and for finished jobs recovered from disk,
// whose spans died with the previous process).
func (m *Manager) Tracer(id string) *telemetry.Tracer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if job, ok := m.jobs[id]; ok {
		return job.tracer
	}
	return nil
}

// Start launches the scheduler and the fleet scanner; ctx cancellation
// begins the drain: dispatch stops, in-flight jobs stop at their next
// checkpoint boundary and are marked interrupted (their journals keep
// the completed prefix, their leases are released for immediate
// takeover), and Wait returns once the executors settle.
func (m *Manager) Start(ctx context.Context) {
	m.ctx = ctx
	// A panic converted to an error anywhere in the pipeline dumps the
	// flight recorder while the events leading up to it are still in the
	// ring; the job-failed dump that follows captures the same trace's
	// tail, this one captures everything.
	robust.OnPanic(func(op string, v any) {
		m.flight.Record("event", "panic", "", map[string]any{"op": op, "value": fmt.Sprint(v)})
		m.dumpFlight("panic", "panic", "")
	})
	m.wg.Add(2)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-m.notify:
			}
			for m.dispatchOne() {
			}
		}
	}()
	// The fleet scanner: adopt jobs peers persisted, finalize jobs peers
	// finished, reclaim jobs whose holder's lease expired or released.
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.cfg.ScanInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			m.scanDisk(false)
			m.sweepParked()
		}
	}()
	m.kick()
}

// Wait blocks until the scheduler and every executor have returned.
func (m *Manager) Wait() { m.wg.Wait() }

// kick nudges the scheduler without blocking.
func (m *Manager) kick() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// SetDraining flips admission off (Submit fails with ErrDraining).
func (m *Manager) SetDraining() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// weight returns a tenant's admission weight (default 1).
func (m *Manager) weight(tenant string) int {
	if w := m.cfg.TenantWeights[tenant]; w > 0 {
		return w
	}
	return 1
}

// value returns a tenant's business value (default 1).
func (m *Manager) value(tenant string) float64 {
	if v := m.cfg.TenantValues[tenant]; v > 0 {
		return v
	}
	return 1
}

// shedThresholdLocked is the global queue occupancy at which tenant
// submissions start shedding: full depth for the heaviest tenant,
// proportionally earlier for lighter ones, so overload sheds the
// bottom of the order first without ever evicting an accepted job.
// When tenant values are configured they define the order (lowest
// revenue sheds first); otherwise the admission weights do.
func (m *Manager) shedThresholdLocked(tenant string) int {
	var t int
	if len(m.cfg.TenantValues) > 0 {
		t = int(float64(m.cfg.QueueDepth) * m.value(tenant) / m.maxValue)
	} else {
		t = m.cfg.QueueDepth * m.weight(tenant) / m.maxWeight
	}
	if t < 1 {
		t = 1
	}
	return t
}

// enqueueLocked appends the job to its tenant's FIFO and keeps the DRR
// ring in sync.
func (m *Manager) enqueueLocked(job *Job) {
	t := job.Tenant
	m.queues[t] = append(m.queues[t], job.ID)
	m.queuedTotal++
	job.queuedLocal = true
	job.remote = false
	if !m.ringMember[t] {
		m.ringMember[t] = true
		m.ring = append(m.ring, t)
	}
	m.queuedG.Set(float64(m.queuedTotal))
}

// removeTenantLocked drops an emptied tenant from the DRR ring and
// forfeits its credit, so an idle tenant cannot hoard deficit.
func (m *Manager) removeTenantLocked(t string) {
	if len(m.queues[t]) > 0 {
		return
	}
	delete(m.queues, t)
	delete(m.ringMember, t)
	m.deficit[t] = 0
	for i, name := range m.ring {
		if name == t {
			m.ring = append(m.ring[:i], m.ring[i+1:]...)
			if m.rrPos > i {
				m.rrPos--
			}
			break
		}
	}
}

// dispatchableLocked returns the index of the first job in tenant t's
// queue whose class has a free slot, or -1.
func (m *Manager) dispatchableLocked(t string) int {
	for i, id := range m.queues[t] {
		kind := m.jobs[id].Spec.Kind
		if limit := m.cfg.ClassLimits[kind]; limit > 0 && m.classRunning[kind] >= limit {
			continue
		}
		return i
	}
	return -1
}

// nextQueuedLocked picks the next job by deficit round robin: each
// visit tops a tenant's deficit up by its weight, each dispatched job
// costs 1, and the scheduler stays on a tenant until its deficit is
// spent, so tenants drain in proportion to their weights. Tenants whose
// head-of-queue jobs are class-blocked are skipped without charge. The
// job is removed from its queue; "" means nothing is dispatchable.
func (m *Manager) nextQueuedLocked() string {
	for visited := 0; visited < len(m.ring); visited++ {
		if len(m.ring) == 0 {
			return ""
		}
		m.rrPos %= len(m.ring)
		t := m.ring[m.rrPos]
		idx := m.dispatchableLocked(t)
		if idx < 0 {
			m.rrPos++
			continue
		}
		if m.deficit[t] < 1 {
			m.deficit[t] += float64(m.weight(t))
		}
		if m.deficit[t] < 1 {
			m.rrPos++
			continue
		}
		m.deficit[t]--
		id := m.queues[t][idx]
		m.queues[t] = append(m.queues[t][:idx], m.queues[t][idx+1:]...)
		m.queuedTotal--
		m.jobs[id].queuedLocal = false
		if len(m.queues[t]) == 0 {
			m.removeTenantLocked(t)
		} else if m.deficit[t] < 1 {
			m.rrPos++ // visit exhausted; next tenant on the next pick
		}
		m.queuedG.Set(float64(m.queuedTotal))
		return id
	}
	return ""
}

// Submit admits a job. It is idempotent: a spec hashing to a known job
// returns that job with created=false. A full queue — or a tenant past
// its weighted share or quota — sheds the submission with an
// OverloadedError carrying a Retry-After estimate.
func (m *Manager) Submit(spec JobSpec) (JobStatus, bool, error) {
	start := time.Now()
	spec.normalize()
	set, err := spec.parse()
	if err != nil {
		return JobStatus{}, false, err
	}
	id := jobID(spec.Key(set))
	tenant := spec.Tenant

	m.mu.Lock()
	defer m.mu.Unlock()
	if job, ok := m.jobs[id]; ok {
		m.dedupC.Inc()
		return m.statusLocked(job), false, nil
	}
	if m.draining {
		return JobStatus{}, false, ErrDraining
	}
	if quota := m.cfg.TenantQuotas[tenant]; quota > 0 && len(m.queues[tenant]) >= quota {
		m.shedC.Inc()
		return JobStatus{}, false, &OverloadedError{
			Queued:     len(m.queues[tenant]),
			QueueDepth: quota,
			Tenant:     tenant,
			Reason:     "tenant quota exhausted",
			RetryAfter: m.retryAfterLocked(),
		}
	}
	if threshold := m.shedThresholdLocked(tenant); m.queuedTotal >= threshold {
		m.shedC.Inc()
		reason := "queue full"
		if threshold < m.cfg.QueueDepth {
			reason = "queue past tenant's weighted share"
			if len(m.cfg.TenantValues) > 0 {
				reason = "queue past tenant's value share"
			}
		}
		return JobStatus{}, false, &OverloadedError{
			Queued:     m.queuedTotal,
			QueueDepth: threshold,
			Tenant:     tenant,
			Reason:     reason,
			RetryAfter: m.retryAfterLocked(),
		}
	}
	if err := m.persistSpec(id, spec); err != nil {
		return JobStatus{}, false, err
	}
	job := &Job{ID: id, Spec: spec, Tenant: tenant, State: StateQueued, Submitted: time.Now()}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.enqueueLocked(job)
	m.submittedC.Inc()
	m.retryAfterLocked()
	m.slo.Observe(SeriesSubmitAccept, time.Since(start).Seconds())
	m.flight.Record("event", "serve.job.submitted", id, map[string]any{"kind": spec.Kind, "tenant": tenant})
	m.logger.LogAttrs(context.Background(), slog.LevelInfo, "serve.job.submitted",
		slog.String("trace_id", id), slog.String("job_id", id),
		slog.String("kind", spec.Kind), slog.String("tenant", tenant))
	m.kick()
	return m.statusLocked(job), true, nil
}

// retryAfterLocked estimates how long until a queue slot frees. The
// per-job duration estimate is recomputed at response time: the EWMA
// over completed jobs — which goes stale during a sustained burst of
// slow jobs, because it only updates at completions — is raised to at
// least the age of the longest-running in-flight job, a live lower
// bound on the true duration. The estimate is scaled by how many jobs
// stand in line per executor and clamped to [1s, 60s] so a misbehaving
// estimate cannot tell clients to hammer the server or go away for an
// hour.
func (m *Manager) retryAfterLocked() time.Duration {
	per := m.avgSeconds
	for _, since := range m.runningSince {
		if e := time.Since(since).Seconds(); e > per {
			per = e
		}
	}
	waves := float64(m.queuedTotal+m.running)/float64(m.cfg.MaxConcurrent) + 1
	est := time.Duration(per * waves * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	est = est.Round(time.Second)
	// Every recomputation republishes the estimate, so /metrics always
	// shows the Retry-After a shed submission would receive right now.
	m.retryAfterG.Set(est.Seconds())
	return est
}

// Job returns a status snapshot by ID.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(job), true
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// QueueDepths reports (queued, running) for admission introspection.
func (m *Manager) QueueDepths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queuedTotal, m.running
}

func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:         job.ID,
		Kind:       job.Spec.Kind,
		Tenant:     job.Tenant,
		State:      job.State,
		Error:      job.Err,
		Resumed:    job.Resumed,
		Stolen:     job.Stolen,
		Instance:   job.Instance,
		Result:     job.Result,
		ResultHash: job.ResultHash,
		Submitted:  job.Submitted,
	}
	if !job.Started.IsZero() {
		t := job.Started
		st.Started = &t
	}
	if !job.Finished.IsZero() {
		t := job.Finished
		st.Finished = &t
	}
	if job.reg != nil {
		snap := job.reg.Snapshot()
		if len(snap.Counters) > 0 {
			st.Progress = snap.Counters
		}
	}
	return st
}

// dispatchOne starts the next DRR-selected job this instance can win
// the lease for. It reports whether it made progress (dispatched a job
// or parked one a peer owns), so the scheduler loops until the queues
// are drained or blocked.
func (m *Manager) dispatchOne() bool {
	if m.ctx.Err() != nil {
		return false
	}
	m.mu.Lock()
	id := m.nextQueuedLocked()
	if id == "" {
		m.mu.Unlock()
		return false
	}
	job := m.jobs[id]
	if !m.limiter.TryAcquire() {
		// No executor free: put the job back at the head of its queue.
		m.queues[job.Tenant] = append([]string{id}, m.queues[job.Tenant]...)
		m.queuedTotal++
		job.queuedLocal = true
		if !m.ringMember[job.Tenant] {
			m.ringMember[job.Tenant] = true
			m.ring = append(m.ring, job.Tenant)
		}
		m.queuedG.Set(float64(m.queuedTotal))
		m.mu.Unlock()
		return false
	}
	m.mu.Unlock()

	// Lease arbitration happens outside the table lock: it fsyncs.
	l, err := m.leases.Acquire("job-" + id)
	if err != nil {
		m.limiter.Release()
		m.mu.Lock()
		defer m.mu.Unlock()
		var held *lease.HeldError
		if errors.As(err, &held) {
			// A peer owns the job: park it. The scanner reclaims it if the
			// holder's lease expires, and finalizes it when the holder's
			// result lands.
			job.remote = true
			if held.Instance != "" {
				job.Instance = held.Instance
			}
			m.heldSkipC.Inc()
			return true
		}
		m.hooks.Counter("serve_lease_errors_total").Inc()
		m.logger.LogAttrs(context.Background(), slog.LevelWarn, "serve.lease.error",
			slog.String("job_id", id), slog.String("error", err.Error()))
		m.enqueueLocked(job)
		return false
	}

	m.mu.Lock()
	job.State = StateRunning
	job.Started = time.Now()
	job.Instance = m.cfg.Instance
	job.Stolen = l.Stolen()
	job.epoch = l.Epoch()
	job.remote = false
	job.reg = telemetry.NewRegistry()
	job.tracer = telemetry.NewTracer()
	m.classRunning[job.Spec.Kind]++
	m.running++
	m.runningSince[id] = job.Started
	m.runningG.Set(float64(m.running))
	if job.Stolen {
		m.stolenC.Inc()
		m.flight.Record("event", "serve.job.stolen", id, map[string]any{"epoch": job.epoch})
		m.logger.LogAttrs(context.Background(), slog.LevelInfo, "serve.job.stolen",
			slog.String("trace_id", id), slog.String("job_id", id),
			slog.Uint64("epoch", job.epoch))
	}
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.limiter.Release()
		m.execute(job, l)
		m.mu.Lock()
		m.classRunning[job.Spec.Kind]--
		m.running--
		delete(m.runningSince, job.ID)
		m.runningG.Set(float64(m.running))
		m.mu.Unlock()
		m.kick()
	}()
	return true
}

// heartbeat renews the job's lease until stop closes. A failed renewal
// means a peer stole the job: the run context is cancelled so the
// now-ownerless work stops at its next cancellation point, and its
// result is discarded.
func (m *Manager) heartbeat(job *Job, l *lease.Lease, cancel context.CancelFunc, stop <-chan struct{}) {
	interval := m.cfg.LeaseTTL / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if err := l.Renew(); err != nil {
			m.leaseLostC.Inc()
			m.flight.Record("event", "serve.lease.lost", job.ID, map[string]any{"error": err.Error()})
			m.logger.LogAttrs(context.Background(), slog.LevelWarn, "serve.lease.lost",
				slog.String("trace_id", job.ID), slog.String("job_id", job.ID),
				slog.String("error", err.Error()))
			cancel()
			return
		}
	}
}

// execute runs one job to completion (or interruption) and records the
// outcome. Interrupted jobs keep their checkpoint journal and are
// re-queued by the next recover (or stolen by a peer); they never
// persist a result.
func (m *Manager) execute(job *Job, l *lease.Lease) {
	runCtx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	stopBeat := make(chan struct{})
	beatDone := make(chan struct{})
	go func() {
		defer close(beatDone)
		m.heartbeat(job, l, cancel, stopBeat)
	}()

	start := time.Now()
	result, err := m.runJob(runCtx, job)
	close(stopBeat)
	<-beatDone
	elapsed := time.Since(start).Seconds()
	m.jobSeconds.Observe(elapsed)

	// Classify before taking the lock. Any job still in flight when the
	// drain began is interrupted, even if it appears to have finished: a
	// cancellation landing mid-sweep taints the report, and
	// distinguishing a tainted result from a clean one that won the race
	// is not worth the risk of persisting the former. A lease loss is
	// the same shape with a different owner of the resume: the thief's
	// result (byte-identical by construction) is adopted by the scanner.
	draining := m.ctx.Err() != nil
	leaseLost := !draining && runCtx.Err() != nil && errors.Is(l.Renew(), lease.ErrLost)
	m.logJobOutcome(job, err, elapsed, draining || leaseLost)

	m.mu.Lock()
	// EWMA with a 0.3 step: recent jobs dominate, one outlier does not.
	m.avgSeconds += 0.3 * (elapsed - m.avgSeconds)
	m.retryAfterLocked()
	job.Finished = time.Now()
	switch {
	case draining:
		job.State = StateInterrupted
		job.Err = "interrupted by shutdown; will resume on restart"
		m.interruptedC.Inc()
	case leaseLost:
		job.State = StateInterrupted
		job.Err = "lease lost; a peer instance stole the job"
		job.remote = true // the scanner adopts the thief's result
		m.interruptedC.Inc()
	case err != nil:
		job.State = StateFailed
		job.Err = err.Error()
		m.failedC.Inc()
		m.persistResultLocked(job)
		m.slo.Observe(SeriesSubmitComplete, job.Finished.Sub(job.Submitted).Seconds())
		// A failed job's flight tail is the diagnosis artifact: dump it
		// before the ring forgets what led up to the failure.
		m.dumpFlight(job.ID, "job_failed", job.ID)
	default:
		job.State = StateDone
		job.Result = result
		job.ResultHash = jobID(checkpoint.HashBytes(result))
		m.completedC.Inc()
		m.persistResultLocked(job)
		m.slo.Observe(SeriesSubmitComplete, job.Finished.Sub(job.Submitted).Seconds())
	}
	terminal := job.State == StateDone || job.State == StateFailed
	m.mu.Unlock()

	// Lease finalization happens outside the lock: it fsyncs. A finished
	// job's lease is removed for good — the result on disk is now the
	// authority; an interrupted job's is released as a tombstone so a
	// restarted instance (or a peer) takes over without a TTL wait. A
	// lost lease makes both a no-op.
	if terminal {
		l.Discard()
	} else {
		l.Release()
	}
}

// logJobOutcome emits the job's lifecycle record and flight event.
func (m *Manager) logJobOutcome(job *Job, err error, elapsed float64, interrupted bool) {
	state := StateDone
	errText := ""
	switch {
	case interrupted:
		state = StateInterrupted
	case err != nil:
		state = StateFailed
		errText = err.Error()
	}
	attrs := map[string]any{"kind": job.Spec.Kind, "state": state, "elapsed_seconds": elapsed}
	if errText != "" {
		attrs["error"] = errText
	}
	m.flight.Record("event", "serve.job.finished", job.ID, attrs)
	logAttrs := []slog.Attr{
		slog.String("trace_id", job.ID),
		slog.String("job_id", job.ID),
		slog.String("kind", job.Spec.Kind),
		slog.String("state", state),
		slog.Any("elapsed_seconds", obslog.Volatile{Value: elapsed}),
	}
	if errText != "" {
		logAttrs = append(logAttrs, slog.String("error", errText))
	}
	level := slog.LevelInfo
	if state == StateFailed {
		level = slog.LevelWarn
	}
	m.logger.LogAttrs(context.Background(), level, "serve.job.finished", logAttrs...)
}

// sweepParked walks jobs this instance is not executing — parked
// behind a peer's lease, or interrupted after a lease loss — and
// either finalizes them from a result document a peer persisted, or
// reclaims them for local execution once the holder's lease expired or
// was released.
func (m *Manager) sweepParked() {
	m.mu.Lock()
	var parked []*Job
	for _, job := range m.jobs {
		if job.State == StateDone || job.State == StateFailed {
			continue
		}
		if job.queuedLocal {
			continue
		}
		if _, runningHere := m.runningSince[job.ID]; runningHere {
			continue
		}
		parked = append(parked, job)
	}
	m.mu.Unlock()

	for _, job := range parked {
		if doc, ok := m.loadResult(job.ID); ok && (doc.State == StateDone || doc.State == StateFailed) {
			m.finalizeRemote(job, doc)
			continue
		}
		info, status := m.leases.Read("job-" + job.ID)
		switch status {
		case lease.StatusLive, lease.StatusUnreadable:
			m.mu.Lock()
			if info.Instance != "" && !job.queuedLocal {
				job.Instance = info.Instance
				if job.State == StateQueued {
					// Visible to status queries: the job is executing, just
					// not here.
					job.State = StateRunning
					job.remote = true
				}
			}
			m.mu.Unlock()
		case lease.StatusAbsent, lease.StatusExpired, lease.StatusReleased:
			m.mu.Lock()
			if !job.queuedLocal && job.State != StateDone && job.State != StateFailed {
				if _, runningHere := m.runningSince[job.ID]; !runningHere {
					job.State = StateQueued
					job.Resumed = true
					m.enqueueLocked(job)
					m.kick()
				}
			}
			m.mu.Unlock()
		}
	}
}

// finalizeRemote adopts a peer-persisted terminal result into the
// local job table, so any instance can answer status queries for any
// job in the fleet.
func (m *Manager) finalizeRemote(job *Job, doc resultDoc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if job.State == StateDone || job.State == StateFailed {
		return
	}
	if job.queuedLocal {
		// Raced a local dispatch decision: drop it from our queues, the
		// result already exists.
		t := job.Tenant
		for i, qid := range m.queues[t] {
			if qid == job.ID {
				m.queues[t] = append(m.queues[t][:i], m.queues[t][i+1:]...)
				m.queuedTotal--
				m.queuedG.Set(float64(m.queuedTotal))
				break
			}
		}
		job.queuedLocal = false
		m.removeTenantLocked(t)
	}
	job.State = doc.State
	job.Err = doc.Error
	job.Result = doc.Result
	job.ResultHash = doc.ResultHash
	if doc.Instance != "" {
		job.Instance = doc.Instance
	}
	job.remote = true
	job.Finished = modTime(m.resultPath(job.ID))
	m.remoteDoneC.Inc()
	m.flight.Record("event", "serve.job.remote_completed", job.ID,
		map[string]any{"instance": job.Instance, "state": doc.State})
}

// dumpFlight writes a flight-recorder dump (filtered to traceID when
// non-empty) to <state>/flight/<name>.json. Dump failures are counted,
// never fatal: diagnostics must not take down the service.
func (m *Manager) dumpFlight(name, reason, traceID string) {
	path := filepath.Join(m.cfg.StateDir, "flight", name+".json")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err == nil {
		err = m.flight.WriteJSON(f, reason, traceID)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		m.hooks.Counter("serve_flight_dump_errors_total").Inc()
	}
}
