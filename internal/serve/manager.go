package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
	"ropus/internal/flight"
	"ropus/internal/obslog"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/slo"
	"ropus/internal/telemetry"
)

// Job states.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// ErrDraining rejects submissions while the server shuts down.
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// OverloadedError sheds a submission that would overflow the queue.
// RetryAfter estimates when a slot should free up.
type OverloadedError struct {
	Queued     int
	QueueDepth int
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("serve: queue full (%d/%d), retry after %s", e.Queued, e.QueueDepth, e.RetryAfter)
}

// Config parameterizes a Manager (and the Server wrapping it).
type Config struct {
	// StateDir persists submitted specs, results and checkpoint
	// journals; a server restarted on the same directory resumes its
	// unfinished jobs (required).
	StateDir string
	// QueueDepth bounds the number of queued (admitted, not yet
	// running) jobs; submissions beyond it are shed with an
	// OverloadedError. <= 0 selects 64.
	QueueDepth int
	// MaxConcurrent bounds how many jobs execute at once across all
	// classes. <= 0 selects GOMAXPROCS.
	MaxConcurrent int
	// ClassLimits bounds per-kind concurrency ("failover": 1 keeps the
	// expensive sweeps from monopolizing the executors). A kind absent
	// or <= 0 is limited only by MaxConcurrent.
	ClassLimits map[string]int
	// Workers is the per-job failure-sweep worker count (core.Config
	// semantics: 0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// CacheBytes bounds the simulation cache shared by every job the
	// server runs (0 = default bound, negative disables).
	CacheBytes int64
	// Retry is the self-healing policy applied inside failover and plan
	// jobs (resilience.Policy semantics).
	Retry resilience.Policy
	// DrainTimeout bounds the graceful shutdown: how long Serve waits
	// for in-flight jobs to reach a checkpoint boundary and for open
	// connections to finish. <= 0 selects 30s.
	DrainTimeout time.Duration
	// Inject is the test-only fault injector threaded into every job's
	// framework; nil injects nothing.
	Inject faultinject.Injector
	// Logger receives the service's structured log records (job
	// lifecycle, pipeline stages via the jobs' contexts); nil discards
	// them.
	Logger *slog.Logger
	// FlightEvents bounds the server's flight-recorder ring (<= 0
	// selects flight.DefaultCapacity).
	FlightEvents int
	// SLOWindow is the per-series quantile window (<= 0 selects
	// slo.DefaultWindow).
	SLOWindow int
	// Objectives overrides the default latency objectives (nil selects
	// DefaultObjectives).
	Objectives []slo.Objective
}

// SLO series names the manager observes into. submit_accept times the
// synchronous admission path, submit_complete the whole submit→finished
// job lifetime, scenario_sim each failure-scenario analysis (mirrored
// from the jobs' failure_scenario_seconds histograms).
const (
	SeriesSubmitAccept   = "submit_accept"
	SeriesSubmitComplete = "submit_complete"
	SeriesScenarioSim    = "scenario_sim"
)

// DefaultObjectives are the serve SLOs: admission is interactive
// (100ms), job completion is batch-interactive (120s), and a single
// scenario analysis should stay inside 10s.
func DefaultObjectives() []slo.Objective {
	return []slo.Objective{
		{Name: SeriesSubmitAccept, Series: SeriesSubmitAccept, LatencyBound: 0.1, Budget: 0.01},
		{Name: SeriesSubmitComplete, Series: SeriesSubmitComplete, LatencyBound: 120, Budget: 0.05},
		{Name: SeriesScenarioSim, Series: SeriesScenarioSim, LatencyBound: 10, Budget: 0.05},
	}
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Job is one admitted planning job. Fields are guarded by the owning
// Manager's mutex; JobStatus snapshots them for handlers.
type Job struct {
	ID    string
	Spec  JobSpec
	State string
	Err   string
	// Resumed marks a job re-queued by a restart; its checkpoint
	// journal replays the finished units of the interrupted attempt.
	Resumed bool
	// Result holds the finished job's JSON result document.
	Result     json.RawMessage
	ResultHash string
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	// reg collects the job's own telemetry while it runs; its counters
	// become the status endpoint's progress block.
	reg *telemetry.Registry
	// tracer collects the job's spans (trace ID = job ID); it backs
	// GET /v1/jobs/{id}/trace. Jobs recovered from disk have none.
	tracer *telemetry.Tracer
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	// Progress exposes the job's telemetry counters (scenarios swept,
	// checkpoint records written, GA generations, ...) while it runs
	// and after it finishes.
	Progress   map[string]int64 `json:"progress,omitempty"`
	Result     json.RawMessage  `json:"result,omitempty"`
	ResultHash string           `json:"resultHash,omitempty"`
	Submitted  time.Time        `json:"submitted"`
	Started    *time.Time       `json:"started,omitempty"`
	Finished   *time.Time       `json:"finished,omitempty"`
}

// Manager owns the job table, the admission decisions and the executor
// pool. It is the HTTP-free core of the service, so tests drive it
// directly.
type Manager struct {
	cfg     Config
	cache   *placement.SimCache
	limiter *parallel.Limiter
	hooks   telemetry.Hooks
	logger  *slog.Logger
	flight  *flight.Recorder
	slo     *slo.Tracker

	submittedC   *telemetry.Counter
	dedupC       *telemetry.Counter
	shedC        *telemetry.Counter
	completedC   *telemetry.Counter
	failedC      *telemetry.Counter
	interruptedC *telemetry.Counter
	queuedG      *telemetry.Gauge
	runningG     *telemetry.Gauge
	retryAfterG  *telemetry.Gauge
	jobSeconds   *telemetry.Histogram

	ctx    context.Context
	wg     sync.WaitGroup
	notify chan struct{}

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string // submission order, for listing
	queue        []string // FIFO of queued job IDs
	classRunning map[string]int
	running      int
	avgSeconds   float64 // EWMA job duration, feeds Retry-After
	draining     bool
}

// NewManager builds a manager and recovers any unfinished jobs from the
// state directory. hooks (nil ok) receives the serve_* metrics.
func NewManager(cfg Config, hooks telemetry.Hooks) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	for _, sub := range []string{"jobs", "results", "ckpt", "flight"} {
		if err := os.MkdirAll(filepath.Join(cfg.StateDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	h := telemetry.OrNop(hooks)
	logger := cfg.Logger
	if logger == nil {
		logger = obslog.Discard()
	}
	objectives := cfg.Objectives
	if objectives == nil {
		objectives = DefaultObjectives()
	}
	// Tee the service's log records into its flight recorder, so a
	// job-failure dump carries the correlated log tail alongside events
	// and spans.
	rec := flight.NewRecorder(cfg.FlightEvents)
	logger = obslog.WithRecorder(logger, rec)
	m := &Manager{
		cfg:          cfg,
		limiter:      parallel.NewLimiter(cfg.MaxConcurrent),
		hooks:        h,
		logger:       logger,
		flight:       rec,
		slo:          slo.NewTracker(cfg.SLOWindow, objectives...),
		submittedC:   h.Counter("serve_jobs_submitted_total"),
		dedupC:       h.Counter("serve_jobs_deduplicated_total"),
		shedC:        h.Counter("serve_jobs_shed_total"),
		completedC:   h.Counter("serve_jobs_completed_total"),
		failedC:      h.Counter("serve_jobs_failed_total"),
		interruptedC: h.Counter("serve_jobs_interrupted_total"),
		queuedG:      h.Gauge("serve_jobs_queued"),
		runningG:     h.Gauge("serve_jobs_running"),
		retryAfterG:  h.Gauge("serve_retry_after_seconds"),
		jobSeconds:   h.Histogram("serve_job_seconds", nil),
		notify:       make(chan struct{}, 1),
		jobs:         make(map[string]*Job),
		classRunning: make(map[string]int),
		avgSeconds:   1, // optimistic prior until real durations arrive
	}
	if cfg.CacheBytes >= 0 {
		m.cache = placement.NewSimCache(cfg.CacheBytes)
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	m.retryAfterLocked() // publish the initial Retry-After estimate
	return m, nil
}

// Flight exposes the server-wide flight recorder (the /debug/flight
// handler and tests).
func (m *Manager) Flight() *flight.Recorder { return m.flight }

// SLO exposes the latency-objective tracker (the /v1/slo and /metrics
// handlers and tests).
func (m *Manager) SLO() *slo.Tracker { return m.slo }

// Tracer returns the span tracer of a job that ran in this process
// (nil for unknown jobs and for finished jobs recovered from disk,
// whose spans died with the previous process).
func (m *Manager) Tracer(id string) *telemetry.Tracer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if job, ok := m.jobs[id]; ok {
		return job.tracer
	}
	return nil
}

// Start launches the scheduler; ctx cancellation begins the drain:
// dispatch stops, in-flight jobs stop at their next checkpoint boundary
// and are marked interrupted (their journals keep the completed
// prefix), and Wait returns once the executors settle.
func (m *Manager) Start(ctx context.Context) {
	m.ctx = ctx
	// A panic converted to an error anywhere in the pipeline dumps the
	// flight recorder while the events leading up to it are still in the
	// ring; the job-failed dump that follows captures the same trace's
	// tail, this one captures everything.
	robust.OnPanic(func(op string, v any) {
		m.flight.Record("event", "panic", "", map[string]any{"op": op, "value": fmt.Sprint(v)})
		m.dumpFlight("panic", "panic", "")
	})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-m.notify:
			}
			for m.dispatchOne() {
			}
		}
	}()
	m.kick()
}

// Wait blocks until the scheduler and every executor have returned.
func (m *Manager) Wait() { m.wg.Wait() }

// kick nudges the scheduler without blocking.
func (m *Manager) kick() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// SetDraining flips admission off (Submit fails with ErrDraining).
func (m *Manager) SetDraining() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Submit admits a job. It is idempotent: a spec hashing to a known job
// returns that job with created=false. A full queue sheds the
// submission with an OverloadedError carrying a Retry-After estimate.
func (m *Manager) Submit(spec JobSpec) (JobStatus, bool, error) {
	start := time.Now()
	spec.normalize()
	set, err := spec.parse()
	if err != nil {
		return JobStatus{}, false, err
	}
	id := jobID(spec.Key(set))

	m.mu.Lock()
	defer m.mu.Unlock()
	if job, ok := m.jobs[id]; ok {
		m.dedupC.Inc()
		return m.statusLocked(job), false, nil
	}
	if m.draining {
		return JobStatus{}, false, ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		m.shedC.Inc()
		return JobStatus{}, false, &OverloadedError{
			Queued:     len(m.queue),
			QueueDepth: m.cfg.QueueDepth,
			RetryAfter: m.retryAfterLocked(),
		}
	}
	if err := m.persistSpec(id, spec); err != nil {
		return JobStatus{}, false, err
	}
	job := &Job{ID: id, Spec: spec, State: StateQueued, Submitted: time.Now()}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.queue = append(m.queue, id)
	m.submittedC.Inc()
	m.queuedG.Set(float64(len(m.queue)))
	m.retryAfterLocked()
	m.slo.Observe(SeriesSubmitAccept, time.Since(start).Seconds())
	m.flight.Record("event", "serve.job.submitted", id, map[string]any{"kind": spec.Kind})
	m.logger.LogAttrs(context.Background(), slog.LevelInfo, "serve.job.submitted",
		slog.String("trace_id", id), slog.String("job_id", id), slog.String("kind", spec.Kind))
	m.kick()
	return m.statusLocked(job), true, nil
}

// retryAfterLocked estimates how long until a queue slot frees: the
// EWMA job duration scaled by how many jobs stand in line per executor,
// clamped to [1s, 60s] so a misbehaving estimate cannot tell clients to
// hammer the server or to go away for an hour.
func (m *Manager) retryAfterLocked() time.Duration {
	waves := float64(len(m.queue)+m.running)/float64(m.cfg.MaxConcurrent) + 1
	est := time.Duration(m.avgSeconds * waves * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	est = est.Round(time.Second)
	// Every recomputation republishes the estimate, so /metrics always
	// shows the Retry-After a shed submission would receive right now.
	m.retryAfterG.Set(est.Seconds())
	return est
}

// Job returns a status snapshot by ID.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(job), true
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// QueueDepths reports (queued, running) for admission introspection.
func (m *Manager) QueueDepths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue), m.running
}

func (m *Manager) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:         job.ID,
		Kind:       job.Spec.Kind,
		State:      job.State,
		Error:      job.Err,
		Resumed:    job.Resumed,
		Result:     job.Result,
		ResultHash: job.ResultHash,
		Submitted:  job.Submitted,
	}
	if !job.Started.IsZero() {
		t := job.Started
		st.Started = &t
	}
	if !job.Finished.IsZero() {
		t := job.Finished
		st.Finished = &t
	}
	if job.reg != nil {
		snap := job.reg.Snapshot()
		if len(snap.Counters) > 0 {
			st.Progress = snap.Counters
		}
	}
	return st
}

// dispatchOne starts the first queued job whose class has a free slot,
// honouring the global limiter. It reports whether it dispatched
// anything, so the scheduler loops until the queue head is blocked.
func (m *Manager) dispatchOne() bool {
	if m.ctx.Err() != nil {
		return false
	}
	m.mu.Lock()
	idx := -1
	for i, id := range m.queue {
		kind := m.jobs[id].Spec.Kind
		if limit := m.cfg.ClassLimits[kind]; limit > 0 && m.classRunning[kind] >= limit {
			continue
		}
		idx = i
		break
	}
	if idx < 0 {
		m.mu.Unlock()
		return false
	}
	if !m.limiter.TryAcquire() {
		m.mu.Unlock()
		return false
	}
	id := m.queue[idx]
	m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
	job := m.jobs[id]
	job.State = StateRunning
	job.Started = time.Now()
	job.reg = telemetry.NewRegistry()
	job.tracer = telemetry.NewTracer()
	m.classRunning[job.Spec.Kind]++
	m.running++
	m.queuedG.Set(float64(len(m.queue)))
	m.runningG.Set(float64(m.running))
	m.mu.Unlock()

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.limiter.Release()
		m.execute(job)
		m.mu.Lock()
		m.classRunning[job.Spec.Kind]--
		m.running--
		m.runningG.Set(float64(m.running))
		m.mu.Unlock()
		m.kick()
	}()
	return true
}

// execute runs one job to completion (or interruption) and records the
// outcome. Interrupted jobs keep their checkpoint journal and are
// re-queued by the next recover; they never persist a result.
func (m *Manager) execute(job *Job) {
	start := time.Now()
	result, err := m.runJob(m.ctx, job)
	elapsed := time.Since(start).Seconds()
	m.jobSeconds.Observe(elapsed)
	m.logJobOutcome(job, err, elapsed)

	// Any job still in flight when the drain began is interrupted, even
	// if it appears to have finished: a cancellation landing mid-sweep
	// taints the report (truncated plans, scenarios recorded
	// inconclusive with the ctx error), and distinguishing a tainted
	// result from a clean one that won the race is not worth the risk of
	// persisting the former. Discarding costs one resume-from-journal.
	interrupted := m.ctx.Err() != nil
	m.mu.Lock()
	defer m.mu.Unlock()
	// EWMA with a 0.3 step: recent jobs dominate, one outlier does not.
	m.avgSeconds += 0.3 * (elapsed - m.avgSeconds)
	m.retryAfterLocked()
	job.Finished = time.Now()
	switch {
	case interrupted:
		job.State = StateInterrupted
		job.Err = "interrupted by shutdown; will resume on restart"
		m.interruptedC.Inc()
	case err != nil:
		job.State = StateFailed
		job.Err = err.Error()
		m.failedC.Inc()
		m.persistResultLocked(job)
		m.slo.Observe(SeriesSubmitComplete, job.Finished.Sub(job.Submitted).Seconds())
		// A failed job's flight tail is the diagnosis artifact: dump it
		// before the ring forgets what led up to the failure.
		m.dumpFlight(job.ID, "job_failed", job.ID)
	default:
		job.State = StateDone
		job.Result = result
		job.ResultHash = jobID(checkpoint.HashBytes(result))
		m.completedC.Inc()
		m.persistResultLocked(job)
		m.slo.Observe(SeriesSubmitComplete, job.Finished.Sub(job.Submitted).Seconds())
	}
}

// logJobOutcome emits the job's lifecycle record and flight event. The
// outcome classification mirrors execute's (reading m.ctx, not the
// job table, so no lock is needed).
func (m *Manager) logJobOutcome(job *Job, err error, elapsed float64) {
	state := StateDone
	errText := ""
	switch {
	case m.ctx.Err() != nil:
		state = StateInterrupted
	case err != nil:
		state = StateFailed
		errText = err.Error()
	}
	attrs := map[string]any{"kind": job.Spec.Kind, "state": state, "elapsed_seconds": elapsed}
	if errText != "" {
		attrs["error"] = errText
	}
	m.flight.Record("event", "serve.job.finished", job.ID, attrs)
	logAttrs := []slog.Attr{
		slog.String("trace_id", job.ID),
		slog.String("job_id", job.ID),
		slog.String("kind", job.Spec.Kind),
		slog.String("state", state),
		slog.Any("elapsed_seconds", obslog.Volatile{Value: elapsed}),
	}
	if errText != "" {
		logAttrs = append(logAttrs, slog.String("error", errText))
	}
	level := slog.LevelInfo
	if state == StateFailed {
		level = slog.LevelWarn
	}
	m.logger.LogAttrs(context.Background(), level, "serve.job.finished", logAttrs...)
}

// dumpFlight writes a flight-recorder dump (filtered to traceID when
// non-empty) to <state>/flight/<name>.json. Dump failures are counted,
// never fatal: diagnostics must not take down the service.
func (m *Manager) dumpFlight(name, reason, traceID string) {
	path := filepath.Join(m.cfg.StateDir, "flight", name+".json")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err == nil {
		err = m.flight.WriteJSON(f, reason, traceID)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		m.hooks.Counter("serve_flight_dump_errors_total").Inc()
	}
}
