package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
)

// submitTenant submits a distinct spec accounted to the given tenant.
func submitTenant(t *testing.T, m *Manager, tenant string, seed int64, csv string) (JobStatus, error) {
	t.Helper()
	st, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: seed, Tenant: tenant})
	return st, err
}

// drainQueueOrder pops the DRR queue to exhaustion and returns the
// tenant sequence. The manager must not be started.
func drainQueueOrder(m *Manager) []string {
	var order []string
	for {
		m.mu.Lock()
		id := m.nextQueuedLocked()
		if id == "" {
			m.mu.Unlock()
			return order
		}
		order = append(order, m.jobs[id].Tenant)
		m.mu.Unlock()
	}
}

// TestDeficitRoundRobinHonorsWeights: with weights gold=2 bronze=1 the
// dequeue order interleaves two gold jobs per bronze job — weighted
// fair service, not FIFO and not starvation.
func TestDeficitRoundRobinHonorsWeights(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.TenantWeights = map[string]int{"gold": 2, "bronze": 1}
	})
	csv := fleetCSV(t, 3, 1, 5)
	for i := int64(1); i <= 3; i++ {
		if _, err := submitTenant(t, m, "gold", i, csv); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(4); i <= 6; i++ {
		if _, err := submitTenant(t, m, "bronze", i, csv); err != nil {
			t.Fatal(err)
		}
	}
	got := strings.Join(drainQueueOrder(m), ",")
	want := "gold,gold,bronze,gold,bronze,bronze"
	if got != want {
		t.Errorf("DRR order %s, want %s", got, want)
	}
}

// TestUniformWeightsRoundRobin: with no weights configured, tenants
// alternate one-for-one and a single tenant degenerates to plain FIFO.
func TestUniformWeightsRoundRobin(t *testing.T) {
	m := newTestManager(t, nil)
	csv := fleetCSV(t, 3, 1, 5)
	for i := int64(1); i <= 2; i++ {
		if _, err := submitTenant(t, m, "a", i, csv); err != nil {
			t.Fatal(err)
		}
		if _, err := submitTenant(t, m, "b", 10+i, csv); err != nil {
			t.Fatal(err)
		}
	}
	got := strings.Join(drainQueueOrder(m), ",")
	if got != "a,b,a,b" {
		t.Errorf("uniform order %s, want a,b,a,b", got)
	}
}

// TestTenantQuotaSheds: a tenant at its queued-job quota is shed with
// a quota-specific reason while other tenants keep submitting.
func TestTenantQuotaSheds(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.TenantQuotas = map[string]int{"capped": 1}
	})
	csv := fleetCSV(t, 3, 1, 5)
	if _, err := submitTenant(t, m, "capped", 1, csv); err != nil {
		t.Fatal(err)
	}
	_, err := submitTenant(t, m, "capped", 2, csv)
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("quota submit: got %v, want OverloadedError", err)
	}
	if overloaded.Tenant != "capped" || !strings.Contains(overloaded.Reason, "quota") {
		t.Errorf("shed error: tenant=%q reason=%q", overloaded.Tenant, overloaded.Reason)
	}
	if _, err := submitTenant(t, m, "free", 3, csv); err != nil {
		t.Errorf("uncapped tenant shed alongside the capped one: %v", err)
	}
}

// TestWeightedShedLowestFirst: as the shared queue fills, the
// low-weight tenant sheds at its proportional threshold while the
// high-weight tenant still has the full depth.
func TestWeightedShedLowestFirst(t *testing.T) {
	m := newTestManager(t, func(c *Config) {
		c.QueueDepth = 4
		c.TenantWeights = map[string]int{"gold": 2, "bronze": 1}
	})
	csv := fleetCSV(t, 3, 1, 5)
	// Two queued jobs: bronze (threshold 4*1/2 = 2) now sheds, gold
	// (threshold 4) does not.
	if _, err := submitTenant(t, m, "gold", 1, csv); err != nil {
		t.Fatal(err)
	}
	if _, err := submitTenant(t, m, "bronze", 2, csv); err != nil {
		t.Fatal(err)
	}
	_, err := submitTenant(t, m, "bronze", 3, csv)
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("bronze at threshold: got %v, want OverloadedError", err)
	}
	if !strings.Contains(overloaded.Reason, "weighted share") {
		t.Errorf("bronze shed reason %q", overloaded.Reason)
	}
	if _, err := submitTenant(t, m, "gold", 4, csv); err != nil {
		t.Fatalf("gold shed below its threshold: %v", err)
	}
	if _, err := submitTenant(t, m, "gold", 5, csv); err != nil {
		t.Fatalf("gold shed below its threshold: %v", err)
	}
	// Queue now holds 4 = gold's threshold: even gold sheds, as plain
	// queue-full.
	_, err = submitTenant(t, m, "gold", 6, csv)
	if !errors.As(err, &overloaded) {
		t.Fatalf("gold at depth: got %v, want OverloadedError", err)
	}
	if overloaded.Reason != "queue full" {
		t.Errorf("gold shed reason %q, want queue full", overloaded.Reason)
	}
}

// TestTenantExcludedFromIdempotencyKey: the same spec under two
// tenants is one job — the tenant shapes admission, not the result.
func TestTenantExcludedFromIdempotencyKey(t *testing.T) {
	m := newTestManager(t, nil)
	csv := fleetCSV(t, 3, 1, 5)
	first, err := submitTenant(t, m, "a", 1, csv)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, GASeed: 1, Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != second.ID {
		t.Errorf("tenant leaked into the job key: %s vs %s", first.ID, second.ID)
	}
}

// TestTenantValidation: structurally hostile tenant names are rejected
// at admission.
func TestTenantValidation(t *testing.T) {
	m := newTestManager(t, nil)
	csv := fleetCSV(t, 3, 1, 5)
	for _, bad := range []string{"has space", "sla/sh", strings.Repeat("x", 65), "new\nline"} {
		if _, _, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: csv, Tenant: bad}); err == nil {
			t.Errorf("tenant %q accepted", bad)
		}
	}
}

// TestTenantHeaderWins: the X-Ropus-Tenant header overrides any tenant
// embedded in the spec body and lands in the job status.
func TestTenantHeaderWins(t *testing.T) {
	_, base, _ := startServer(t, Config{StateDir: t.TempDir(), Workers: 1})
	csvJSON, err := json.Marshal(fleetCSV(t, 3, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	body := `{"kind":"translate","tenant":"body-tenant","tracesCsv":` + string(csvJSON) + `}`
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Ropus-Tenant", "header-tenant")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "header-tenant" {
		t.Errorf("tenant %q, want header-tenant", st.Tenant)
	}
}
