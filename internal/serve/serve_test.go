package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ropus/internal/trace"
	"ropus/internal/workload"
)

// fleetCSV renders a small deterministic fleet as trace CSV.
func fleetCSV(t *testing.T, apps int, weeks int, seed int64) string {
	t.Helper()
	smooth := apps - 2
	if smooth < 0 {
		smooth = 0
	}
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 1, Smooth: smooth,
		Weeks: weeks, Interval: time.Hour, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newTestManager builds a manager on a temp state dir.
func newTestManager(t *testing.T, mutate func(*Config)) *Manager {
	t.Helper()
	cfg := Config{StateDir: t.TempDir(), Workers: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewManager(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startManager runs the scheduler until the test ends.
func startManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	m.Start(ctx)
	t.Cleanup(func() {
		cancel()
		m.Wait()
	})
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, m *Manager, id string, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := m.Job(id)
	t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
	return JobStatus{}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, nil)
	csv := fleetCSV(t, 3, 1, 5)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"unknown kind", JobSpec{Kind: "mine-bitcoin", TracesCSV: csv}},
		{"missing traces", JobSpec{Kind: KindTranslate}},
		{"garbage traces", JobSpec{Kind: KindTranslate, TracesCSV: "not,a\ntrace"}},
		{"bad qos", JobSpec{Kind: KindTranslate, TracesCSV: csv, QoS: &QoSSpec{ULow: 2, UHigh: 0.5, UDegr: 0.9, MPercent: 97}}},
		{"bad theta", JobSpec{Kind: KindTranslate, TracesCSV: csv, Theta: 1.5}},
		{"bad horizon", JobSpec{Kind: KindPlan, TracesCSV: csv, HorizonWeeks: 5, StepWeeks: 2}},
	}
	for _, tc := range cases {
		if _, _, err := m.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if got, _ := m.QueueDepths(); got != 0 {
		t.Errorf("rejected submissions left %d jobs queued", got)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	m := newTestManager(t, nil)
	spec := JobSpec{Kind: KindTranslate, TracesCSV: fleetCSV(t, 3, 1, 5)}
	first, created, err := m.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	// The same spec with its defaults spelled out is the same job.
	explicit := spec
	explicit.Theta = 0.6
	explicit.GASeed = 42
	second, created, err := m.Submit(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("resubmission created a second job")
	}
	if first.ID != second.ID {
		t.Errorf("idempotency broken: %s vs %s", first.ID, second.ID)
	}
	// A result-determining change is a different job.
	other := spec
	other.Theta = 0.7
	third, created, err := m.Submit(other)
	if err != nil || !created {
		t.Fatalf("changed spec: created=%v err=%v", created, err)
	}
	if third.ID == first.ID {
		t.Error("different theta mapped to the same job")
	}
}

func TestTranslateJobLifecycle(t *testing.T) {
	m := newTestManager(t, nil)
	startManager(t, m)
	st, created, err := m.Submit(JobSpec{Kind: KindTranslate, TracesCSV: fleetCSV(t, 4, 1, 5)})
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.ResultHash == "" || len(done.Result) == 0 {
		t.Fatalf("done job missing result: %+v", done)
	}
	var apps []map[string]any
	if err := json.Unmarshal(done.Result, &apps); err != nil {
		t.Fatalf("result not a JSON array: %v", err)
	}
	if len(apps) != 4 {
		t.Errorf("translated %d apps, want 4", len(apps))
	}
	if done.Started == nil || done.Finished == nil {
		t.Error("done job missing timestamps")
	}
}

func TestFailoverAndPlanJobs(t *testing.T) {
	m := newTestManager(t, nil)
	startManager(t, m)
	csv := fleetCSV(t, 4, 3, 5)
	fo, _, err := m.Submit(JobSpec{Kind: KindFailover, TracesCSV: csv})
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := m.Submit(JobSpec{Kind: KindPlan, TracesCSV: csv, HorizonWeeks: 2, StepWeeks: 1})
	if err != nil {
		t.Fatal(err)
	}
	foSt := waitState(t, m, fo.ID, StateDone)
	var sum struct {
		Applications int              `json:"applications"`
		Failures     []map[string]any `json:"failures"`
	}
	if err := json.Unmarshal(foSt.Result, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Applications != 4 || len(sum.Failures) == 0 {
		t.Errorf("failover result: %d apps, %d scenarios", sum.Applications, len(sum.Failures))
	}
	if foSt.Progress["failure_scenarios_total"] == 0 {
		t.Errorf("failover job progress missing scenario counter: %v", foSt.Progress)
	}

	plSt := waitState(t, m, pl.ID, StateDone)
	var plan struct {
		Steps []map[string]any `json:"Steps"`
	}
	if err := json.Unmarshal(plSt.Result, &plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Errorf("plan has %d steps, want 2", len(plan.Steps))
	}
}

func TestFailedJobRecordsError(t *testing.T) {
	m := newTestManager(t, nil)
	startManager(t, m)
	// One week of history is too short for the planner: a deterministic
	// in-pipeline failure that admission cannot catch.
	st, _, err := m.Submit(JobSpec{Kind: KindPlan, TracesCSV: fleetCSV(t, 3, 1, 5), HorizonWeeks: 2, StepWeeks: 1})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, st.ID, StateFailed)
	if !strings.Contains(failed.Error, "weeks of history") {
		t.Errorf("failed job error = %q", failed.Error)
	}
}
