package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer builds and runs a Server on a loopback port, returning
// its base URL and a cancel that drains it.
func startServer(t *testing.T, cfg Config) (*Server, string, context.CancelFunc) {
	t.Helper()
	s, err := New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("server run: %v", err)
		}
	})
	return s, "http://" + s.Addr(), cancel
}

func postJob(t *testing.T, base string, spec JobSpec) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, st
}

func getJob(t *testing.T, base, id string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode
}

func waitHTTPState(t *testing.T, base, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, code := getJob(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return JobStatus{}
}

// TestHTTPEndToEnd drives the full HTTP surface: submit, dedup, status
// with progress, list without payloads, metrics, health, and the error
// paths (bad spec, unknown field, unknown job).
func TestHTTPEndToEnd(t *testing.T) {
	_, base, _ := startServer(t, Config{StateDir: t.TempDir(), Workers: 1})
	csv := fleetCSV(t, 4, 1, 5)

	resp, st := postJob(t, base, JobSpec{Kind: KindTranslate, TracesCSV: csv})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	if resp, st2 := postJob(t, base, JobSpec{Kind: KindTranslate, TracesCSV: csv}); resp.StatusCode != http.StatusOK || st2.ID != st.ID {
		t.Errorf("dedup resubmit: code=%d id=%s want %s", resp.StatusCode, st2.ID, st.ID)
	}
	done := waitHTTPState(t, base, st.ID, StateDone)
	if done.ResultHash == "" || len(done.Result) == 0 {
		t.Error("done job served without result")
	}

	// List drops result payloads but keeps every job.
	resp2, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].Result != nil {
		t.Errorf("list view: %d jobs, result leaked=%v", len(list.Jobs), list.Jobs[0].Result != nil)
	}

	// Metrics expose the serve_* family in Prometheus text format.
	resp3, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	for _, want := range []string{"serve_jobs_submitted_total 1", "serve_jobs_completed_total 1", "serve_http_requests_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp4, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp4.Body).Decode(&health)
	resp4.Body.Close()
	if health["status"] != "ok" || health["draining"] != false {
		t.Errorf("healthz: %v", health)
	}

	if resp, _ := postJob(t, base, JobSpec{Kind: "mine-bitcoin", TracesCSV: csv}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind: %d", resp.StatusCode)
	}
	r, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"kind":"translate","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d", r.StatusCode)
	}
	if _, code := getJob(t, base, "deadbeefdeadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d", code)
	}
}

// TestHTTPBurst is the acceptance gate: 100 concurrent submissions
// against a small queue must produce only 202/200/429 (no 5xx), and
// every accepted job must finish — accepted work is never lost.
func TestHTTPBurst(t *testing.T) {
	_, base, _ := startServer(t, Config{
		StateDir:      t.TempDir(),
		Workers:       1,
		QueueDepth:    16,
		MaxConcurrent: 4,
	})

	// 25 distinct specs, each submitted 4 times concurrently: dedup and
	// admission race on purpose.
	specs := make([]JobSpec, 25)
	for i := range specs {
		specs[i] = JobSpec{Kind: KindTranslate, TracesCSV: fleetCSV(t, 3, 1, int64(100+i))}
	}

	type outcome struct {
		code       int
		id         string
		retryAfter string
	}
	outcomes := make([]outcome, 100)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(specs[i%len(specs)])
			resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			o := outcome{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
				var st JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err == nil {
					o.id = st.ID
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	accepted := map[string]bool{}
	var shed int
	for i, o := range outcomes {
		switch o.code {
		case http.StatusAccepted, http.StatusOK:
			if o.id == "" {
				t.Errorf("submission %d accepted without an ID", i)
			}
			accepted[o.id] = true
		case http.StatusTooManyRequests:
			shed++
			if secs, err := strconv.Atoi(o.retryAfter); err != nil || secs < 1 || secs > 60 {
				t.Errorf("shed submission %d: Retry-After %q", i, o.retryAfter)
			}
		default:
			t.Errorf("submission %d: status %d", i, o.code)
		}
	}
	if len(accepted) == 0 {
		t.Fatal("burst admitted nothing")
	}
	t.Logf("burst: %d unique accepted, %d shed", len(accepted), shed)

	// No accepted job may be lost: each reaches done.
	for id := range accepted {
		waitHTTPState(t, base, id, StateDone)
	}
}

// TestHTTPDrainAndRestart exercises the full service contract: SIGTERM
// (ctx cancel) mid-sweep drains the server, a second server on the same
// state dir resumes the journaled job, and the resumed result is
// byte-identical to an undisturbed run.
func TestHTTPDrainAndRestart(t *testing.T) {
	dir := t.TempDir()
	csv := fleetCSV(t, 6, 1, 7)
	spec := JobSpec{Kind: KindFailover, TracesCSV: csv}

	// Baseline hash from an undisturbed manager on its own state dir.
	base := newTestManager(t, nil)
	startManager(t, base)
	baseSt, _, err := base.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, base, baseSt.ID, StateDone)

	s1, url1, cancel1 := startServer(t, Config{
		StateDir: dir, Workers: 1,
		Inject: slowSweeps(250 * time.Millisecond),
	})
	resp, st := postJob(t, url1, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitFor(t, "first checkpoint record over HTTP", func() bool {
		got, code := getJob(t, url1, st.ID)
		return code == http.StatusOK && got.Progress["checkpoint_records_written_total"] >= 1
	})
	cancel1()
	s1.mgr.Wait()

	// Draining servers refuse new work with 503 + Retry-After.
	// (The listener may already be closed; only assert when reachable.)
	if resp, err := http.Post(url1+"/v1/jobs", "application/json", strings.NewReader(`{}`)); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining submit: %d", resp.StatusCode)
		}
	}

	_, url2, _ := startServer(t, Config{StateDir: dir, Workers: 1})
	final := waitHTTPState(t, url2, st.ID, StateDone)
	if final.ResultHash != want.ResultHash {
		t.Errorf("resumed hash %s != uninterrupted %s", final.ResultHash, want.ResultHash)
	}
	if string(final.Result) != string(want.Result) {
		t.Error("resumed result bytes differ from uninterrupted run")
	}
}

// TestSSEJobEvents: the events stream emits at least one status event,
// ends with a terminal event when the job finishes, and 404s for
// unknown jobs. Result payloads never ride the stream.
func TestSSEJobEvents(t *testing.T) {
	_, base, _ := startServer(t, Config{
		StateDir: t.TempDir(), Workers: 1,
		SSEPoll: 20 * time.Millisecond,
	})
	resp, st := postJob(t, base, JobSpec{Kind: KindTranslate, TracesCSV: fleetCSV(t, 4, 1, 5)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	stream, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(stream.Body) // server closes the stream at the terminal event
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: status") {
		t.Error("stream carried no status events")
	}
	if !strings.Contains(text, "event: end") || !strings.Contains(text, `"state":"done"`) {
		t.Errorf("stream did not end with the terminal event:\n%s", text)
	}
	if strings.Contains(text, `"result":`) {
		t.Error("result payload leaked into the event stream")
	}
	// Every status event must parse and carry the job's ID.
	for _, line := range strings.Split(text, "\n") {
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok || strings.Contains(data, `"state":"done"`) && !strings.Contains(data, `"id"`) {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Errorf("unparseable event %q: %v", data, err)
		}
	}

	if r, err := http.Get(base + "/v1/jobs/deadbeefdeadbeef/events"); err == nil {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job events: %d", r.StatusCode)
		}
	}
}

// TestServerRejectsBadConfig: a server without a state dir never binds.
func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := New("127.0.0.1:0", Config{}); err == nil {
		t.Fatal("server accepted empty StateDir")
	}
}
