package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var ran [50]int32
		done := ForEach(context.Background(), workers, len(ran), func(i int) {
			atomic.AddInt32(&ran[i], 1)
		})
		if done != len(ran) {
			t.Fatalf("workers=%d: dispatched %d, want %d", workers, done, len(ran))
		}
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if done := ForEach(context.Background(), 4, 0, func(int) { t.Error("fn called") }); done != 0 {
		t.Fatalf("dispatched %d for n=0", done)
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var got []int
	ForEach(context.Background(), 1, 10, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken at %d: %v", i, got)
		}
	}
}

func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if done := ForEach(ctx, workers, 10, func(int) { t.Error("fn called") }); done != 0 {
			t.Fatalf("workers=%d: dispatched %d on a dead context", workers, done)
		}
	}
}

func TestForEachCancelMidwaySerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	done := ForEach(ctx, 1, 10, func(i int) {
		ran++
		if i == 3 {
			cancel()
		}
	})
	if done != 4 || ran != 4 {
		t.Fatalf("dispatched=%d ran=%d, want 4 (cancel lands after job 3)", done, ran)
	}
}

func TestForEachPanicResurfacesOnCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(context.Background(), workers, 20, func(i int) {
				if i == 2 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachCancelMidwayParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	seen := map[int]bool{}
	done := ForEach(ctx, 3, 100, func(i int) {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		if i == 5 {
			cancel()
		}
	})
	if done == 100 {
		t.Fatal("cancellation should have stopped dispatch early")
	}
	// Every dispatched index was processed, and nothing beyond.
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != done {
		t.Fatalf("processed %d jobs but dispatched %d", len(seen), done)
	}
	for i := 0; i < done; i++ {
		if !seen[i] {
			t.Fatalf("dispatched prefix has a hole at %d", i)
		}
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	l := NewLimiter(2)
	if l.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", l.Cap())
	}
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer l.Release()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent holders, limit 2", p)
	}
	if l.InUse() != 0 {
		t.Errorf("InUse() = %d after all releases, want 0", l.InUse())
	}
}

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire failed on an empty limiter")
	}
	if l.TryAcquire() {
		t.Fatal("second TryAcquire succeeded past the limit")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	l.Release()
}

func TestLimiterAcquireCancelled(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("Acquire on a full limiter with a cancelled ctx returned nil")
	}
	l.Release()
}

func TestLimiterOverRelease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unmatched Release did not panic")
		}
	}()
	NewLimiter(1).Release()
}

func TestLimiterDefaultCap(t *testing.T) {
	if c := NewLimiter(0).Cap(); c < 1 {
		t.Errorf("NewLimiter(0).Cap() = %d, want >= 1", c)
	}
}
