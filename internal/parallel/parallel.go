// Package parallel provides the bounded worker pool shared by the
// pipeline's fan-out points: the failure-scenario sweeps, the
// experiments matrices, and any future embarrassingly-parallel stage.
//
// The pool preserves the sequential code's degradation contract:
// cancellation stops dispatch at a job boundary, every job already
// dispatched runs to completion, and the dispatched jobs always form a
// contiguous prefix of the index range, so callers can keep their
// "completed prefix + Truncated flag" reporting semantics unchanged.
//
// The per-job boundary is also where the self-healing machinery hangs:
// callers wrap each job in a resilience retry and journal its completed
// result to a checkpoint (see internal/resilience and
// internal/checkpoint). Because jobs are index-addressed and results
// are written by index, a resumed sweep replays journaled jobs and
// recomputes the rest at any worker count with identical output.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for i in [0, n) on at most workers goroutines and
// returns the number of jobs dispatched. Jobs are dispatched in index
// order; when ctx is cancelled, dispatch stops at the next job boundary
// but in-flight jobs complete before ForEach returns, so indexes
// [0, dispatched) have all been processed and [dispatched, n) have not
// been started. workers <= 0 selects GOMAXPROCS.
//
// workers == 1 runs fn inline on the calling goroutine with a plain
// ctx.Err() check before each job — exactly the loop the sequential
// callers used — so a Workers=1 configuration is byte-identical in
// behaviour to the pre-pool code, including its cancellation edge.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i
			}
			fn(i)
		}
		return n
	}

	// A panic inside fn must not die on a worker goroutine (it would
	// crash the process past every caller-side recover, unlike the
	// sequential loop it replaces): the first panic value is captured,
	// the remaining jobs are drained unrun, and the panic is re-raised
	// on the calling goroutine once the pool settles.
	var (
		panicked atomic.Bool
		panicMu  sync.Mutex
		panicVal any
	)
	runJob := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked.Load() {
					panicVal = r
					panicked.Store(true)
				}
				panicMu.Unlock()
			}
		}()
		fn(i)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if panicked.Load() {
					continue
				}
				runJob(i)
			}
		}()
	}
	dispatched := 0
dispatch:
	for i := 0; i < n; i++ {
		if panicked.Load() {
			break
		}
		// The unbuffered channel means a job is "dispatched" only once a
		// worker has accepted it; cancellation therefore never strands an
		// index between dispatched-but-unprocessed states.
		select {
		case jobs <- i:
			dispatched++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return dispatched
}

// Limiter is a counting semaphore for long-lived concurrency bounds —
// the piece of the worker pool that outlives a single ForEach call.
// The planning service uses one to cap how many admitted jobs execute
// at once; ForEach remains the right tool inside each job's sweep.
type Limiter struct{ ch chan struct{} }

// NewLimiter returns a limiter admitting at most n concurrent holders.
// n <= 0 selects GOMAXPROCS.
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limiter{ch: make(chan struct{}, n)}
}

// Cap returns the limiter's capacity.
func (l *Limiter) Cap() int { return cap(l.ch) }

// InUse returns the number of slots currently held. It is inherently
// racy under concurrency and intended for metrics and admission
// estimates, not synchronization.
func (l *Limiter) InUse() int { return len(l.ch) }

// Acquire blocks until a slot is free or ctx is cancelled.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("parallel: acquire: %w", ctx.Err())
	}
}

// TryAcquire takes a slot without blocking and reports success.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire. Releasing more
// than was acquired panics: it is always a caller bug.
func (l *Limiter) Release() {
	select {
	case <-l.ch:
	default:
		panic("parallel: Limiter.Release without a matching Acquire")
	}
}
