package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ropus/internal/telemetry"
)

func TestMarkTransient(t *testing.T) {
	base := errors.New("boom")
	if Transient(base) {
		t.Error("unclassified error must default to permanent")
	}
	m := MarkTransient(base)
	if !Transient(m) {
		t.Error("marked error must be transient")
	}
	if !errors.Is(m, base) {
		t.Error("marking must preserve the original chain")
	}
	if !errors.Is(m, ErrTransient) {
		t.Error("marked error must match ErrTransient with errors.Is")
	}
	if m.Error() != "boom" {
		t.Errorf("marking changed the message: %q", m.Error())
	}
	wrapped := fmt.Errorf("outer: %w", m)
	if !Transient(wrapped) {
		t.Error("classification must survive further wrapping")
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) must be nil")
	}
	if Transient(context.Canceled) || Transient(MarkTransient(context.Canceled)) {
		t.Error("cancellation is never transient")
	}
}

func TestPolicyValidate(t *testing.T) {
	good := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good policy rejected: %v", err)
	}
	bad := []Policy{
		{MaxAttempts: -1},
		{BaseDelay: -time.Second},
		{MaxDelay: -1},
		{Jitter: 1.5},
		{Jitter: -0.1},
		{AttemptTimeout: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 40 * time.Millisecond, Jitter: 0.5, Seed: 7}
	for attempt := 1; attempt <= 4; attempt++ {
		a := p.Backoff(attempt, "srv-01")
		b := p.Backoff(attempt, "srv-01")
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, a, b)
		}
		nominal := p.BaseDelay << (attempt - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		lo := time.Duration(float64(nominal) * 0.5)
		hi := time.Duration(float64(nominal) * 1.5)
		if a < lo || a > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, a, lo, hi)
		}
	}
	if p.Backoff(1, "srv-01") == p.Backoff(1, "srv-02") {
		t.Log("two keys drew identical jitter (possible but unlikely)")
	}
	if (Policy{}).Backoff(1, "k") != 0 {
		t.Error("zero policy must not back off")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	transient := MarkTransient(errors.New("flaky"))

	calls := 0
	v, stats, err := Do(context.Background(), p, "k", func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, transient
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Do = (%v, %v), want (42, nil)", v, err)
	}
	if calls != 3 || stats.Attempts != 3 || !stats.Recovered || stats.GaveUp {
		t.Errorf("stats = %+v after %d calls, want 3 attempts recovered", stats, calls)
	}

	calls = 0
	perm := errors.New("permanent")
	_, stats, err = Do(context.Background(), p, "k", func(context.Context) (int, error) {
		calls++
		return 0, perm
	})
	if calls != 1 || !errors.Is(err, perm) {
		t.Errorf("permanent error retried: %d calls, err %v", calls, err)
	}
	if stats.Recovered || stats.GaveUp {
		t.Errorf("first-attempt permanent failure must set neither flag: %+v", stats)
	}

	calls = 0
	_, stats, err = Do(context.Background(), p, "k", func(context.Context) (int, error) {
		calls++
		return 0, transient
	})
	if calls != 3 || !stats.GaveUp || stats.Recovered {
		t.Errorf("exhausted policy: %d calls, stats %+v", calls, stats)
	}
	if !Transient(err) {
		t.Error("give-up must surface the transient error")
	}
}

func TestDoZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	_, stats, err := Do(context.Background(), Policy{}, "k", func(context.Context) (int, error) {
		calls++
		return 0, MarkTransient(errors.New("flaky"))
	})
	if calls != 1 || err == nil {
		t.Errorf("zero policy must make exactly one attempt, made %d", calls)
	}
	if stats.Attempts != 1 || !stats.GaveUp {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDoParentCancellationStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond}
	calls := 0
	_, stats, err := Do(ctx, p, "k", func(context.Context) (int, error) {
		calls++
		if calls == 2 {
			cancel()
		}
		return 0, MarkTransient(errors.New("flaky"))
	})
	if calls != 2 {
		t.Errorf("expected the cancel to stop retries after 2 calls, made %d", calls)
	}
	if err == nil || stats.GaveUp {
		t.Errorf("cancelled run: err %v, stats %+v", err, stats)
	}
}

func TestDoAttemptDeadlineIsRetried(t *testing.T) {
	p := Policy{MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond}
	calls := 0
	v, stats, err := Do(context.Background(), p, "k", func(ctx context.Context) (string, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // burn the attempt deadline
			return "", fmt.Errorf("cut short: %w", ctx.Err())
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = (%q, %v), want recovered success", v, err)
	}
	if calls != 2 || !stats.Recovered {
		t.Errorf("deadline-expired attempt not retried: calls %d, stats %+v", calls, stats)
	}
}

func TestDoCountersRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := Policy{MaxAttempts: 3, Hooks: telemetry.New(reg, nil)}
	calls := 0
	_, _, err := Do(context.Background(), p, "k", func(context.Context) (int, error) {
		calls++
		if calls < 2 {
			return 0, MarkTransient(errors.New("flaky"))
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[string]int64{
		"resilience_attempts_total":  2,
		"resilience_retries_total":   1,
		"resilience_recovered_total": 1,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}
