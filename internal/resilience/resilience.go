// Package resilience makes the planning pipeline self-healing: it
// retries transient failures of independent work units (failure
// scenarios, experiment cells, planner steps) under a deterministic
// backoff policy instead of recording them inconclusive on the first
// fault.
//
// The package distinguishes *transient* faults (worth retrying: an
// injected blip, a timed-out attempt) from *permanent* ones (retrying
// cannot help: invalid input, a repeated solver bug). Errors are
// classified by sentinel wrapping: MarkTransient chains
// ErrTransient into an error's Unwrap tree so Transient can recover
// the classification with errors.Is anywhere up the call stack.
// Unclassified errors default to permanent, which keeps every
// pre-existing fault script and degradation path behaving exactly as
// before a Policy is configured.
//
// Backoff is deterministic: the jittered delay for (key, attempt) is a
// pure function of the policy seed, so a retry schedule does not depend
// on worker count, scheduling order, or wall-clock state — the same
// property the rest of the repository demands of its sweeps.
//
// The package is stdlib-only (plus the repo's own telemetry seam).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ropus/internal/telemetry"
)

// ErrTransient is the classification sentinel: an error whose Unwrap
// tree contains it is worth retrying. Use MarkTransient to attach it.
var ErrTransient = errors.New("resilience: transient fault")

// marked chains ErrTransient into err's Unwrap tree without changing
// its message.
type marked struct{ err error }

func (m *marked) Error() string   { return m.err.Error() }
func (m *marked) Unwrap() []error { return []error{m.err, ErrTransient} }

// MarkTransient classifies err as transient (retry may help). The
// message is unchanged; errors.Is / errors.As still see the original
// chain, plus ErrTransient. Marking nil returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err}
}

// Transient reports whether err is classified transient. Context
// cancellation and deadline errors are never transient from the
// caller's point of view: Do handles per-attempt deadlines itself, and
// a cancelled parent must not be retried against.
func Transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, ErrTransient)
}

// Policy bounds the retry behaviour for one class of work units. The
// zero value disables retries (one attempt, no deadline), so threading
// a Policy through existing configurations changes nothing until a
// caller opts in.
type Policy struct {
	// MaxAttempts is the total number of attempts per unit (first try
	// included). 0 and 1 both mean "no retries".
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt n waits
	// BaseDelay * 2^(n-1), capped at MaxDelay. 0 retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Jitter spreads each backoff uniformly over [1-Jitter, 1+Jitter]
	// times the nominal delay, drawn deterministically from Seed and the
	// unit key; must be in [0, 1]. 0 disables jitter.
	Jitter float64
	// Seed drives the deterministic jitter; the same (Seed, key,
	// attempt) always yields the same delay.
	Seed int64
	// AttemptTimeout bounds each attempt with a per-attempt deadline
	// (context.WithTimeout); 0 leaves attempts unbounded. Do retries an
	// attempt cut short by its own deadline — a deadline is transient by
	// definition — but never one cancelled by the parent context.
	AttemptTimeout time.Duration
	// Hooks receives retry telemetry (resilience_* counters); nil
	// disables it.
	Hooks telemetry.Hooks
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("resilience: MaxAttempts %d < 0", p.MaxAttempts)
	}
	if p.BaseDelay < 0 {
		return fmt.Errorf("resilience: BaseDelay %v < 0", p.BaseDelay)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("resilience: MaxDelay %v < 0", p.MaxDelay)
	}
	if p.Jitter < 0 || p.Jitter > 1 || p.Jitter != p.Jitter {
		return fmt.Errorf("resilience: Jitter %v outside [0,1]", p.Jitter)
	}
	if p.AttemptTimeout < 0 {
		return fmt.Errorf("resilience: AttemptTimeout %v < 0", p.AttemptTimeout)
	}
	return nil
}

// attempts normalizes MaxAttempts: the zero policy makes one attempt.
func (p Policy) attempts() int {
	if p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the deterministic delay before retry number attempt
// (1-based: attempt 1 is the delay between the first failure and the
// second try) of the unit identified by key.
func (p Policy) Backoff(attempt int, key string) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		// A pure FNV-1a fold of (seed, key, attempt) mapped to [0, 1):
		// no shared RNG state, so the schedule is identical at every
		// worker count and interleaving.
		u := unit01(p.Seed, key, attempt)
		factor := 1 - p.Jitter + 2*p.Jitter*u
		d = time.Duration(float64(d) * factor)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// unit01 deterministically maps (seed, key, attempt) to [0, 1).
func unit01(seed int64, key string, attempt int) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	fold(uint64(seed))
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	fold(uint64(int64(attempt)))
	// 53 bits of the hash make an exact float64 in [0, 1).
	return float64(h>>11) / (1 << 53)
}

// Stats reports what Do did for one unit.
type Stats struct {
	// Attempts is the number of attempts made (>= 1 whenever fn ran).
	Attempts int
	// Recovered reports a success after at least one failed attempt.
	Recovered bool
	// GaveUp reports a transient failure that exhausted MaxAttempts.
	// A permanent failure on the first attempt sets neither flag.
	GaveUp bool
}

// Do runs fn under the policy: fn is attempted up to MaxAttempts times,
// each attempt bounded by AttemptTimeout, with deterministic backoff
// between attempts. An attempt is retried when its error is transient
// (Transient, or the attempt's own deadline expired while the parent
// context is still alive); permanent errors and parent cancellation
// return immediately. The returned error is the last attempt's.
//
// fn receives the attempt context and must honour it: work cut short by
// the attempt deadline should return a (transient) error rather than a
// silently partial result.
func Do[T any](ctx context.Context, p Policy, key string, fn func(ctx context.Context) (T, error)) (T, Stats, error) {
	h := telemetry.OrNop(p.Hooks)
	attemptsC := h.Counter("resilience_attempts_total")
	retriesC := h.Counter("resilience_retries_total")
	recoveredC := h.Counter("resilience_recovered_total")
	gaveUpC := h.Counter("resilience_giveups_total")

	var (
		last  T
		err   error
		stats Stats
	)
	max := p.attempts()
	for attempt := 1; attempt <= max; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		last, err = fn(attemptCtx)
		deadlined := attemptCtx.Err() != nil && ctx.Err() == nil
		cancel()
		stats.Attempts = attempt
		attemptsC.Inc()
		if err == nil {
			stats.Recovered = attempt > 1
			if stats.Recovered {
				recoveredC.Inc()
			}
			return last, stats, nil
		}
		if ctx.Err() != nil {
			// The parent is gone; whatever fn returned, stop here.
			return last, stats, err
		}
		if !Transient(err) && !deadlined {
			return last, stats, err // permanent: retrying cannot help
		}
		if attempt == max {
			stats.GaveUp = true
			gaveUpC.Inc()
			return last, stats, err
		}
		retriesC.Inc()
		if d := p.Backoff(attempt, key); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return last, stats, err
			}
		}
	}
	return last, stats, err
}
