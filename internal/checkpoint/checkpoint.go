// Package checkpoint makes long sweeps crash-safe: completed work-unit
// results are appended to a versioned, fsync'd JSONL journal as they
// finish, and a resumed run replays the journal to skip the units it
// already has. Replay is bit-exact — journaled results round-trip
// through JSON unchanged (encoding/json emits the shortest float64
// representation that round-trips) — so a sweep killed at an arbitrary
// point and resumed produces a report byte-identical to an
// uninterrupted run, at any worker count.
//
// Journal layout (one JSON object per line):
//
//	{"kind":"ropus-checkpoint","version":1,"run":"<hex run hash>"}
//	{"unit":"failure.scenario","key":"<hex>","sum":"<hex>","data":{...}}
//	...
//
// The header binds the journal to a run configuration: Open refuses to
// resume from a journal whose run hash differs (same seed, same
// inputs; worker counts are deliberately excluded by callers). Each
// record carries an FNV-1a checksum of its data bytes. The decoder
// tolerates exactly one torn tail line — the expected residue of a
// SIGKILL mid-write — and rejects corruption anywhere else.
//
// The package is stdlib-only and a nil *Journal is a no-op sink, so
// callers thread it unconditionally.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"

	"ropus/internal/telemetry"
)

// Version is the journal format version this package writes.
const Version = 1

// kind guards against feeding an arbitrary JSONL file to Open.
const kind = "ropus-checkpoint"

// ErrRunMismatch reports a resume against a journal written by a
// different run configuration (different inputs, seeds or flags).
var ErrRunMismatch = errors.New("checkpoint: journal belongs to a different run configuration")

// ErrVersion reports a journal written by an unknown format version.
var ErrVersion = errors.New("checkpoint: unsupported journal version")

// ErrCorrupt reports a record that is unreadable for a reason other
// than a torn final line: bad JSON mid-file, a checksum mismatch, or a
// malformed key.
var ErrCorrupt = errors.New("checkpoint: corrupt journal record")

// header is the first line of every journal.
type header struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Run     string `json:"run"`
	// Epoch is the writer's lease epoch (fleet-mode serve): each change
	// of job ownership writes its own journal file stamped with its
	// epoch, so a stolen job resumes from the newest completed prefix
	// and a zombie writer can never interleave appends into the thief's
	// file. Zero (single-process journals) is omitted on the wire.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Record is one journaled work-unit result.
type Record struct {
	// Unit names the kind of work unit ("failure.scenario",
	// "planner.step", "experiments.table1", ...).
	Unit string `json:"unit"`
	// Key is the unit's FNV-1a content hash, in hex.
	Key string `json:"key"`
	// Sum is the FNV-1a checksum of Data, in hex.
	Sum string `json:"sum"`
	// Data is the unit's JSON-encoded result.
	Data json.RawMessage `json:"data"`
}

// Journal is an append-only checkpoint file plus the in-memory index of
// every record it already holds. It is safe for concurrent use; each
// append is flushed and fsync'd before Append returns, so a record is
// either durable or absent — never half-trusted.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	seen     map[string]json.RawMessage // unit + "\x00" + key -> data
	replayed int
	written  int
	hooks    telemetry.Hooks
}

// Options extends Open for fleet-mode callers.
type Options struct {
	// Epoch is the writer's lease epoch, recorded in the journal header.
	// Zero keeps the single-process wire format byte-identical.
	Epoch uint64
	// ResumeFrom, when non-empty and resume is true, reads the replayed
	// prefix from that path instead of the journal's own: a stealing
	// instance resumes from the previous owner's per-epoch journal while
	// writing its continuation into its own.
	ResumeFrom string
}

// Open creates (resume=false) or opens-and-replays (resume=true) the
// journal at path for the run identified by runHash.
//
// With resume=false an existing file is truncated: the journal records
// this run only. With resume=true an existing journal is decoded — its
// header must match runHash or Open fails with ErrRunMismatch — and its
// records become available through Lookup; a missing file starts empty.
// hooks (nil ok) receives checkpoint_* counters.
func Open(path string, runHash uint64, resume bool, hooks telemetry.Hooks) (*Journal, error) {
	return OpenWith(path, runHash, resume, hooks, Options{})
}

// OpenWith is Open with fleet Options: a lease epoch stamped into the
// header and an optional separate resume source.
func OpenWith(path string, runHash uint64, resume bool, hooks telemetry.Hooks, opts Options) (*Journal, error) {
	j := &Journal{
		seen:  make(map[string]json.RawMessage),
		hooks: telemetry.OrNop(hooks),
	}
	if resume {
		source := path
		if opts.ResumeFrom != "" {
			source = opts.ResumeFrom
		}
		if prev, err := os.Open(source); err == nil {
			run, _, records, derr := DecodeWithMeta(prev)
			prev.Close()
			if derr != nil {
				return nil, fmt.Errorf("checkpoint: resume %s: %w", source, derr)
			}
			if run != "" && run != hexU64(runHash) {
				return nil, fmt.Errorf("%w: journal run %s, this run %s (path %s)",
					ErrRunMismatch, run, hexU64(runHash), source)
			}
			for _, r := range records {
				j.seen[r.Unit+"\x00"+r.Key] = r.Data
			}
			j.replayed = len(records)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("checkpoint: resume %s: %w", source, err)
		}
	}

	// Rewrite the journal: header first, then the replayed records, so
	// the file never accumulates a stale torn tail and a second resume
	// sees a clean prefix. O_TRUNC + full rewrite keeps the invariant
	// "every line before the last is valid" without a compaction pass.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	j.f = f
	hdr, err := json.Marshal(header{Kind: kind, Version: Version, Run: hexU64(runHash), Epoch: opts.Epoch})
	if err != nil {
		f.Close()
		return nil, err
	}
	lines := append(hdr, '\n')
	for key, data := range j.seen {
		unit, k, _ := bytes.Cut([]byte(key), []byte{0})
		line, err := encodeRecord(Record{Unit: string(unit), Key: string(k), Data: data})
		if err != nil {
			f.Close()
			return nil, err
		}
		lines = append(lines, line...)
	}
	if _, err := f.Write(lines); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: sync %s: %w", path, err)
	}
	return j, nil
}

// Replayed returns the number of records loaded from a resumed journal.
func (j *Journal) Replayed() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// Written returns the number of records appended by this process.
func (j *Journal) Written() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.written
}

// Lookup fetches the journaled result for (unit, key) into out and
// reports whether one was present. A nil journal never has entries.
func (j *Journal) Lookup(unit string, key uint64, out any) (bool, error) {
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	data, ok := j.seen[unit+"\x00"+hexU64(key)]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return false, fmt.Errorf("checkpoint: decode %s[%s]: %w", unit, hexU64(key), err)
	}
	j.hooks.Counter("checkpoint_replayed_units_total").Inc()
	return true, nil
}

// Append journals one completed work-unit result. The record is
// durable (written, flushed, fsync'd) before Append returns. Appending
// to a nil journal is a no-op. A unit already present (journaled by the
// resumed run) is skipped silently, keeping replayed prefixes stable.
func (j *Journal) Append(unit string, key uint64, result any) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %s[%s]: %w", unit, hexU64(key), err)
	}
	line, err := encodeRecord(Record{Unit: unit, Key: hexU64(key), Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	mapKey := unit + "\x00" + hexU64(key)
	if _, dup := j.seen[mapKey]; dup {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	j.seen[mapKey] = data
	j.written++
	j.hooks.Counter("checkpoint_records_written_total").Inc()
	return nil
}

// Close releases the journal file. The journal stays valid on disk.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// encodeRecord renders one journal line, computing the data checksum.
func encodeRecord(r Record) ([]byte, error) {
	r.Sum = hexU64(fnvSum(r.Data))
	line, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// Decode reads a journal stream: the header line, then every record.
// It returns the header's run hash (hex; empty when the journal died
// before the header was durable) and the complete records. A torn
// final line (no trailing newline, or unparsable/checksum-bad in the
// last position) is tolerated and dropped — it is the footprint of a
// crash mid-append. Anything else unreadable fails with ErrCorrupt,
// and an unknown version with ErrVersion.
func Decode(r io.Reader) (run string, records []Record, err error) {
	run, _, records, err = DecodeWithMeta(r)
	return run, records, err
}

// DecodeWithMeta is Decode plus the header's lease epoch (zero for
// single-process journals and for pre-fleet files).
func DecodeWithMeta(r io.Reader) (run string, epoch uint64, records []Record, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	readLine := func() ([]byte, bool, error) {
		line, err := br.ReadBytes('\n')
		switch {
		case err == nil:
			return line[:len(line)-1], true, nil
		case errors.Is(err, io.EOF):
			return line, false, nil // torn: no trailing newline
		default:
			return nil, false, err
		}
	}

	first, complete, err := readLine()
	if err != nil {
		return "", 0, nil, err
	}
	var h header
	if uerr := json.Unmarshal(first, &h); uerr != nil || h.Kind != kind {
		if !complete {
			// A journal that died before the header fsync'd: empty.
			return "", 0, nil, nil
		}
		return "", 0, nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if h.Version != Version {
		return "", 0, nil, fmt.Errorf("%w: journal version %d, supported %d", ErrVersion, h.Version, Version)
	}
	if _, perr := strconv.ParseUint(h.Run, 16, 64); perr != nil {
		return "", 0, nil, fmt.Errorf("%w: bad run hash %q", ErrCorrupt, h.Run)
	}
	run = h.Run
	epoch = h.Epoch

	for {
		line, complete, err := readLine()
		if err != nil {
			return "", 0, nil, err
		}
		if len(line) == 0 {
			if !complete {
				return run, epoch, records, nil // clean EOF
			}
			return "", 0, nil, fmt.Errorf("%w: empty line", ErrCorrupt)
		}
		var rec Record
		if uerr := parseRecord(line, &rec); uerr != nil {
			if !complete {
				return run, epoch, records, nil // torn tail: drop it
			}
			return "", 0, nil, uerr
		}
		if !complete {
			// A fully parsable line without its newline is still the
			// torn tail of a crashed append; its fsync never finished,
			// so do not trust it.
			return run, epoch, records, nil
		}
		records = append(records, rec)
	}
}

// parseRecord decodes and verifies one record line.
func parseRecord(line []byte, rec *Record) error {
	if err := json.Unmarshal(line, rec); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rec.Unit == "" || len(rec.Data) == 0 {
		return fmt.Errorf("%w: missing unit or data", ErrCorrupt)
	}
	if _, err := strconv.ParseUint(rec.Key, 16, 64); err != nil {
		return fmt.Errorf("%w: bad key %q", ErrCorrupt, rec.Key)
	}
	if rec.Sum != hexU64(fnvSum(rec.Data)) {
		return fmt.Errorf("%w: checksum mismatch for %s[%s]", ErrCorrupt, rec.Unit, rec.Key)
	}
	return nil
}

// hexU64 renders a hash as fixed-width hex.
func hexU64(v uint64) string { return fmt.Sprintf("%016x", v) }

// ---------------------------------------------------------------------
// Content hashing: the same FNV-1a 64-bit fold the placement simulation
// cache keys with, exposed so callers can derive work-unit keys and run
// hashes from the inputs that actually determine the result.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashBytes returns the FNV-1a 64-bit hash of b — the fold journal
// records are checksummed with, exported so callers can fingerprint
// result documents the same way (the serving layer's result hashes).
func HashBytes(b []byte) uint64 { return fnvSum(b) }

// fnvSum hashes a byte slice.
func fnvSum(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Hasher accumulates an FNV-1a content hash over typed fields. Each
// write is length- or type-delimited where ambiguity is possible, so
// ("ab","c") and ("a","bc") hash differently.
type Hasher struct{ h uint64 }

// NewHasher starts a hash at the FNV offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset64} }

func (h *Hasher) u64(v uint64) *Hasher {
	for i := 0; i < 8; i++ {
		h.h ^= (v >> (8 * i)) & 0xff
		h.h *= fnvPrime64
	}
	return h
}

// Int folds an integer.
func (h *Hasher) Int(v int64) *Hasher { return h.u64(uint64(v)) }

// Float folds a float64 by bit pattern.
func (h *Hasher) Float(v float64) *Hasher { return h.u64(math.Float64bits(v)) }

// Floats folds a sample slice, length-delimited.
func (h *Hasher) Floats(vs []float64) *Hasher {
	h.Int(int64(len(vs)))
	for _, v := range vs {
		h.Float(v)
	}
	return h
}

// String folds a string, length-delimited.
func (h *Hasher) String(s string) *Hasher {
	h.Int(int64(len(s)))
	for i := 0; i < len(s); i++ {
		h.h ^= uint64(s[i])
		h.h *= fnvPrime64
	}
	return h
}

// Bool folds a boolean.
func (h *Hasher) Bool(v bool) *Hasher {
	if v {
		return h.Int(1)
	}
	return h.Int(0)
}

// Sum returns the accumulated hash.
func (h *Hasher) Sum() uint64 { return h.h }
