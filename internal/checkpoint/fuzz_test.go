package checkpoint

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary bytes — seeded with valid journals,
// truncations, corrupt checksums and version skew — at the journal
// decoder. The decoder must never panic, must accept every record it
// itself wrote, and must fail only with its typed errors.
func FuzzDecode(f *testing.F) {
	valid := `{"kind":"ropus-checkpoint","version":1,"run":"00000000deadbeef"}` + "\n" +
		string(mustEncode(Record{Unit: "u", Key: "0000000000000001", Data: []byte(`{"a":1}`)}))
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)-3]))  // torn tail
	f.Add([]byte(""))                    // empty file
	f.Add([]byte("{"))                   // torn header
	f.Add([]byte("not json at all\n\n")) // garbage
	f.Add([]byte(`{"kind":"ropus-checkpoint","version":2,"run":"00"}` + "\n")) // version skew
	f.Add([]byte(strings.Replace(valid, `"a":1`, `"a":2`, 1)))                 // checksum mismatch
	f.Add([]byte(strings.Replace(valid, "0000000000000001", "zznothex", 1)))   // bad key

	f.Fuzz(func(t *testing.T, data []byte) {
		run, records, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode returned an untyped error: %v", err)
			}
			return
		}
		if run == "" {
			return // decoded as a pre-header crash: nothing to re-check
		}
		// Whatever decoded must re-encode and decode to the same records.
		var buf bytes.Buffer
		buf.WriteString(`{"kind":"ropus-checkpoint","version":1,"run":"` + run + `"}` + "\n")
		for _, r := range records {
			line, err := encodeRecord(r)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			buf.Write(line)
		}
		_, again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode of decoder output failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("re-decode kept %d of %d records", len(again), len(records))
		}
		for i := range again {
			if again[i].Unit != records[i].Unit || again[i].Key != records[i].Key ||
				!bytes.Equal(again[i].Data, records[i].Data) {
				t.Fatalf("record %d changed across re-decode", i)
			}
		}
	})
}

func mustEncode(r Record) []byte {
	line, err := encodeRecord(r)
	if err != nil {
		panic(err)
	}
	return line
}
