package checkpoint

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestEpochRoundTrip: OpenWith stamps the lease epoch into the header
// and DecodeWithMeta reads it back; epoch zero stays off the wire so
// single-process journals are byte-identical to the pre-fleet format.
func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	j, err := OpenWith(path, 42, false, nil, Options{Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("unit", 1, map[string]int{"v": 7}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, epoch, records, err := DecodeWithMeta(f)
	if err != nil {
		t.Fatal(err)
	}
	if run != hexU64(42) || epoch != 3 || len(records) != 1 {
		t.Fatalf("decoded run=%s epoch=%d records=%d", run, epoch, len(records))
	}

	// Epoch zero is omitted: the first line must not mention it.
	plain := filepath.Join(dir, "plain.ckpt")
	j2, err := Open(plain, 42, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(string(data), "\n")
	if strings.Contains(first, "epoch") {
		t.Errorf("epoch-0 header leaks the field: %s", first)
	}
}

// TestResumeFromOtherPath: a stealing instance replays the previous
// owner's per-epoch journal while writing its continuation into its
// own file; the source is left untouched.
func TestResumeFromOtherPath(t *testing.T) {
	dir := t.TempDir()
	prev := filepath.Join(dir, "job.e1.ckpt")
	j1, err := OpenWith(prev, 42, false, nil, Options{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j1.Append("scenario", uint64(i), i*i); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()
	before, err := os.ReadFile(prev)
	if err != nil {
		t.Fatal(err)
	}

	next := filepath.Join(dir, "job.e2.ckpt")
	j2, err := OpenWith(next, 42, true, nil, Options{Epoch: 2, ResumeFrom: prev})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != 3 {
		t.Fatalf("replayed %d records, want 3", got)
	}
	var v int
	if ok, err := j2.Lookup("scenario", 1, &v); err != nil || !ok || v != 1 {
		t.Fatalf("lookup replayed record: ok=%v v=%d err=%v", ok, v, err)
	}
	if err := j2.Append("scenario", 3, 9); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(prev)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("resume-from mutated the source journal")
	}
	// The thief's journal carries its own epoch.
	f, _ := os.Open(next)
	defer f.Close()
	_, epoch, records, err := DecodeWithMeta(f)
	if err != nil || epoch != 2 || len(records) != 4 {
		t.Fatalf("thief journal: epoch=%d records=%d err=%v", epoch, len(records), err)
	}
	// A mismatched run hash is still rejected across files.
	if _, err := OpenWith(filepath.Join(dir, "job.e3.ckpt"), 99, true, nil,
		Options{Epoch: 3, ResumeFrom: prev}); err == nil {
		t.Error("resume-from accepted a journal of a different run")
	}
}

// TestConcurrentReadersSeeNoTornTail (satellite): one writer appends to
// a journal while two readers repeatedly decode the same file — the
// exact access pattern of a fleet instance scanning a peer's in-flight
// checkpoint journal before a steal. Every read must either decode
// cleanly to a prefix of the appended sequence (the fsync'd records)
// or, at worst, drop the single in-flight tail line — never fail, and
// never surface a torn or reordered record. Run under -race.
func TestConcurrentReadersSeeNoTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.ckpt")
	const total = 150
	j, err := OpenWith(path, 7, false, nil, Options{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				f, err := os.Open(path)
				if err != nil {
					t.Errorf("reader %d: open: %v", r, err)
					return
				}
				run, epoch, records, derr := DecodeWithMeta(bufio.NewReader(f))
				f.Close()
				if derr != nil {
					t.Errorf("reader %d: decode mid-append failed: %v", r, derr)
					return
				}
				if run != hexU64(7) || epoch != 1 {
					t.Errorf("reader %d: header run=%s epoch=%d", r, run, epoch)
					return
				}
				if len(records) > total {
					t.Errorf("reader %d: %d records, wrote at most %d", r, len(records), total)
					return
				}
				// Records must be the exact in-order prefix: record i is
				// ("scenario", key=i, data=i*3). Anything else is a torn or
				// interleaved read.
				for i, rec := range records {
					var v int
					if rec.Unit != "scenario" || rec.Key != hexU64(uint64(i)) {
						t.Errorf("reader %d: record %d is %s[%s], want scenario[%s]",
							r, i, rec.Unit, rec.Key, hexU64(uint64(i)))
						return
					}
					if err := json.Unmarshal(rec.Data, &v); err != nil || v != i*3 {
						t.Errorf("reader %d: record %d data %s (err %v), want %d", r, i, rec.Data, err, i*3)
						return
					}
				}
			}
		}(r)
	}

	for i := 0; i < total; i++ {
		if err := j.Append("scenario", uint64(i), i*3); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	j.Close()

	// After the writer is done a final read sees every record.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, _, records, err := DecodeWithMeta(f)
	if err != nil || len(records) != total {
		t.Fatalf("final decode: %d records err=%v, want %d", len(records), err, total)
	}
}
