package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ropus/internal/telemetry"
)

type unit struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	const run = uint64(0xdeadbeef)

	j, err := Open(path, run, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []unit{
		{Name: "a", Value: 1.0000000000000002}, // float that needs full precision
		{Name: "b", Value: -0},
		{Name: "c", Value: 1e-300},
	}
	for i, u := range want {
		if err := j.Append("test.unit", uint64(i), u); err != nil {
			t.Fatal(err)
		}
	}
	if j.Written() != 3 {
		t.Errorf("Written = %d, want 3", j.Written())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, run, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Replayed() != 3 {
		t.Fatalf("Replayed = %d, want 3", r.Replayed())
	}
	for i, w := range want {
		var got unit
		ok, err := r.Lookup("test.unit", uint64(i), &got)
		if err != nil || !ok {
			t.Fatalf("Lookup(%d) = %v, %v", i, ok, err)
		}
		if got != w {
			t.Errorf("unit %d round-tripped to %+v, want %+v", i, got, w)
		}
	}
	var missing unit
	if ok, _ := r.Lookup("test.unit", 99, &missing); ok {
		t.Error("Lookup found a record that was never appended")
	}
	if ok, _ := r.Lookup("other.unit", 0, &missing); ok {
		t.Error("Lookup crossed unit namespaces")
	}
}

func TestJournalRunMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := Open(path, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("u", 0, unit{Name: "x"})
	j.Close()

	if _, err := Open(path, 2, true, nil); !errors.Is(err, ErrRunMismatch) {
		t.Errorf("resume with a different run hash: err = %v, want ErrRunMismatch", err)
	}
	// Without -resume the journal is truncated regardless of its run.
	j2, err := Open(path, 2, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got unit
	if ok, _ := j2.Lookup("u", 0, &got); ok {
		t.Error("truncating open kept old records")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := Open(path, 7, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("u", 0, unit{Name: "complete"})
	j.Append("u", 1, unit{Name: "doomed"})
	j.Close()

	// Simulate a SIGKILL mid-append: chop bytes off the tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 40; cut += 7 {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path, 7, true, nil)
		if err != nil {
			t.Fatalf("cut %d bytes: resume failed: %v", cut, err)
		}
		var got unit
		ok, err := r.Lookup("u", 0, &got)
		if err != nil || !ok || got.Name != "complete" {
			t.Fatalf("cut %d bytes: first record lost: %v %v %+v", cut, ok, err, got)
		}
		if ok, _ := r.Lookup("u", 1, &got); ok {
			t.Fatalf("cut %d bytes: torn record trusted", cut)
		}
		if r.Replayed() != 1 {
			t.Fatalf("cut %d bytes: Replayed = %d, want 1", cut, r.Replayed())
		}
		r.Close()
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := Open(path, 7, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("u", 0, unit{Name: "first"})
	j.Append("u", 1, unit{Name: "second"})
	j.Close()

	raw, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a data byte inside the first record (line index 1): the
	// checksum must catch it, and mid-file damage is not a torn tail.
	corrupt := strings.Replace(lines[1], "first", "fIrst", 1)
	os.WriteFile(path, []byte(lines[0]+corrupt+lines[2]), 0o644)
	if _, err := Open(path, 7, true, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestJournalVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	os.WriteFile(path, []byte(`{"kind":"ropus-checkpoint","version":99,"run":"0000000000000001"}`+"\n"), 0o644)
	if _, err := Open(path, 1, true, nil); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: err = %v, want ErrVersion", err)
	}
}

func TestJournalResumeMissingFileStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := Open(path, 1, true, nil)
	if err != nil {
		t.Fatalf("resume with no journal must start empty: %v", err)
	}
	defer j.Close()
	if j.Replayed() != 0 {
		t.Errorf("Replayed = %d, want 0", j.Replayed())
	}
}

func TestNilJournalIsNoop(t *testing.T) {
	var j *Journal
	if err := j.Append("u", 0, unit{}); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	var got unit
	if ok, err := j.Lookup("u", 0, &got); ok || err != nil {
		t.Errorf("nil Lookup = %v, %v", ok, err)
	}
	if j.Replayed() != 0 || j.Written() != 0 || j.Close() != nil {
		t.Error("nil journal accessors must be no-ops")
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	reg := telemetry.NewRegistry()
	j, err := Open(path, 3, false, telemetry.New(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append("u", uint64(i), unit{Name: "n", Value: float64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()

	r, err := Open(path, 3, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Replayed() != n {
		t.Fatalf("Replayed = %d, want %d", r.Replayed(), n)
	}
	if got := reg.Snapshot().Counters["checkpoint_records_written_total"]; got != n {
		t.Errorf("checkpoint_records_written_total = %d, want %d", got, n)
	}
}

func TestHasherDelimitsFields(t *testing.T) {
	a := NewHasher().String("ab").String("c").Sum()
	b := NewHasher().String("a").String("bc").Sum()
	if a == b {
		t.Error("string folding must be length-delimited")
	}
	x := NewHasher().Floats([]float64{1, 2}).Floats(nil).Sum()
	y := NewHasher().Floats([]float64{1}).Floats([]float64{2}).Sum()
	if x == y {
		t.Error("float-slice folding must be length-delimited")
	}
	if NewHasher().Bool(true).Sum() == NewHasher().Bool(false).Sum() {
		t.Error("bools must hash differently")
	}
	if NewHasher().Int(5).Sum() != NewHasher().Int(5).Sum() {
		t.Error("hashing must be deterministic")
	}
}
