package slo

import (
	"strings"
	"testing"

	"ropus/internal/telemetry"
)

func TestQuantilesNearestRank(t *testing.T) {
	tr := NewTracker(100)
	for i := 1; i <= 100; i++ {
		tr.Observe("lat", float64(i))
	}
	snap := tr.Snapshot()
	if len(snap.Series) != 1 {
		t.Fatalf("series: %d", len(snap.Series))
	}
	s := snap.Series[0]
	if s.Count != 100 || s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("quantiles: %+v", s)
	}
}

func TestWindowEvictsOldObservations(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 10; i++ {
		tr.Observe("lat", 100) // an awful first epoch
	}
	for i := 0; i < 10; i++ {
		tr.Observe("lat", 0.01) // fully recovered
	}
	s := tr.Snapshot().Series[0]
	if s.P99 != 0.01 {
		t.Errorf("window kept stale observations: p99 %v", s.P99)
	}
}

func TestObjectiveScoringAndBurnRate(t *testing.T) {
	tr := NewTracker(100, Objective{Name: "lat", Series: "lat", LatencyBound: 1, Budget: 0.1})
	for i := 0; i < 18; i++ {
		tr.Observe("lat", 0.5)
	}
	tr.Observe("lat", 2) // 2 bad of 20: bad fraction 0.1, burn 1.0
	tr.Observe("lat", 3)
	snap := tr.Snapshot()
	o := snap.Objectives[0]
	if o.Good != 18 || o.Bad != 2 {
		t.Errorf("good/bad = %d/%d, want 18/2", o.Good, o.Bad)
	}
	if o.WindowBadFraction != 0.1 {
		t.Errorf("window bad fraction %v, want 0.1", o.WindowBadFraction)
	}
	if o.BurnRate != 1.0 {
		t.Errorf("burn rate %v, want 1.0", o.BurnRate)
	}
}

func TestSyncPublishesMetrics(t *testing.T) {
	tr := NewTracker(10, Objective{Name: "lat", Series: "lat", LatencyBound: 1, Budget: 0.5})
	tr.Observe("lat", 0.5)
	tr.Observe("lat", 2)
	reg := telemetry.NewRegistry()
	tr.Sync(reg)
	snap := reg.Snapshot()
	if v := snap.Gauges["slo_lat_p99_seconds"]; v != 2 {
		t.Errorf("p99 gauge %v, want 2", v)
	}
	if v := snap.Gauges["slo_lat_window_count"]; v != 2 {
		t.Errorf("window count gauge %v, want 2", v)
	}
	if v := snap.Counters["slo_lat_good_total"]; v != 1 {
		t.Errorf("good counter %v, want 1", v)
	}
	if v := snap.Counters["slo_lat_bad_total"]; v != 1 {
		t.Errorf("bad counter %v, want 1", v)
	}
	if v := snap.Gauges["slo_lat_burn_rate"]; v != 1 {
		t.Errorf("burn rate gauge %v, want 1", v)
	}

	// A second Sync must not double-count (delta publication).
	tr.Sync(reg)
	if v := reg.Snapshot().Counters["slo_lat_good_total"]; v != 1 {
		t.Errorf("re-sync inflated good counter to %v", v)
	}

	// And the rendered exposition parses.
	var buf strings.Builder
	if err := reg.WritePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.LintPrometheusText(strings.NewReader(buf.String())); err != nil {
		t.Errorf("slo metrics fail lint: %v", err)
	}
}

func TestNilAndEmptyTracker(t *testing.T) {
	var tr *Tracker
	tr.Observe("lat", 1) // must not panic
	snap := tr.Snapshot()
	if len(snap.Series) != 0 || len(snap.Objectives) != 0 {
		t.Errorf("nil tracker snapshot: %+v", snap)
	}
	if got := tr.Sync(telemetry.NewRegistry()); len(got.Series) != 0 {
		t.Errorf("nil tracker sync: %+v", got)
	}
	empty := NewTracker(0).Snapshot()
	if empty.Window != DefaultWindow {
		t.Errorf("default window %d", empty.Window)
	}
}
