// Package slo turns raw latency observations into the signals a
// control loop or an operator acts on: windowed p50/p95/p99 quantiles
// per latency series, and per-objective error budgets with burn rates.
//
// Quantiles are computed over a fixed-size ring window of the most
// recent observations (not the cumulative histogram), because an SLO
// question — "is admission p99 inside bound *right now*?" — is about
// the recent past; a cumulative histogram never forgets a bad hour.
// Estimation is nearest-rank over the sorted window: exact for the
// window, no bucket-interpolation error, O(n log n) only on read.
//
// An Objective declares a latency bound and an error budget (the
// allowed fraction of observations over the bound). Burn rate is the
// windowed bad fraction divided by the budget: 1.0 means burning
// exactly the budget, >1 means the budget will be exhausted, 0 means
// clean. This is the multiwindow burn-rate alerting quantity, computed
// over the tracker's single window.
package slo

import (
	"sort"
	"sync"

	"ropus/internal/telemetry"
)

// Objective is one latency SLO: observations of Series above
// LatencyBound (seconds) are "bad"; the budget is the tolerated bad
// fraction (e.g. 0.01 for 99% within bound).
type Objective struct {
	// Name is the slug used in metric names (slo_<name>_...).
	Name string `json:"name"`
	// Series is the latency series the objective watches.
	Series string `json:"series"`
	// LatencyBound is the threshold in seconds.
	LatencyBound float64 `json:"latency_bound_seconds"`
	// Budget is the allowed fraction of bad observations, in (0,1].
	Budget float64 `json:"budget"`
}

// DefaultWindow is the per-series ring size used when NewTracker is
// given a non-positive window.
const DefaultWindow = 1024

// Tracker accumulates latency observations per named series and scores
// them against objectives. All methods are safe for concurrent use; a
// nil Tracker discards observations and snapshots empty.
type Tracker struct {
	mu         sync.Mutex
	window     int
	series     map[string]*ring
	objectives []Objective
	good, bad  map[string]int64 // per objective name, cumulative
}

type ring struct {
	buf  []float64
	next int
	n    int
}

func (rg *ring) push(v float64) {
	rg.buf[rg.next] = v
	rg.next = (rg.next + 1) % len(rg.buf)
	if rg.n < len(rg.buf) {
		rg.n++
	}
}

// values returns the window contents, unordered.
func (rg *ring) values() []float64 {
	out := make([]float64, rg.n)
	copy(out, rg.buf[:rg.n])
	return out
}

// NewTracker returns a tracker with the given per-series window size
// (DefaultWindow if <= 0) scoring the given objectives.
func NewTracker(window int, objectives ...Objective) *Tracker {
	if window <= 0 {
		window = DefaultWindow
	}
	t := &Tracker{
		window:     window,
		series:     make(map[string]*ring),
		objectives: objectives,
		good:       make(map[string]int64),
		bad:        make(map[string]int64),
	}
	return t
}

// Observe records one latency (seconds) into the named series and
// scores it against every objective watching that series.
func (t *Tracker) Observe(series string, seconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	rg := t.series[series]
	if rg == nil {
		rg = &ring{buf: make([]float64, t.window)}
		t.series[series] = rg
	}
	rg.push(seconds)
	for _, o := range t.objectives {
		if o.Series != series {
			continue
		}
		if seconds > o.LatencyBound {
			t.bad[o.Name]++
		} else {
			t.good[o.Name]++
		}
	}
	t.mu.Unlock()
}

// SeriesSnapshot is the windowed quantile view of one latency series.
type SeriesSnapshot struct {
	Series string  `json:"series"`
	Count  int     `json:"window_count"`
	P50    float64 `json:"p50_seconds"`
	P95    float64 `json:"p95_seconds"`
	P99    float64 `json:"p99_seconds"`
}

// ObjectiveSnapshot is the budget view of one objective.
type ObjectiveSnapshot struct {
	Objective
	// Good and Bad count observations since process start.
	Good int64 `json:"good_total"`
	Bad  int64 `json:"bad_total"`
	// WindowBadFraction is the bad fraction over the current window.
	WindowBadFraction float64 `json:"window_bad_fraction"`
	// BurnRate is WindowBadFraction / Budget.
	BurnRate float64 `json:"burn_rate"`
}

// Snapshot is the GET /v1/slo response body.
type Snapshot struct {
	Window     int                 `json:"window"`
	Series     []SeriesSnapshot    `json:"series"`
	Objectives []ObjectiveSnapshot `json:"objectives"`
}

// Snapshot returns the current windowed quantiles and budget state,
// series and objectives each sorted by name for stable output.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{Series: []SeriesSnapshot{}, Objectives: []ObjectiveSnapshot{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := Snapshot{
		Window:     t.window,
		Series:     make([]SeriesSnapshot, 0, len(t.series)),
		Objectives: make([]ObjectiveSnapshot, 0, len(t.objectives)),
	}
	for name, rg := range t.series {
		vals := rg.values()
		sort.Float64s(vals)
		snap.Series = append(snap.Series, SeriesSnapshot{
			Series: name,
			Count:  len(vals),
			P50:    nearestRank(vals, 0.50),
			P95:    nearestRank(vals, 0.95),
			P99:    nearestRank(vals, 0.99),
		})
	}
	sort.Slice(snap.Series, func(i, j int) bool { return snap.Series[i].Series < snap.Series[j].Series })
	for _, o := range t.objectives {
		os := ObjectiveSnapshot{Objective: o, Good: t.good[o.Name], Bad: t.bad[o.Name]}
		if rg := t.series[o.Series]; rg != nil && rg.n > 0 {
			badN := 0
			for _, v := range rg.values() {
				if v > o.LatencyBound {
					badN++
				}
			}
			os.WindowBadFraction = float64(badN) / float64(rg.n)
			if o.Budget > 0 {
				os.BurnRate = os.WindowBadFraction / o.Budget
			}
		}
		snap.Objectives = append(snap.Objectives, os)
	}
	sort.Slice(snap.Objectives, func(i, j int) bool { return snap.Objectives[i].Name < snap.Objectives[j].Name })
	return snap
}

// nearestRank returns the q-quantile of sorted (nearest-rank method:
// the smallest value with at least ceil(q*n) values <= it). Zero for an
// empty window.
func nearestRank(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(q*float64(n) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Sync publishes the current snapshot into reg: per-series gauges
// slo_<series>_p50/p95/p99_seconds and slo_<series>_window_count, and
// per-objective counters slo_<name>_good_total / slo_<name>_bad_total
// plus gauges slo_<name>_burn_rate and slo_<name>_window_bad_fraction.
// Call it before rendering /metrics; it is idempotent between
// observations. Counter publication adds only the delta since the last
// Sync, preserving monotonicity.
func (t *Tracker) Sync(reg *telemetry.Registry) Snapshot {
	snap := t.Snapshot()
	if reg == nil {
		return snap
	}
	for _, s := range snap.Series {
		reg.Gauge("slo_" + s.Series + "_p50_seconds").Set(s.P50)
		reg.Gauge("slo_" + s.Series + "_p95_seconds").Set(s.P95)
		reg.Gauge("slo_" + s.Series + "_p99_seconds").Set(s.P99)
		reg.Gauge("slo_" + s.Series + "_window_count").Set(float64(s.Count))
	}
	for _, o := range snap.Objectives {
		good := reg.Counter("slo_" + o.Name + "_good_total")
		bad := reg.Counter("slo_" + o.Name + "_bad_total")
		good.Add(o.Good - good.Value())
		bad.Add(o.Bad - bad.Value())
		reg.Gauge("slo_" + o.Name + "_burn_rate").Set(o.BurnRate)
		reg.Gauge("slo_" + o.Name + "_window_bad_fraction").Set(o.WindowBadFraction)
	}
	return snap
}
