// Package stats provides the small statistical toolkit used throughout
// R-Opus: percentiles over demand samples, run-length analysis of
// threshold exceedances, and summary statistics.
//
// The trace-based capacity-management algorithms in the paper consume
// only empirical statistics of the workload traces, so this package is
// deliberately simple and allocation-conscious: most callers pass slices
// of float64 demand samples taken straight from a trace.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Percentile returns the p-th percentile (0 <= p <= 100) of samples using
// linear interpolation between closest ranks (the "exclusive" method is
// not needed at trace sizes of thousands of samples; we use the common
// inclusive definition, matching the paper's use of "M-th percentile of
// the workload demands").
//
// The input slice is not modified.
func Percentile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted is Percentile for data already sorted ascending.
// It performs no allocation and is the hot path for repeated queries.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileNearestRank returns the smallest sample value v such that at
// least p percent of the samples are <= v (the "nearest-rank, higher"
// definition). Unlike the interpolated Percentile, it guarantees that at
// most (100-p)% of samples are strictly greater than the result, which
// is what the portfolio translation needs to honour an Mdegr budget
// exactly on traces of any size.
func PercentileNearestRank(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	k := int(math.Ceil(p / 100 * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1], nil
}

// Percentiles evaluates several percentiles with a single sort.
func Percentiles(samples []float64, ps []float64) ([]float64, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

// Max returns the maximum of samples.
func Max(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// Min returns the minimum of samples.
func Min(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v < m {
			m = v
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of samples.
func Mean(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples)), nil
}

// StdDev returns the population standard deviation of samples.
func StdDev(samples []float64) (float64, error) {
	mean, err := Mean(samples)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples))), nil
}

// Summary bundles the descriptive statistics most reports need.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary in a single pass plus one for variance.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{Count: len(samples), Min: samples[0], Max: samples[0]}
	sum := 0.0
	for _, v := range samples {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(samples))
	ss := 0.0
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(samples)))
	return s, nil
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length sample series in [-1, 1]. Series with zero variance
// correlate 0 with everything (a convention that suits placement: a
// constant workload neither helps nor hurts statistical multiplexing).
func Correlation(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: series lengths %d and %d differ", len(a), len(b))
	}
	n := float64(len(a))
	var sumA, sumB float64
	for i := range a {
		sumA += a[i]
		sumB += b[i]
	}
	meanA, meanB := sumA/n, sumB/n
	var cov, varA, varB float64
	for i := range a {
		da, db := a[i]-meanA, b[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(varA*varB), nil
}

// Run describes a maximal contiguous range of samples satisfying a
// predicate: indexes [Start, Start+Length).
type Run struct {
	Start  int
	Length int
}

// RunsAbove returns every maximal run of consecutive samples strictly
// greater than threshold, in order of appearance. The Tdegr analysis of
// the paper (section V.3) operates on these runs: a run longer than R
// observations violates the time-limited-degradation constraint.
func RunsAbove(samples []float64, threshold float64) []Run {
	var runs []Run
	start := -1
	for i, v := range samples {
		if v > threshold {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			runs = append(runs, Run{Start: start, Length: i - start})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, Run{Start: start, Length: len(samples) - start})
	}
	return runs
}

// LongestRunAbove returns the longest run above threshold, or a zero Run
// if no sample exceeds it.
func LongestRunAbove(samples []float64, threshold float64) Run {
	var best Run
	for _, r := range RunsAbove(samples, threshold) {
		if r.Length > best.Length {
			best = r
		}
	}
	return best
}

// FractionAbove returns the fraction of samples strictly greater than
// threshold. It returns 0 for an empty slice.
func FractionAbove(samples []float64, threshold float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// MinInRange returns the minimum value within samples[start:start+length]
// and its absolute index. It is used by the Tdegr analysis to locate
// D_min_degr inside a degraded run.
func MinInRange(samples []float64, start, length int) (float64, int, error) {
	if start < 0 || length <= 0 || start+length > len(samples) {
		return 0, 0, fmt.Errorf("stats: range [%d,%d) out of bounds for %d samples",
			start, start+length, len(samples))
	}
	minV, minI := samples[start], start
	for i := start + 1; i < start+length; i++ {
		if samples[i] < minV {
			minV, minI = samples[i], i
		}
	}
	return minV, minI, nil
}
