package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestPercentile(t *testing.T) {
	tests := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{name: "single sample any percentile", samples: []float64{5}, p: 50, want: 5},
		{name: "min", samples: []float64{1, 2, 3, 4, 5}, p: 0, want: 1},
		{name: "max", samples: []float64{1, 2, 3, 4, 5}, p: 100, want: 5},
		{name: "median odd", samples: []float64{1, 2, 3, 4, 5}, p: 50, want: 3},
		{name: "median even interpolated", samples: []float64{1, 2, 3, 4}, p: 50, want: 2.5},
		{name: "quartile interpolated", samples: []float64{0, 10}, p: 25, want: 2.5},
		{name: "unsorted input", samples: []float64{5, 1, 4, 2, 3}, p: 100, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Percentile(tt.samples, tt.p)
			if err != nil {
				t.Fatalf("Percentile() error = %v", err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tt.samples, tt.p, got, tt.want)
			}
		})
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) should fail")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("Percentile(p=-1) should fail")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("Percentile(p=101) should fail")
	}
	if _, err := PercentileSorted(nil, 50); err == nil {
		t.Error("PercentileSorted(nil) should fail")
	}
	if _, err := PercentileSorted([]float64{1}, 200); err == nil {
		t.Error("PercentileSorted(p=200) should fail")
	}
	if _, err := Percentiles(nil, []float64{50}); err == nil {
		t.Error("Percentiles(nil) should fail")
	}
	if _, err := Percentiles([]float64{1}, []float64{-5}); err == nil {
		t.Error("Percentiles(p=-5) should fail")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Percentile(in, 50); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 20, want: 1},
		{p: 20.1, want: 2},
		{p: 60, want: 3},
		{p: 97, want: 5},
		{p: 100, want: 5},
	}
	for _, tt := range tests {
		got, err := PercentileNearestRank(samples, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("PercentileNearestRank(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := PercentileNearestRank(nil, 50); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := PercentileNearestRank(samples, 101); err == nil {
		t.Error("p=101 should fail")
	}
}

func TestQuickNearestRankBudget(t *testing.T) {
	// The defining property: at most (100-p)% of samples are strictly
	// greater than the result.
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		v, err := PercentileNearestRank(samples, p)
		if err != nil {
			return false
		}
		n := 0
		for _, s := range samples {
			if s > v {
				n++
			}
		}
		return float64(n) <= (100-p)/100*float64(len(samples))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentilesMatchesSingleCalls(t *testing.T) {
	samples := []float64{9, 4, 7, 1, 3, 8, 2, 6, 5}
	ps := []float64{0, 25, 50, 90, 100}
	multi, err := Percentiles(samples, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		single, err := Percentile(samples, p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(multi[i], single, 1e-12) {
			t.Errorf("Percentiles()[%d]=%v, Percentile(%v)=%v", i, multi[i], p, single)
		}
	}
}

func TestQuickPercentileWithinBounds(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			samples = append(samples, v)
		}
		if len(samples) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		got, err := Percentile(samples, p)
		if err != nil {
			return false
		}
		lo, _ := Min(samples)
		hi, _ := Max(samples)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 10
		}
		sorted := make([]float64, n)
		copy(sorted, samples)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v, err := PercentileSorted(sorted, p)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone: P%.1f=%v < %v", p, v, prev)
			}
			prev = v
		}
	}
}

func TestMinMaxMeanStdDev(t *testing.T) {
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, _ := Min(samples); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got, _ := Max(samples); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if got, _ := Mean(samples); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got, _ := StdDev(samples); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	for _, fn := range []func([]float64) (float64, error){Min, Max, Mean, StdDev} {
		if _, err := fn(nil); err == nil {
			t.Error("expected error on empty input")
		}
	}
}

func TestSummarize(t *testing.T) {
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{Count: 8, Min: 2, Max: 9, Mean: 5, StdDev: 2}
	if s.Count != want.Count || s.Min != want.Min || s.Max != want.Max ||
		!almostEqual(s.Mean, want.Mean, 1e-12) || !almostEqual(s.StdDev, want.StdDev, 1e-12) {
		t.Errorf("Summarize = %+v, want %+v", s, want)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should fail")
	}
}

func TestRunsAbove(t *testing.T) {
	tests := []struct {
		name      string
		samples   []float64
		threshold float64
		want      []Run
	}{
		{name: "empty", samples: nil, threshold: 1, want: nil},
		{name: "none above", samples: []float64{1, 1, 1}, threshold: 2, want: nil},
		{
			name: "all above", samples: []float64{3, 3, 3}, threshold: 2,
			want: []Run{{Start: 0, Length: 3}},
		},
		{
			name: "two runs", samples: []float64{5, 1, 5, 5, 1, 5}, threshold: 2,
			want: []Run{{Start: 0, Length: 1}, {Start: 2, Length: 2}, {Start: 5, Length: 1}},
		},
		{
			name: "boundary not above", samples: []float64{2, 2}, threshold: 2,
			want: nil,
		},
		{
			name: "run at tail", samples: []float64{1, 3, 3}, threshold: 2,
			want: []Run{{Start: 1, Length: 2}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := RunsAbove(tt.samples, tt.threshold)
			if len(got) != len(tt.want) {
				t.Fatalf("RunsAbove = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("run %d = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestLongestRunAbove(t *testing.T) {
	samples := []float64{5, 1, 5, 5, 5, 1, 5}
	got := LongestRunAbove(samples, 2)
	if got != (Run{Start: 2, Length: 3}) {
		t.Errorf("LongestRunAbove = %v, want {2 3}", got)
	}
	if got := LongestRunAbove(samples, 10); got.Length != 0 {
		t.Errorf("LongestRunAbove above max = %v, want zero run", got)
	}
}

func TestQuickRunsCoverExactlyExceedances(t *testing.T) {
	f := func(raw []float64, threshold float64) bool {
		if math.IsNaN(threshold) {
			return true
		}
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				samples = append(samples, v)
			}
		}
		runs := RunsAbove(samples, threshold)
		covered := make(map[int]bool)
		prevEnd := -1
		for _, r := range runs {
			if r.Length <= 0 || r.Start <= prevEnd {
				return false // runs must be non-empty, ordered, disjoint
			}
			prevEnd = r.Start + r.Length - 1
			for i := r.Start; i < r.Start+r.Length; i++ {
				covered[i] = true
			}
		}
		for i, v := range samples {
			if (v > threshold) != covered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionAbove(t *testing.T) {
	if got := FractionAbove(nil, 1); got != 0 {
		t.Errorf("FractionAbove(nil) = %v, want 0", got)
	}
	if got := FractionAbove([]float64{1, 2, 3, 4}, 2); got != 0.5 {
		t.Errorf("FractionAbove = %v, want 0.5", got)
	}
	if got := FractionAbove([]float64{1, 2}, 5); got != 0 {
		t.Errorf("FractionAbove above max = %v, want 0", got)
	}
}

func TestCorrelation(t *testing.T) {
	up := []float64{1, 2, 3, 4}
	down := []float64{4, 3, 2, 1}
	flat := []float64{5, 5, 5, 5}

	if c, err := Correlation(up, up); err != nil || !almostEqual(c, 1, 1e-12) {
		t.Errorf("Correlation(up,up) = %v, %v; want 1", c, err)
	}
	if c, err := Correlation(up, down); err != nil || !almostEqual(c, -1, 1e-12) {
		t.Errorf("Correlation(up,down) = %v, %v; want -1", c, err)
	}
	if c, err := Correlation(up, flat); err != nil || c != 0 {
		t.Errorf("Correlation with zero-variance series = %v, %v; want 0", c, err)
	}
	if _, err := Correlation(nil, up); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Correlation(up, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestQuickCorrelationBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[n+i])
		}
		c, err := Correlation(a, b)
		if err != nil {
			return false
		}
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinInRange(t *testing.T) {
	samples := []float64{9, 4, 7, 1, 3}
	v, i, err := MinInRange(samples, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || i != 3 {
		t.Errorf("MinInRange = (%v,%d), want (1,3)", v, i)
	}
	if _, _, err := MinInRange(samples, 3, 5); err == nil {
		t.Error("out-of-bounds range should fail")
	}
	if _, _, err := MinInRange(samples, -1, 2); err == nil {
		t.Error("negative start should fail")
	}
	if _, _, err := MinInRange(samples, 0, 0); err == nil {
		t.Error("zero length should fail")
	}
}
