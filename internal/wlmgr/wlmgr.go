// Package wlmgr simulates a resource workload manager (paper section
// II): the component that, on each measurement interval, divides a
// server's capacity among resource containers according to two
// allocation priorities.
//
// Demands associated with the higher priority (CoS1) are allocated
// capacity first; remaining capacity is then allocated to the lower
// priority (CoS2) proportionally to the outstanding requests. The
// package exists to close the loop on R-Opus's promises: replaying raw
// demand traces through a manager configured with a portfolio
// translation lets tests confirm that the application's utilization of
// allocation actually stays inside the promised QoS envelope whenever
// the pool delivers the committed resource access probability.
package wlmgr

import (
	"errors"
	"fmt"
	"time"

	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/stats"
	"ropus/internal/telemetry"
	"ropus/internal/trace"
)

// Container couples an application's raw demand trace with its portfolio
// translation; the translation defines the per-slot allocation requests
// the manager arbitrates.
type Container struct {
	Demand    *trace.Trace
	Partition *portfolio.Partition
}

// Validate checks the container's consistency.
func (c Container) Validate() error {
	if c.Demand == nil || c.Partition == nil {
		return errors.New("wlmgr: container needs both a demand trace and a partition")
	}
	if err := c.Demand.Validate(); err != nil {
		return err
	}
	if c.Demand.AppID != c.Partition.AppID {
		return fmt.Errorf("wlmgr: demand is for %q but partition for %q",
			c.Demand.AppID, c.Partition.AppID)
	}
	if c.Partition.CoS1.Len() != c.Demand.Len() {
		return fmt.Errorf("wlmgr: app %q: partition covers %d slots, demand %d",
			c.Demand.AppID, c.Partition.CoS1.Len(), c.Demand.Len())
	}
	return nil
}

// ContainerStats is the per-container outcome of a run.
type ContainerStats struct {
	AppID string
	// Received is the capacity granted per slot.
	Received []float64
	// Utilization is demand/received per slot (0 where demand is 0).
	Utilization []float64
}

// RunResult is the outcome of simulating a manager over a full trace.
type RunResult struct {
	Containers []ContainerStats
	// CoS1Overload is the number of slots where even the guaranteed
	// class outstripped capacity (a placement bug if it happens).
	CoS1Overload int
}

// Run simulates a workload manager with the given capacity over the
// containers' aligned traces. lag is the allocation delay in slots: 0
// replays the trace-based analysis exactly (allocations react to the
// current interval), 1 models a manager that sizes allocations from the
// previous interval's demand, and so on.
func Run(capacity float64, containers []Container, lag int) (*RunResult, error) {
	return RunWithHooks(capacity, containers, lag, nil)
}

// RunWithHooks is Run with telemetry: per-replay slot, CoS1-overload,
// allocation-shortfall and degraded-slot counters, plus a replay span.
// A nil Hooks disables all of it.
func RunWithHooks(capacity float64, containers []Container, lag int, hooks telemetry.Hooks) (*RunResult, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wlmgr: capacity %v <= 0", capacity)
	}
	if lag < 0 {
		return nil, fmt.Errorf("wlmgr: lag %d < 0", lag)
	}
	if len(containers) == 0 {
		return nil, errors.New("wlmgr: no containers")
	}
	n := 0
	for i, c := range containers {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if i == 0 {
			n = c.Demand.Len()
		} else if c.Demand.Len() != n {
			return nil, fmt.Errorf("wlmgr: app %q has %d slots, want %d", c.Demand.AppID, c.Demand.Len(), n)
		}
	}

	h := telemetry.OrNop(hooks)
	span := h.StartSpan("wlmgr.replay",
		telemetry.Float("capacity", capacity),
		telemetry.Int("containers", len(containers)),
		telemetry.Int("lag", lag),
		telemetry.Int("slots", n))
	defer span.End()
	var (
		slotsC        = h.Counter("wlmgr_slots_total")
		overloadC     = h.Counter("wlmgr_cos1_overload_slots_total")
		shortfallC    = h.Counter("wlmgr_shortfall_slots_total")
		degradedC     = h.Counter("wlmgr_degraded_container_slots_total")
		shortfallHist = h.Histogram("wlmgr_slot_shortfall_cpus", telemetry.ExponentialBuckets(0.0625, 2, 12))
	)
	h.Counter("wlmgr_replays_total").Inc()

	res := &RunResult{Containers: make([]ContainerStats, len(containers))}
	for i, c := range containers {
		res.Containers[i] = ContainerStats{
			AppID:       c.Demand.AppID,
			Received:    make([]float64, n),
			Utilization: make([]float64, n),
		}
	}

	req1 := make([]float64, len(containers))
	req2 := make([]float64, len(containers))
	for t := 0; t < n; t++ {
		// Requests come from the translated allocation traces, lagged.
		src := t - lag
		var sum1, sum2 float64
		for i, c := range containers {
			if src < 0 {
				// Before the first measurement the manager has no
				// demand estimate; grant the slot's request directly
				// (equivalent to a warm start).
				req1[i] = c.Partition.CoS1.Samples[t]
				req2[i] = c.Partition.CoS2.Samples[t]
			} else {
				req1[i] = c.Partition.CoS1.Samples[src]
				req2[i] = c.Partition.CoS2.Samples[src]
			}
			sum1 += req1[i]
			sum2 += req2[i]
		}

		// Priority 1 first. If the guaranteed class alone exceeds
		// capacity the placement was broken; grant proportionally and
		// record the overload.
		scale1 := 1.0
		if sum1 > capacity {
			scale1 = capacity / sum1
			res.CoS1Overload++
			overloadC.Inc()
		}
		remaining := capacity - sum1*scale1
		scale2 := 1.0
		if sum2 > remaining {
			if sum2 > 0 {
				scale2 = remaining / sum2
			} else {
				scale2 = 0
			}
		}
		slotsC.Inc()
		if shortfall := sum1*(1-scale1) + sum2*(1-scale2); shortfall > 1e-9 {
			shortfallC.Inc()
			shortfallHist.Observe(shortfall)
		}

		for i, c := range containers {
			got := req1[i]*scale1 + req2[i]*scale2
			res.Containers[i].Received[t] = got
			d := c.Demand.Samples[t]
			if d > 0 && got > 0 {
				res.Containers[i].Utilization[t] = d / got
			} else if d > 0 {
				res.Containers[i].Utilization[t] = 1 // starved: fully saturated
			}
			// A container-slot is degraded when the manager granted less
			// than the demand (utilization of allocation above 1).
			if d > got*(1+1e-9) {
				degradedC.Inc()
			}
		}
	}
	span.SetAttr(telemetry.Int("cos1_overloads", res.CoS1Overload))
	return res, nil
}

// Compliance summarizes a container's achieved QoS against a
// requirement.
type Compliance struct {
	// AcceptableFraction is the fraction of non-idle slots with
	// utilization of allocation <= Uhigh.
	AcceptableFraction float64
	// DegradedFraction is the fraction of slots with Uhigh < U <= Udegr.
	DegradedFraction float64
	// ViolatedFraction is the fraction of slots with U > Udegr.
	ViolatedFraction float64
	// MaxUtilization is the largest observed utilization of allocation.
	MaxUtilization float64
	// LongestDegraded is the longest contiguous degraded period.
	LongestDegraded time.Duration
	// MaxDegradedInDay is the largest number of degraded epochs
	// observed within one calendar day.
	MaxDegradedInDay int
	// Satisfied reports whether the requirement held: no slot beyond
	// Udegr, at most Mdegr percent degraded, no degraded run longer
	// than Tdegr (when set), and no day over the per-day epoch budget
	// (when set).
	Satisfied bool
}

// CheckCompliance evaluates achieved utilizations against a requirement.
// The interval is the slot duration of the underlying traces.
func CheckCompliance(cs ContainerStats, q qos.AppQoS, interval time.Duration) (Compliance, error) {
	if err := q.Validate(); err != nil {
		return Compliance{}, err
	}
	if len(cs.Utilization) == 0 {
		return Compliance{}, errors.New("wlmgr: no utilization samples")
	}
	const relTol = 1e-9
	var c Compliance
	n := len(cs.Utilization)
	for _, u := range cs.Utilization {
		if u > c.MaxUtilization {
			c.MaxUtilization = u
		}
		switch {
		case u > q.UDegr*(1+relTol):
			c.ViolatedFraction++
		case u > q.UHigh*(1+relTol):
			c.DegradedFraction++
		default:
			c.AcceptableFraction++
		}
	}
	c.AcceptableFraction /= float64(n)
	c.DegradedFraction /= float64(n)
	c.ViolatedFraction /= float64(n)

	run := stats.LongestRunAbove(cs.Utilization, q.UHigh*(1+relTol))
	c.LongestDegraded = time.Duration(run.Length) * interval

	if interval > 0 {
		slotsPerDay := int(24 * time.Hour / interval)
		if slotsPerDay > 0 {
			for start := 0; start < n; start += slotsPerDay {
				end := start + slotsPerDay
				if end > n {
					end = n
				}
				count := 0
				for _, u := range cs.Utilization[start:end] {
					if u > q.UHigh*(1+relTol) {
						count++
					}
				}
				if count > c.MaxDegradedInDay {
					c.MaxDegradedInDay = count
				}
			}
		}
	}

	c.Satisfied = c.ViolatedFraction == 0 &&
		c.DegradedFraction*100 <= q.MDegrPercent()+relTol
	if r, limited := q.TDegrSlots(interval); limited && run.Length > r {
		c.Satisfied = false
	}
	if q.MaxDegradedPerDay > 0 && c.MaxDegradedInDay > q.MaxDegradedPerDay {
		c.Satisfied = false
	}
	return c, nil
}
