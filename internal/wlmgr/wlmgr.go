// Package wlmgr simulates a resource workload manager (paper section
// II): the component that, on each measurement interval, divides a
// server's capacity among resource containers according to two
// allocation priorities.
//
// Demands associated with the higher priority (CoS1) are allocated
// capacity first; remaining capacity is then allocated to the lower
// priority (CoS2) proportionally to the outstanding requests. The
// package exists to close the loop on R-Opus's promises: replaying raw
// demand traces through a manager configured with a portfolio
// translation lets tests confirm that the application's utilization of
// allocation actually stays inside the promised QoS envelope whenever
// the pool delivers the committed resource access probability.
package wlmgr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/robust"
	"ropus/internal/stats"
	"ropus/internal/telemetry"
	"ropus/internal/trace"
)

// Container couples an application's raw demand trace with its portfolio
// translation; the translation defines the per-slot allocation requests
// the manager arbitrates.
type Container struct {
	Demand    *trace.Trace
	Partition *portfolio.Partition
}

// Validate checks the container's consistency.
func (c Container) Validate() error {
	if c.Demand == nil || c.Partition == nil {
		return errors.New("wlmgr: container needs both a demand trace and a partition")
	}
	if err := c.Demand.Validate(); err != nil {
		return err
	}
	if c.Demand.AppID != c.Partition.AppID {
		return fmt.Errorf("wlmgr: demand is for %q but partition for %q",
			c.Demand.AppID, c.Partition.AppID)
	}
	if c.Partition.CoS1.Len() != c.Demand.Len() {
		return fmt.Errorf("wlmgr: app %q: partition covers %d slots, demand %d",
			c.Demand.AppID, c.Partition.CoS1.Len(), c.Demand.Len())
	}
	return nil
}

// ContainerStats is the per-container outcome of a run.
type ContainerStats struct {
	AppID string
	// Received is the capacity granted per slot.
	Received []float64
	// Utilization is demand/received per slot (0 where demand is 0).
	Utilization []float64
	// Err marks a container that dropped out of the replay (injected
	// fault or corrupted data); its slices stay zero from the start and
	// it requests no capacity, mirroring a crashed container whose
	// manager reclaims its share.
	Err error
}

// RunResult is the outcome of simulating a manager over a full trace.
type RunResult struct {
	Containers []ContainerStats
	// CoS1Overload is the number of slots where even the guaranteed
	// class outstripped capacity (a placement bug if it happens).
	CoS1Overload int
	// SlotsReplayed is how many slots were actually simulated; equal to
	// the trace length unless the replay was cancelled.
	SlotsReplayed int
	// Truncated reports that the replay was cancelled before the end of
	// the trace; per-container slices are valid up to SlotsReplayed.
	Truncated bool
}

// Options configures a Replay beyond its capacity and containers.
type Options struct {
	// Lag is the allocation delay in slots: 0 replays the trace-based
	// analysis exactly (allocations react to the current interval), 1
	// models a manager that sizes allocations from the previous
	// interval's demand, and so on.
	Lag int
	// Hooks receives replay telemetry; nil disables it.
	Hooks telemetry.Hooks
	// Inject is the test-only fault injector consulted once per
	// container at the "wlmgr.container" point (keyed by application
	// ID); nil (the production default) injects nothing.
	Inject faultinject.Injector
}

// Run simulates a workload manager with the given capacity over the
// containers' aligned traces; see Replay for the lag semantics.
func Run(ctx context.Context, capacity float64, containers []Container, lag int) (*RunResult, error) {
	return Replay(ctx, capacity, containers, Options{Lag: lag})
}

// RunWithHooks is Run with telemetry: per-replay slot, CoS1-overload,
// allocation-shortfall and degraded-slot counters, plus a replay span.
// A nil Hooks disables all of it.
func RunWithHooks(ctx context.Context, capacity float64, containers []Container, lag int, hooks telemetry.Hooks) (*RunResult, error) {
	return Replay(ctx, capacity, containers, Options{Lag: lag, Hooks: hooks})
}

// Replay simulates a workload manager with the given capacity over the
// containers' aligned traces. Cancelling ctx stops the replay at a slot
// boundary (checked every 256 slots) and returns the partial result
// with Truncated set and a nil error; per-container faults mark the
// container's Err and exclude it from arbitration while the rest of the
// replay continues.
func Replay(ctx context.Context, capacity float64, containers []Container, opts Options) (res *RunResult, err error) {
	defer robust.Recover("wlmgr.Replay", &err)
	lag := opts.Lag
	if capacity <= 0 {
		return nil, fmt.Errorf("wlmgr: capacity %v <= 0", capacity)
	}
	if lag < 0 {
		return nil, fmt.Errorf("wlmgr: lag %d < 0", lag)
	}
	if len(containers) == 0 {
		return nil, errors.New("wlmgr: no containers")
	}
	n := 0
	for i, c := range containers {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if i == 0 {
			n = c.Demand.Len()
		} else if c.Demand.Len() != n {
			return nil, fmt.Errorf("wlmgr: app %q has %d slots, want %d", c.Demand.AppID, c.Demand.Len(), n)
		}
	}

	h := telemetry.OrNop(opts.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, opts.Hooks, "wlmgr.replay",
		telemetry.Float("capacity", capacity),
		telemetry.Int("containers", len(containers)),
		telemetry.Int("lag", lag),
		telemetry.Int("slots", n))
	defer span.End()
	var (
		slotsC         = h.Counter("wlmgr_slots_total")
		overloadC      = h.Counter("wlmgr_cos1_overload_slots_total")
		shortfallC     = h.Counter("wlmgr_shortfall_slots_total")
		degradedC      = h.Counter("wlmgr_degraded_container_slots_total")
		containerErrsC = h.Counter("wlmgr_container_errors_total")
		shortfallHist  = h.Histogram("wlmgr_slot_shortfall_cpus", telemetry.ExponentialBuckets(0.0625, 2, 12))
	)
	h.Counter("wlmgr_replays_total").Inc()

	res = &RunResult{Containers: make([]ContainerStats, len(containers))}
	live := make([]bool, len(containers))
	for i, c := range containers {
		res.Containers[i] = ContainerStats{
			AppID:       c.Demand.AppID,
			Received:    make([]float64, n),
			Utilization: make([]float64, n),
		}
		live[i] = true
		if opts.Inject == nil {
			continue
		}
		o := opts.Inject.Hit("wlmgr.container", c.Demand.AppID)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		switch {
		case o.Err != nil:
			res.Containers[i].Err = fmt.Errorf("wlmgr: container %q: %w", c.Demand.AppID, o.Err)
		case o.Corrupt:
			res.Containers[i].Err = fmt.Errorf("wlmgr: container %q: corrupted demand trace", c.Demand.AppID)
		default:
			continue
		}
		live[i] = false
		containerErrsC.Inc()
	}

	req1 := make([]float64, len(containers))
	req2 := make([]float64, len(containers))
	for t := 0; t < n; t++ {
		// Cancellation check amortized over 256 slots: cheap enough for
		// the hot loop, responsive enough for interactive aborts.
		if t&0xff == 0 && ctx.Err() != nil {
			res.Truncated = true
			break
		}
		// Requests come from the translated allocation traces, lagged.
		src := t - lag
		var sum1, sum2 float64
		for i, c := range containers {
			if !live[i] {
				req1[i], req2[i] = 0, 0
				continue
			}
			if src < 0 {
				// Before the first measurement the manager has no
				// demand estimate; grant the slot's request directly
				// (equivalent to a warm start).
				req1[i] = c.Partition.CoS1.Samples[t]
				req2[i] = c.Partition.CoS2.Samples[t]
			} else {
				req1[i] = c.Partition.CoS1.Samples[src]
				req2[i] = c.Partition.CoS2.Samples[src]
			}
			sum1 += req1[i]
			sum2 += req2[i]
		}

		// Priority 1 first. If the guaranteed class alone exceeds
		// capacity the placement was broken; grant proportionally and
		// record the overload.
		scale1 := 1.0
		if sum1 > capacity {
			scale1 = capacity / sum1
			res.CoS1Overload++
			overloadC.Inc()
		}
		remaining := capacity - sum1*scale1
		scale2 := 1.0
		if sum2 > remaining {
			if sum2 > 0 {
				scale2 = remaining / sum2
			} else {
				scale2 = 0
			}
		}
		slotsC.Inc()
		if shortfall := sum1*(1-scale1) + sum2*(1-scale2); shortfall > 1e-9 {
			shortfallC.Inc()
			shortfallHist.Observe(shortfall)
		}

		for i, c := range containers {
			if !live[i] {
				continue
			}
			got := req1[i]*scale1 + req2[i]*scale2
			res.Containers[i].Received[t] = got
			d := c.Demand.Samples[t]
			if d > 0 && got > 0 {
				res.Containers[i].Utilization[t] = d / got
			} else if d > 0 {
				res.Containers[i].Utilization[t] = 1 // starved: fully saturated
			}
			// A container-slot is degraded when the manager granted less
			// than the demand (utilization of allocation above 1).
			if d > got*(1+1e-9) {
				degradedC.Inc()
			}
		}
		res.SlotsReplayed = t + 1
	}
	span.SetAttr(
		telemetry.Int("cos1_overloads", res.CoS1Overload),
		telemetry.Int("slots_replayed", res.SlotsReplayed),
		telemetry.Bool("truncated", res.Truncated))
	return res, nil
}

// Compliance summarizes a container's achieved QoS against a
// requirement.
type Compliance struct {
	// AcceptableFraction is the fraction of non-idle slots with
	// utilization of allocation <= Uhigh.
	AcceptableFraction float64
	// DegradedFraction is the fraction of slots with Uhigh < U <= Udegr.
	DegradedFraction float64
	// ViolatedFraction is the fraction of slots with U > Udegr.
	ViolatedFraction float64
	// MaxUtilization is the largest observed utilization of allocation.
	MaxUtilization float64
	// LongestDegraded is the longest contiguous degraded period.
	LongestDegraded time.Duration
	// MaxDegradedInDay is the largest number of degraded epochs
	// observed within one calendar day.
	MaxDegradedInDay int
	// Satisfied reports whether the requirement held: no slot beyond
	// Udegr, at most Mdegr percent degraded, no degraded run longer
	// than Tdegr (when set), and no day over the per-day epoch budget
	// (when set).
	Satisfied bool
}

// CheckCompliance evaluates achieved utilizations against a requirement.
// The interval is the slot duration of the underlying traces.
func CheckCompliance(cs ContainerStats, q qos.AppQoS, interval time.Duration) (Compliance, error) {
	if err := q.Validate(); err != nil {
		return Compliance{}, err
	}
	if len(cs.Utilization) == 0 {
		return Compliance{}, errors.New("wlmgr: no utilization samples")
	}
	const relTol = 1e-9
	var c Compliance
	n := len(cs.Utilization)
	for _, u := range cs.Utilization {
		if u > c.MaxUtilization {
			c.MaxUtilization = u
		}
		switch {
		case u > q.UDegr*(1+relTol):
			c.ViolatedFraction++
		case u > q.UHigh*(1+relTol):
			c.DegradedFraction++
		default:
			c.AcceptableFraction++
		}
	}
	c.AcceptableFraction /= float64(n)
	c.DegradedFraction /= float64(n)
	c.ViolatedFraction /= float64(n)

	run := stats.LongestRunAbove(cs.Utilization, q.UHigh*(1+relTol))
	c.LongestDegraded = time.Duration(run.Length) * interval

	if interval > 0 {
		slotsPerDay := int(24 * time.Hour / interval)
		if slotsPerDay > 0 {
			for start := 0; start < n; start += slotsPerDay {
				end := start + slotsPerDay
				if end > n {
					end = n
				}
				count := 0
				for _, u := range cs.Utilization[start:end] {
					if u > q.UHigh*(1+relTol) {
						count++
					}
				}
				if count > c.MaxDegradedInDay {
					c.MaxDegradedInDay = count
				}
			}
		}
	}

	c.Satisfied = c.ViolatedFraction == 0 &&
		c.DegradedFraction*100 <= q.MDegrPercent()+relTol
	if r, limited := q.TDegrSlots(interval); limited && run.Length > r {
		c.Satisfied = false
	}
	if q.MaxDegradedPerDay > 0 && c.MaxDegradedInDay > q.MaxDegradedPerDay {
		c.Satisfied = false
	}
	return c, nil
}
