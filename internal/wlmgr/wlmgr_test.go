package wlmgr

import (
	"context"
	"math"
	"testing"
	"time"

	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/trace"
)

func caseStudyQoS() qos.AppQoS {
	return qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
}

func container(t *testing.T, id string, samples []float64, q qos.AppQoS, theta float64) Container {
	t.Helper()
	tr, err := trace.New(id, 5*time.Minute, samples)
	if err != nil {
		t.Fatal(err)
	}
	part, err := portfolio.Translate(tr, q, theta)
	if err != nil {
		t.Fatal(err)
	}
	return Container{Demand: tr, Partition: part}
}

func TestContainerValidate(t *testing.T) {
	q := caseStudyQoS()
	good := container(t, "a", []float64{1, 2}, q, 0.6)
	if err := good.Validate(); err != nil {
		t.Errorf("valid container rejected: %v", err)
	}
	if err := (Container{}).Validate(); err == nil {
		t.Error("empty container accepted")
	}
	mismatched := good
	other := container(t, "b", []float64{1, 2}, q, 0.6)
	mismatched.Partition = other.Partition
	if err := mismatched.Validate(); err == nil {
		t.Error("ID mismatch accepted")
	}
	short := container(t, "a", []float64{1, 2, 3}, q, 0.6)
	short.Demand = good.Demand
	if err := short.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRunArgumentErrors(t *testing.T) {
	q := caseStudyQoS()
	c := container(t, "a", []float64{1, 2}, q, 0.6)
	if _, err := Run(context.Background(), 0, []Container{c}, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Run(context.Background(), 10, nil, 0); err == nil {
		t.Error("no containers accepted")
	}
	if _, err := Run(context.Background(), 10, []Container{c}, -1); err == nil {
		t.Error("negative lag accepted")
	}
	other := container(t, "b", []float64{1, 2, 3}, q, 0.6)
	if _, err := Run(context.Background(), 10, []Container{c, other}, 0); err == nil {
		t.Error("misaligned containers accepted")
	}
}

func TestRunAmpleCapacityMeetsIdealUtilization(t *testing.T) {
	// With capacity to spare, every request is granted in full, so the
	// utilization of allocation is exactly Ulow wherever demand is
	// below the cap.
	q := caseStudyQoS()
	q.MPercent = 100 // no capping
	c := container(t, "a", []float64{1, 2, 1.5, 0}, q, 0.6)
	res, err := Run(context.Background(), 100, []Container{c}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoS1Overload != 0 {
		t.Errorf("CoS1Overload = %d, want 0", res.CoS1Overload)
	}
	cs := res.Containers[0]
	for i, d := range c.Demand.Samples {
		if d == 0 {
			if cs.Utilization[i] != 0 {
				t.Errorf("slot %d idle but utilization %v", i, cs.Utilization[i])
			}
			continue
		}
		if math.Abs(cs.Utilization[i]-q.ULow) > 1e-9 {
			t.Errorf("slot %d utilization = %v, want Ulow=%v", i, cs.Utilization[i], q.ULow)
		}
	}
}

func TestRunCoS1PriorityOverCoS2(t *testing.T) {
	// Two containers on a tight server: CoS1 requests are satisfied in
	// full before CoS2 sees any capacity.
	q := caseStudyQoS()
	q.MPercent = 100
	// theta small => large CoS1 share for a.
	a := container(t, "a", []float64{2, 2, 2, 2}, q, 0.1)
	b := container(t, "b", []float64{2, 2, 2, 2}, q, 0.1)
	part := a.Partition
	capacity := part.CoS1Peak() + b.Partition.CoS1Peak() // only CoS1 fits
	res, err := Run(context.Background(), capacity, []Container{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoS1Overload != 0 {
		t.Errorf("CoS1Overload = %d, want 0", res.CoS1Overload)
	}
	for _, cs := range res.Containers {
		for i, got := range cs.Received {
			want := part.CoS1.Samples[i]
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s slot %d received %v, want CoS1-only %v", cs.AppID, i, got, want)
			}
		}
	}
}

func TestRunProportionalCoS2Sharing(t *testing.T) {
	// Identical twins on a server that can serve all CoS1 plus half of
	// the CoS2 requests: each gets the same share.
	q := caseStudyQoS()
	q.MPercent = 100
	a := container(t, "a", []float64{2, 2}, q, 0.6)
	b := container(t, "b", []float64{2, 2}, q, 0.6)
	sumCoS1 := a.Partition.CoS1.Samples[0] + b.Partition.CoS1.Samples[0]
	sumCoS2 := a.Partition.CoS2.Samples[0] + b.Partition.CoS2.Samples[0]
	capacity := sumCoS1 + sumCoS2/2
	res, err := Run(context.Background(), capacity, []Container{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := res.Containers[0], res.Containers[1]
	for i := range ra.Received {
		if math.Abs(ra.Received[i]-rb.Received[i]) > 1e-9 {
			t.Errorf("slot %d: twins received %v vs %v", i, ra.Received[i], rb.Received[i])
		}
		want := a.Partition.CoS1.Samples[i] + a.Partition.CoS2.Samples[i]/2
		if math.Abs(ra.Received[i]-want) > 1e-9 {
			t.Errorf("slot %d received %v, want %v", i, ra.Received[i], want)
		}
	}
}

func TestRunCoS1OverloadDetected(t *testing.T) {
	q := caseStudyQoS()
	q.MPercent = 100
	a := container(t, "a", []float64{4, 4}, q, 0.1)
	capacity := a.Partition.CoS1Peak() / 2 // even CoS1 cannot fit
	res, err := Run(context.Background(), capacity, []Container{a}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoS1Overload == 0 {
		t.Error("CoS1 overload not detected")
	}
}

func TestRunLagShiftsRequests(t *testing.T) {
	q := caseStudyQoS()
	q.MPercent = 100
	c := container(t, "a", []float64{1, 4, 1, 1}, q, 0.6)
	res, err := Run(context.Background(), 100, []Container{c}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Containers[0]
	// At slot 1 the demand spikes to 4, but the (lagged) allocation was
	// sized for demand 1: utilization shoots above Ulow.
	if cs.Utilization[1] <= q.ULow {
		t.Errorf("lagged manager should be caught out by the spike: U=%v", cs.Utilization[1])
	}
	// At slot 2 demand falls back to 1 while the allocation was sized
	// for 4: utilization drops below Ulow.
	if cs.Utilization[2] >= q.ULow {
		t.Errorf("slot after spike should be over-allocated: U=%v", cs.Utilization[2])
	}
}

func TestEndToEndComplianceAtCommittedTheta(t *testing.T) {
	// The contract in one test: translate a bursty demand trace, run it
	// through a manager that delivers CoS1 fully and exactly the
	// committed fraction of CoS2, and the achieved utilization must
	// satisfy the QoS requirement.
	q := caseStudyQoS()
	q.TDegr = 30 * time.Minute
	theta := 0.6
	samples := make([]float64, 2016)
	for i := range samples {
		samples[i] = 1 + 0.5*math.Sin(float64(i)/30)
	}
	for i := 400; i < 420; i++ {
		samples[i] = 5 // 100-minute burst
	}
	samples[1000] = 6 // isolated spike
	c := container(t, "a", samples, q, theta)

	// Capacity delivering full CoS1 and exactly theta of CoS2: emulate
	// by scaling the CoS2 trace (the manager grants proportionally, so
	// a single-container run at reduced capacity gives the same worst
	// case per slot only when capacity binds every slot; instead check
	// against the partition's own worst-case utilization).
	comp := complianceFromWorstCase(t, c, q)
	if !comp.Satisfied {
		t.Errorf("worst-case compliance not satisfied: %+v", comp)
	}
	if comp.MaxUtilization > q.UDegr*(1+1e-9) {
		t.Errorf("MaxUtilization = %v beyond Udegr", comp.MaxUtilization)
	}
}

// complianceFromWorstCase builds ContainerStats from the partition's
// analytic worst case (CoS2 delivered at exactly θ) and checks them.
func complianceFromWorstCase(t *testing.T, c Container, q qos.AppQoS) Compliance {
	t.Helper()
	cs := ContainerStats{AppID: c.Demand.AppID}
	for _, d := range c.Demand.Samples {
		cs.Utilization = append(cs.Utilization, c.Partition.WorstCaseUtilization(d))
	}
	comp, err := CheckCompliance(cs, q, c.Demand.Interval)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestCheckCompliance(t *testing.T) {
	q := caseStudyQoS()
	q.TDegr = 10 * time.Minute // R = 2 slots at 5-minute intervals
	cs := ContainerStats{
		AppID:       "a",
		Utilization: []float64{0.5, 0.6, 0.7, 0.7, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
	}
	comp, err := CheckCompliance(cs, q, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if comp.DegradedFraction != 0.2 {
		t.Errorf("DegradedFraction = %v, want 0.2", comp.DegradedFraction)
	}
	if comp.LongestDegraded != 10*time.Minute {
		t.Errorf("LongestDegraded = %v, want 10m", comp.LongestDegraded)
	}
	if comp.MaxUtilization != 0.7 {
		t.Errorf("MaxUtilization = %v, want 0.7", comp.MaxUtilization)
	}
	// 20% degraded exceeds the 3% budget.
	if comp.Satisfied {
		t.Error("Satisfied = true, want false (Mdegr budget exceeded)")
	}

	// A violation beyond Udegr is never satisfied.
	cs.Utilization = []float64{0.95}
	comp, err = CheckCompliance(cs, q, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if comp.ViolatedFraction != 1 || comp.Satisfied {
		t.Errorf("violation not detected: %+v", comp)
	}

	// A clean trace satisfies.
	cs.Utilization = []float64{0.5, 0.55, 0.6}
	comp, err = CheckCompliance(cs, q, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Satisfied || comp.AcceptableFraction != 1 {
		t.Errorf("clean trace not satisfied: %+v", comp)
	}

	// Run-length violation with an otherwise small degraded fraction.
	long := make([]float64, 100)
	for i := range long {
		long[i] = 0.5
	}
	long[10], long[11], long[12] = 0.7, 0.7, 0.7 // 3 slots > R=2
	comp, err = CheckCompliance(ContainerStats{Utilization: long}, q, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Satisfied {
		t.Error("Tdegr run violation not detected")
	}

	if _, err := CheckCompliance(ContainerStats{}, q, 5*time.Minute); err == nil {
		t.Error("empty stats accepted")
	}
	bad := q
	bad.ULow = 0
	if _, err := CheckCompliance(cs, bad, 5*time.Minute); err == nil {
		t.Error("invalid QoS accepted")
	}
}

func TestCheckComplianceDailyBudget(t *testing.T) {
	// One-hour slots: 24 per day. Three scattered degraded epochs on
	// day one, none on day two.
	util := make([]float64, 48)
	for i := range util {
		util[i] = 0.5
	}
	util[2], util[10], util[20] = 0.7, 0.7, 0.7

	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 90}
	comp, err := CheckCompliance(ContainerStats{Utilization: util}, q, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if comp.MaxDegradedInDay != 3 {
		t.Errorf("MaxDegradedInDay = %d, want 3", comp.MaxDegradedInDay)
	}
	if !comp.Satisfied {
		t.Error("without a per-day budget the trace should satisfy")
	}

	q.MaxDegradedPerDay = 2
	comp, err = CheckCompliance(ContainerStats{Utilization: util}, q, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Satisfied {
		t.Error("3 degraded epochs should violate a per-day budget of 2")
	}

	q.MaxDegradedPerDay = 3
	comp, err = CheckCompliance(ContainerStats{Utilization: util}, q, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Satisfied {
		t.Error("budget of 3 should be satisfied exactly")
	}
}
