package wlmgr

import (
	"context"
	"errors"
	"testing"

	"ropus/internal/faultinject"
)

func TestCancelReplayTruncated(t *testing.T) {
	q := caseStudyQoS()
	cs := []Container{
		container(t, "a", []float64{1, 2, 1, 2}, q, 0.6),
		container(t, "b", []float64{2, 1, 2, 1}, q, 0.6),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, 10, cs, 0)
	if err != nil {
		t.Fatalf("cancelled replay should degrade, got %v", err)
	}
	if !res.Truncated {
		t.Error("cancelled replay should be flagged Truncated")
	}
	if res.SlotsReplayed != 0 {
		t.Errorf("pre-cancelled replay simulated %d slots, want 0", res.SlotsReplayed)
	}
	// A live context replays every slot and is not truncated.
	res, err = Run(context.Background(), 10, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.SlotsReplayed != 4 {
		t.Errorf("full replay: truncated=%v slots=%d, want false/4", res.Truncated, res.SlotsReplayed)
	}
}

func TestChaosContainerFaultSkipsContainer(t *testing.T) {
	q := caseStudyQoS()
	cs := []Container{
		container(t, "a", []float64{1, 2, 1, 2}, q, 0.6),
		container(t, "b", []float64{2, 1, 2, 1}, q, 0.6),
	}
	res, err := Replay(context.Background(), 10, cs, Options{
		Inject: faultinject.MustScript(1,
			faultinject.Rule{Point: "wlmgr.container", Key: "b"}),
	})
	if err != nil {
		t.Fatalf("a faulted container should not abort the replay: %v", err)
	}
	var a, b *ContainerStats
	for i := range res.Containers {
		switch res.Containers[i].AppID {
		case "a":
			a = &res.Containers[i]
		case "b":
			b = &res.Containers[i]
		}
	}
	if !errors.Is(b.Err, faultinject.ErrInjected) {
		t.Errorf("container b should record the injected fault, got %v", b.Err)
	}
	for s, v := range b.Received {
		if v != 0 {
			t.Errorf("faulted container received %v at slot %d, want 0", v, s)
		}
	}
	if a.Err != nil {
		t.Errorf("healthy container errored: %v", a.Err)
	}
	received := false
	for _, v := range a.Received {
		received = received || v > 0
	}
	if !received {
		t.Error("healthy container received nothing")
	}
}

func TestChaosContainerCorruptMarked(t *testing.T) {
	q := caseStudyQoS()
	cs := []Container{container(t, "a", []float64{1, 2}, q, 0.6)}
	res, err := Replay(context.Background(), 10, cs, Options{
		Inject: faultinject.MustScript(1,
			faultinject.Rule{Point: "wlmgr.container", Corrupt: true}),
	})
	if err != nil {
		t.Fatalf("corrupt container should not abort the replay: %v", err)
	}
	if res.Containers[0].Err == nil {
		t.Error("corrupted container should record an error")
	}
}
