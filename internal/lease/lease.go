// Package lease implements leased ownership of named resources over a
// shared directory, the coordination primitive behind fleet-mode
// `ropus serve`: N instances share one state directory, and a lease
// decides which instance owns a queued job at any moment.
//
// A lease is a small fsync'd JSON file naming the holding instance, a
// monotonically increasing ownership epoch, the holder's heartbeat
// timestamp and its TTL, plus an FNV checksum of all of the above. The
// protocol needs nothing beyond POSIX file semantics — no flock, no
// network — so it works on any filesystem the instances share:
//
//   - Claim: write a unique temp file, fsync it, and os.Link it to the
//     lease path. Link fails if the path exists, so exactly one claimant
//     wins a contested claim.
//   - Renew: the holder rewrites the file through its still-open file
//     descriptor and then verifies the path still resolves to that same
//     inode. A holder whose lease was stolen observes a different inode
//     (or none) and learns it lost ownership.
//   - Steal: a lease whose heartbeat is older than its TTL is expired.
//     A stealer renames the lease path to a unique stale marker — only
//     one concurrent stealer's rename succeeds, the rest see ENOENT —
//     and then claims freshly with the old epoch + 1.
//   - Release: the holder rewrites the file as a released tombstone.
//     The next claimant takes over immediately (no TTL wait) and still
//     inherits the epoch sequence.
//
// Torn reads are handled conservatively: a lease file that fails to
// parse or checksum was written milliseconds ago, so observers treat it
// as live. The epoch is fencing metadata, not a hard mutual-exclusion
// guarantee — a paused holder can keep executing briefly after losing
// its lease, until its next renewal notices. Consumers must therefore
// keep per-epoch side effects isolated (the serve layer writes
// checkpoint journals to per-epoch files and discards results once a
// renewal fails) so a zombie's writes never corrupt the thief's.
//
// Injection points consulted when a faultinject.Injector is configured
// (keys are the lease name):
//
//	lease.acquire  Err fails the acquisition; Delay postpones it
//	lease.expire   any fired outcome makes a live lease look expired,
//	               forcing a deterministic contested steal
//	lease.steal    Delay is imposed between the expiry decision and the
//	               steal itself, widening the contested window
//	lease.renew    Err fails the renewal, so the holder observes a lost
//	               lease and cancels its work
package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/telemetry"
)

// DefaultTTL is the heartbeat budget when Keeper.TTL is zero: a holder
// that misses renewals for this long is presumed dead and stealable.
const DefaultTTL = 10 * time.Second

// ErrHeld reports an acquisition that lost to a live holder (or to a
// concurrent claimant racing the same lease).
var ErrHeld = errors.New("lease: held by another instance")

// ErrLost reports an operation on a lease this holder no longer owns:
// a peer stole it after the heartbeat went stale.
var ErrLost = errors.New("lease: ownership lost")

// HeldError wraps ErrHeld with the observed holder, so callers can
// surface who owns the resource.
type HeldError struct {
	Name     string
	Instance string
	Epoch    uint64
}

func (e *HeldError) Error() string {
	if e.Instance == "" {
		return fmt.Sprintf("lease: %s held by a concurrent claimant", e.Name)
	}
	return fmt.Sprintf("lease: %s held by %s (epoch %d)", e.Name, e.Instance, e.Epoch)
}

// Unwrap lets errors.Is(err, ErrHeld) match.
func (e *HeldError) Unwrap() error { return ErrHeld }

// Status classifies what an observer sees at a lease path.
type Status int

const (
	// StatusAbsent: no lease file; the resource is unowned.
	StatusAbsent Status = iota
	// StatusLive: a holder heartbeated within its TTL.
	StatusLive
	// StatusExpired: the heartbeat is older than the TTL; stealable.
	StatusExpired
	// StatusReleased: the holder released cleanly; claimable at once.
	StatusReleased
	// StatusUnreadable: the file exists but is torn or corrupt. A torn
	// lease was being written moments ago, so observers treat it as
	// live rather than steal from an active writer.
	StatusUnreadable
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusAbsent:
		return "absent"
	case StatusLive:
		return "live"
	case StatusExpired:
		return "expired"
	case StatusReleased:
		return "released"
	case StatusUnreadable:
		return "unreadable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Info is the persisted lease record.
type Info struct {
	// Instance identifies the holder.
	Instance string `json:"instance"`
	// Epoch increments on every change of ownership (initial claim,
	// takeover of a released lease, steal of an expired one). Consumers
	// use it to fence per-ownership side effects.
	Epoch uint64 `json:"epoch"`
	// HeartbeatNS is the holder's last renewal, UnixNano.
	HeartbeatNS int64 `json:"heartbeatNs"`
	// TTLNS is the holder's declared heartbeat budget: observers treat
	// the lease as expired once now - HeartbeatNS exceeds it.
	TTLNS int64 `json:"ttlNs"`
	// Released marks a clean hand-back; the next claimant skips the TTL
	// wait but still continues the epoch sequence.
	Released bool `json:"released,omitempty"`
	// Sum is the FNV-1a checksum of the fields above, so a torn write
	// is detected instead of trusted.
	Sum string `json:"sum"`
}

// sum computes the record checksum over every field that matters.
func (i Info) sum() string {
	h := fnvOffset64
	fold := func(s string) {
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= fnvPrime64
		}
		h ^= 0xff // delimiter
		h *= fnvPrime64
	}
	fold(i.Instance)
	fold(fmt.Sprintf("%d|%d|%d|%t", i.Epoch, i.HeartbeatNS, i.TTLNS, i.Released))
	return fmt.Sprintf("%016x", h)
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Keeper acquires and observes leases in one directory on behalf of
// one instance. The zero TTL selects DefaultTTL. Keeper is safe for
// concurrent use.
type Keeper struct {
	// Dir is the shared lease directory (required; must exist).
	Dir string
	// Instance identifies this process in lease files (required).
	Instance string
	// TTL is the heartbeat budget written into every lease this keeper
	// claims. Peers steal once a heartbeat is older than this.
	TTL time.Duration
	// Inject is the test-only fault injector consulted at the
	// lease.acquire / lease.expire / lease.steal / lease.renew points;
	// nil injects nothing.
	Inject faultinject.Injector
	// Hooks (nil ok) receives the lease_* counters.
	Hooks telemetry.Hooks

	// now is the clock, swappable in tests.
	now func() time.Time
}

// uniq distinguishes temp and stale-marker names within a process.
var uniq atomic.Uint64

func (k *Keeper) clock() time.Time {
	if k.now != nil {
		return k.now()
	}
	return time.Now()
}

func (k *Keeper) ttl() time.Duration {
	if k.TTL > 0 {
		return k.TTL
	}
	return DefaultTTL
}

func (k *Keeper) hooks() telemetry.Hooks { return telemetry.OrNop(k.Hooks) }

func (k *Keeper) path(name string) string {
	return filepath.Join(k.Dir, name+".lease")
}

func (k *Keeper) hit(point, key string) faultinject.Outcome {
	if k.Inject == nil {
		return faultinject.Outcome{}
	}
	o := k.Inject.Hit(point, key)
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	return o
}

// Read reports what this keeper observes at the lease: the decoded
// record (zero when absent or unreadable) and its status. The expiry
// judgment uses the TTL recorded in the lease itself, falling back to
// the keeper's TTL when the record carries none.
func (k *Keeper) Read(name string) (Info, Status) {
	data, err := os.ReadFile(k.path(name))
	if err != nil {
		return Info{}, StatusAbsent
	}
	var info Info
	if uerr := json.Unmarshal(data, &info); uerr != nil || info.Sum != info.sum() {
		return Info{}, StatusUnreadable
	}
	if info.Released {
		return info, StatusReleased
	}
	ttl := time.Duration(info.TTLNS)
	if ttl <= 0 {
		ttl = k.ttl()
	}
	if k.clock().Sub(time.Unix(0, info.HeartbeatNS)) > ttl {
		return info, StatusExpired
	}
	return info, StatusLive
}

// Acquire claims the named lease for this keeper's instance. A live
// holder fails the claim with a HeldError (errors.Is ErrHeld); an
// absent, released or expired lease is claimed — the latter two
// continue the previous epoch sequence, and an expired claim is a
// steal, reported by Lease.Stolen. Exactly one of N concurrent
// claimants wins; the rest get ErrHeld and should retry later.
func (k *Keeper) Acquire(name string) (*Lease, error) {
	if o := k.hit("lease.acquire", name); o.Err != nil {
		return nil, fmt.Errorf("lease: acquire %s: %w", name, o.Err)
	}
	info, status := k.Read(name)
	if status == StatusLive || status == StatusUnreadable {
		// A scripted lease.expire outcome forces the expiry decision, so
		// chaos tests can stage contested steals deterministically.
		o := k.hit("lease.expire", name)
		if o.Err == nil && o.Delay == 0 && !o.Corrupt {
			return nil, &HeldError{Name: name, Instance: info.Instance, Epoch: info.Epoch}
		}
		status = StatusExpired
	}
	epoch := info.Epoch + 1
	if status == StatusExpired || status == StatusReleased {
		if status == StatusExpired {
			k.hit("lease.steal", name)
		}
		// Unseat the previous record: exactly one concurrent stealer's
		// rename succeeds, everyone else finds the path already gone.
		stale := fmt.Sprintf("%s.stale.%s.%d", k.path(name), sanitize(k.Instance), uniq.Add(1))
		if err := os.Rename(k.path(name), stale); err != nil {
			if os.IsNotExist(err) {
				return nil, &HeldError{Name: name}
			}
			return nil, fmt.Errorf("lease: steal %s: %w", name, err)
		}
		os.Remove(stale)
	}
	l, err := k.claim(name, epoch)
	if err != nil {
		return nil, err
	}
	l.stolen = status == StatusExpired
	if l.stolen {
		k.hooks().Counter("lease_steals_total").Inc()
	}
	k.hooks().Counter("lease_acquired_total").Inc()
	return l, nil
}

// claim links a freshly written record into the lease path. os.Link
// fails if the path exists, so a concurrent claimant cannot be
// half-overwritten: one link wins, the rest get ErrHeld.
func (k *Keeper) claim(name string, epoch uint64) (*Lease, error) {
	l := &Lease{k: k, name: name, epoch: epoch}
	tmp := fmt.Sprintf("%s.claim.%s.%d", k.path(name), sanitize(k.Instance), uniq.Add(1))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lease: claim %s: %w", name, err)
	}
	l.f = f
	if err := l.writeLocked(false); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Link(tmp, k.path(name)); err != nil {
		f.Close()
		os.Remove(tmp)
		if os.IsExist(err) {
			return nil, &HeldError{Name: name}
		}
		return nil, fmt.Errorf("lease: claim %s: %w", name, err)
	}
	os.Remove(tmp)
	return l, nil
}

// sanitize keeps instance-derived path fragments filesystem-safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Lease is a held lease. All methods are safe for concurrent use.
type Lease struct {
	k      *Keeper
	name   string
	epoch  uint64
	stolen bool

	mu   sync.Mutex
	f    *os.File
	lost bool
}

// Name returns the lease name.
func (l *Lease) Name() string { return l.name }

// Epoch returns the ownership epoch of this acquisition.
func (l *Lease) Epoch() uint64 { return l.epoch }

// Stolen reports whether this acquisition took the lease from an
// expired holder (as opposed to claiming a free or released one).
func (l *Lease) Stolen() bool { return l.stolen }

// writeLocked rewrites the record through the held descriptor and
// fsyncs it. Callers hold l.mu (or the lease is not yet shared).
func (l *Lease) writeLocked(released bool) error {
	info := Info{
		Instance:    l.k.Instance,
		Epoch:       l.epoch,
		HeartbeatNS: l.k.clock().UnixNano(),
		TTLNS:       int64(l.k.ttl()),
		Released:    released,
	}
	info.Sum = info.sum()
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("lease: write %s: %w", l.name, err)
	}
	if _, err := l.f.WriteAt(data, 0); err != nil {
		return fmt.Errorf("lease: write %s: %w", l.name, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("lease: sync %s: %w", l.name, err)
	}
	return nil
}

// ownsLocked verifies the lease path still resolves to the held
// descriptor's inode — the ground truth for "do I still own this".
func (l *Lease) ownsLocked() bool {
	onDisk, err := os.Stat(l.k.path(l.name))
	if err != nil {
		return false
	}
	held, err := l.f.Stat()
	if err != nil {
		return false
	}
	return os.SameFile(onDisk, held)
}

// Renew refreshes the heartbeat. It returns ErrLost — permanently —
// once the lease path no longer resolves to this holder's file: a peer
// stole the lease, and the holder must stop the work it was covering.
func (l *Lease) Renew() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost || l.f == nil {
		return ErrLost
	}
	if o := l.k.hit("lease.renew", l.name); o.Err != nil {
		l.lost = true
		l.k.hooks().Counter("lease_lost_total").Inc()
		return fmt.Errorf("%w: %w", ErrLost, o.Err)
	}
	if err := l.writeLocked(false); err != nil {
		return err
	}
	if !l.ownsLocked() {
		l.lost = true
		l.k.hooks().Counter("lease_lost_total").Inc()
		return ErrLost
	}
	return nil
}

// Release hands the lease back as a released tombstone: the next
// claimant (typically a restarted instance) takes over immediately,
// with the epoch sequence intact. Releasing a lost lease is a no-op.
func (l *Lease) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closeLocked(false)
}

// Discard removes the lease file entirely. Use it when the guarded
// resource is finished for good (the job completed), so the directory
// does not accumulate a tombstone per historical job.
func (l *Lease) Discard() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closeLocked(true)
}

func (l *Lease) closeLocked(remove bool) error {
	if l.f == nil {
		return nil
	}
	var err error
	if !l.lost && l.ownsLocked() {
		if remove {
			err = os.Remove(l.k.path(l.name))
		} else {
			err = l.writeLocked(true)
		}
	}
	cerr := l.f.Close()
	l.f = nil
	l.lost = true
	if err != nil {
		return err
	}
	return cerr
}
