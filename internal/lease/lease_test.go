package lease

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ropus/internal/faultinject"
)

func keeper(t *testing.T, instance string, ttl time.Duration) *Keeper {
	t.Helper()
	return &Keeper{Dir: t.TempDir(), Instance: instance, TTL: ttl}
}

func TestAcquireRenewRelease(t *testing.T) {
	k := keeper(t, "a", time.Second)
	l, err := k.Acquire("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 1 || l.Stolen() {
		t.Fatalf("fresh claim: epoch %d stolen %v", l.Epoch(), l.Stolen())
	}
	info, status := k.Read("job-1")
	if status != StatusLive || info.Instance != "a" || info.Epoch != 1 {
		t.Fatalf("after claim: %v %+v", status, info)
	}
	if err := l.Renew(); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if _, status := k.Read("job-1"); status != StatusReleased {
		t.Fatalf("after release: %v", status)
	}

	// Takeover of a released lease is immediate (no TTL wait), continues
	// the epoch sequence, and is not a steal.
	l2, err := k.Acquire("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch() != 2 || l2.Stolen() {
		t.Fatalf("takeover: epoch %d stolen %v", l2.Epoch(), l2.Stolen())
	}
	if err := l2.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, status := k.Read("job-1"); status != StatusAbsent {
		t.Fatalf("after discard: %v", status)
	}
}

func TestSecondAcquirerIsHeld(t *testing.T) {
	a := keeper(t, "a", time.Minute)
	b := &Keeper{Dir: a.Dir, Instance: "b", TTL: time.Minute}
	if _, err := a.Acquire("job"); err != nil {
		t.Fatal(err)
	}
	_, err := b.Acquire("job")
	var held *HeldError
	if !errors.As(err, &held) || !errors.Is(err, ErrHeld) {
		t.Fatalf("got %v, want HeldError", err)
	}
	if held.Instance != "a" || held.Epoch != 1 {
		t.Fatalf("held by %q epoch %d, want a/1", held.Instance, held.Epoch)
	}
}

func TestStealExpiredLease(t *testing.T) {
	a := keeper(t, "a", 50*time.Millisecond)
	la, err := a.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a's crash: no renewals, no release.
	time.Sleep(80 * time.Millisecond)

	b := &Keeper{Dir: a.Dir, Instance: "b", TTL: 50 * time.Millisecond}
	lb, err := b.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Stolen() || lb.Epoch() != 2 {
		t.Fatalf("steal: stolen=%v epoch=%d", lb.Stolen(), lb.Epoch())
	}
	// The zombie holder discovers the loss on its next renewal, and the
	// loss is permanent.
	if err := la.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("zombie renew: got %v, want ErrLost", err)
	}
	if err := la.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("second zombie renew: got %v, want ErrLost", err)
	}
	// A lost holder's release must not clobber the thief's lease.
	if err := la.Release(); err != nil {
		t.Fatal(err)
	}
	if info, status := b.Read("job"); status != StatusLive || info.Instance != "b" {
		t.Fatalf("thief's lease damaged by zombie release: %v %+v", status, info)
	}
}

// TestContestedStealExactlyOneWinner: many stealers race one expired
// lease; exactly one acquisition succeeds, the rest observe ErrHeld.
// Run under -race this also proves the keeper is data-race free.
func TestContestedStealExactlyOneWinner(t *testing.T) {
	a := keeper(t, "dead", 10*time.Millisecond)
	if _, err := a.Acquire("job"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)

	const n = 8
	var wg sync.WaitGroup
	wins := make(chan *Lease, n)
	var helds, others int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := &Keeper{Dir: a.Dir, Instance: string(rune('A' + i)), TTL: time.Minute}
			l, err := k.Acquire("job")
			switch {
			case err == nil:
				wins <- l
			case errors.Is(err, ErrHeld):
				mu.Lock()
				helds++
				mu.Unlock()
			default:
				mu.Lock()
				others++
				mu.Unlock()
				t.Errorf("unexpected acquire error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []*Lease
	for l := range wins {
		winners = append(winners, l)
	}
	if len(winners) != 1 {
		t.Fatalf("%d winners, want exactly 1 (held=%d other=%d)", len(winners), helds, others)
	}
	if got := winners[0].Epoch(); got != 2 {
		t.Errorf("winner epoch %d, want 2", got)
	}
}

func TestTornLeaseTreatedAsLive(t *testing.T) {
	k := keeper(t, "a", time.Millisecond)
	path := k.path("job")
	if err := os.WriteFile(path, []byte(`{"instance":"x","epo`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, status := k.Read("job"); status != StatusUnreadable {
		t.Fatalf("torn lease read as %v, want unreadable", status)
	}
	// Unreadable means "written moments ago": Acquire must refuse to
	// steal even though any parseable heartbeat would count as expired.
	if _, err := k.Acquire("job"); !errors.Is(err, ErrHeld) {
		t.Fatalf("torn lease acquire: got %v, want ErrHeld", err)
	}
	// Same for a checksum mismatch (a record tampered or half-replaced).
	info := Info{Instance: "x", Epoch: 3, HeartbeatNS: 1, TTLNS: 1, Sum: "not-the-sum"}
	data, _ := json.Marshal(info)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, status := k.Read("job"); status != StatusUnreadable {
		t.Fatalf("bad-sum lease read as %v, want unreadable", status)
	}
}

// TestInjectedExpiryForcesSteal: the lease.expire injection point makes
// a live lease stealable, so chaos tests can stage contested steals
// deterministically, and lease.renew makes the holder observe the loss.
func TestInjectedExpiryForcesSteal(t *testing.T) {
	a := keeper(t, "a", time.Minute)
	la, err := a.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	thief := &Keeper{
		Dir: a.Dir, Instance: "b", TTL: time.Minute,
		Inject: faultinject.MustScript(1,
			faultinject.Rule{Point: "lease.expire", Key: "job"},
			faultinject.Rule{Point: "lease.steal", Key: "job", Delay: 5 * time.Millisecond},
		),
	}
	lb, err := thief.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Stolen() || lb.Epoch() != 2 {
		t.Fatalf("forced steal: stolen=%v epoch=%d", lb.Stolen(), lb.Epoch())
	}
	if err := la.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("victim renew: got %v, want ErrLost", err)
	}
}

// TestInjectedRenewFailure: a scripted lease.renew error marks the
// lease lost without any peer involvement (models a heartbeat that
// could not reach the shared directory).
func TestInjectedRenewFailure(t *testing.T) {
	k := keeper(t, "a", time.Minute)
	k.Inject = faultinject.MustScript(1, faultinject.Rule{Point: "lease.renew", Nth: 2})
	l, err := k.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(); err != nil {
		t.Fatalf("first renew should pass: %v", err)
	}
	if err := l.Renew(); !errors.Is(err, ErrLost) {
		t.Fatalf("second renew: got %v, want ErrLost", err)
	}
}

func TestAcquireLeavesNoTempDebris(t *testing.T) {
	k := keeper(t, "a", 10*time.Millisecond)
	l, err := k.Acquire("job")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	b := &Keeper{Dir: k.Dir, Instance: "b", TTL: time.Minute}
	if _, err := b.Acquire("job"); err != nil {
		t.Fatal(err)
	}
	_ = l
	entries, err := os.ReadDir(k.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "job.lease" {
			t.Errorf("debris left behind: %s", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(k.Dir, "job.lease")); err != nil {
		t.Errorf("lease file missing: %v", err)
	}
}
