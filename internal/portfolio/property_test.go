package portfolio

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ropus/internal/qos"
	"ropus/internal/trace"
)

// randomValidTriple draws (Ulow, Uhigh, theta) satisfying the formula-1
// domain: 0 < Ulow <= Uhigh < 1 and 0 < theta <= 1.
func randomValidTriple(rng *rand.Rand) (uLow, uHigh, theta float64) {
	uHigh = 0.05 + 0.94*rng.Float64() // (0.05, 0.99)
	uLow = uHigh * (0.05 + 0.95*rng.Float64())
	theta = math.Nextafter(rng.Float64(), 1) // avoid exactly 0
	return uLow, uHigh, theta
}

// TestPropertyBreakpointRange: for random valid (Ulow, Uhigh, theta)
// the paper's formula 1 always yields p in [0, 1], zero exactly when
// theta already covers the utilization ratio.
func TestPropertyBreakpointRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		uLow, uHigh, theta := randomValidTriple(rng)
		p, err := Breakpoint(uLow, uHigh, theta)
		if err != nil {
			t.Fatalf("valid triple (%v,%v,%v) rejected: %v", uLow, uHigh, theta, err)
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("Breakpoint(%v,%v,%v) = %v outside [0,1]", uLow, uHigh, theta, p)
		}
		if ratio := uLow / uHigh; ratio <= theta && p != 0 {
			t.Fatalf("theta %v >= ratio %v but p = %v, want 0", theta, ratio, p)
		}
	}
}

// TestPropertyBreakpointMonotoneInTheta: the CoS1 share p is
// non-increasing in theta — a stronger pool commitment moves demand
// from guaranteed CoS1 into probabilistic CoS2, never the reverse.
func TestPropertyBreakpointMonotoneInTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		uLow, uHigh, _ := randomValidTriple(rng)
		t1 := math.Nextafter(rng.Float64(), 1)
		t2 := math.Nextafter(rng.Float64(), 1)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		p1, err1 := Breakpoint(uLow, uHigh, t1)
		p2, err2 := Breakpoint(uLow, uHigh, t2)
		if err1 != nil || err2 != nil {
			t.Fatalf("valid triples rejected: %v, %v", err1, err2)
		}
		if p1 < p2 {
			t.Fatalf("p not monotone: theta %v -> p %v, theta %v -> p %v (Ulow=%v Uhigh=%v)",
				t1, p1, t2, p2, uLow, uHigh)
		}
	}
}

// TestPropertyBreakpointBoundaries pins the formula's edges: theta
// equal to Ulow/Uhigh lands exactly on p = 0, theta = 1 (a hard
// guarantee for CoS2) makes CoS1 empty, and theta -> 0 pushes
// everything into CoS1 (p -> Ulow/Uhigh).
func TestPropertyBreakpointBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		uLow, uHigh, _ := randomValidTriple(rng)
		ratio := uLow / uHigh
		if p, err := Breakpoint(uLow, uHigh, ratio); err != nil || p != 0 {
			t.Fatalf("theta = Ulow/Uhigh = %v: p = %v err = %v, want 0", ratio, p, err)
		}
		if p, err := Breakpoint(uLow, uHigh, 1); err != nil || p != 0 {
			t.Fatalf("theta = 1: p = %v err = %v, want 0", p, err)
		}
		tiny := 1e-12
		p, err := Breakpoint(uLow, uHigh, tiny)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-ratio) > 1e-9 {
			t.Fatalf("theta -> 0: p = %v, want ~Ulow/Uhigh = %v", p, ratio)
		}
	}
}

// TestPropertyTranslateConservation is the metamorphic check on the
// full translation: for every sample the CoS1 + CoS2 allocations equal
// the granted (possibly capped) demand scaled by 1/Ulow, CoS1 respects
// the breakpoint, and both classes are non-negative.
func TestPropertyTranslateConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}
	for iter := 0; iter < 50; iter++ {
		samples := make([]float64, 7*24)
		for i := range samples {
			samples[i] = 16 * rng.Float64()
		}
		tr := &trace.Trace{AppID: "fuzz", Interval: time.Hour, Samples: samples}
		theta := math.Nextafter(rng.Float64(), 1)
		part, err := Translate(tr, q, theta)
		if err != nil {
			t.Fatal(err)
		}
		breakAlloc := part.P * part.DNewMax / q.ULow
		for i := range samples {
			cos1, cos2 := part.CoS1.Samples[i], part.CoS2.Samples[i]
			if cos1 < 0 || cos2 < 0 {
				t.Fatalf("negative allocation at %d: cos1=%v cos2=%v", i, cos1, cos2)
			}
			granted := math.Min(samples[i], part.DNewMax)
			if diff := math.Abs(cos1 + cos2 - granted/q.ULow); diff > 1e-9 {
				t.Fatalf("sample %d: cos1+cos2 = %v, want %v", i, cos1+cos2, granted/q.ULow)
			}
			if cos1 > breakAlloc+1e-9 {
				t.Fatalf("sample %d: CoS1 %v exceeds breakpoint allocation %v", i, cos1, breakAlloc)
			}
		}
	}
}

// FuzzBreakpoint feeds arbitrary floats, including NaN and infinities,
// into formula 1: every input must either be rejected with an error or
// produce a finite p in [0, 1] — never a NaN, never a panic.
func FuzzBreakpoint(f *testing.F) {
	f.Add(0.5, 0.66, 0.6)
	f.Add(0.5, 0.5, 1.0)
	f.Add(math.NaN(), 0.66, 0.6)
	f.Add(0.5, math.Inf(1), 0.6)
	f.Add(0.5, 0.66, math.NaN())
	f.Add(-1.0, 0.66, 0.0)
	f.Fuzz(func(t *testing.T, uLow, uHigh, theta float64) {
		p, err := Breakpoint(uLow, uHigh, theta)
		if err != nil {
			return
		}
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			t.Fatalf("Breakpoint(%v,%v,%v) accepted with p = %v", uLow, uHigh, theta, p)
		}
	})
}

// FuzzTranslate hammers the full translation entry point with
// arbitrary QoS floats, theta, and demand samples. Invalid inputs
// (NaN/Inf anywhere, out-of-range parameters) must be rejected; any
// accepted input must yield finite partitions.
func FuzzTranslate(f *testing.F) {
	f.Add(0.5, 0.66, 0.9, 97.0, 0.6, 4.0, 8.0)
	f.Add(0.5, 0.66, 0.9, 97.0, 0.6, math.NaN(), 8.0)
	f.Add(math.Inf(1), 0.66, 0.9, 97.0, 0.6, 4.0, 8.0)
	f.Add(0.3, 0.4, 0.5, 50.0, math.Inf(-1), 1.0, 2.0)
	f.Fuzz(func(t *testing.T, uLow, uHigh, uDegr, m, theta, s0, s1 float64) {
		q := qos.AppQoS{ULow: uLow, UHigh: uHigh, UDegr: uDegr, MPercent: m}
		tr := &trace.Trace{AppID: "fuzz", Interval: time.Hour, Samples: []float64{s0, s1}}
		part, err := Translate(tr, q, theta)
		if err != nil {
			return
		}
		for _, v := range []float64{part.P, part.DMax, part.DNewMax, part.MaxAllocation()} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted input produced non-finite output: %+v", part)
			}
		}
		for i := range tr.Samples {
			if math.IsNaN(part.CoS1.Samples[i]) || math.IsNaN(part.CoS2.Samples[i]) {
				t.Fatalf("accepted input produced NaN partition at %d", i)
			}
		}
	})
}
