// Package portfolio implements R-Opus's QoS translation (paper
// section V): partitioning an application's workload demands across the
// resource pool's two classes of service so that the application's QoS
// requirement is met as long as the pool honours its per-CoS resource
// access commitments.
//
// The method is motivated by portfolio theory: CoS1 (guaranteed) and
// CoS2 (probabilistic, access probability θ) are investments with
// different risk, and demand is divided between them so that the
// worst-case utilization of allocation stays within the application's
// tolerated range.
//
// Three steps, mirroring the paper:
//
//  1. The breakpoint p = (Ulow/Uhigh - θ)/(1 - θ) (formula 1) splits
//     demand between CoS1 and CoS2 for the acceptable range.
//  2. The degraded-performance allowance (Mdegr, Udegr) caps the maximum
//     demand D_new_max at max(D_M%, D_max*Uhigh/Udegr) (formulas 2-3);
//     the reduction is bounded by 1 - Uhigh/Udegr (formula 5).
//  3. The time-limited degradation constraint Tdegr iteratively raises
//     the cap to break runs of more than R contiguous degraded
//     observations (formulas 6-11).
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"ropus/internal/qos"
	"ropus/internal/stats"
	"ropus/internal/telemetry"
	"ropus/internal/trace"
)

// ErrNoConvergence is returned if the Tdegr analysis fails to reach a
// fixed point; with a monotonically increasing cap this indicates a bug
// or NaN input rather than a property of the workload.
var ErrNoConvergence = errors.New("portfolio: Tdegr analysis did not converge")

// Breakpoint computes p, the fraction of the (capped) peak demand
// associated with CoS1 (paper formula 1). If θ >= Ulow/Uhigh all demand
// can ride on CoS2 and p = 0.
func Breakpoint(uLow, uHigh, theta float64) (float64, error) {
	if !(uLow > 0 && uLow <= uHigh && uHigh < 1) {
		return 0, fmt.Errorf("portfolio: need 0 < Ulow <= Uhigh < 1, got (%v,%v)", uLow, uHigh)
	}
	if !(theta > 0 && theta <= 1) {
		return 0, fmt.Errorf("portfolio: need 0 < theta <= 1, got %v", theta)
	}
	ratio := uLow / uHigh
	if ratio <= theta {
		return 0, nil
	}
	// theta < ratio <= 1 here, so theta < 1 and the division is safe.
	return (ratio - theta) / (1 - theta), nil
}

// MaxCapReductionBound is the upper bound on the possible reduction of
// the maximum allocation from allowing degraded performance (paper
// formula 5): 1 - Uhigh/Udegr. It depends only on Uhigh and Udegr.
func MaxCapReductionBound(uHigh, uDegr float64) float64 {
	if uDegr <= 0 {
		return 0
	}
	return 1 - uHigh/uDegr
}

// MaxAllocationTrend returns a value proportional to the maximum
// allocation required per application when the time-limited degradation
// constraint is active, as a function of θ (paper Figure 3): the
// allocation needed to serve a fixed demand at utilization Uhigh in the
// worst case is proportional to 1/(p(1-θ)+θ).
func MaxAllocationTrend(uLow, uHigh, theta float64) (float64, error) {
	p, err := Breakpoint(uLow, uHigh, theta)
	if err != nil {
		return 0, err
	}
	return 1 / (p*(1-theta) + theta), nil
}

// Partition is the result of translating one application's demands onto
// the pool's two classes of service. CoS1 and CoS2 are per-slot
// allocation traces in CPU units; their sum is the application's
// requested allocation.
type Partition struct {
	// AppID identifies the translated application.
	AppID string
	// QoS is the application requirement used for the translation.
	QoS qos.AppQoS
	// Theta is the CoS2 resource access probability assumed.
	Theta float64
	// P is the breakpoint: the fraction of DNewMax served by CoS1.
	P float64
	// DMax is the original peak demand of the trace.
	DMax float64
	// DNewMax is the capped maximum demand controlling the maximum
	// allocation (paper formulas 2, 3 and 10).
	DNewMax float64
	// CoS1 and CoS2 hold the per-slot allocation requirements for the
	// guaranteed and probabilistic classes.
	CoS1 *trace.Trace
	CoS2 *trace.Trace
}

// MaxAllocation returns the application's maximum CPU allocation,
// DNewMax / Ulow.
func (p *Partition) MaxAllocation() float64 { return p.DNewMax / p.QoS.ULow }

// MaxCapReduction returns the achieved reduction of the maximum
// allocation relative to the uncapped peak (paper Figure 7), in [0,1].
func (p *Partition) MaxCapReduction() float64 {
	if p.DMax == 0 {
		return 0
	}
	return 1 - p.DNewMax/p.DMax
}

// CoS1Peak returns the peak CoS1 allocation; the placement service must
// guarantee the sum of these over a server stays within its capacity.
func (p *Partition) CoS1Peak() float64 { return p.CoS1.Peak() }

// Total returns the per-slot total requested allocation (CoS1 + CoS2).
func (p *Partition) Total() *trace.Trace {
	out := p.CoS1.Clone()
	out.AppID = p.AppID
	for i, v := range p.CoS2.Samples {
		out.Samples[i] += v
	}
	return out
}

// WorstCaseUtilization returns the application's utilization of
// allocation for demand d assuming CoS1 is fully satisfied and CoS2 is
// satisfied at exactly the committed probability θ — the worst case the
// pool commitment permits. A zero demand yields zero.
func (p *Partition) WorstCaseUtilization(d float64) float64 {
	if d <= 0 {
		return 0
	}
	received := worstCaseReceived(d, p.DNewMax, p.P, p.Theta, p.QoS.ULow)
	if received <= 0 {
		return math.Inf(1)
	}
	return d / received
}

// DegradedFraction returns the fraction of trace observations whose
// worst-case utilization of allocation exceeds Uhigh (paper Figure 8).
func (p *Partition) DegradedFraction(tr *trace.Trace) float64 {
	if tr.Len() == 0 {
		return 0
	}
	n := 0
	for _, d := range tr.Samples {
		if degraded(p.WorstCaseUtilization(d), p.QoS.UHigh) {
			n++
		}
	}
	return float64(n) / float64(tr.Len())
}

// worstCaseReceived computes the capacity an application receives for
// demand d in the worst case: allocations are requested with burst
// factor 1/Ulow against the demand capped at dNewMax, split at the
// breakpoint; CoS1 is fully delivered and CoS2 delivered at fraction θ.
func worstCaseReceived(d, dNewMax, p, theta, uLow float64) float64 {
	granted := math.Min(d, dNewMax)
	cos1 := math.Min(granted, p*dNewMax)
	cos2 := granted - cos1
	return (cos1 + theta*cos2) / uLow
}

// degraded reports whether utilization u exceeds uHigh, with a relative
// tolerance so that observations engineered to sit exactly at Uhigh by
// the Tdegr analysis do not flip to degraded through rounding.
func degraded(u, uHigh float64) bool {
	const relTol = 1e-9
	return u > uHigh*(1+relTol)
}

// Translate maps one application's demand trace onto the pool's two
// classes of service under the given QoS requirement and CoS2 access
// probability θ (paper section V, all three steps).
func Translate(tr *trace.Trace, q qos.AppQoS, theta float64) (*Partition, error) {
	return TranslateWithHooks(tr, q, theta, nil)
}

// TranslateWithHooks is Translate with telemetry: a per-application
// span, translation timing and cap-analysis iteration counters. A nil
// Hooks disables all of it.
func TranslateWithHooks(tr *trace.Trace, q qos.AppQoS, theta float64, hooks telemetry.Hooks) (*Partition, error) {
	return TranslateCtx(context.Background(), tr, q, theta, hooks)
}

// TranslateCtx is TranslateWithHooks with trace correlation: the
// per-application span is opened through ctx, so it nests under the
// caller's span and carries the run's trace ID.
func TranslateCtx(ctx context.Context, tr *trace.Trace, q qos.AppQoS, theta float64, hooks telemetry.Hooks) (*Partition, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	h := telemetry.OrNop(hooks)
	start := time.Now()
	_, span := telemetry.StartSpanCtx(ctx, hooks, "portfolio.translate",
		telemetry.String("app", tr.AppID),
		telemetry.Float("theta", theta))
	defer span.End()
	defer func() {
		h.Histogram("portfolio_translate_seconds", nil).Observe(time.Since(start).Seconds())
	}()
	h.Counter("portfolio_translations_total").Inc()
	capIterations := h.Counter("portfolio_cap_iterations_total")

	p, err := Breakpoint(q.ULow, q.UHigh, theta)
	if err != nil {
		return nil, err
	}

	dMax := tr.Peak()
	cap, err := initialCap(tr, q, dMax)
	if err != nil {
		return nil, err
	}
	if r, limited := q.TDegrSlots(tr.Interval); limited {
		cap, err = applyTDegr(tr.Samples, q, p, theta, cap, r, capIterations)
		if err != nil {
			return nil, fmt.Errorf("portfolio: app %q: %w", tr.AppID, err)
		}
	}
	if q.MaxDegradedPerDay > 0 {
		cap, err = applyDailyBudget(tr.Samples, q, p, theta, cap, tr.SlotsPerDay(), capIterations)
		if err != nil {
			return nil, fmt.Errorf("portfolio: app %q: %w", tr.AppID, err)
		}
	}
	span.SetAttr(telemetry.Float("d_max", dMax), telemetry.Float("d_new_max", cap))

	part := &Partition{
		AppID:   tr.AppID,
		QoS:     q,
		Theta:   theta,
		P:       p,
		DMax:    dMax,
		DNewMax: cap,
		CoS1:    &trace.Trace{AppID: tr.AppID, Interval: tr.Interval, Samples: make([]float64, tr.Len())},
		CoS2:    &trace.Trace{AppID: tr.AppID, Interval: tr.Interval, Samples: make([]float64, tr.Len())},
	}
	breakDemand := p * cap
	for i, d := range tr.Samples {
		granted := math.Min(d, cap)
		cos1 := math.Min(granted, breakDemand)
		part.CoS1.Samples[i] = cos1 / q.ULow
		part.CoS2.Samples[i] = (granted - cos1) / q.ULow
	}
	return part, nil
}

// initialCap applies the degraded-performance allowance (paper step 2):
// with no allowance the cap is D_max; otherwise it is
// max(D_M%, D_max * Uhigh/Udegr), which simultaneously respects the
// M-percent budget and the Udegr ceiling (formulas 2 and 3).
func initialCap(tr *trace.Trace, q qos.AppQoS, dMax float64) (float64, error) {
	if q.MDegrPercent() <= 0 || dMax == 0 {
		return dMax, nil
	}
	// Nearest-rank (higher) semantics guarantee that at most Mdegr
	// percent of samples lie strictly above D_M% on traces of any size.
	dM, err := stats.PercentileNearestRank(tr.Samples, q.MPercent)
	if err != nil {
		return 0, err
	}
	aOK := dM / q.UHigh
	aDegr := dMax / q.UDegr
	if aOK >= aDegr {
		return dM, nil
	}
	return dMax * q.UHigh / q.UDegr, nil
}

// applyTDegr iteratively raises the cap until no run of more than r
// contiguous observations is degraded in the worst case (paper step 3,
// formulas 6-11). Each iteration takes the first over-long degraded
// run, finds its smallest demand D_min_degr among the first r+1
// observations, and recomputes the cap so that D_min_degr is served at
// utilization Uhigh exactly (formula 10), breaking the run.
func applyTDegr(samples []float64, q qos.AppQoS, p, theta, cap float64, r int, iterC *telemetry.Counter) (float64, error) {
	// Worst-case degraded <=> utilization > Uhigh. Expressed on demand:
	// d > cap * (p + theta*(1-p)) * Uhigh/Ulow =: cap * k.
	k := (p + theta*(1-p)) * q.UHigh / q.ULow
	factor := q.ULow / (q.UHigh * (p*(1-theta) + theta)) // formula 10 coefficient

	// The cap increases monotonically and each iteration pins it to a
	// distinct trace demand times a constant, so it converges within
	// len(samples) iterations.
	for iter := 0; iter <= len(samples); iter++ {
		iterC.Inc()
		run, found := firstLongRunAbove(samples, cap*k, r)
		if !found {
			return cap, nil
		}
		// Only r+1 contiguous degraded observations are needed to
		// violate the constraint; breaking the minimum among the first
		// r+1 suffices and matches the paper's presentation.
		window := r + 1
		if window > run.Length {
			window = run.Length
		}
		dMinDegr, _, err := stats.MinInRange(samples, run.Start, window)
		if err != nil {
			return 0, err
		}
		newCap := dMinDegr * factor
		if !(newCap > cap) {
			return 0, fmt.Errorf("%w: cap stalled at %v", ErrNoConvergence, cap)
		}
		cap = newCap
	}
	return 0, ErrNoConvergence
}

// applyDailyBudget iteratively raises the cap until no calendar day has
// more than q.MaxDegradedPerDay worst-case degraded observations (the
// per-period epoch budget of paper footnote 2). Like the Tdegr
// analysis, each iteration un-degrades the smallest degraded demand of
// the first over-budget day, so the cap increases monotonically and the
// loop converges within len(samples) iterations.
func applyDailyBudget(samples []float64, q qos.AppQoS, p, theta, cap float64, slotsPerDay int, iterC *telemetry.Counter) (float64, error) {
	if slotsPerDay <= 0 {
		return 0, fmt.Errorf("portfolio: slotsPerDay %d <= 0", slotsPerDay)
	}
	k := (p + theta*(1-p)) * q.UHigh / q.ULow
	factor := q.ULow / (q.UHigh * (p*(1-theta) + theta))

	for iter := 0; iter <= len(samples); iter++ {
		iterC.Inc()
		day, minDemand, found := firstOverBudgetDay(samples, cap*k, slotsPerDay, q.MaxDegradedPerDay)
		if !found {
			return cap, nil
		}
		newCap := minDemand * factor
		if !(newCap > cap) {
			return 0, fmt.Errorf("%w: daily budget cap stalled at %v (day %d)", ErrNoConvergence, cap, day)
		}
		cap = newCap
	}
	return 0, ErrNoConvergence
}

// firstOverBudgetDay scans day by day for more than budget samples above
// threshold and returns the day index and the smallest exceeding demand
// in that day.
func firstOverBudgetDay(samples []float64, threshold float64, slotsPerDay, budget int) (day int, minDemand float64, found bool) {
	nDays := (len(samples) + slotsPerDay - 1) / slotsPerDay
	for d := 0; d < nDays; d++ {
		start := d * slotsPerDay
		end := start + slotsPerDay
		if end > len(samples) {
			end = len(samples)
		}
		count := 0
		minV := math.Inf(1)
		for i := start; i < end; i++ {
			if samples[i] > threshold {
				count++
				if samples[i] < minV {
					minV = samples[i]
				}
			}
		}
		if count > budget {
			return d, minV, true
		}
	}
	return 0, 0, false
}

// firstLongRunAbove returns the first maximal run of consecutive samples
// strictly above threshold whose length exceeds r.
func firstLongRunAbove(samples []float64, threshold float64, r int) (stats.Run, bool) {
	for _, run := range stats.RunsAbove(samples, threshold) {
		if run.Length > r {
			return run, true
		}
	}
	return stats.Run{}, false
}
