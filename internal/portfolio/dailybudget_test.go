package portfolio

import (
	"testing"
	"time"

	"ropus/internal/qos"
	"ropus/internal/trace"
)

// dayTrace builds a 2-day trace at a 1-hour interval (24 slots/day)
// with base load 1.0 and the given spike positions at the given level.
func dayTrace(t *testing.T, spikes []int, level float64) *trace.Trace {
	t.Helper()
	samples := make([]float64, 48)
	for i := range samples {
		samples[i] = 1.0
	}
	for _, i := range spikes {
		samples[i] = level
	}
	tr, err := trace.New("daily", time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// degradedPerDay counts worst-case degraded observations per day.
func degradedPerDay(part *Partition, tr *trace.Trace) []int {
	slots := tr.SlotsPerDay()
	counts := make([]int, (tr.Len()+slots-1)/slots)
	for i, d := range tr.Samples {
		if degraded(part.WorstCaseUtilization(d), part.QoS.UHigh) {
			counts[i/slots]++
		}
	}
	return counts
}

func TestDailyBudgetEnforced(t *testing.T) {
	// Five spaced spikes on day 0 (no contiguous run), well within the
	// global Mdegr budget (5/48 > 3%, so give a generous MPercent).
	tr := dayTrace(t, []int{2, 6, 10, 14, 18}, 3.0)
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 85}

	unbudgeted, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if got := degradedPerDay(unbudgeted, tr)[0]; got != 5 {
		t.Fatalf("setup: expected 5 degraded epochs on day 0, got %d", got)
	}

	q.MaxDegradedPerDay = 2
	budgeted, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	counts := degradedPerDay(budgeted, tr)
	for day, c := range counts {
		if c > 2 {
			t.Errorf("day %d has %d degraded epochs, budget 2", day, c)
		}
	}
	if budgeted.DNewMax <= unbudgeted.DNewMax {
		t.Errorf("budget should raise the cap: %v <= %v", budgeted.DNewMax, unbudgeted.DNewMax)
	}
}

func TestDailyBudgetMonotoneInBudget(t *testing.T) {
	tr := dayTrace(t, []int{1, 5, 9, 13, 17, 21}, 4.0)
	prev := 0.0
	for _, budget := range []int{6, 4, 2, 1} {
		q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 80, MaxDegradedPerDay: budget}
		part, err := Translate(tr, q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if part.DNewMax < prev-1e-12 {
			t.Errorf("cap decreased for tighter budget %d", budget)
		}
		prev = part.DNewMax
	}
}

func TestDailyBudgetZeroMeansUnlimited(t *testing.T) {
	tr := dayTrace(t, []int{2, 6, 10}, 3.0)
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 85}
	a, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	q.MaxDegradedPerDay = 0
	b, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if a.DNewMax != b.DNewMax {
		t.Errorf("zero budget must be a no-op: %v vs %v", a.DNewMax, b.DNewMax)
	}
}

func TestDailyBudgetComposesWithTDegr(t *testing.T) {
	// A contiguous 3-hour plateau plus scattered spikes: Tdegr breaks
	// the run, the daily budget mops up the scatter.
	samples := make([]float64, 48)
	for i := range samples {
		samples[i] = 1.0
	}
	for i := 4; i < 7; i++ { // 3-hour plateau
		samples[i] = 3.0
	}
	samples[12], samples[20], samples[30], samples[40] = 2.5, 2.5, 2.5, 2.5
	tr, err := trace.New("combo", time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	q := qos.AppQoS{
		ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 80,
		TDegr:             2 * time.Hour,
		MaxDegradedPerDay: 1,
	}
	part, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	counts := degradedPerDay(part, tr)
	for day, c := range counts {
		if c > 1 {
			t.Errorf("day %d has %d degraded epochs, budget 1", day, c)
		}
	}
	// The Tdegr constraint must also still hold.
	r, _ := q.TDegrSlots(tr.Interval)
	run := 0
	for _, d := range tr.Samples {
		if degraded(part.WorstCaseUtilization(d), q.UHigh) {
			run++
			if run > r {
				t.Fatalf("degraded run exceeds %d slots", r)
			}
		} else {
			run = 0
		}
	}
}

func TestDailyBudgetOnCaseStudyQoSValidation(t *testing.T) {
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, MaxDegradedPerDay: -1}
	if err := q.Validate(); err == nil {
		t.Error("negative MaxDegradedPerDay accepted")
	}
}
