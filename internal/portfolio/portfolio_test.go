package portfolio

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ropus/internal/qos"
	"ropus/internal/stats"
	"ropus/internal/trace"
)

func caseStudyQoS() qos.AppQoS {
	return qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
}

func mkTrace(t *testing.T, samples []float64) *trace.Trace {
	t.Helper()
	tr, err := trace.New("app", 5*time.Minute, samples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBreakpoint(t *testing.T) {
	tests := []struct {
		name  string
		uLow  float64
		uHigh float64
		theta float64
		want  float64
	}{
		{name: "case study theta 0.6", uLow: 0.5, uHigh: 0.66, theta: 0.6, want: (0.5/0.66 - 0.6) / 0.4},
		{name: "case study theta 0.95 all CoS2", uLow: 0.5, uHigh: 0.66, theta: 0.95, want: 0},
		{name: "theta at ratio", uLow: 0.5, uHigh: 0.66, theta: 0.5 / 0.66, want: 0},
		{name: "theta one", uLow: 0.5, uHigh: 0.66, theta: 1, want: 0},
		{name: "tiny theta mostly CoS1", uLow: 0.6, uHigh: 0.6, theta: 0.01, want: (1.0 - 0.01) / 0.99},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Breakpoint(tt.uLow, tt.uHigh, tt.theta)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Breakpoint = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBreakpointErrors(t *testing.T) {
	cases := [][3]float64{
		{0, 0.66, 0.5},   // Ulow zero
		{0.7, 0.66, 0.5}, // Ulow above Uhigh
		{0.5, 1.0, 0.5},  // Uhigh at one
		{0.5, 0.66, 0},   // theta zero
		{0.5, 0.66, 1.1}, // theta above one
	}
	for _, c := range cases {
		if _, err := Breakpoint(c[0], c[1], c[2]); err == nil {
			t.Errorf("Breakpoint(%v) should fail", c)
		}
	}
}

func TestQuickBreakpointBoundsAndMonotone(t *testing.T) {
	f := func(a, b, c uint16) bool {
		uLow := 0.01 + float64(a%90)/100        // 0.01..0.90
		uHigh := uLow + float64(b%9)/100 + 0.01 // > uLow
		if uHigh >= 1 {
			uHigh = 0.99
		}
		if uLow > uHigh {
			uLow = uHigh
		}
		t1 := 0.05 + float64(c%90)/100
		t2 := t1 + 0.05
		if t2 > 1 {
			t2 = 1
		}
		p1, err1 := Breakpoint(uLow, uHigh, t1)
		p2, err2 := Breakpoint(uLow, uHigh, t2)
		if err1 != nil || err2 != nil {
			return false
		}
		// p in [0,1] and non-increasing in theta.
		return p1 >= 0 && p1 <= 1 && p2 >= 0 && p2 <= 1 && p2 <= p1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakpointFormulaGrid(t *testing.T) {
	// Cross-check Breakpoint against the closed form over a parameter
	// grid: p = (Ulow/Uhigh - theta)/(1 - theta) clamped at 0.
	for _, uLow := range []float64{0.3, 0.5, 0.6} {
		for _, uHigh := range []float64{0.6, 0.66, 0.8} {
			if uLow > uHigh {
				continue
			}
			for theta := 0.1; theta < 1.0; theta += 0.1 {
				got, err := Breakpoint(uLow, uHigh, theta)
				if err != nil {
					t.Fatal(err)
				}
				want := (uLow/uHigh - theta) / (1 - theta)
				if want < 0 {
					want = 0
				}
				if !almostEqual(got, want, 1e-12) {
					t.Fatalf("Breakpoint(%v,%v,%v) = %v, want %v", uLow, uHigh, theta, got, want)
				}
				// Formula 1's defining identity: p + (1-p)θ = Ulow/Uhigh
				// whenever p > 0.
				if got > 0 {
					if lhs := got + (1-got)*theta; !almostEqual(lhs, uLow/uHigh, 1e-12) {
						t.Fatalf("identity violated at (%v,%v,%v): %v != %v",
							uLow, uHigh, theta, lhs, uLow/uHigh)
					}
				}
			}
		}
	}
}

func TestMaxCapReductionBound(t *testing.T) {
	got := MaxCapReductionBound(0.66, 0.9)
	if !almostEqual(got, 1-0.66/0.9, 1e-12) {
		t.Errorf("bound = %v, want %v (26.7%%)", got, 1-0.66/0.9)
	}
	if got := MaxCapReductionBound(0.66, 0); got != 0 {
		t.Errorf("bound with Udegr=0 = %v, want 0", got)
	}
}

func TestMaxAllocationTrend(t *testing.T) {
	// The paper: for theta=0.95 the maximum allocation is ~20% below
	// theta=0.6 with (Ulow,Uhigh)=(0.5,0.66).
	hi, err := MaxAllocationTrend(0.5, 0.66, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MaxAllocationTrend(0.5, 0.66, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ratio := hi / lo
	if ratio < 0.75 || ratio > 0.85 {
		t.Errorf("trend ratio theta 0.95/0.6 = %v, want ~0.80", ratio)
	}
	if _, err := MaxAllocationTrend(0, 0.5, 0.5); err == nil {
		t.Error("invalid inputs should fail")
	}
}

func TestTranslateNoDegradationBudget(t *testing.T) {
	q := caseStudyQoS()
	q.MPercent = 100
	tr := mkTrace(t, []float64{1, 2, 4, 3})
	part, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if part.DNewMax != 4 || part.DMax != 4 {
		t.Errorf("DNewMax = %v, DMax = %v, want 4, 4", part.DNewMax, part.DMax)
	}
	if part.MaxCapReduction() != 0 {
		t.Errorf("MaxCapReduction = %v, want 0", part.MaxCapReduction())
	}
	// Total allocation must be demand / Ulow everywhere (no capping).
	total := part.Total()
	for i, d := range tr.Samples {
		want := d / q.ULow
		if !almostEqual(total.Samples[i], want, 1e-12) {
			t.Errorf("total[%d] = %v, want %v", i, total.Samples[i], want)
		}
	}
	if got := part.MaxAllocation(); !almostEqual(got, 8, 1e-12) {
		t.Errorf("MaxAllocation = %v, want 8", got)
	}
}

func TestTranslateSplitsAtBreakpoint(t *testing.T) {
	q := caseStudyQoS()
	q.MPercent = 100
	theta := 0.6
	tr := mkTrace(t, []float64{0.5, 2, 4})
	part, err := Translate(tr, q, theta)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Breakpoint(q.ULow, q.UHigh, theta)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(part.P, p, 1e-12) {
		t.Errorf("P = %v, want %v", part.P, p)
	}
	breakDemand := p * 4 // p * DNewMax
	for i, d := range tr.Samples {
		wantCoS1 := math.Min(d, breakDemand) / q.ULow
		wantCoS2 := (d - math.Min(d, breakDemand)) / q.ULow
		if !almostEqual(part.CoS1.Samples[i], wantCoS1, 1e-12) {
			t.Errorf("CoS1[%d] = %v, want %v", i, part.CoS1.Samples[i], wantCoS1)
		}
		if !almostEqual(part.CoS2.Samples[i], wantCoS2, 1e-12) {
			t.Errorf("CoS2[%d] = %v, want %v", i, part.CoS2.Samples[i], wantCoS2)
		}
	}
	if got := part.CoS1Peak(); !almostEqual(got, breakDemand/q.ULow, 1e-12) {
		t.Errorf("CoS1Peak = %v, want %v", got, breakDemand/q.ULow)
	}
}

func TestTranslateHighThetaAllCoS2(t *testing.T) {
	q := caseStudyQoS()
	q.MPercent = 100
	tr := mkTrace(t, []float64{1, 3})
	part, err := Translate(tr, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if part.P != 0 {
		t.Errorf("P = %v, want 0", part.P)
	}
	if peak := part.CoS1Peak(); peak != 0 {
		t.Errorf("CoS1Peak = %v, want 0 (all demand on CoS2)", peak)
	}
}

func TestInitialCapPercentileBranch(t *testing.T) {
	// 100 samples: 97 at 1.0, 3 at 1.05. D97% ~= 1.0, Dmax = 1.05.
	// Aok = 1/0.66 = 1.51 >= Adegr = 1.05/0.9 = 1.17 => cap = D_M%.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 1.0
	}
	samples[10], samples[50], samples[90] = 1.05, 1.05, 1.05
	tr := mkTrace(t, samples)
	part, err := Translate(tr, caseStudyQoS(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	dM, err := stats.PercentileNearestRank(tr.Samples, 97)
	if err != nil {
		t.Fatal(err)
	}
	if dM != 1.0 {
		t.Fatalf("nearest-rank D97%% = %v, want 1.0", dM)
	}
	if !almostEqual(part.DNewMax, dM, 1e-9) {
		t.Errorf("DNewMax = %v, want D97%% = %v", part.DNewMax, dM)
	}
}

func TestInitialCapUdegrBranch(t *testing.T) {
	// A single large spike: D97% is far below Dmax*Uhigh/Udegr, so the
	// Udegr ceiling dictates the cap and the reduction hits the formula
	// 5 bound exactly.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 0.1
	}
	samples[42] = 10
	tr := mkTrace(t, samples)
	q := caseStudyQoS()
	part, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * q.UHigh / q.UDegr
	if !almostEqual(part.DNewMax, want, 1e-9) {
		t.Errorf("DNewMax = %v, want %v", part.DNewMax, want)
	}
	if !almostEqual(part.MaxCapReduction(), MaxCapReductionBound(q.UHigh, q.UDegr), 1e-9) {
		t.Errorf("reduction = %v, want the formula-5 bound %v",
			part.MaxCapReduction(), MaxCapReductionBound(q.UHigh, q.UDegr))
	}
}

func TestWorstCaseUtilizationProfile(t *testing.T) {
	q := caseStudyQoS()
	q.MPercent = 100
	theta := 0.6
	tr := mkTrace(t, []float64{1, 2, 3, 4})
	part, err := Translate(tr, q, theta)
	if err != nil {
		t.Fatal(err)
	}
	// Small demand entirely on CoS1: utilization is exactly Ulow.
	small := part.P * part.DNewMax * 0.5
	if u := part.WorstCaseUtilization(small); !almostEqual(u, q.ULow, 1e-12) {
		t.Errorf("U(small) = %v, want Ulow=%v", u, q.ULow)
	}
	// Demand exactly at the cap: utilization is exactly Uhigh.
	if u := part.WorstCaseUtilization(part.DNewMax); !almostEqual(u, q.UHigh, 1e-9) {
		t.Errorf("U(DNewMax) = %v, want Uhigh=%v", u, q.UHigh)
	}
	// Zero demand: zero utilization.
	if u := part.WorstCaseUtilization(0); u != 0 {
		t.Errorf("U(0) = %v, want 0", u)
	}
	// Monotone in demand.
	prev := -1.0
	for d := 0.1; d <= 5; d += 0.1 {
		u := part.WorstCaseUtilization(d)
		if u < prev-1e-12 {
			t.Fatalf("worst-case utilization not monotone at d=%v", d)
		}
		prev = u
	}
}

func TestTDegrBreaksLongRuns(t *testing.T) {
	// Base load 1.0 with a 10-slot plateau at 3.0: with Mdegr=3% of 200
	// samples = 6 samples allowed degraded, but 10 contiguous degraded
	// slots violate Tdegr=30min (R=6 at 5-minute slots).
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = 1.0
	}
	for i := 100; i < 110; i++ {
		samples[i] = 3.0
	}
	tr := mkTrace(t, samples)
	q := caseStudyQoS()
	q.MPercent = 95 // plenty of degraded budget so only Tdegr binds

	unlimited, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	q.TDegr = 30 * time.Minute
	limited, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if limited.DNewMax <= unlimited.DNewMax {
		t.Errorf("Tdegr should raise the cap: %v <= %v", limited.DNewMax, unlimited.DNewMax)
	}

	// No worst-case degraded run longer than R may remain.
	r, _ := q.TDegrSlots(tr.Interval)
	degradedSeries := make([]float64, len(samples))
	for i, d := range samples {
		if u := limited.WorstCaseUtilization(d); degraded(u, q.UHigh) {
			degradedSeries[i] = 1
		}
	}
	if run := stats.LongestRunAbove(degradedSeries, 0.5); run.Length > r {
		t.Errorf("degraded run of %d slots remains, limit %d", run.Length, r)
	}
}

func TestTDegrTighterLimitRaisesCap(t *testing.T) {
	// Random-ish bursty trace; caps must be monotone in the strictness
	// of Tdegr: none <= 2h <= 1h <= 30min.
	samples := make([]float64, 2016)
	for i := range samples {
		samples[i] = 0.5 + 0.4*math.Sin(float64(i)/40)
	}
	for i := 500; i < 540; i++ { // 200-minute plateau
		samples[i] = 4
	}
	for i := 1200; i < 1215; i++ { // 75-minute plateau
		samples[i] = 3
	}
	tr := mkTrace(t, samples)

	caps := make([]float64, 0, 4)
	for _, tdegr := range []time.Duration{0, 2 * time.Hour, time.Hour, 30 * time.Minute} {
		q := caseStudyQoS()
		q.TDegr = tdegr
		part, err := Translate(tr, q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, part.DNewMax)
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1]-1e-12 {
			t.Errorf("cap decreased for tighter Tdegr: %v", caps)
		}
	}
	if caps[3] <= caps[0] {
		t.Errorf("30-minute limit should raise the cap above unlimited: %v", caps)
	}
}

func TestTDegrHigherThetaSmallerCap(t *testing.T) {
	// Paper: under time-limiting constraints, higher theta yields a
	// smaller maximum allocation.
	samples := make([]float64, 2016)
	for i := range samples {
		samples[i] = 0.5
	}
	for i := 300; i < 330; i++ {
		samples[i] = 4
	}
	tr := mkTrace(t, samples)
	q := caseStudyQoS()
	q.TDegr = 30 * time.Minute

	low, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Translate(tr, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if high.DNewMax >= low.DNewMax {
		t.Errorf("cap(theta=0.95)=%v should be below cap(theta=0.6)=%v",
			high.DNewMax, low.DNewMax)
	}
}

func TestDegradedFraction(t *testing.T) {
	// 100 samples, 2 above the cap threshold: with M=95% the cap lands
	// at max(D95%, Dmax*Uhigh/Udegr) and exactly the samples above
	// cap*k are degraded.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 1.0
	}
	samples[10], samples[60] = 1.6, 1.6
	tr := mkTrace(t, samples)
	q := caseStudyQoS()
	q.MPercent = 95
	part, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	got := part.DegradedFraction(tr)
	// cap = max(1.0, 1.6*0.66/0.9 = 1.173); k = 1 at theta 0.6 with
	// formula-1 p, so degraded <=> d > 1.173: the two 1.6 samples.
	if got != 0.02 {
		t.Errorf("DegradedFraction = %v, want 0.02", got)
	}

	// Empty trace edge case goes through the Len()==0 branch.
	var empty trace.Trace
	if f := part.DegradedFraction(&empty); f != 0 {
		t.Errorf("DegradedFraction(empty) = %v, want 0", f)
	}

	// No degradation allowance: nothing can be degraded in worst case.
	q.MPercent = 100
	full, err := Translate(tr, q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if f := full.DegradedFraction(tr); f != 0 {
		t.Errorf("DegradedFraction with M=100 = %v, want 0", f)
	}
}

func TestApplyDailyBudgetBadSlots(t *testing.T) {
	q := caseStudyQoS()
	if _, err := applyDailyBudget([]float64{1}, q, 0.4, 0.6, 1, 0, nil); err == nil {
		t.Error("slotsPerDay=0 accepted")
	}
}

func TestWorstCaseUtilizationZeroAllocation(t *testing.T) {
	// A partition with a zero cap (zero trace) returns +Inf for any
	// positive demand rather than dividing by zero.
	tr := mkTrace(t, []float64{0, 0})
	part, err := Translate(tr, caseStudyQoS(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if u := part.WorstCaseUtilization(1); !math.IsInf(u, 1) {
		t.Errorf("U(1) with zero cap = %v, want +Inf", u)
	}
}

func TestTranslateZeroTrace(t *testing.T) {
	tr := mkTrace(t, []float64{0, 0, 0})
	part, err := Translate(tr, caseStudyQoS(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if part.DNewMax != 0 || part.MaxAllocation() != 0 {
		t.Errorf("zero trace should translate to zero allocations, got %+v", part)
	}
	for i := range part.CoS1.Samples {
		if part.CoS1.Samples[i] != 0 || part.CoS2.Samples[i] != 0 {
			t.Fatal("zero trace produced non-zero allocations")
		}
	}
	if got := part.MaxCapReduction(); got != 0 {
		t.Errorf("MaxCapReduction of zero trace = %v, want 0", got)
	}
}

func TestTranslateInputErrors(t *testing.T) {
	tr := mkTrace(t, []float64{1})
	bad := caseStudyQoS()
	bad.ULow = 0
	if _, err := Translate(tr, bad, 0.6); err == nil {
		t.Error("invalid QoS should fail")
	}
	if _, err := Translate(tr, caseStudyQoS(), 0); err == nil {
		t.Error("invalid theta should fail")
	}
	broken := &trace.Trace{AppID: "x", Interval: 5 * time.Minute}
	if _, err := Translate(broken, caseStudyQoS(), 0.6); err == nil {
		t.Error("invalid trace should fail")
	}
}

// TestQuickTranslatedQoSGuarantees is the central invariant: whatever
// the workload, the translated partition keeps the worst-case
// utilization of allocation within the promised envelope.
func TestQuickTranslatedQoSGuarantees(t *testing.T) {
	f := func(raw []uint16, thetaRaw, tdegrChoice uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 400 {
			raw = raw[:400]
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v) / 1000
		}
		tr, err := trace.New("q", 5*time.Minute, samples)
		if err != nil {
			return false
		}
		theta := 0.05 + float64(thetaRaw)/255*0.95
		q := caseStudyQoS()
		switch tdegrChoice % 3 {
		case 1:
			q.TDegr = 30 * time.Minute
		case 2:
			q.TDegr = time.Hour
		}
		part, err := Translate(tr, q, theta)
		if err != nil {
			return false
		}

		nDegraded := 0
		for _, d := range samples {
			u := part.WorstCaseUtilization(d)
			if u > q.UDegr*(1+1e-9) {
				return false // never beyond Udegr
			}
			if degraded(u, q.UHigh) {
				nDegraded++
			}
		}
		// At most Mdegr percent of measurements degraded.
		if float64(nDegraded) > q.MDegrPercent()/100*float64(len(samples))+1e-9 {
			return false
		}
		// Breakpoint split is consistent: CoS1 never exceeds its share.
		for i := range samples {
			if part.CoS1.Samples[i] > part.P*part.DNewMax/q.ULow+1e-9 {
				return false
			}
		}
		return part.DNewMax <= part.DMax+1e-9
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
