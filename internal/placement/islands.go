package placement

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ropus/internal/parallel"
	"ropus/internal/telemetry"
)

// Deterministic island-model genetic search (GAConfig.Islands > 1).
//
// The population is split into Islands subpopulations ("islands") that
// evolve independently, each with its own RNG derived deterministically
// from (Seed, island index). Every MigrationInterval generations the
// islands synchronize at a barrier and exchange migrants around a ring:
// the best member of island i replaces the worst member of island i+1.
// Between barriers the islands share no mutable state except the
// evaluator's content-keyed cache, whose results are identical no
// matter which goroutine computes them first — so the search outcome is
// byte-deterministic per (Seed, Islands) at any worker count, while a
// single consolidation now scales across cores instead of only the
// offspring evaluations inside one generation.

// DefaultMigrationInterval is the generations-between-migrations used
// when GAConfig.MigrationInterval is zero.
const DefaultMigrationInterval = 10

// migrationInterval resolves the configured interval.
func (c GAConfig) migrationInterval() int {
	if c.MigrationInterval > 0 {
		return c.MigrationInterval
	}
	return DefaultMigrationInterval
}

// islandSeed derives island i's RNG seed from the search seed with an
// FNV-1a fold, so per-island streams are decorrelated but fixed by
// (seed, islands, i).
func islandSeed(seed int64, islands, i int) int64 {
	h := uint64(fnvOffset64)
	h = fnvU64(h, uint64(seed))
	h = fnvInt(h, islands)
	h = fnvInt(h, i)
	return int64(h)
}

// islandSizes splits a population across n islands: every island gets
// size/n members and the first size%n islands get one extra.
func islandSizes(size, n int) []int {
	sizes := make([]int, n)
	base, extra := size/n, size%n
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// island is one subpopulation plus its private evolution state.
type island struct {
	idx  int
	rng  *rand.Rand
	pop  []*Plan
	size int

	// best is the island's best feasible plan so far; stale counts
	// generations since it improved. An island with stale >= Stagnation
	// is parked: it stops breeding but stays in the migration ring and
	// revives when a migrant improves its best.
	best  *Plan
	stale int

	ran       int  // generations actually run
	truncated bool // stopped early on ctx/deadline
	err       error
}

// parked reports whether the island has stagnated.
func (isl *island) parked(cfg GAConfig) bool { return isl.stale >= cfg.Stagnation }

// runEpoch evolves the island for up to gens generations using at most
// workers goroutines for offspring evaluation. It mirrors the
// single-population generation loop; only island-local state is touched.
func (isl *island) runEpoch(ctx context.Context, ev *evaluator, cfg GAConfig, gens, workers int, deadline time.Time, tel *islandTelemetry) {
	p := ev.p
	for g := 0; g < gens && !isl.parked(cfg); g++ {
		if ctx.Err() != nil || (!deadline.IsZero() && !time.Now().Before(deadline)) {
			isl.truncated = true
			return
		}
		next := make([]*Plan, 0, isl.size)
		for i := 0; i < cfg.Elite && i < len(isl.pop); i++ {
			next = append(next, isl.pop[i])
		}
		// Breed serially on the island's own RNG (the stream per island
		// is what the determinism contract pins), then evaluate the
		// offspring on this island's share of the worker pool.
		offspring := make([]Assignment, 0, isl.size-len(next))
		for len(next)+len(offspring) < isl.size {
			a := crossover(tournament(isl.pop, cfg.TournamentK, isl.rng).Assignment,
				tournament(isl.pop, cfg.TournamentK, isl.rng).Assignment, isl.rng)
			tel.crossovers.Inc()
			if isl.rng.Float64() < cfg.MutationRate {
				mutate(a, p, isl.rng)
				tel.mutations.Inc()
			}
			offspring = append(offspring, a)
		}
		plans, err := evaluateAll(ctx, ev, offspring, workers)
		if err != nil {
			if ctx.Err() != nil {
				isl.truncated = true
				return
			}
			isl.err = err
			return
		}
		isl.pop = append(next, plans...)
		sortPopulation(isl.pop)
		isl.observeBest()
		isl.ran++
		tel.generations.Inc()
		tel.offspring.Add(int64(len(plans)))
	}
}

// observeBest folds the current population into the island's best/stale
// tracking, using the same improvement threshold as the single search.
func (isl *island) observeBest() {
	if cand := bestFeasible(isl.pop); cand != nil && (isl.best == nil || cand.Score > isl.best.Score+1e-12) {
		isl.best = cand
		isl.stale = 0
	} else {
		isl.stale++
	}
}

// islandTelemetry groups the counters the epochs share; all counters are
// atomic, so concurrent islands may increment them freely.
type islandTelemetry struct {
	generations *telemetry.Counter
	crossovers  *telemetry.Counter
	mutations   *telemetry.Counter
	offspring   *telemetry.Counter
}

// consolidateIslands runs the island-model search. Inputs are already
// validated by Consolidate.
func consolidateIslands(ctx context.Context, p *Problem, initial Assignment, cfg GAConfig) (*Plan, error) {
	n := cfg.Islands
	h := telemetry.OrNop(p.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, p.Hooks, "placement.consolidate",
		telemetry.Int("apps", len(p.Apps)),
		telemetry.Int("servers", len(p.Servers)),
		telemetry.Int("population", cfg.PopulationSize),
		telemetry.Int("islands", n))
	defer span.End()
	tel := &islandTelemetry{
		generations: h.Counter("ga_generations_total"),
		crossovers:  h.Counter("ga_crossovers_total"),
		mutations:   h.Counter("ga_mutations_total"),
		offspring:   h.Counter("ga_offspring_evaluated_total"),
	}
	migrationsC := h.Counter("ga_migrations_total")
	revivalsC := h.Counter("ga_island_revivals_total")
	truncatedC := h.Counter("ga_truncated_total")
	h.Gauge("ga_islands").Set(float64(n))

	ev := newEvaluator(p)
	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = time.Now().Add(cfg.TimeBudget)
	}
	// Like the single search, the initial populations are evaluated
	// detached from cancellation: they are the floor every truncated
	// search can still return.
	seedCtx := context.WithoutCancel(ctx)

	// Seed every island. The shared warm starts (the initial assignment
	// and, on island 0, the greedy packings) are evaluated once; the
	// remaining members are mutated copies of the initial assignment
	// bred on each island's own RNG. All assignments are bred serially
	// (island by island) and then evaluated in one parallel batch so
	// seeding cost does not grow with the island count.
	sizes := islandSizes(cfg.PopulationSize, n)
	islands := make([]*island, n)
	first, err := ev.evaluate(seedCtx, initial)
	if err != nil {
		return nil, err
	}
	var greedy []*Plan
	if cfg.SeedGreedy {
		for _, greedyFn := range []func(context.Context, *Problem) (*Plan, error){FirstFitDecreasing, BestFitDecreasing} {
			plan, err := greedyFn(seedCtx, p)
			if err != nil {
				continue // a greedy failure just means no warm start
			}
			seeded, err := ev.evaluate(seedCtx, plan.Assignment)
			if err != nil {
				return nil, err
			}
			greedy = append(greedy, seeded)
		}
	}
	var fill []Assignment // every island's mutants, bred serially
	fillOf := make([][2]int, n)
	for i := 0; i < n; i++ {
		isl := &island{idx: i, rng: rand.New(rand.NewSource(islandSeed(cfg.Seed, n, i))), size: sizes[i]}
		islands[i] = isl
		isl.pop = append(isl.pop, first)
		if i == 0 {
			for _, gp := range greedy {
				if len(isl.pop) < isl.size {
					isl.pop = append(isl.pop, gp)
				}
			}
		}
		start := len(fill)
		for want := isl.size - len(isl.pop); want > 0; want-- {
			a := initial.Clone()
			mutate(a, p, isl.rng)
			fill = append(fill, a)
		}
		fillOf[i] = [2]int{start, len(fill)}
	}
	plans, err := evaluateAll(seedCtx, ev, fill, 0)
	if err != nil {
		return nil, err
	}
	for i, isl := range islands {
		lo, hi := fillOf[i][0], fillOf[i][1]
		isl.pop = append(isl.pop, plans[lo:hi]...)
		sortPopulation(isl.pop)
		isl.observeBest()
		isl.stale = 0 // seeding is generation zero, not a stagnation tick
	}

	// Each epoch runs every unparked island MigrationInterval further
	// generations in parallel, then migrates at the barrier. Workers are
	// split so each island's offspring evaluations get an even share of
	// the cores.
	interval := cfg.migrationInterval()
	islandWorkers := runtime.GOMAXPROCS(0) / n
	if islandWorkers < 1 {
		islandWorkers = 1
	}
	totalGens := 0
	truncated := false
	epochs := 0
	for totalGens < cfg.MaxGenerations {
		gens := interval
		if rest := cfg.MaxGenerations - totalGens; gens > rest {
			gens = rest
		}
		active := 0
		for _, isl := range islands {
			if !isl.parked(cfg) {
				active++
			}
		}
		if active == 0 {
			break
		}
		// Dispatch with a detached context: every island must enter the
		// epoch (its own loop observes ctx and stops at a generation
		// boundary), otherwise cancellation timing could strand islands
		// at different epochs.
		parallel.ForEach(context.WithoutCancel(ctx), min(n, runtime.GOMAXPROCS(0)), n, func(i int) {
			islands[i].runEpoch(ctx, ev, cfg, gens, islandWorkers, deadline, tel)
		})
		epochs++
		for _, isl := range islands {
			if isl.err != nil {
				return nil, isl.err
			}
			if isl.truncated {
				truncated = true
			}
		}
		totalGens += gens
		if truncated {
			break
		}

		// Migration barrier: snapshot every island's best member first,
		// then replace each right neighbour's worst member, so a migrant
		// travels one hop per barrier regardless of apply order.
		migrants := make([]*Plan, n)
		for i, isl := range islands {
			migrants[i] = isl.pop[0]
		}
		for i := range islands {
			recv := islands[(i+1)%n]
			if migrants[i] == recv.pop[0] {
				continue // the ring neighbour already leads with it
			}
			recv.pop[len(recv.pop)-1] = migrants[i]
			migrationsC.Inc()
		}
		for _, isl := range islands {
			sortPopulation(isl.pop)
			wasParked := isl.parked(cfg)
			isl.observeBest()
			if isl.stale == 0 {
				if wasParked {
					revivalsC.Inc()
				}
			} else {
				isl.stale-- // the barrier itself is not a generation
			}
		}
	}

	// The global best is collected deterministically in island order
	// with the single search's improvement threshold, so ties go to the
	// lowest island index.
	var best *Plan
	for _, isl := range islands {
		if isl.best != nil && (best == nil || isl.best.Score > best.Score+1e-12) {
			best = isl.best
		}
	}
	ran := 0
	for _, isl := range islands {
		if isl.ran > ran {
			ran = isl.ran
		}
	}
	span.SetAttr(telemetry.Int("generations", ran),
		telemetry.Int("epochs", epochs),
		telemetry.Bool("feasible", best != nil),
		telemetry.Bool("truncated", truncated))
	if best == nil {
		if truncated {
			cause := ctx.Err()
			if cause == nil {
				cause = context.DeadlineExceeded // time budget elapsed
			}
			return nil, fmt.Errorf("placement: consolidation cancelled after %d generations with no feasible plan: %w", ran, cause)
		}
		return nil, fmt.Errorf("%w after %d generations", ErrNoFeasible, cfg.MaxGenerations)
	}
	if truncated {
		truncatedC.Inc()
		partial := *best
		partial.Truncated = true
		best = &partial
	}
	span.SetAttr(telemetry.Int("servers_used", best.ServersUsed), telemetry.Float("score", best.Score))
	return best, nil
}
