package placement

import (
	"fmt"
)

// Workload migration support. Realizing a new configuration — after a
// re-consolidation or a failure — requires moving resource containers
// between servers (paper section VI-C: "an appropriate workload
// migration technology is needed to realize the new configuration
// without disrupting the application processing"). This file computes
// the migration plan between two assignments so an operator (or a
// virtualization layer) knows exactly which containers move where.

// Move is one container migration.
type Move struct {
	// AppID is the application whose container moves.
	AppID string
	// From and To are server IDs.
	From string
	To   string
}

// String implements fmt.Stringer.
func (m Move) String() string {
	return fmt.Sprintf("%s: %s -> %s", m.AppID, m.From, m.To)
}

// Migrations returns the moves needed to get from one assignment to
// another over the same problem, in application order. Applications
// that stay put produce no move.
func Migrations(p *Problem, from, to Assignment) ([]Move, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := from.Validate(p); err != nil {
		return nil, fmt.Errorf("placement: from assignment: %w", err)
	}
	if err := to.Validate(p); err != nil {
		return nil, fmt.Errorf("placement: to assignment: %w", err)
	}
	var moves []Move
	for i := range p.Apps {
		if from[i] == to[i] {
			continue
		}
		moves = append(moves, Move{
			AppID: p.Apps[i].ID,
			From:  p.Servers[from[i]].ID,
			To:    p.Servers[to[i]].ID,
		})
	}
	return moves, nil
}

// MigrationsByServerID computes moves between assignments expressed
// against (possibly different) server lists, matching servers by ID.
// Applications are matched by position: fromApps[i] and toApps[i] must
// name the same application. An application whose old server no longer
// exists (for example because it failed) is reported as moving from
// that server's ID regardless.
func MigrationsByServerID(
	apps []string,
	fromServers []Server, from Assignment,
	toServers []Server, to Assignment,
) ([]Move, error) {
	if len(from) != len(apps) || len(to) != len(apps) {
		return nil, fmt.Errorf("placement: assignments cover %d/%d apps, want %d",
			len(from), len(to), len(apps))
	}
	var moves []Move
	for i, app := range apps {
		if from[i] < 0 || from[i] >= len(fromServers) {
			return nil, fmt.Errorf("placement: app %q has invalid source server %d", app, from[i])
		}
		if to[i] < 0 || to[i] >= len(toServers) {
			return nil, fmt.Errorf("placement: app %q has invalid target server %d", app, to[i])
		}
		src := fromServers[from[i]].ID
		dst := toServers[to[i]].ID
		if src == dst {
			continue
		}
		moves = append(moves, Move{AppID: app, From: src, To: dst})
	}
	return moves, nil
}
