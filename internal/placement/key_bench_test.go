package placement

import "testing"

// The evaluator key is built on every per-server cache lookup — once
// per server per offspring per generation — so its cost and allocation
// behaviour are on the GA's hottest path. These benchmarks compare the
// legacy strings.Builder key with the FNV-1a replacement; run with
// -benchmem to see the allocation win (the FNV key allocates nothing).

var benchGroup = []int{0, 3, 5, 7, 11, 12, 17, 19, 23, 24}

func BenchmarkEvaluatorKeyLegacyString(b *testing.B) {
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(legacyKey(7, benchGroup))
	}
	_ = sink
}

func BenchmarkEvaluatorKeyFNV(b *testing.B) {
	b.ReportAllocs()
	e := &evaluator{}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += e.key(7, benchGroup)
	}
	_ = sink
}
