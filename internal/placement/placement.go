// Package placement implements the optimizing-search component of the
// workload placement service (paper section VI-B, Figure 5).
//
// A consolidation exercise assigns application workloads (already
// translated into per-CoS allocation traces) to servers so that the
// resource access QoS commitments hold on every server while using as
// few servers as possible. Each candidate assignment is scored with the
// paper's objective:
//
//	+1            for every unused server,
//	f(U) = U^(2Z) for a feasible server with required capacity R,
//	              utilization U = R/L and Z CPUs,
//	-N            for an overbooked server hosting N applications.
//
// A genetic algorithm (ga.go) searches assignments; greedy first-fit-
// decreasing and best-fit-decreasing baselines (greedy.go) provide the
// comparison the paper mentions.
package placement

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ropus/internal/faultinject"
	"ropus/internal/qos"
	"ropus/internal/sim"
	"ropus/internal/telemetry"
)

// DefaultTolerance is the binary-search tolerance, in CPUs, used for
// required-capacity computations when the Problem does not override it.
const DefaultTolerance = 0.05

// ScoreModel selects the per-server value function of the consolidation
// objective. The zero value is the paper's model, so existing Problems
// keep their behaviour.
type ScoreModel int

const (
	// ScorePaper is the paper's f(U) = U^(2Z): the squared term
	// exaggerates high utilizations and the Z term demands that servers
	// with more CPUs run hotter (motivated by the open-network response
	// time estimate 1/(1-U^Z)).
	ScorePaper ScoreModel = iota
	// ScoreLinear uses f(U) = U, an ablation baseline that values all
	// utilization improvements equally and ignores the CPU count.
	ScoreLinear
)

// String implements fmt.Stringer.
func (m ScoreModel) String() string {
	switch m {
	case ScorePaper:
		return "paper"
	case ScoreLinear:
		return "linear"
	default:
		return fmt.Sprintf("ScoreModel(%d)", int(m))
	}
}

// Server describes one resource in the pool.
type Server struct {
	// ID names the server.
	ID string
	// CPUs is Z, the number of CPUs; the score function rewards higher
	// utilization on servers with more CPUs.
	CPUs int
	// CPUCapacity is the capacity of a single CPU in demand units;
	// normally 1.0.
	CPUCapacity float64
	// Extra holds the server's capacity for each additional attribute
	// used by the applications (memory, disk I/O, ...); may be nil when
	// only CPU is managed.
	Extra map[Attribute]float64
}

// Capacity returns the server's total capacity L.
func (s Server) Capacity() float64 { return float64(s.CPUs) * s.CPUCapacity }

// Validate checks the server parameters.
func (s Server) Validate() error {
	if s.ID == "" {
		return errors.New("placement: server needs an ID")
	}
	if s.CPUs <= 0 {
		return fmt.Errorf("placement: server %q needs positive CPUs, got %d", s.ID, s.CPUs)
	}
	if s.CPUCapacity <= 0 || math.IsNaN(s.CPUCapacity) || math.IsInf(s.CPUCapacity, 0) {
		return fmt.Errorf("placement: server %q has bad CPUCapacity %v", s.ID, s.CPUCapacity)
	}
	return nil
}

// App is an application workload to place: its translated per-CoS
// allocation traces for the primary (CPU) attribute, plus optional
// additional capacity attributes (see attributes.go).
type App struct {
	ID       string
	Workload sim.Workload
	// Extra holds per-attribute allocation traces for additional
	// capacity attributes (memory, disk I/O, ...); may be nil.
	Extra map[Attribute]sim.Workload
}

// Problem is a consolidation exercise: which servers may host which
// translated application workloads under which pool commitment.
type Problem struct {
	Apps    []App
	Servers []Server
	// Commitment is the CoS2 resource access commitment each server
	// must satisfy.
	Commitment qos.PoolCommitment
	// SlotsPerDay is T for the θ statistic.
	SlotsPerDay int
	// DeadlineSlots is the commitment deadline in slots.
	DeadlineSlots int
	// Tolerance for required-capacity bisection; DefaultTolerance if 0.
	Tolerance float64
	// Score selects the per-server value function; the zero value is
	// the paper's U^(2Z) model.
	Score ScoreModel
	// Hooks receives search and simulation telemetry (GA generation
	// progress, evaluator cache efficiency, bisection probes); nil
	// disables it.
	Hooks telemetry.Hooks
	// Inject is the test-only fault injector forwarded to the simulator
	// (points "sim.required_capacity" and "sim.replay", keyed by server
	// ID); nil (the production default) injects nothing.
	Inject faultinject.Injector
	// Cache is an optional shared cross-run simulation cache (see
	// NewSimCache): per-(server-shape, app-group) results persist across
	// Consolidate/Evaluate calls and across Problems, keyed by content,
	// so the failure sweep, rebalancing and the planner stop re-solving
	// groups the base plan already solved. Cached reuse is bit-exact, so
	// plans are identical with or without it. Ignored while Inject is
	// set: fault-injection points must fire per evaluation.
	Cache *SimCache

	// attrs caches the sorted union of extra attributes; set by
	// Validate.
	attrs []Attribute
}

// Validate checks the problem's structural invariants.
func (p *Problem) Validate() error {
	if len(p.Apps) == 0 {
		return errors.New("placement: no applications")
	}
	if len(p.Servers) == 0 {
		return errors.New("placement: no servers")
	}
	seenApp := make(map[string]bool, len(p.Apps))
	n := -1
	for _, a := range p.Apps {
		if err := a.Workload.Validate(); err != nil {
			return err
		}
		if a.ID == "" || a.ID != a.Workload.AppID {
			return fmt.Errorf("placement: app ID %q must match workload ID %q", a.ID, a.Workload.AppID)
		}
		if seenApp[a.ID] {
			return fmt.Errorf("placement: duplicate app %q", a.ID)
		}
		seenApp[a.ID] = true
		if n < 0 {
			n = len(a.Workload.CoS1)
		} else if len(a.Workload.CoS1) != n {
			return fmt.Errorf("placement: app %q has %d slots, want %d", a.ID, len(a.Workload.CoS1), n)
		}
	}
	seenSrv := make(map[string]bool, len(p.Servers))
	for _, s := range p.Servers {
		if err := s.Validate(); err != nil {
			return err
		}
		if seenSrv[s.ID] {
			return fmt.Errorf("placement: duplicate server %q", s.ID)
		}
		seenSrv[s.ID] = true
	}
	if p.SlotsPerDay <= 0 {
		return fmt.Errorf("placement: SlotsPerDay %d <= 0", p.SlotsPerDay)
	}
	if p.DeadlineSlots < 0 {
		return fmt.Errorf("placement: DeadlineSlots %d < 0", p.DeadlineSlots)
	}
	if p.Tolerance < 0 {
		return fmt.Errorf("placement: Tolerance %v < 0", p.Tolerance)
	}
	if p.Score != ScorePaper && p.Score != ScoreLinear {
		return fmt.Errorf("placement: unknown score model %v", p.Score)
	}
	if err := validateAttributes(p); err != nil {
		return err
	}
	p.attrs = attributeUnion(p.Apps)
	return p.Commitment.Validate()
}

// tolerance returns the effective bisection tolerance.
func (p *Problem) tolerance() float64 {
	if p.Tolerance > 0 {
		return p.Tolerance
	}
	return DefaultTolerance
}

// Assignment maps each application (by index into Problem.Apps) to a
// server (an index into Problem.Servers).
type Assignment []int

// Validate checks the assignment against the problem dimensions.
func (a Assignment) Validate(p *Problem) error {
	if len(a) != len(p.Apps) {
		return fmt.Errorf("placement: assignment covers %d apps, want %d", len(a), len(p.Apps))
	}
	for i, s := range a {
		if s < 0 || s >= len(p.Servers) {
			return fmt.Errorf("placement: app %d assigned to invalid server %d", i, s)
		}
	}
	return nil
}

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// ServerUsage reports the evaluation of one server under an assignment.
type ServerUsage struct {
	Server Server
	// AppIDs hosted on this server, in problem order.
	AppIDs []string
	// Required is the required capacity found by the simulator; it is
	// capped at the server's capacity when the workloads do not fit.
	Required float64
	// Feasible reports whether the commitments are satisfied within the
	// server's capacity, across every managed attribute.
	Feasible bool
	// Value is this server's contribution to the consolidation score.
	Value float64
	// Result is the simulator outcome at the reported capacity (primary
	// attribute).
	Result sim.Result
	// ExtraRequired is the required capacity per additional attribute.
	ExtraRequired map[Attribute]float64
}

// Utilization returns R/L for the server.
func (u ServerUsage) Utilization() float64 {
	c := u.Server.Capacity()
	if c == 0 {
		return 0
	}
	return u.Required / c
}

// Plan is an evaluated assignment.
type Plan struct {
	Assignment Assignment
	Usages     []ServerUsage
	// Score is the consolidation objective (higher is better).
	Score float64
	// Feasible reports whether every used server satisfies the
	// commitments.
	Feasible bool
	// ServersUsed counts servers hosting at least one application.
	ServersUsed int
	// RequiredTotal is the sum of per-server required capacities over
	// used servers (the paper's ΣC_requ).
	RequiredTotal float64
	// Truncated reports that the search producing this plan was cancelled
	// (context or time budget) and the plan is the best found so far, not
	// the converged optimum.
	Truncated bool
}

// serverValue implements the per-server score contribution: +1 for an
// unused server, -N for an overbooked one, and f(U) per the score model
// for a feasible server.
func serverValue(u float64, z, nApps int, feasible bool, model ScoreModel) float64 {
	if nApps == 0 {
		return 1
	}
	if !feasible {
		return -float64(nApps)
	}
	if model == ScoreLinear {
		return u
	}
	return math.Pow(u, 2*float64(z))
}

// inflightEval tracks one in-progress per-server simulation so that
// concurrent callers needing the same (server, app-group) wait for the
// single computation instead of racing to duplicate it.
type inflightEval struct {
	done  chan struct{}
	usage ServerUsage
	err   error
}

// evalShards is the number of independent lock+map shards the
// evaluator's per-run cache is split across. The GA's offspring
// evaluations — and with the island model, whole islands — hammer the
// cache from many goroutines at once; sharding by key keeps them off a
// single mutex. Must be a power of two (keys are FNV hashes, so the low
// bits are well mixed).
const evalShards = 16

// evalShard is one lock's worth of the per-run evaluation cache plus
// its in-flight (singleflight) table.
type evalShard struct {
	mu       sync.Mutex
	cache    map[uint64]ServerUsage
	inflight map[uint64]*inflightEval
}

// evaluator evaluates assignments against a problem, caching per-server
// simulations: the GA revisits the same app groupings constantly, so the
// cache turns most evaluations into lookups. It is safe for concurrent
// use; simulations run outside the locks and are deduplicated through a
// per-shard in-flight table (singleflight style), so each (server,
// group) pair is computed exactly once no matter how many goroutines ask
// for it.
type evaluator struct {
	p *Problem

	// shared is the cross-run cache (nil when the problem has none or
	// carries a fault injector); the signatures below are precomputed
	// once per evaluator so hot-path keys are a few integer folds.
	shared      *SimCache
	cfgSig      uint64
	serverSigs  []uint64
	appHashes   []uint64
	sharedHitC  *telemetry.Counter
	sharedMissC *telemetry.Counter
	warmHitC    *telemetry.Counter
	evictC      *telemetry.Counter

	shards [evalShards]evalShard
	// hits/misses are instrumentation for the ablation benchmarks.
	hits, misses atomic.Int64
	// hitC/missC mirror hits/misses into the problem's metrics registry.
	hitC, missC *telemetry.Counter
}

func newEvaluator(p *Problem) *evaluator {
	h := telemetry.OrNop(p.Hooks)
	e := &evaluator{
		p:     p,
		hitC:  h.Counter("placement_eval_cache_hits_total"),
		missC: h.Counter("placement_eval_cache_misses_total"),
	}
	for i := range e.shards {
		e.shards[i].cache = make(map[uint64]ServerUsage)
		e.shards[i].inflight = make(map[uint64]*inflightEval)
	}
	if p.Cache != nil && p.Inject == nil {
		e.shared = p.Cache
		e.cfgSig = hashConfig(p)
		e.serverSigs = make([]uint64, len(p.Servers))
		for i, s := range p.Servers {
			e.serverSigs[i] = hashServerShape(s, p.attrs)
		}
		e.appHashes = make([]uint64, len(p.Apps))
		for i, a := range p.Apps {
			e.appHashes[i] = hashApp(a, p.attrs)
		}
		e.sharedHitC = h.Counter("placement_shared_cache_hits_total")
		e.sharedMissC = h.Counter("placement_shared_cache_misses_total")
		e.warmHitC = h.Counter("placement_shared_cache_warm_hits_total")
		e.evictC = h.Counter("placement_shared_cache_evictions_total")
	}
	return e
}

// key builds the per-run cache key for a server and a sorted app-index
// group: an FNV-1a fold of the indexes, replacing the string key whose
// strconv/Builder allocations dominated hot lookups.
func (e *evaluator) key(server int, apps []int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, server)
	for _, a := range apps {
		h = fnvInt(h, a)
	}
	return h
}

// evalServer simulates the given apps on the given server. The apps
// slice must be sorted ascending. Concurrent calls for the same group
// share one computation; waiters give up when ctx is cancelled.
func (e *evaluator) evalServer(ctx context.Context, server int, apps []int) (ServerUsage, error) {
	srv := e.p.Servers[server]
	if len(apps) == 0 {
		return ServerUsage{Server: srv, Feasible: true, Value: 1}, nil
	}
	k := e.key(server, apps)
	sh := &e.shards[k&(evalShards-1)]
	for {
		sh.mu.Lock()
		if u, ok := sh.cache[k]; ok {
			e.hits.Add(1)
			sh.mu.Unlock()
			e.hitC.Inc()
			return u, nil
		}
		if fl, ok := sh.inflight[k]; ok {
			sh.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return ServerUsage{}, fmt.Errorf("placement: evaluate server %q: %w", srv.ID, ctx.Err())
			}
			if fl.err != nil {
				// The leader failed; nothing was cached, so loop around and
				// recompute (the failure may have been ctx-specific).
				if ctx.Err() != nil {
					return ServerUsage{}, fl.err
				}
				continue
			}
			e.hitC.Inc()
			return fl.usage, nil
		}
		fl := &inflightEval{done: make(chan struct{})}
		sh.inflight[k] = fl
		e.misses.Add(1)
		sh.mu.Unlock()
		e.missC.Inc()

		fl.usage, fl.err = e.loadOrCompute(ctx, server, srv, apps)
		sh.mu.Lock()
		if fl.err == nil {
			sh.cache[k] = fl.usage
		}
		delete(sh.inflight, k)
		sh.mu.Unlock()
		close(fl.done)
		return fl.usage, fl.err
	}
}

// loadOrCompute checks the shared cross-run cache for the full
// (server-shape, group) result before falling back to a fresh
// computation, which it then publishes for every later run.
func (e *evaluator) loadOrCompute(ctx context.Context, server int, srv Server, apps []int) (ServerUsage, error) {
	if e.shared == nil {
		return e.computeServer(ctx, srv, apps)
	}
	k := usageKey{cfg: e.cfgSig, server: e.serverSigs[server], group: hashGroup(e.appHashes, apps)}
	if u, ok := e.shared.getUsage(k); ok {
		e.sharedHitC.Inc()
		u.Server = srv // cached entries are server-identity-agnostic
		return u, nil
	}
	e.sharedMissC.Inc()
	u, err := e.computeServer(ctx, srv, apps)
	if err != nil {
		return u, err
	}
	stored := u
	stored.Server = Server{} // any same-shape server may claim it
	if n := e.shared.putUsage(k, stored); n > 0 {
		e.evictC.Add(int64(n))
	}
	return u, nil
}

// computeServer runs the simulator for one (server, app-group) pair.
func (e *evaluator) computeServer(ctx context.Context, srv Server, apps []int) (ServerUsage, error) {
	ids := make([]string, len(apps))
	for i, a := range apps {
		ids[i] = e.p.Apps[a].ID
	}
	required, res, ok, err := e.searchPrimary(ctx, srv, apps)
	if err != nil {
		return ServerUsage{}, err
	}
	extraRequired, extraOK, err := e.evalAttributes(ctx, srv, apps)
	if err != nil {
		return ServerUsage{}, err
	}
	usage := ServerUsage{
		Server:        srv,
		AppIDs:        ids,
		Required:      required,
		Feasible:      ok && extraOK,
		Result:        res,
		ExtraRequired: extraRequired,
	}
	usage.Value = serverValue(usage.Utilization(), srv.CPUs, len(apps), usage.Feasible, e.p.Score)
	return usage, nil
}

// searchPrimary runs (or warm-starts) the primary-attribute
// required-capacity search for a sorted app group on a server. A warm
// hit reuses the bisection outcome of the same group computed on a
// server of a *different* capacity: when the original search was
// Unclamped, its interval [CoS1Peak, TotalPeak] is limit-independent,
// so any server with capacity >= the group's TotalPeak would reproduce
// it bit for bit — the gate getWarm enforces.
func (e *evaluator) searchPrimary(ctx context.Context, srv Server, apps []int) (float64, sim.Result, bool, error) {
	var wk warmKey
	if e.shared != nil {
		wk = warmKey{cfg: e.cfgSig, group: hashGroup(e.appHashes, apps)}
		if w, ok := e.shared.getWarm(wk, srv.Capacity()); ok {
			e.warmHitC.Inc()
			return w.required, w.result, true, nil
		}
	}
	workloads := make([]sim.Workload, len(apps))
	for i, a := range apps {
		workloads[i] = e.p.Apps[a].Workload
	}
	agg, err := sim.NewAggregate(workloads)
	if err != nil {
		return 0, sim.Result{}, false, err
	}
	cfg := sim.Config{
		Commitment:    e.p.Commitment,
		SlotsPerDay:   e.p.SlotsPerDay,
		DeadlineSlots: e.p.DeadlineSlots,
		Hooks:         e.p.Hooks,
		Inject:        e.p.Inject,
		InjectKey:     srv.ID,
	}
	out, err := agg.Search(ctx, cfg, srv.Capacity(), e.p.tolerance())
	if err != nil {
		return 0, sim.Result{}, false, err
	}
	if e.shared != nil && out.Feasible && out.Unclamped {
		w := warmResult{required: out.Capacity, result: out.Result, totalPeak: agg.TotalPeak()}
		if n := e.shared.putWarm(wk, w); n > 0 {
			e.evictC.Add(int64(n))
		}
	}
	return out.Capacity, out.Result, out.Feasible, nil
}

// evaluate scores a full assignment.
func (e *evaluator) evaluate(ctx context.Context, a Assignment) (*Plan, error) {
	if err := a.Validate(e.p); err != nil {
		return nil, err
	}
	groups := groupByServer(a, len(e.p.Servers))
	plan := &Plan{
		Assignment: a.Clone(),
		Usages:     make([]ServerUsage, len(e.p.Servers)),
		Feasible:   true,
	}
	for s := range e.p.Servers {
		usage, err := e.evalServer(ctx, s, groups[s])
		if err != nil {
			return nil, err
		}
		plan.Usages[s] = usage
		plan.Score += usage.Value
		if len(groups[s]) > 0 {
			plan.ServersUsed++
			plan.RequiredTotal += usage.Required
			if !usage.Feasible {
				plan.Feasible = false
			}
		}
	}
	return plan, nil
}

// groupByServer inverts an assignment into per-server sorted app-index
// groups.
func groupByServer(a Assignment, servers int) [][]int {
	groups := make([][]int, servers)
	for app, s := range a {
		groups[s] = append(groups[s], app)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

// Evaluate scores an assignment against a problem without searching. A
// single evaluation is cheap relative to the searches, so it takes no
// context; use the searching entry points for cancellable work.
func Evaluate(p *Problem, a Assignment) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newEvaluator(p).evaluate(context.Background(), a)
}

// OneAppPerServer returns the trivial assignment placing application i
// on server i; it requires at least as many servers as applications and
// is the usual starting configuration for a consolidation exercise.
func OneAppPerServer(p *Problem) (Assignment, error) {
	if len(p.Servers) < len(p.Apps) {
		return nil, fmt.Errorf("placement: need %d servers for one-app-per-server, have %d",
			len(p.Apps), len(p.Servers))
	}
	a := make(Assignment, len(p.Apps))
	for i := range a {
		a[i] = i
	}
	return a, nil
}
