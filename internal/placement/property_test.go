package placement

import (
	"context"
	"math/rand"
	"testing"
)

// TestQuickConsolidateAlwaysFeasibleOrErrNoFeasible drives the genetic
// search over randomized bin-packing problems and checks the search
// contract: whatever the instance, Consolidate either returns a
// feasible, valid plan or ErrNoFeasible — never an invalid assignment,
// never an overbooked "success".
func TestQuickConsolidateAlwaysFeasibleOrErrNoFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		nApps := 2 + rng.Intn(5)
		cpus := 4 + rng.Intn(8)
		sizes := make([]float64, nApps)
		for i := range sizes {
			// Sizes may exceed the server to exercise the infeasible
			// path.
			sizes[i] = 0.5 + rng.Float64()*float64(cpus)*1.2
		}
		p := binPackProblem(sizes, nApps, cpus)
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultGAConfig(int64(trial))
		cfg.MaxGenerations = 40
		cfg.Stagnation = 10

		plan, err := Consolidate(context.Background(), p, initial, cfg)
		if err != nil {
			// Allowed only when some app alone exceeds every server.
			maxSize := 0.0
			for _, s := range sizes {
				if s > maxSize {
					maxSize = s
				}
			}
			if maxSize <= float64(cpus) {
				t.Fatalf("trial %d: feasible instance errored: %v (sizes %v, cpus %d)",
					trial, err, sizes, cpus)
			}
			continue
		}
		if !plan.Feasible {
			t.Fatalf("trial %d: returned infeasible plan", trial)
		}
		if err := plan.Assignment.Validate(p); err != nil {
			t.Fatalf("trial %d: invalid assignment: %v", trial, err)
		}
		for _, usage := range plan.Usages {
			if len(usage.AppIDs) > 0 && usage.Required > usage.Server.Capacity()+1e-6 {
				t.Fatalf("trial %d: server %s overbooked: %v > %v",
					trial, usage.Server.ID, usage.Required, usage.Server.Capacity())
			}
		}
		// The plan can never beat the volume lower bound.
		total := 0.0
		for _, s := range sizes {
			total += s
		}
		lower := int(total / float64(cpus)) // floor is a weak but safe bound
		if plan.ServersUsed < lower {
			t.Fatalf("trial %d: %d servers beats the volume bound %d",
				trial, plan.ServersUsed, lower)
		}
	}
}

// TestQuickGreedyNeverWorseThanOnePerServer checks the greedy baselines'
// basic sanity on the same randomized instances.
func TestQuickGreedyNeverWorseThanOnePerServer(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 15; trial++ {
		nApps := 2 + rng.Intn(5)
		cpus := 6 + rng.Intn(6)
		sizes := make([]float64, nApps)
		for i := range sizes {
			sizes[i] = 0.5 + rng.Float64()*float64(cpus)*0.9 // always placeable
		}
		p := binPackProblem(sizes, nApps, cpus)
		for _, fn := range []func(context.Context, *Problem) (*Plan, error){
			FirstFitDecreasing, BestFitDecreasing, LeastCorrelatedFit,
		} {
			plan, err := fn(context.Background(), p)
			if err != nil {
				t.Fatalf("trial %d: %v (sizes %v, cpus %d)", trial, err, sizes, cpus)
			}
			if !plan.Feasible {
				t.Fatalf("trial %d: greedy produced infeasible plan", trial)
			}
			if plan.ServersUsed > nApps {
				t.Fatalf("trial %d: %d servers for %d apps", trial, plan.ServersUsed, nApps)
			}
		}
	}
}
