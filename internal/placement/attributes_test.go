package placement

import (
	"context"
	"testing"
	"time"

	"ropus/internal/qos"
	"ropus/internal/sim"
)

// flatWorkload builds a constant-allocation workload for an attribute.
func flatWorkload(id string, cos2 float64, slots int) sim.Workload {
	return sim.Workload{AppID: id, CoS1: make([]float64, slots), CoS2: constSlice(cos2, slots)}
}

func constSlice(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// memApp builds an app with a flat CPU size and a flat memory size.
func memApp(id string, cpu, mem float64, slots int) App {
	return App{
		ID:       id,
		Workload: flatWorkload(id, cpu, slots),
		Extra:    map[Attribute]sim.Workload{AttrMemory: flatWorkload(id, mem, slots)},
	}
}

func memProblem(apps []App, nServers, cpus int, mem float64) *Problem {
	servers := make([]Server, nServers)
	for i := range servers {
		servers[i] = Server{
			ID:          "srv-" + string(rune('a'+i)),
			CPUs:        cpus,
			CPUCapacity: 1,
			Extra:       map[Attribute]float64{AttrMemory: mem},
		}
	}
	return &Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
	}
}

func TestAttributeUnion(t *testing.T) {
	apps := []App{
		memApp("a", 1, 1, 4),
		{ID: "b", Workload: flatWorkload("b", 1, 4), Extra: map[Attribute]sim.Workload{
			AttrDiskIO: flatWorkload("b", 1, 4),
		}},
		{ID: "c", Workload: flatWorkload("c", 1, 4)},
	}
	attrs := attributeUnion(apps)
	if len(attrs) != 2 || attrs[0] != AttrDiskIO || attrs[1] != AttrMemory {
		t.Errorf("attributeUnion = %v, want [diskio memory]", attrs)
	}
	if got := attributeUnion(nil); len(got) != 0 {
		t.Errorf("attributeUnion(nil) = %v", got)
	}
}

func TestValidateAttributes(t *testing.T) {
	good := memProblem([]App{memApp("a", 2, 4, 8)}, 1, 8, 16)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid multi-attribute problem rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{name: "server missing attribute", mutate: func(p *Problem) { p.Servers[0].Extra = nil }},
		{name: "server zero attribute capacity", mutate: func(p *Problem) {
			p.Servers[0].Extra[AttrMemory] = 0
		}},
		{name: "extra workload misaligned", mutate: func(p *Problem) {
			p.Apps[0].Extra[AttrMemory] = flatWorkload("a", 1, 3)
		}},
		{name: "extra workload wrong id", mutate: func(p *Problem) {
			p.Apps[0].Extra[AttrMemory] = flatWorkload("zz", 1, 8)
		}},
		{name: "extra workload invalid", mutate: func(p *Problem) {
			p.Apps[0].Extra[AttrMemory] = sim.Workload{AppID: "a", CoS1: []float64{-1}, CoS2: []float64{0}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := memProblem([]App{memApp("a", 2, 4, 8)}, 1, 8, 16)
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestMemoryConstrainsPlacement(t *testing.T) {
	// Two apps that fit together on CPU (3+3 <= 8) but not on memory
	// (10+10 > 16).
	apps := []App{memApp("a", 3, 10, 8), memApp("b", 3, 10, 8)}
	p := memProblem(apps, 2, 8, 16)

	together, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if together.Feasible {
		t.Fatal("memory overbooking not detected")
	}
	apart, err := Evaluate(p, Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !apart.Feasible {
		t.Fatal("separate placement should be feasible")
	}
	// Usage reporting carries the memory requirement.
	for s, usage := range apart.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		got := usage.ExtraRequired[AttrMemory]
		if got < 9.9 || got > 10.1 {
			t.Errorf("server %d memory required = %v, want ~10", s, got)
		}
	}
}

func TestMemoryAwareConsolidation(t *testing.T) {
	// Four apps, each tiny on CPU but needing half a server's memory:
	// the GA must settle on two servers even though CPU alone would fit
	// all four on one.
	apps := []App{
		memApp("a", 1, 8, 8),
		memApp("b", 1, 8, 8),
		memApp("c", 1, 8, 8),
		memApp("d", 1, 8, 8),
	}
	p := memProblem(apps, 4, 8, 16)
	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(5)
	cfg.MaxGenerations = 80
	plan, err := Consolidate(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("plan infeasible")
	}
	if plan.ServersUsed != 2 {
		t.Errorf("ServersUsed = %d, want 2 (memory-bound)", plan.ServersUsed)
	}
}

func TestMixedAttributeApps(t *testing.T) {
	// Apps with and without the extra attribute coexist; the app
	// without it contributes nothing to the memory requirement.
	apps := []App{
		memApp("a", 2, 6, 8),
		{ID: "b", Workload: flatWorkload("b", 2, 8)},
	}
	p := memProblem(apps, 1, 8, 16)
	plan, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("mixed placement should be feasible")
	}
	got := plan.Usages[0].ExtraRequired[AttrMemory]
	if got < 5.9 || got > 6.1 {
		t.Errorf("memory required = %v, want ~6", got)
	}
}

func TestCPUOnlyProblemUnaffected(t *testing.T) {
	// A problem without extra attributes must not require servers to
	// declare any.
	p := binPackProblem([]float64{3, 4}, 2, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Error("CPU-only plan should be feasible")
	}
	if len(plan.Usages[0].ExtraRequired) != 0 {
		t.Errorf("unexpected extra requirements: %v", plan.Usages[0].ExtraRequired)
	}
}
