package placement

import (
	"context"
	"fmt"
	"sort"
)

// Greedy baselines for the consolidation exercise. The paper compares
// its genetic algorithm against greedy algorithms (section VIII); these
// are classic bin-packing heuristics driven by the same simulator-based
// feasibility test, so the comparison isolates the search strategy.

// FirstFitDecreasing places applications in order of decreasing peak
// allocation, each onto the first (lowest-index) server where the
// commitments remain satisfiable. It returns an error if some
// application fits on no server. Cancelling ctx aborts between
// per-application placement steps with a wrapped ctx error (greedy
// packings have no useful partial result).
func FirstFitDecreasing(ctx context.Context, p *Problem) (*Plan, error) {
	return greedy(ctx, p, pickFirstFit)
}

// BestFitDecreasing places applications in order of decreasing peak
// allocation, each onto the feasible server whose resulting required
// capacity leaves the least headroom (the tightest fit).
func BestFitDecreasing(ctx context.Context, p *Problem) (*Plan, error) {
	return greedy(ctx, p, pickBestFit)
}

// candidate is a feasible placement option for one application.
type candidate struct {
	server   int
	required float64
	headroom float64
}

// pickFirstFit selects the lowest-index feasible server.
func pickFirstFit(cands []candidate) candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.server < best.server {
			best = c
		}
	}
	return best
}

// pickBestFit selects the feasible server with the least headroom.
func pickBestFit(cands []candidate) candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.headroom < best.headroom {
			best = c
		}
	}
	return best
}

func greedy(ctx context.Context, p *Problem, pick func([]candidate) candidate) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := newEvaluator(p)

	// Order applications by decreasing peak total allocation.
	order := make([]int, len(p.Apps))
	for i := range order {
		order[i] = i
	}
	peaks := make([]float64, len(p.Apps))
	for i, a := range p.Apps {
		peak := 0.0
		for j := range a.Workload.CoS1 {
			if t := a.Workload.CoS1[j] + a.Workload.CoS2[j]; t > peak {
				peak = t
			}
		}
		peaks[i] = peak
	}
	sort.SliceStable(order, func(i, j int) bool { return peaks[order[i]] > peaks[order[j]] })

	groups := make([][]int, len(p.Servers))
	assignment := make(Assignment, len(p.Apps))
	for _, app := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("placement: greedy packing: %w", err)
		}
		var cands []candidate
		for s := range p.Servers {
			group := append(append([]int(nil), groups[s]...), app)
			sort.Ints(group)
			usage, err := ev.evalServer(ctx, s, group)
			if err != nil {
				return nil, err
			}
			if !usage.Feasible {
				continue
			}
			cands = append(cands, candidate{
				server:   s,
				required: usage.Required,
				headroom: p.Servers[s].Capacity() - usage.Required,
			})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("placement: app %q fits on no server", p.Apps[app].ID)
		}
		chosen := pick(cands)
		groups[chosen.server] = append(groups[chosen.server], app)
		sort.Ints(groups[chosen.server])
		assignment[app] = chosen.server
	}
	return ev.evaluate(ctx, assignment)
}
