package placement

import (
	"container/list"
	"math"
	"sync"

	"ropus/internal/sim"
)

// The shared cross-run simulation cache. A consolidation exercise's
// expensive unit of work is the (server-capacity, app-group) simulation:
// one bisection search over replays of the aggregated traces. The GA
// re-creates its per-run evaluator for every Consolidate call, so the
// base-plan search, the N failure-scenario searches, the greedy seeds,
// rebalancing audits and the capacity planner all keep re-simulating
// groups the pipeline has already solved. A SimCache hoists those
// results out of the run: entries are keyed by content (a hash of the
// traces in the group, the commitment/tolerance configuration, and the
// server's capacity signature — not its identity), so a result computed
// for the base plan is valid verbatim in every failure scenario where
// the same group lands on a server of the same shape. A failed server
// changes which groups are legal, not what a group costs on a survivor.
//
// Two entry kinds live in one LRU:
//
//   - usage entries: the full ServerUsage for (cfg, server-shape,
//     group). Hits skip the simulation entirely.
//   - warm entries: the primary-attribute search outcome for (cfg,
//     group) when the search was Unclamped (see sim.SearchOutcome): the
//     bisection ran over [CoS1Peak, TotalPeak] and is therefore valid,
//     bit for bit, for any server whose capacity is >= the group's
//     TotalPeak — including capacities never simulated before.
//
// Both reuse paths reproduce exactly what a cold computation would
// produce, so cached and uncached runs yield byte-identical plans; that
// property is what lets the parallel sweeps stay deterministic.
//
// The cache is bypassed when a Problem carries a fault injector:
// injection points must keep firing per evaluation.

// DefaultSimCacheBytes is the byte bound used when NewSimCache is given
// a non-positive size.
const DefaultSimCacheBytes = 256 << 20

// usageKey identifies a full ServerUsage: three independent FNV-1a
// lanes (configuration, server shape, group content) to keep the
// effective key width at 192 bits.
type usageKey struct{ cfg, server, group uint64 }

// warmKey identifies a primary-attribute search outcome, independent of
// any server.
type warmKey struct{ cfg, group uint64 }

// warmResult is an Unclamped search outcome plus the TotalPeak gate
// deciding which capacities may reuse it.
type warmResult struct {
	required  float64
	result    sim.Result
	totalPeak float64
}

// cacheEntry is one LRU node; exactly one of the two keys is live,
// selected by warm.
type cacheEntry struct {
	warm bool
	uk   usageKey
	wk   warmKey

	usage ServerUsage
	res   warmResult
	bytes int64
}

// CacheStats is a point-in-time snapshot of a SimCache's counters.
type CacheStats struct {
	// Hits and Misses count full-usage lookups.
	Hits, Misses int64
	// WarmHits counts cross-capacity warm-start reuses of a search.
	WarmHits int64
	// Evictions counts entries dropped to honour the byte bound.
	Evictions int64
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// SimCache is a size-bounded (LRU, byte-accounted) concurrent cache of
// per-(server-shape, app-group) simulation results, shared across
// consolidation runs via Problem.Cache. The zero value is not usable;
// construct with NewSimCache.
type SimCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	usage map[usageKey]*list.Element
	warm  map[warmKey]*list.Element

	hits, misses, warmHits, evictions int64
}

// NewSimCache builds a cache bounded to maxBytes of accounted entry
// payload (estimated, not exact); maxBytes <= 0 selects
// DefaultSimCacheBytes.
func NewSimCache(maxBytes int64) *SimCache {
	if maxBytes <= 0 {
		maxBytes = DefaultSimCacheBytes
	}
	return &SimCache{
		max:   maxBytes,
		ll:    list.New(),
		usage: make(map[usageKey]*list.Element),
		warm:  make(map[warmKey]*list.Element),
	}
}

// Stats snapshots the cache counters.
func (c *SimCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		WarmHits:  c.warmHits,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}

// getUsage looks up a full usage entry. The returned ServerUsage has a
// zero Server field (results are server-identity-agnostic); the caller
// fills in the concrete server.
func (c *SimCache) getUsage(k usageKey) (ServerUsage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.usage[k]
	if !ok {
		c.misses++
		return ServerUsage{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).usage, true
}

// putUsage stores a full usage entry and returns how many entries were
// evicted to make room. The stored value must already have its Server
// field zeroed.
func (c *SimCache) putUsage(k usageKey, u ServerUsage) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.usage[k]; ok { // concurrent computations of one key race benignly
		c.ll.MoveToFront(el)
		return 0
	}
	e := &cacheEntry{uk: k, usage: u, bytes: usageBytes(u)}
	c.usage[k] = c.ll.PushFront(e)
	c.bytes += e.bytes
	return c.evict()
}

// getWarm looks up a warm search outcome reusable at capacity: the
// cached search must gate at or below it.
func (c *SimCache) getWarm(k warmKey, capacity float64) (warmResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.warm[k]
	if !ok {
		return warmResult{}, false
	}
	w := el.Value.(*cacheEntry).res
	if capacity < w.totalPeak {
		return warmResult{}, false
	}
	c.warmHits++
	c.ll.MoveToFront(el)
	return w, true
}

// putWarm stores an Unclamped primary-attribute search outcome and
// returns how many entries were evicted.
func (c *SimCache) putWarm(k warmKey, w warmResult) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.warm[k]; ok {
		c.ll.MoveToFront(el)
		return 0
	}
	e := &cacheEntry{warm: true, wk: k, res: w, bytes: warmEntryBytes}
	c.warm[k] = c.ll.PushFront(e)
	c.bytes += e.bytes
	return c.evict()
}

// evict drops least-recently-used entries until the byte bound holds.
// Called with mu held.
func (c *SimCache) evict() int {
	n := 0
	for c.bytes > c.max && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		c.bytes -= e.bytes
		if e.warm {
			delete(c.warm, e.wk)
		} else {
			delete(c.usage, e.uk)
		}
		n++
	}
	c.evictions += int64(n)
	return n
}

// warmEntryBytes is the accounted size of a warm entry: the struct, two
// map words and an LRU node.
const warmEntryBytes = 160

// usageBytes estimates the retained size of a usage entry.
func usageBytes(u ServerUsage) int64 {
	b := int64(240) // struct, LRU node, map overhead
	for _, id := range u.AppIDs {
		b += 16 + int64(len(id))
	}
	b += int64(len(u.ExtraRequired)) * 64
	return b
}

// ---------------------------------------------------------------------
// Content hashing (FNV-1a, 64-bit). The cache keys must identify the
// simulation inputs by value: trace contents, commitment parameters and
// server capacities, never slice identities or server IDs.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvU64 folds an 8-byte value into an FNV-1a state.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// fnvF64 folds a float64 by its bit pattern.
func fnvF64(h uint64, v float64) uint64 { return fnvU64(h, math.Float64bits(v)) }

// fnvInt folds an int.
func fnvInt(h uint64, v int) uint64 { return fnvU64(h, uint64(int64(v))) }

// fnvString folds a length-delimited string.
func fnvString(h uint64, s string) uint64 {
	h = fnvInt(h, len(s))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvSamples folds a trace's samples by value.
func fnvSamples(h uint64, s []float64) uint64 {
	h = fnvInt(h, len(s))
	for _, v := range s {
		h = fnvF64(h, v)
	}
	return h
}

// hashConfig digests every Problem field that parameterizes a
// simulation outcome (the commitment, slot geometry, bisection
// tolerance and score model). New simulation-relevant Problem fields
// must be folded in here, or stale shared-cache hits will alias them.
func hashConfig(p *Problem) uint64 {
	h := uint64(fnvOffset64)
	h = fnvF64(h, p.Commitment.Theta)
	h = fnvU64(h, uint64(p.Commitment.Deadline))
	h = fnvInt(h, p.SlotsPerDay)
	h = fnvInt(h, p.DeadlineSlots)
	h = fnvF64(h, p.tolerance())
	h = fnvInt(h, int(p.Score))
	return h
}

// hashServerShape digests a server's capacity signature — everything a
// simulation reads except its identity, so same-shape servers share
// entries.
func hashServerShape(s Server, attrs []Attribute) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, s.CPUs)
	h = fnvF64(h, s.CPUCapacity)
	for _, attr := range attrs { // attrs is sorted by Validate
		h = fnvString(h, string(attr))
		h = fnvF64(h, s.Extra[attr])
	}
	return h
}

// hashApp digests one application's translated traces (primary and
// extra attributes) by content. Failure-mode translations share the app
// ID but carry different samples, so they hash apart.
func hashApp(a App, attrs []Attribute) uint64 {
	h := uint64(fnvOffset64)
	h = fnvString(h, a.ID)
	h = fnvSamples(h, a.Workload.CoS1)
	h = fnvSamples(h, a.Workload.CoS2)
	for _, attr := range attrs {
		w, ok := a.Extra[attr]
		if !ok {
			continue
		}
		h = fnvString(h, string(attr))
		h = fnvSamples(h, w.CoS1)
		h = fnvSamples(h, w.CoS2)
	}
	return h
}

// hashGroup digests a sorted app-index group through the per-app
// content hashes.
func hashGroup(appHashes []uint64, apps []int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, len(apps))
	for _, a := range apps {
		h = fnvU64(h, appHashes[a])
	}
	return h
}
