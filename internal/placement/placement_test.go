package placement

import (
	"context"
	"math"
	"testing"
	"time"

	"ropus/internal/qos"
	"ropus/internal/sim"
)

// flatApp builds an app with constant per-slot allocations. Flat CoS2
// demand can never catch up on deficits, so its required capacity is
// exactly cos1+cos2 regardless of θ — turning placement into exact
// bin-packing, which makes expectations analytic.
func flatApp(id string, cos1, cos2 float64, slots int) App {
	c1 := make([]float64, slots)
	c2 := make([]float64, slots)
	for i := range c1 {
		c1[i] = cos1
		c2[i] = cos2
	}
	return App{ID: id, Workload: sim.Workload{AppID: id, CoS1: c1, CoS2: c2}}
}

func servers(n, cpus int) []Server {
	out := make([]Server, n)
	for i := range out {
		out[i] = Server{ID: "srv-" + string(rune('a'+i)), CPUs: cpus, CPUCapacity: 1}
	}
	return out
}

func binPackProblem(sizes []float64, nServers, cpus int) *Problem {
	apps := make([]App, len(sizes))
	for i, s := range sizes {
		apps[i] = flatApp("app-"+string(rune('a'+i)), 0, s, 28)
	}
	return &Problem{
		Apps:          apps,
		Servers:       servers(nServers, cpus),
		Commitment:    qos.PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
	}
}

func TestServerValidate(t *testing.T) {
	good := Server{ID: "s", CPUs: 16, CPUCapacity: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid server rejected: %v", err)
	}
	if got := good.Capacity(); got != 16 {
		t.Errorf("Capacity = %v, want 16", got)
	}
	bad := []Server{
		{CPUs: 16, CPUCapacity: 1},
		{ID: "s", CPUs: 0, CPUCapacity: 1},
		{ID: "s", CPUs: 16, CPUCapacity: 0},
		{ID: "s", CPUs: 16, CPUCapacity: math.NaN()},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad server %d accepted", i)
		}
	}
}

func TestProblemValidate(t *testing.T) {
	good := binPackProblem([]float64{1, 2}, 2, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{name: "no apps", mutate: func(p *Problem) { p.Apps = nil }},
		{name: "no servers", mutate: func(p *Problem) { p.Servers = nil }},
		{name: "app id mismatch", mutate: func(p *Problem) { p.Apps[0].ID = "other" }},
		{name: "duplicate apps", mutate: func(p *Problem) {
			p.Apps[1] = p.Apps[0]
		}},
		{name: "misaligned traces", mutate: func(p *Problem) {
			p.Apps[1] = flatApp(p.Apps[1].ID, 0, 1, 7)
		}},
		{name: "duplicate servers", mutate: func(p *Problem) { p.Servers[1].ID = p.Servers[0].ID }},
		{name: "bad slots per day", mutate: func(p *Problem) { p.SlotsPerDay = 0 }},
		{name: "negative deadline", mutate: func(p *Problem) { p.DeadlineSlots = -1 }},
		{name: "negative tolerance", mutate: func(p *Problem) { p.Tolerance = -0.1 }},
		{name: "bad commitment", mutate: func(p *Problem) { p.Commitment.Theta = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := binPackProblem([]float64{1, 2}, 2, 4)
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestAssignmentValidate(t *testing.T) {
	p := binPackProblem([]float64{1, 2}, 2, 4)
	if err := (Assignment{0, 1}).Validate(p); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if err := (Assignment{0}).Validate(p); err == nil {
		t.Error("short assignment accepted")
	}
	if err := (Assignment{0, 2}).Validate(p); err == nil {
		t.Error("out-of-range server accepted")
	}
	if err := (Assignment{-1, 0}).Validate(p); err == nil {
		t.Error("negative server accepted")
	}
}

func TestServerValue(t *testing.T) {
	if got := serverValue(0.5, 2, 0, true, ScorePaper); got != 1 {
		t.Errorf("empty server value = %v, want 1", got)
	}
	if got := serverValue(1.2, 2, 3, false, ScorePaper); got != -3 {
		t.Errorf("overbooked server value = %v, want -3", got)
	}
	want := math.Pow(0.5, 4)
	if got := serverValue(0.5, 2, 1, true, ScorePaper); math.Abs(got-want) > 1e-12 {
		t.Errorf("feasible server value = %v, want %v", got, want)
	}
	// Higher utilization always scores higher; more CPUs demand more.
	if serverValue(0.9, 16, 1, true, ScorePaper) <= serverValue(0.5, 16, 1, true, ScorePaper) {
		t.Error("score should increase with utilization")
	}
	if serverValue(0.8, 16, 1, true, ScorePaper) >= serverValue(0.8, 2, 1, true, ScorePaper) {
		t.Error("servers with more CPUs should need higher utilization for the same value")
	}
	// Linear ablation: value equals utilization, CPU count irrelevant.
	if got := serverValue(0.7, 16, 1, true, ScoreLinear); got != 0.7 {
		t.Errorf("linear value = %v, want 0.7", got)
	}
	if serverValue(0.7, 16, 2, true, ScoreLinear) != serverValue(0.7, 2, 2, true, ScoreLinear) {
		t.Error("linear model should ignore CPU count")
	}
}

func TestScoreModelString(t *testing.T) {
	if ScorePaper.String() != "paper" || ScoreLinear.String() != "linear" {
		t.Error("unexpected score model strings")
	}
	if got := ScoreModel(9).String(); got != "ScoreModel(9)" {
		t.Errorf("unknown model String = %q", got)
	}
}

func TestProblemRejectsUnknownScoreModel(t *testing.T) {
	p := binPackProblem([]float64{1}, 1, 4)
	p.Score = ScoreModel(7)
	if err := p.Validate(); err == nil {
		t.Error("unknown score model accepted")
	}
}

func TestConsolidateLinearScoreStillPacks(t *testing.T) {
	p := binPackProblem([]float64{6, 6, 4, 4, 3, 3, 2}, 7, 10)
	p.Score = ScoreLinear
	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(7)
	cfg.MaxGenerations = 120
	plan, err := Consolidate(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("linear-score plan infeasible")
	}
	if plan.ServersUsed > 4 {
		t.Errorf("linear-score ServersUsed = %d, want <= 4", plan.ServersUsed)
	}
}

func TestEvaluateBinPacking(t *testing.T) {
	p := binPackProblem([]float64{3, 4}, 2, 8)
	plan, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("3+4 on an 8-CPU server should be feasible")
	}
	if plan.ServersUsed != 1 {
		t.Errorf("ServersUsed = %d, want 1", plan.ServersUsed)
	}
	if math.Abs(plan.RequiredTotal-7) > 0.05 {
		t.Errorf("RequiredTotal = %v, want ~7", plan.RequiredTotal)
	}
	// Score: one used server with U=7/8 and Z=8, one empty server.
	wantScore := 1 + math.Pow(7.0/8.0, 16)
	if math.Abs(plan.Score-wantScore) > 0.05 {
		t.Errorf("Score = %v, want ~%v", plan.Score, wantScore)
	}

	over, err := Evaluate(p, Assignment{1, 1}) // both on server 1? still fits
	if err != nil {
		t.Fatal(err)
	}
	if !over.Feasible {
		t.Error("same packing on the other server should also fit")
	}
}

func TestEvaluateOverbooked(t *testing.T) {
	p := binPackProblem([]float64{5, 5}, 2, 8)
	plan, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("5+5 on an 8-CPU server must be infeasible")
	}
	// Overbooked server contributes -2; empty contributes +1.
	if math.Abs(plan.Score-(-2+1)) > 1e-9 {
		t.Errorf("Score = %v, want -1", plan.Score)
	}
}

func TestEvaluateCoS1Guarantee(t *testing.T) {
	// CoS1 peaks must never be overbooked even at theta near zero.
	p := binPackProblem(nil, 1, 8)
	p.Apps = []App{flatApp("a", 5, 0, 28), flatApp("b", 4, 0, 28)}
	p.Commitment.Theta = 0.01
	plan, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Error("CoS1 9 on an 8-CPU server must be infeasible regardless of theta")
	}
}

func TestOneAppPerServer(t *testing.T) {
	p := binPackProblem([]float64{1, 2, 3}, 3, 8)
	a, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range a {
		if s != i {
			t.Errorf("app %d on server %d, want %d", i, s, i)
		}
	}
	p2 := binPackProblem([]float64{1, 2, 3}, 2, 8)
	if _, err := OneAppPerServer(p2); err == nil {
		t.Error("too few servers should fail")
	}
}

func TestGreedyBinPacking(t *testing.T) {
	// Sizes pack perfectly into three 10-CPU servers.
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	p := binPackProblem(sizes, 7, 10)

	ffd, err := FirstFitDecreasing(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !ffd.Feasible {
		t.Fatal("FFD plan infeasible")
	}
	if ffd.ServersUsed != 3 {
		t.Errorf("FFD ServersUsed = %d, want 3", ffd.ServersUsed)
	}

	bfd, err := BestFitDecreasing(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !bfd.Feasible {
		t.Fatal("BFD plan infeasible")
	}
	if bfd.ServersUsed != 3 {
		t.Errorf("BFD ServersUsed = %d, want 3", bfd.ServersUsed)
	}
}

func TestGreedyImpossible(t *testing.T) {
	p := binPackProblem([]float64{20}, 2, 10)
	if _, err := FirstFitDecreasing(context.Background(), p); err == nil {
		t.Error("oversized app should fail FFD")
	}
	if _, err := BestFitDecreasing(context.Background(), p); err == nil {
		t.Error("oversized app should fail BFD")
	}
}

func TestGAConfigValidate(t *testing.T) {
	good := DefaultGAConfig(1)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*GAConfig)
	}{
		{name: "population too small", mutate: func(c *GAConfig) { c.PopulationSize = 1 }},
		{name: "no generations", mutate: func(c *GAConfig) { c.MaxGenerations = 0 }},
		{name: "no stagnation", mutate: func(c *GAConfig) { c.Stagnation = 0 }},
		{name: "elite too big", mutate: func(c *GAConfig) { c.Elite = c.PopulationSize }},
		{name: "negative elite", mutate: func(c *GAConfig) { c.Elite = -1 }},
		{name: "zero tournament", mutate: func(c *GAConfig) { c.TournamentK = 0 }},
		{name: "negative tournament", mutate: func(c *GAConfig) { c.TournamentK = -3 }},
		{name: "tournament exceeds population", mutate: func(c *GAConfig) { c.TournamentK = c.PopulationSize + 1 }},
		{name: "mutation rate above one", mutate: func(c *GAConfig) { c.MutationRate = 1.5 }},
		{name: "negative mutation rate", mutate: func(c *GAConfig) { c.MutationRate = -0.1 }},
		{name: "NaN mutation rate", mutate: func(c *GAConfig) { c.MutationRate = math.NaN() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultGAConfig(1)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestConsolidateBinPacking(t *testing.T) {
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	p := binPackProblem(sizes, 7, 10)
	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(7)
	cfg.MaxGenerations = 120
	plan, err := Consolidate(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("GA plan infeasible")
	}
	if plan.ServersUsed > 4 {
		t.Errorf("GA ServersUsed = %d, want <= 4 (optimum 3)", plan.ServersUsed)
	}
	if err := plan.Assignment.Validate(p); err != nil {
		t.Errorf("GA returned invalid assignment: %v", err)
	}
	// All apps accounted for.
	if len(plan.Assignment) != len(sizes) {
		t.Errorf("assignment covers %d apps, want %d", len(plan.Assignment), len(sizes))
	}
}

func TestConsolidateDeterministic(t *testing.T) {
	sizes := []float64{5, 4, 3, 2, 2}
	run := func() *Plan {
		p := binPackProblem(sizes, 5, 10)
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultGAConfig(99)
		cfg.MaxGenerations = 60
		plan, err := Consolidate(context.Background(), p, initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	a, b := run(), run()
	if a.Score != b.Score || a.ServersUsed != b.ServersUsed {
		t.Errorf("same seed produced different plans: %v/%d vs %v/%d",
			a.Score, a.ServersUsed, b.Score, b.ServersUsed)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("assignments differ at app %d", i)
		}
	}
}

func TestConsolidateInfeasibleProblem(t *testing.T) {
	p := binPackProblem([]float64{20, 20}, 2, 10)
	initial := Assignment{0, 1}
	if _, err := Consolidate(context.Background(), p, initial, DefaultGAConfig(1)); err == nil {
		t.Error("unsatisfiable problem should error")
	}
}

func TestConsolidateInputErrors(t *testing.T) {
	p := binPackProblem([]float64{1}, 1, 10)
	if _, err := Consolidate(context.Background(), p, Assignment{0, 0}, DefaultGAConfig(1)); err == nil {
		t.Error("wrong-length assignment should fail")
	}
	bad := DefaultGAConfig(1)
	bad.PopulationSize = 0
	if _, err := Consolidate(context.Background(), p, Assignment{0}, bad); err == nil {
		t.Error("bad GA config should fail")
	}
	broken := binPackProblem([]float64{1}, 1, 10)
	broken.SlotsPerDay = 0
	if _, err := Consolidate(context.Background(), broken, Assignment{0}, DefaultGAConfig(1)); err == nil {
		t.Error("bad problem should fail")
	}
}

func TestEvaluatorCache(t *testing.T) {
	p := binPackProblem([]float64{2, 3}, 2, 10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := newEvaluator(p)
	if _, err := ev.evaluate(context.Background(), Assignment{0, 0}); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := ev.misses.Load()
	if _, err := ev.evaluate(context.Background(), Assignment{0, 0}); err != nil {
		t.Fatal(err)
	}
	if ev.misses.Load() != missesAfterFirst {
		t.Errorf("second evaluation missed the cache: %d -> %d", missesAfterFirst, ev.misses.Load())
	}
	if ev.hits.Load() == 0 {
		t.Error("expected cache hits on repeat evaluation")
	}
}

func TestGroupByServer(t *testing.T) {
	groups := groupByServer(Assignment{1, 0, 1, 2}, 4)
	if len(groups[0]) != 1 || groups[0][0] != 1 {
		t.Errorf("groups[0] = %v", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 0 || groups[1][1] != 2 {
		t.Errorf("groups[1] = %v", groups[1])
	}
	if len(groups[2]) != 1 || groups[2][0] != 3 {
		t.Errorf("groups[2] = %v", groups[2])
	}
	if len(groups[3]) != 0 {
		t.Errorf("groups[3] = %v, want empty", groups[3])
	}
}

func TestBurstyWorkloadSharesCapacity(t *testing.T) {
	// Two anti-correlated bursty apps: each has peak 6 but they never
	// burst together, so both fit on one 8-CPU server with theta=0.9
	// even though the sum of peaks is 12.
	slots := 28
	mk := func(id string, burstAt int) App {
		c2 := make([]float64, slots)
		for i := range c2 {
			c2[i] = 1
		}
		for i := burstAt; i < burstAt+2; i++ {
			c2[i] = 6
		}
		return App{ID: id, Workload: sim.Workload{AppID: id, CoS1: make([]float64, slots), CoS2: c2}}
	}
	p := &Problem{
		Apps:          []App{mk("a", 4), mk("b", 12)},
		Servers:       servers(2, 8),
		Commitment:    qos.PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
	}
	plan, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("anti-correlated bursts should fit together")
	}
	if plan.RequiredTotal >= 12 {
		t.Errorf("RequiredTotal = %v, want below the sum of peaks 12", plan.RequiredTotal)
	}
}
