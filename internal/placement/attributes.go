package placement

import (
	"context"
	"fmt"
	"sort"

	"ropus/internal/sim"
)

// Multiple capacity attributes. The paper characterizes workloads "for
// capacity attributes such as CPU, memory, and disk and network
// input-output" and has the simulator report required capacity "for
// each capacity attribute" (sections II and VI-A); its case study then
// manages CPU only. Here CPU is the primary attribute (App.Workload,
// Server.CPUs) and any further attributes ride along in App.Extra /
// Server.Extra: each is replayed with the same two-CoS simulator
// against the server's per-attribute capacity, and a server is feasible
// only when every attribute's commitments are satisfied. The
// consolidation score stays CPU-based, as in the paper.

// Attribute names an additional capacity attribute (for example
// "memory" or "diskio"). The primary CPU attribute has no name.
type Attribute string

// Common attribute names used by the examples and tests; any string
// works.
const (
	AttrMemory  Attribute = "memory"
	AttrDiskIO  Attribute = "diskio"
	AttrNetwork Attribute = "network"
)

// attributeUnion collects the sorted set of extra attributes used by
// any application in the problem.
func attributeUnion(apps []App) []Attribute {
	seen := make(map[Attribute]bool)
	for _, a := range apps {
		for attr := range a.Extra {
			seen[attr] = true
		}
	}
	out := make([]Attribute, 0, len(seen))
	for attr := range seen {
		out = append(out, attr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// validateAttributes checks the multi-attribute invariants: every extra
// workload is valid, aligned with the primary trace, and named
// consistently; every server provides a positive capacity for every
// attribute in use.
func validateAttributes(p *Problem) error {
	attrs := attributeUnion(p.Apps)
	if len(attrs) == 0 {
		return nil
	}
	for _, a := range p.Apps {
		for attr, w := range a.Extra {
			if err := w.Validate(); err != nil {
				return fmt.Errorf("placement: app %q attribute %q: %w", a.ID, attr, err)
			}
			if w.AppID != a.ID {
				return fmt.Errorf("placement: app %q attribute %q names workload %q",
					a.ID, attr, w.AppID)
			}
			if len(w.CoS1) != len(a.Workload.CoS1) {
				return fmt.Errorf("placement: app %q attribute %q has %d slots, want %d",
					a.ID, attr, len(w.CoS1), len(a.Workload.CoS1))
			}
		}
	}
	for _, s := range p.Servers {
		for _, attr := range attrs {
			if c, ok := s.Extra[attr]; !ok || c <= 0 {
				return fmt.Errorf("placement: server %q lacks a positive capacity for attribute %q",
					s.ID, attr)
			}
		}
	}
	return nil
}

// evalAttributes simulates every extra attribute of the hosted apps
// against the server's per-attribute capacity. It returns the required
// capacities and whether all attributes fit. The apps slice must be
// non-empty and sorted.
func (e *evaluator) evalAttributes(ctx context.Context, srv Server, apps []int) (map[Attribute]float64, bool, error) {
	attrs := e.p.attrs
	if len(attrs) == 0 {
		return nil, true, nil
	}
	required := make(map[Attribute]float64, len(attrs))
	allFit := true
	cfg := sim.Config{
		Commitment:    e.p.Commitment,
		SlotsPerDay:   e.p.SlotsPerDay,
		DeadlineSlots: e.p.DeadlineSlots,
		Hooks:         e.p.Hooks,
		Inject:        e.p.Inject,
		InjectKey:     srv.ID,
	}
	for _, attr := range attrs {
		workloads := make([]sim.Workload, 0, len(apps))
		for _, a := range apps {
			if w, ok := e.p.Apps[a].Extra[attr]; ok {
				workloads = append(workloads, w)
			}
		}
		if len(workloads) == 0 {
			required[attr] = 0
			continue
		}
		agg, err := sim.NewAggregate(workloads)
		if err != nil {
			return nil, false, err
		}
		req, _, ok, err := agg.RequiredCapacity(ctx, cfg, srv.Extra[attr], e.p.tolerance())
		if err != nil {
			return nil, false, err
		}
		required[attr] = req
		if !ok {
			allFit = false
		}
	}
	return required, allFit, nil
}
