package placement

import (
	"context"
	"fmt"
	"sort"

	"ropus/internal/checkpoint"
	"ropus/internal/parallel"
	"ropus/internal/partition"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
	"ropus/internal/topology"
)

// Hierarchical (pool-of-pools) consolidation. A flat genetic search over
// a 1k-app fleet is hopeless: the assignment space grows with the full
// cross product of apps and servers, and every offspring evaluation
// touches every server. The hierarchical search instead
//
//  1. partitions the fleet into sub-pools of at most MaxApps apps each
//     (internal/partition clusters by demand correlation, spreading
//     correlated families apart so each sub-pool multiplexes well),
//  2. solves each sub-pool with the ordinary genetic search — the
//     partitions are independent, so they run in parallel and each is
//     journaled as its own checkpoint work unit,
//  3. stitches the sub-plans onto the real pool (rack-aware when a
//     topology is given) and evaluates the combined assignment once
//     against the original problem.
//
// Determinism contract: the result depends only on the problem content
// and the configuration — every per-partition seed is an FNV-1a fold of
// (GA seed, partition count, partition index), partitions are stitched
// in a canonical order, and the per-partition searches share only the
// content-keyed simulation cache — so the plan is byte-identical at any
// Workers count. A single-partition exercise (fleet fits in MaxApps)
// delegates to Consolidate unchanged and reproduces the flat plan byte
// for byte.

// HierConfig parameterizes a hierarchical consolidation.
type HierConfig struct {
	// MaxApps is the sub-pool size cap handed to the partitioner.
	MaxApps int
	// Buckets is the correlation fingerprint resolution; 0 selects
	// partition.DefaultBuckets.
	Buckets int
	// Workers bounds how many sub-pools are solved concurrently;
	// <= 0 selects GOMAXPROCS. The plan does not depend on it.
	Workers int
	// Journal, when non-nil, checkpoints each solved partition as a
	// "placement.partition" work unit: a resumed run replays completed
	// partitions bit-exactly and solves only the rest.
	Journal *checkpoint.Journal
	// Topology, when non-nil, makes stitching rack-aware: each sub-pool
	// is placed on a single rack when one has room (largest sub-pools
	// first), so a rack failure hits few partitions.
	Topology *topology.Topology
}

// Validate checks the configuration.
func (c HierConfig) Validate() error {
	if c.MaxApps < 1 {
		return fmt.Errorf("placement: hierarchical MaxApps %d < 1", c.MaxApps)
	}
	if c.Buckets < 0 {
		return fmt.Errorf("placement: hierarchical Buckets %d < 0", c.Buckets)
	}
	return nil
}

// SubPool reports one solved partition of a hierarchical plan.
type SubPool struct {
	// Index is the partition's index in canonical partition order.
	Index int
	// AppIDs are the partition's applications, in problem order.
	AppIDs []string
	// Servers are the pool servers the partition was stitched onto.
	Servers []string
	// Rack is the rack the partition landed on; empty when stitching is
	// topology-free or the partition had to span racks.
	Rack string
	// ServersUsed is the partition's server count.
	ServersUsed int
	// Required is the partition's total required capacity in the final
	// evaluated plan.
	Required float64
	// Seed is the partition's derived GA seed.
	Seed int64
	// Replayed reports that the partition's solution came from a resumed
	// checkpoint journal instead of a fresh search.
	Replayed bool
}

// RackPlacement summarizes one rack of a topology-aware stitch.
type RackPlacement struct {
	// Rack is the rack domain ID.
	Rack string
	// Partitions are the indexes of the sub-pools placed on the rack.
	Partitions []int
	// Servers is the number of servers the rack contributed.
	Servers int
}

// HierPlan is an evaluated hierarchical consolidation.
type HierPlan struct {
	// Plan is the stitched assignment evaluated against the original
	// problem; byte-identical at any worker count.
	Plan *Plan
	// Partitions describe each sub-pool in canonical order.
	Partitions []SubPool
	// Racks summarizes the rack-aware stitch; nil without a topology.
	Racks []RackPlacement
}

// partitionRecord is the journaled result of one solved partition: the
// local assignment is everything needed to reproduce the stitch, and it
// round-trips through JSON exactly (all ints).
type partitionRecord struct {
	Assignment []int `json:"assignment"`
}

// SplitProblem clusters the problem's applications into sub-pools by
// total-demand correlation (see internal/partition): each group holds at
// most cfg.MaxApps app indexes into p.Apps.
func SplitProblem(p *Problem, cfg HierConfig) (*partition.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := make([]string, len(p.Apps))
	series := make([][]float64, len(p.Apps))
	for i, a := range p.Apps {
		ids[i] = a.ID
		total := make([]float64, len(a.Workload.CoS1))
		for t := range total {
			total[t] = a.Workload.CoS1[t] + a.Workload.CoS2[t]
		}
		series[i] = total
	}
	return partition.Split(ids, series, partition.Config{MaxApps: cfg.MaxApps, Buckets: cfg.Buckets})
}

// partitionSeed derives partition k's GA seed from the search seed with
// an FNV-1a fold, so per-partition searches are decorrelated but fixed
// by (seed, partitions, k) — the same scheme the island model uses.
func partitionSeed(seed int64, parts, k int) int64 {
	h := uint64(fnvOffset64)
	h = fnvString(h, "partition")
	h = fnvU64(h, uint64(seed))
	h = fnvInt(h, parts)
	h = fnvInt(h, k)
	return int64(h)
}

// partitionKey is the checkpoint work-unit key for one partition: its
// index, seed and member app IDs, so a journal replays only the exact
// same sub-problem.
func partitionKey(k int, seed int64, appIDs []string) uint64 {
	h := checkpoint.NewHasher().Int(int64(k)).Int(seed)
	for _, id := range appIDs {
		h.String(id)
	}
	return h.Sum()
}

// ConsolidateHierarchical runs the pool-of-pools consolidation. With a
// single partition (len(p.Apps) <= cfg.MaxApps) it delegates to
// Consolidate and the returned HierPlan wraps the identical flat plan.
// Otherwise initial is only validated — each sub-pool starts from its
// own one-app-per-server configuration.
//
// Cancellation degrades at partition boundaries: partitions already
// dispatched run to completion and are journaled (when cfg.Journal is
// set), so a killed run resumes from its completed prefix; the
// cancelled call itself returns an error, never a partial plan.
func ConsolidateHierarchical(ctx context.Context, p *Problem, initial Assignment, ga GAConfig, cfg HierConfig) (hier *HierPlan, err error) {
	defer robust.Recover("placement.ConsolidateHierarchical", &err)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ga.Validate(); err != nil {
		return nil, err
	}
	if err := initial.Validate(p); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Sub-pools are solved on cloned server shapes and stitched onto
	// arbitrary pool servers, which is only sound when every server has
	// the same shape.
	shape := hashServerShape(p.Servers[0], p.attrs)
	for _, s := range p.Servers[1:] {
		if hashServerShape(s, p.attrs) != shape {
			return nil, fmt.Errorf("placement: hierarchical consolidation requires a uniform server shape; server %q differs from %q", s.ID, p.Servers[0].ID)
		}
	}

	res, err := SplitProblem(p, cfg)
	if err != nil {
		return nil, err
	}
	parts := len(res.Groups)

	h := telemetry.OrNop(p.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, p.Hooks, "placement.hierarchical",
		telemetry.Int("apps", len(p.Apps)),
		telemetry.Int("servers", len(p.Servers)),
		telemetry.Int("partitions", parts))
	defer span.End()

	if parts == 1 {
		plan, err := Consolidate(ctx, p, initial, ga)
		if err != nil {
			return nil, err
		}
		sub := SubPool{AppIDs: appIDs(p, res.Groups[0]), Seed: ga.Seed,
			ServersUsed: plan.ServersUsed, Required: plan.RequiredTotal}
		for _, u := range plan.Usages {
			if len(u.AppIDs) > 0 {
				sub.Servers = append(sub.Servers, u.Server.ID)
			}
		}
		return &HierPlan{Plan: plan, Partitions: []SubPool{sub}}, nil
	}

	// Solve every partition independently. Results are index-addressed,
	// so the worker count cannot reorder them.
	type subResult struct {
		assignment Assignment // local: group position -> local server
		replayed   bool
		truncated  bool
		err        error
	}
	results := make([]subResult, parts)
	replayedC := h.Counter("hier_partitions_replayed_total")
	solvedC := h.Counter("hier_partitions_solved_total")
	solve := func(k int) {
		group := res.Groups[k]
		ids := appIDs(p, group)
		seed := partitionSeed(ga.Seed, parts, k)
		key := partitionKey(k, seed, ids)
		var rec partitionRecord
		if ok, lerr := cfg.Journal.Lookup("placement.partition", key, &rec); lerr != nil {
			results[k] = subResult{err: lerr}
			return
		} else if ok {
			if verr := validLocal(rec.Assignment, len(group)); verr != nil {
				results[k] = subResult{err: fmt.Errorf("placement: journaled partition %d: %w", k, verr)}
				return
			}
			replayedC.Inc()
			results[k] = subResult{assignment: rec.Assignment, replayed: true}
			return
		}
		sub := subProblem(p, group, k)
		start, serr := OneAppPerServer(sub)
		if serr != nil {
			results[k] = subResult{err: serr}
			return
		}
		subGA := ga
		subGA.Seed = seed
		plan, serr := Consolidate(ctx, sub, start, subGA)
		if serr != nil {
			results[k] = subResult{err: fmt.Errorf("placement: partition %d (%d apps): %w", k, len(group), serr)}
			return
		}
		if plan.Truncated {
			// A truncated sub-plan is not the converged solution; never
			// journal it, and fail the whole call as cancelled below.
			results[k] = subResult{truncated: true}
			return
		}
		if jerr := cfg.Journal.Append("placement.partition", key, partitionRecord{Assignment: plan.Assignment}); jerr != nil {
			results[k] = subResult{err: jerr}
			return
		}
		solvedC.Inc()
		results[k] = subResult{assignment: plan.Assignment}
	}
	dispatched := parallel.ForEach(ctx, cfg.Workers, parts, solve)
	for k := 0; k < dispatched; k++ {
		if results[k].err != nil {
			return nil, results[k].err
		}
	}
	truncated := dispatched < parts
	for k := 0; k < dispatched; k++ {
		if results[k].truncated {
			truncated = true
		}
	}
	if truncated {
		cause := context.Cause(ctx)
		if cause == nil {
			cause = context.DeadlineExceeded // a sub-search's time budget elapsed
		}
		return nil, fmt.Errorf("placement: hierarchical consolidation cancelled after %d of %d partitions: %w",
			dispatched, parts, cause)
	}

	// Stitch: allocate pool servers to partitions (largest first so the
	// rack-aware first fit packs well), then translate each local
	// assignment through its allocation.
	used := make([]int, parts)
	for k := range results {
		used[k] = distinctServers(results[k].assignment)
	}
	alloc, rackOf, racks, err := allocateServers(p, cfg.Topology, used)
	if err != nil {
		return nil, err
	}
	global := make(Assignment, len(p.Apps))
	for k, group := range res.Groups {
		locals := sortedDistinct(results[k].assignment)
		toGlobal := make(map[int]int, len(locals))
		for j, l := range locals {
			toGlobal[l] = alloc[k][j]
		}
		for i, app := range group {
			global[app] = toGlobal[results[k].assignment[i]]
		}
	}

	plan, err := newEvaluator(p).evaluate(ctx, global)
	if err != nil {
		return nil, err
	}

	hier = &HierPlan{Plan: plan, Racks: racks}
	for k, group := range res.Groups {
		sub := SubPool{
			Index:       k,
			AppIDs:      appIDs(p, group),
			Rack:        rackOf[k],
			ServersUsed: used[k],
			Seed:        partitionSeed(ga.Seed, parts, k),
			Replayed:    results[k].replayed,
		}
		for _, s := range alloc[k] {
			sub.Servers = append(sub.Servers, p.Servers[s].ID)
			sub.Required += plan.Usages[s].Required
		}
		hier.Partitions = append(hier.Partitions, sub)
	}
	span.SetAttr(telemetry.Int("servers_used", plan.ServersUsed),
		telemetry.Float("score", plan.Score),
		telemetry.Bool("feasible", plan.Feasible))
	return hier, nil
}

// appIDs lists a group's application IDs in problem order.
func appIDs(p *Problem, group []int) []string {
	ids := make([]string, len(group))
	for i, a := range group {
		ids[i] = p.Apps[a].ID
	}
	return ids
}

// subProblem clones the problem down to one partition: the group's apps
// and one same-shape server per app (local IDs, never stitched into the
// output). The shared simulation cache carries over — its keys are pure
// content, so sub-pool results and flat results interchange.
func subProblem(p *Problem, group []int, k int) *Problem {
	sub := &Problem{
		Apps:          make([]App, len(group)),
		Servers:       make([]Server, len(group)),
		Commitment:    p.Commitment,
		SlotsPerDay:   p.SlotsPerDay,
		DeadlineSlots: p.DeadlineSlots,
		Tolerance:     p.Tolerance,
		Score:         p.Score,
		Hooks:         p.Hooks,
		Inject:        p.Inject,
		Cache:         p.Cache,
	}
	for i, a := range group {
		sub.Apps[i] = p.Apps[a]
	}
	shape := p.Servers[0]
	for i := range sub.Servers {
		sub.Servers[i] = Server{
			ID:          fmt.Sprintf("p%03d-s%03d", k, i+1),
			CPUs:        shape.CPUs,
			CPUCapacity: shape.CPUCapacity,
			Extra:       shape.Extra,
		}
	}
	return sub
}

// validLocal checks a journaled local assignment's dimensions.
func validLocal(a []int, n int) error {
	if len(a) != n {
		return fmt.Errorf("assignment covers %d apps, want %d", len(a), n)
	}
	for i, s := range a {
		if s < 0 || s >= n {
			return fmt.Errorf("app %d assigned to invalid local server %d", i, s)
		}
	}
	return nil
}

// distinctServers counts the distinct servers in an assignment.
func distinctServers(a Assignment) int {
	seen := make(map[int]bool, len(a))
	for _, s := range a {
		seen[s] = true
	}
	return len(seen)
}

// sortedDistinct returns the distinct values of a local assignment in
// ascending order — the canonical local-server enumeration the stitch
// maps onto allocated pool servers.
func sortedDistinct(a Assignment) []int {
	seen := make(map[int]bool, len(a))
	var out []int
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// allocateServers assigns pool server indexes to partitions. Partitions
// are placed largest-first (ties by index); with a topology each looks
// for the first rack (document order) with enough free servers and
// falls back to spanning the global free list; without one, a single
// anonymous pool makes the allocation sequential. The result depends
// only on the inputs.
func allocateServers(p *Problem, t *topology.Topology, used []int) (alloc [][]int, rackOf []string, racks []RackPlacement, err error) {
	type pool struct {
		id   string
		free []int
	}
	var pools []pool
	if t != nil {
		byID := make(map[string]int, len(p.Servers))
		for i, s := range p.Servers {
			byID[s.ID] = i
		}
		taken := make(map[int]bool, len(p.Servers))
		for _, rack := range t.DomainsOfKind(topology.KindRack) {
			members, merr := t.ServersIn(rack)
			if merr != nil {
				return nil, nil, nil, merr
			}
			var idx []int
			for _, s := range members { // members is sorted by ID
				if i, ok := byID[s]; ok && !taken[i] {
					idx = append(idx, i)
					taken[i] = true
				}
			}
			sort.Ints(idx)
			if len(idx) > 0 {
				pools = append(pools, pool{id: rack, free: idx})
			}
		}
		var rest []int
		for i := range p.Servers {
			if !taken[i] {
				rest = append(rest, i)
			}
		}
		if len(rest) > 0 {
			pools = append(pools, pool{free: rest})
		}
	} else {
		all := make([]int, len(p.Servers))
		for i := range all {
			all[i] = i
		}
		pools = []pool{{free: all}}
	}

	order := make([]int, len(used))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if used[order[i]] != used[order[j]] {
			return used[order[i]] > used[order[j]]
		}
		return order[i] < order[j]
	})

	alloc = make([][]int, len(used))
	rackOf = make([]string, len(used))
	onRack := make(map[string][]int)
	for _, k := range order {
		need := used[k]
		placed := false
		for pi := range pools {
			if len(pools[pi].free) >= need {
				alloc[k] = pools[pi].free[:need:need]
				pools[pi].free = pools[pi].free[need:]
				rackOf[k] = pools[pi].id
				if pools[pi].id != "" {
					onRack[pools[pi].id] = append(onRack[pools[pi].id], k)
				}
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		// No single rack fits: span the free list in pool order. The
		// partition keeps an empty Rack to flag the spill.
		var got []int
		for pi := range pools {
			for need > len(got) && len(pools[pi].free) > 0 {
				got = append(got, pools[pi].free[0])
				pools[pi].free = pools[pi].free[1:]
			}
		}
		if len(got) < need {
			return nil, nil, nil, fmt.Errorf("placement: hierarchical stitch needs %d more servers for partition %d (%d total in pool)",
				need-len(got), k, len(p.Servers))
		}
		alloc[k] = got
	}

	if t != nil {
		for _, rack := range t.DomainsOfKind(topology.KindRack) {
			parts := onRack[rack]
			if len(parts) == 0 {
				continue
			}
			sort.Ints(parts)
			servers := 0
			for _, k := range parts {
				servers += used[k]
			}
			racks = append(racks, RackPlacement{Rack: rack, Partitions: parts, Servers: servers})
		}
	}
	return alloc, rackOf, racks, nil
}
