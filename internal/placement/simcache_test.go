package placement

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/qos"
	"ropus/internal/sim"
)

// legacyKey is the strings.Builder key the FNV key replaced; the
// collision test checks the new key is injective wherever the old one
// was.
func legacyKey(server int, apps []int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(server))
	for _, a := range apps {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(a))
	}
	return b.String()
}

// TestEvaluatorKeyCollisionFree enumerates every (server, group) pair a
// mid-sized exercise can produce — all subsets of 12 apps on 12 servers
// — and checks the 64-bit key never collides where the legacy string
// key distinguished.
func TestEvaluatorKeyCollisionFree(t *testing.T) {
	e := &evaluator{}
	const apps, servers = 12, 12
	seen := make(map[uint64]string, servers<<apps)
	group := make([]int, 0, apps)
	for mask := 0; mask < 1<<apps; mask++ {
		group = group[:0]
		for a := 0; a < apps; a++ {
			if mask&(1<<a) != 0 {
				group = append(group, a)
			}
		}
		for s := 0; s < servers; s++ {
			k := e.key(s, group)
			legacy := legacyKey(s, group)
			if prev, ok := seen[k]; ok && prev != legacy {
				t.Fatalf("key collision: %q and %q both hash to %#x", prev, legacy, k)
			}
			seen[k] = legacy
		}
	}
}

// cacheProblem builds a small CPU-only problem with per-app flat CoS2
// demand (required capacity is then cos1+cos2 exactly).
func cacheProblem(sizes []float64, nServers, cpus int, cache *SimCache) *Problem {
	apps := make([]App, len(sizes))
	for i, s := range sizes {
		c1 := make([]float64, 28)
		c2 := make([]float64, 28)
		for j := range c2 {
			c2[j] = s
		}
		id := fmt.Sprintf("app-%02d", i)
		apps[i] = App{ID: id, Workload: sim.Workload{AppID: id, CoS1: c1, CoS2: c2}}
	}
	servers := make([]Server, nServers)
	for i := range servers {
		servers[i] = Server{ID: fmt.Sprintf("srv-%02d", i), CPUs: cpus, CPUCapacity: 1}
	}
	return &Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
		Cache:         cache,
	}
}

// TestSharedCacheBitExact verifies the exactness contract behind the
// whole design: plans computed with no cache, a fresh cache, and a
// pre-warmed cache are identical in every field.
func TestSharedCacheBitExact(t *testing.T) {
	ctx := context.Background()
	ga := DefaultGAConfig(7)
	ga.MaxGenerations = 30

	run := func(cache *SimCache) *Plan {
		p := cacheProblem([]float64{2, 3, 4, 1}, 4, 10, cache)
		initial := Assignment{0, 1, 2, 3}
		plan, err := Consolidate(ctx, p, initial, ga)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	cold := run(nil)
	cache := NewSimCache(0)
	fresh := run(cache)
	if s := cache.Stats(); s.Misses == 0 {
		t.Fatal("fresh cache saw no traffic — is the evaluator wired to it?")
	}
	warmed := run(cache) // second run over a populated cache
	if s := cache.Stats(); s.Hits == 0 {
		t.Fatal("second run over a populated cache scored no hits")
	}

	for name, plan := range map[string]*Plan{"fresh-cache": fresh, "warmed-cache": warmed} {
		if !reflect.DeepEqual(plan, cold) {
			t.Errorf("%s plan diverges from the uncached plan:\ngot  %+v\nwant %+v", name, plan, cold)
		}
	}
}

// TestSharedCacheAcrossProblems exercises the cross-run reuse the
// failure sweep depends on: a second Problem with the same app contents
// (different Problem value, same cache) hits instead of recomputing.
func TestSharedCacheAcrossProblems(t *testing.T) {
	cache := NewSimCache(0)
	a1 := Assignment{0, 0, 1}
	p1 := cacheProblem([]float64{2, 3, 4}, 3, 10, cache)
	plan1, err := Evaluate(p1, a1)
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if before.Hits != 0 {
		t.Fatalf("first run should only miss, got %+v", before)
	}
	p2 := cacheProblem([]float64{2, 3, 4}, 3, 10, cache)
	plan2, err := Evaluate(p2, a1)
	if err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("second problem should hit the shared cache, stats %+v", after)
	}
	if !reflect.DeepEqual(plan1, plan2) {
		t.Errorf("shared-cache plan diverges across problems")
	}
}

// TestSharedCacheServerShapeCollapses checks that same-shape servers
// share entries: evaluating the same group on server 0 and server 1 of
// a homogeneous pool costs one simulation.
func TestSharedCacheServerShapeCollapses(t *testing.T) {
	cache := NewSimCache(0)
	p := cacheProblem([]float64{2, 3}, 2, 10, cache)
	onSrv0, err := Evaluate(p, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	s0 := cache.Stats()
	onSrv1, err := Evaluate(p, Assignment{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s1 := cache.Stats()
	if s1.Hits <= s0.Hits {
		t.Fatalf("same group on a same-shape server should hit, stats %+v -> %+v", s0, s1)
	}
	u0, u1 := onSrv0.Usages[0], onSrv1.Usages[1]
	if u0.Server.ID != "srv-00" || u1.Server.ID != "srv-01" {
		t.Fatalf("cached reuse must restore the concrete server identity, got %q and %q",
			u0.Server.ID, u1.Server.ID)
	}
	u1.Server = u0.Server
	if !reflect.DeepEqual(u0, u1) {
		t.Errorf("same-shape reuse changed the usage:\nsrv0 %+v\nsrv1 %+v", u0, u1)
	}
}

// TestWarmStartAcrossCapacities checks the cross-capacity warm path: a
// group solved on a small server is reused on a larger one (different
// shape, so the full-usage key misses) and reproduces the cold result
// exactly.
func TestWarmStartAcrossCapacities(t *testing.T) {
	cache := NewSimCache(0)
	small := cacheProblem([]float64{2, 3}, 2, 10, cache)
	if _, err := Evaluate(small, Assignment{0, 0}); err != nil {
		t.Fatal(err)
	}

	big := cacheProblem([]float64{2, 3}, 2, 16, cache)
	warmPlan, err := Evaluate(big, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.WarmHits == 0 {
		t.Fatalf("bigger-capacity evaluation should warm-start, stats %+v", s)
	}

	coldBig := cacheProblem([]float64{2, 3}, 2, 16, nil)
	coldPlan, err := Evaluate(coldBig, Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmPlan, coldPlan) {
		t.Errorf("warm-started plan diverges from cold compute:\nwarm %+v\ncold %+v",
			warmPlan, coldPlan)
	}
}

// TestSimCacheEviction checks the byte bound: a tiny cache evicts
// least-recently-used entries instead of growing.
func TestSimCacheEviction(t *testing.T) {
	cache := NewSimCache(1) // effectively: evict after every insert
	if cache.max != 1 {
		t.Fatalf("max = %d, want the 1-byte bound to stand", cache.max)
	}
	p := cacheProblem([]float64{2, 3, 4}, 3, 10, cache)
	if _, err := Evaluate(p, Assignment{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Evictions == 0 {
		t.Fatalf("a 1-byte cache must evict, stats %+v", s)
	}
	if s.Bytes > warmEntryBytes+512 || s.Entries > 1 {
		t.Fatalf("cache grew past its bound: %+v", s)
	}
}

// TestSimCacheBypassedUnderInjection checks the injector rule: fault
// injection points must fire per evaluation, so an injecting Problem
// never touches the shared cache.
func TestSimCacheBypassedUnderInjection(t *testing.T) {
	cache := NewSimCache(0)
	hits := 0
	p := cacheProblem([]float64{2, 3}, 2, 10, cache)
	p.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		hits++
		return faultinject.Outcome{}
	})
	if _, err := Evaluate(p, Assignment{0, 0}); err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("injector never consulted")
	}
	if s := cache.Stats(); s.Hits+s.Misses+int64(s.Entries) != 0 {
		t.Fatalf("injecting problem must bypass the shared cache, stats %+v", s)
	}
}
