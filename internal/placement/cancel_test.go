package placement

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/robust"
)

// cancelProblem is a packing with room to consolidate, so the GA has
// real work left when a cancel lands.
func cancelProblem() *Problem {
	return binPackProblem([]float64{3, 3, 3, 2, 2, 2, 1, 1}, 8, 10)
}

func TestCancelConsolidateBestSoFar(t *testing.T) {
	// A context cancelled before the first generation stops the search
	// at the first boundary; the initial population (evaluated detached
	// from the cancel) still yields a valid best-so-far plan.
	run := func() *Plan {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		p := cancelProblem()
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Consolidate(ctx, p, initial, DefaultGAConfig(7))
		if err != nil {
			t.Fatalf("cancelled Consolidate should degrade, got %v", err)
		}
		return plan
	}
	plan := run()
	if !plan.Truncated {
		t.Error("cancelled search should flag the plan Truncated")
	}
	if !plan.Feasible {
		t.Error("best-so-far plan should be feasible")
	}
	if err := plan.Assignment.Validate(cancelProblem()); err != nil {
		t.Errorf("best-so-far assignment invalid: %v", err)
	}
	// Same seed, same cancel point => same plan: degradation must not
	// introduce nondeterminism.
	again := run()
	for i, s := range plan.Assignment {
		if again.Assignment[i] != s {
			t.Fatalf("same seed produced different best-so-far assignments:\n%v\n%v",
				plan.Assignment, again.Assignment)
		}
	}
}

func TestCancelConsolidateTimeBudget(t *testing.T) {
	p := cancelProblem()
	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(7)
	cfg.TimeBudget = time.Nanosecond
	plan, err := Consolidate(context.Background(), p, initial, cfg)
	if err != nil {
		t.Fatalf("over-budget Consolidate should degrade, got %v", err)
	}
	if !plan.Truncated || !plan.Feasible {
		t.Errorf("want truncated feasible plan, got truncated=%v feasible=%v",
			plan.Truncated, plan.Feasible)
	}
}

func TestCancelConsolidateNoFeasibleErrs(t *testing.T) {
	// When nothing fits, a cancelled search has no best-so-far to return
	// and must surface the cancellation as an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := binPackProblem([]float64{9, 9, 9}, 3, 10)
	p.Servers = p.Servers[:1] // 27 CPUs of demand on one 10-CPU server
	plan, err := Consolidate(ctx, p, Assignment{0, 0, 0}, DefaultGAConfig(7))
	if err == nil {
		t.Fatalf("want error, got plan %+v", plan)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}
}

func TestCancelGreedyExactAndCorrelation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := cancelProblem()
	for name, fn := range map[string]func() error{
		"FirstFitDecreasing": func() error { _, err := FirstFitDecreasing(ctx, p); return err },
		"BestFitDecreasing":  func() error { _, err := BestFitDecreasing(ctx, p); return err },
		"LeastCorrelatedFit": func() error { _, err := LeastCorrelatedFit(ctx, p); return err },
		"Exact":              func() error { _, err := Exact(ctx, p, 100000); return err },
	} {
		if err := fn(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error should wrap context.Canceled, got %v", name, err)
		}
	}
}

// TestChaosEvaluatorConcurrent drives many goroutines through the
// evaluator's singleflight cache (run under -race by the CI chaos job).
func TestChaosEvaluatorConcurrent(t *testing.T) {
	p := cancelProblem()
	ev := newEvaluator(p)
	assignments := []Assignment{
		{0, 0, 1, 1, 2, 2, 3, 3},
		{0, 0, 1, 1, 2, 2, 3, 3}, // duplicate: exercises dedup
		{0, 1, 0, 1, 0, 1, 0, 1},
		{3, 3, 3, 2, 2, 2, 1, 1},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				a := assignments[(g+i)%len(assignments)]
				if _, err := ev.evaluate(context.Background(), a); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range ev.shards {
		sh := &ev.shards[i]
		sh.mu.Lock()
		if len(sh.inflight) != 0 {
			t.Errorf("shard %d: %d in-flight entries leaked", i, len(sh.inflight))
		}
		sh.mu.Unlock()
	}
}

func TestChaosInjectedSolverError(t *testing.T) {
	p := cancelProblem()
	p.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "sim.required_capacity", Key: p.Servers[0].ID})
	_, err := Evaluate(p, Assignment{0, 0, 1, 1, 2, 2, 3, 3})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error should wrap faultinject.ErrInjected, got %v", err)
	}
	// Other servers keep working: an assignment avoiding srv 0 is fine.
	if _, err := Evaluate(p, Assignment{1, 1, 2, 2, 3, 3, 4, 4}); err != nil {
		t.Errorf("uninjected servers should evaluate, got %v", err)
	}
}

func TestChaosConsolidatePanicRecovered(t *testing.T) {
	p := cancelProblem()
	p.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		panic("injected panic for " + point)
	})
	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Consolidate(context.Background(), p, initial, DefaultGAConfig(7))
	if err == nil {
		t.Fatalf("want recovered panic error, got plan %+v", plan)
	}
	if !errors.Is(err, robust.ErrPanic) {
		t.Errorf("error should wrap robust.ErrPanic, got %v", err)
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Errorf("error should carry the panic value, got %v", err)
	}
}
