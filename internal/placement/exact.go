package placement

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Exact consolidation by branch and bound. The authors' earlier work
// solved consolidation with an Integer Linear Programming bin-packing
// formulation and found it "computationally intensive" and impractical
// for larger exercises (paper section VIII) — which motivated the
// genetic algorithm. This exact solver exists for the same reason the
// ILP did: on small instances it certifies the true minimum number of
// servers, giving the search heuristics something to be measured
// against (see TestGAMatchesExactOnSmallInstances and the ablation
// benchmarks).
//
// The search assigns applications in decreasing peak-allocation order.
// At each level an application may join any existing feasible group or
// open one new server (identical servers make further branches
// symmetric, so only one "new server" branch is explored when servers
// are interchangeable). Feasibility uses the same simulator-backed
// evaluator as every other search, so "fits" means exactly what it
// means for the GA. Branches that cannot beat the incumbent are pruned.

// ErrSearchBudget is returned when the branch-and-bound node budget is
// exhausted before the search completes; the instance is too large for
// exact solving.
var ErrSearchBudget = errors.New("placement: exact search budget exhausted")

// Exact finds an assignment using the provably minimal number of
// servers, exploring at most maxNodes branch-and-bound nodes. It
// requires identical servers (the symmetry the solver exploits).
// Cancelling ctx aborts the search between branch-and-bound nodes with
// a wrapped ctx error; a partial exact search certifies nothing, so
// there is no best-so-far result.
func Exact(ctx context.Context, p *Problem, maxNodes int) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxNodes <= 0 {
		return nil, fmt.Errorf("placement: maxNodes %d <= 0", maxNodes)
	}
	for _, s := range p.Servers[1:] {
		if s.CPUs != p.Servers[0].CPUs || s.CPUCapacity != p.Servers[0].CPUCapacity {
			return nil, errors.New("placement: exact search needs identical servers")
		}
	}

	ev := newEvaluator(p)

	// Decreasing peak order tightens the search: big items first.
	order := make([]int, len(p.Apps))
	for i := range order {
		order[i] = i
	}
	peaks := make([]float64, len(p.Apps))
	for i, a := range p.Apps {
		for j := range a.Workload.CoS1 {
			if t := a.Workload.CoS1[j] + a.Workload.CoS2[j]; t > peaks[i] {
				peaks[i] = t
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return peaks[order[i]] > peaks[order[j]] })

	s := &exactSearch{
		ctx:      ctx,
		p:        p,
		ev:       ev,
		order:    order,
		groups:   make([][]int, 0, len(p.Servers)),
		best:     len(p.Servers) + 1,
		maxNodes: maxNodes,
	}
	if err := s.explore(0); err != nil {
		return nil, err
	}
	if s.bestGroups == nil {
		return nil, ErrNoFeasible
	}

	assignment := make(Assignment, len(p.Apps))
	for srv, group := range s.bestGroups {
		for _, app := range group {
			assignment[app] = srv
		}
	}
	return ev.evaluate(ctx, assignment)
}

// exactSearch carries the branch-and-bound state.
type exactSearch struct {
	ctx        context.Context
	p          *Problem
	ev         *evaluator
	order      []int
	groups     [][]int
	best       int
	bestGroups [][]int
	nodes      int
	maxNodes   int
}

// explore assigns order[level:] recursively.
func (s *exactSearch) explore(level int) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return ErrSearchBudget
	}
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("placement: exact search: %w", err)
	}
	if len(s.groups) >= s.best {
		return nil // cannot beat the incumbent
	}
	if level == len(s.order) {
		s.best = len(s.groups)
		s.bestGroups = make([][]int, len(s.groups))
		for i, g := range s.groups {
			s.bestGroups[i] = append([]int(nil), g...)
		}
		return nil
	}
	app := s.order[level]

	// Try joining each open group.
	for gi := range s.groups {
		candidate := append(append([]int(nil), s.groups[gi]...), app)
		sort.Ints(candidate)
		usage, err := s.ev.evalServer(s.ctx, gi, candidate)
		if err != nil {
			return err
		}
		if !usage.Feasible {
			continue
		}
		saved := s.groups[gi]
		s.groups[gi] = candidate
		if err := s.explore(level + 1); err != nil {
			return err
		}
		s.groups[gi] = saved
	}

	// Open one new server (identical servers: a single branch suffices).
	if len(s.groups) < len(s.p.Servers) && len(s.groups)+1 < s.best {
		gi := len(s.groups)
		usage, err := s.ev.evalServer(s.ctx, gi, []int{app})
		if err != nil {
			return err
		}
		if usage.Feasible {
			s.groups = append(s.groups, []int{app})
			if err := s.explore(level + 1); err != nil {
				return err
			}
			s.groups = s.groups[:len(s.groups)-1]
		}
	}
	return nil
}
