package placement

import (
	"testing"
)

func TestMigrations(t *testing.T) {
	p := binPackProblem([]float64{1, 2, 3}, 3, 8)
	from := Assignment{0, 1, 2}
	to := Assignment{0, 0, 1}
	moves, err := Migrations(p, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("%d moves, want 2", len(moves))
	}
	if moves[0].AppID != "app-b" || moves[0].From != "srv-b" || moves[0].To != "srv-a" {
		t.Errorf("move 0 = %v", moves[0])
	}
	if moves[1].AppID != "app-c" || moves[1].From != "srv-c" || moves[1].To != "srv-b" {
		t.Errorf("move 1 = %v", moves[1])
	}
	if got := moves[0].String(); got != "app-b: srv-b -> srv-a" {
		t.Errorf("Move.String = %q", got)
	}

	// Identity: no moves.
	none, err := Migrations(p, from, from)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("identity produced %d moves", len(none))
	}
}

func TestMigrationsErrors(t *testing.T) {
	p := binPackProblem([]float64{1, 2}, 2, 8)
	good := Assignment{0, 1}
	if _, err := Migrations(p, Assignment{0}, good); err == nil {
		t.Error("short from accepted")
	}
	if _, err := Migrations(p, good, Assignment{0, 5}); err == nil {
		t.Error("invalid to accepted")
	}
	broken := binPackProblem([]float64{1, 2}, 2, 8)
	broken.SlotsPerDay = 0
	if _, err := Migrations(broken, good, good); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestMigrationsByServerID(t *testing.T) {
	apps := []string{"a", "b", "c"}
	fromServers := []Server{
		{ID: "s1", CPUs: 8, CPUCapacity: 1},
		{ID: "s2", CPUs: 8, CPUCapacity: 1},
	}
	// s1 fails; survivors re-indexed.
	toServers := []Server{{ID: "s2", CPUs: 8, CPUCapacity: 1}}
	from := Assignment{0, 0, 1} // a,b on s1; c on s2
	to := Assignment{0, 0, 0}   // everything on s2

	moves, err := MigrationsByServerID(apps, fromServers, from, toServers, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("%d moves, want 2 (a and b evacuate, c stays)", len(moves))
	}
	for _, m := range moves {
		if m.From != "s1" || m.To != "s2" {
			t.Errorf("unexpected move %v", m)
		}
	}
}

func TestMigrationsByServerIDErrors(t *testing.T) {
	apps := []string{"a"}
	servers := []Server{{ID: "s1", CPUs: 8, CPUCapacity: 1}}
	if _, err := MigrationsByServerID(apps, servers, Assignment{0, 0}, servers, Assignment{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MigrationsByServerID(apps, servers, Assignment{1}, servers, Assignment{0}); err == nil {
		t.Error("invalid source index accepted")
	}
	if _, err := MigrationsByServerID(apps, servers, Assignment{0}, servers, Assignment{-1}); err == nil {
		t.Error("invalid target index accepted")
	}
}
