package placement

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/topology"
)

// hierSizes is a 12-app corpus that packs perfectly into a handful of
// 10-CPU servers, so sub-pool searches converge in a few generations.
var hierSizes = []float64{6, 6, 4, 4, 3, 3, 2, 5, 5, 4, 3, 3}

// hierProblem builds a 12-app, 12-server exercise for the hierarchical
// suite (one server per app, the usual starting pool).
func hierProblem() *Problem {
	return binPackProblem(hierSizes, len(hierSizes), 10)
}

// hierGA is a fast configuration valid for every island count the suite
// uses.
func hierGA(seed int64, islands int) GAConfig {
	cfg := DefaultGAConfig(seed)
	cfg.MaxGenerations = 25
	cfg.Stagnation = 10
	cfg.Islands = islands
	return cfg
}

// hierFingerprint folds everything observable about a hierarchical plan
// into a comparable string.
func hierFingerprint(h *HierPlan) string {
	if h == nil {
		return "<nil>"
	}
	s := planFingerprint(h.Plan)
	for _, sub := range h.Partitions {
		s += fmt.Sprintf("|p%d apps=%v servers=%v rack=%q used=%d required=%b seed=%d",
			sub.Index, sub.AppIDs, sub.Servers, sub.Rack, sub.ServersUsed, sub.Required, sub.Seed)
	}
	for _, r := range h.Racks {
		s += fmt.Sprintf("|rack=%s parts=%v servers=%d", r.Rack, r.Partitions, r.Servers)
	}
	return s
}

// TestPropertyHierarchicalSinglePartitionFlat pins the compatibility
// contract: when the fleet fits in one partition, the hierarchical
// search delegates to Consolidate and the wrapped plan is byte-identical
// to the flat plan from the same seed.
func TestPropertyHierarchicalSinglePartitionFlat(t *testing.T) {
	ga := hierGA(2006, 1)
	p1 := hierProblem()
	initial, err := OneAppPerServer(p1)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Consolidate(context.Background(), p1, initial, ga)
	if err != nil {
		t.Fatal(err)
	}
	p2 := hierProblem()
	hier, err := ConsolidateHierarchical(context.Background(), p2, initial, ga,
		HierConfig{MaxApps: len(hierSizes)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat, hier.Plan) {
		t.Errorf("single-partition hierarchical diverged from flat:\n got %s\nwant %s",
			planFingerprint(hier.Plan), planFingerprint(flat))
	}
	if len(hier.Partitions) != 1 || len(hier.Partitions[0].AppIDs) != len(hierSizes) {
		t.Errorf("expected one partition covering the fleet, got %+v", hier.Partitions)
	}
}

// TestPropertyHierarchicalNeverBeatsFlat is the merge-metamorphic
// check: the partitioned search solves a strictly constrained version of
// the flat problem (apps may not co-locate across sub-pools), so it can
// never use fewer servers than the flat search from the same seed.
func TestPropertyHierarchicalNeverBeatsFlat(t *testing.T) {
	ga := hierGA(7, 1)
	p1 := hierProblem()
	initial, err := OneAppPerServer(p1)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Consolidate(context.Background(), p1, initial, ga)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxApps := range []int{3, 4, 6} {
		hier, err := ConsolidateHierarchical(context.Background(), hierProblem(), initial, ga,
			HierConfig{MaxApps: maxApps})
		if err != nil {
			t.Fatalf("maxApps=%d: %v", maxApps, err)
		}
		if !hier.Plan.Feasible {
			t.Fatalf("maxApps=%d: infeasible stitched plan", maxApps)
		}
		if hier.Plan.ServersUsed < flat.ServersUsed {
			t.Errorf("maxApps=%d: hierarchical used %d servers, flat baseline %d — partitioning cannot relax the problem",
				maxApps, hier.Plan.ServersUsed, flat.ServersUsed)
		}
	}
}

// TestChaosHierarchicalDeterminism pins the tentpole contract: the
// stitched plan is byte-identical across every combination of stitch
// workers, island counts and GOMAXPROCS.
func TestChaosHierarchicalDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, islands := range []int{1, 4} {
		var want string
		for _, workers := range []int{1, 4, 8} {
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				p := hierProblem()
				initial, err := OneAppPerServer(p)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					t.Fatal(err)
				}
				hier, err := ConsolidateHierarchical(context.Background(), p, initial,
					hierGA(2006, islands), HierConfig{MaxApps: 4, Workers: workers})
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("islands=%d workers=%d procs=%d: %v", islands, workers, procs, err)
				}
				got := hierFingerprint(hier)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("islands=%d workers=%d procs=%d diverged:\n got %s\nwant %s",
						islands, workers, procs, got, want)
				}
			}
		}
	}
}

// TestChaosHierarchicalTopologyStitch checks the rack-aware stitch:
// every partition that fits a rack is confined to it, the rack summary
// is consistent, and the stitched plan stays deterministic.
func TestChaosHierarchicalTopologyStitch(t *testing.T) {
	topo, err := topology.Synthesize(topology.GenConfig{
		Servers: len(hierSizes), Zones: 2, RacksPerZone: 2,
		ServerID: func(i int) string { return "srv-" + string(rune('a'+i)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for run := 0; run < 2; run++ {
		p := hierProblem()
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		hier, err := ConsolidateHierarchical(context.Background(), p, initial, hierGA(2006, 1),
			HierConfig{MaxApps: 4, Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		if got := hierFingerprint(hier); run == 0 {
			want = got
		} else if got != want {
			t.Errorf("topology stitch not repeatable:\n got %s\nwant %s", got, want)
		}
		if len(hier.Racks) == 0 {
			t.Fatal("no rack placements recorded")
		}
		onRack := make(map[int]string)
		for _, r := range hier.Racks {
			for _, k := range r.Partitions {
				onRack[k] = r.Rack
			}
		}
		for _, sub := range hier.Partitions {
			if sub.Rack == "" {
				continue // spanned; legal when no rack had room
			}
			if onRack[sub.Index] != sub.Rack {
				t.Errorf("partition %d reports rack %q but the rack summary says %q",
					sub.Index, sub.Rack, onRack[sub.Index])
			}
			members, err := topo.ServersIn(sub.Rack)
			if err != nil {
				t.Fatal(err)
			}
			member := make(map[string]bool, len(members))
			for _, s := range members {
				member[s] = true
			}
			for _, s := range sub.Servers {
				if !member[s] {
					t.Errorf("partition %d on rack %q holds foreign server %q", sub.Index, sub.Rack, s)
				}
			}
		}
	}
}

// TestCancelHierarchicalResume proves the per-partition journal replays
// to the same plan: a journaled run, killed at an arbitrary partition
// boundary, resumes into a plan byte-identical to an uninterrupted run.
func TestCancelHierarchicalResume(t *testing.T) {
	dir := t.TempDir()
	ga := hierGA(2006, 1)
	cfg := HierConfig{MaxApps: 4, Workers: 2}
	run := func(journal *checkpoint.Journal, ctx context.Context) (*HierPlan, error) {
		p := hierProblem()
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Journal = journal
		return ConsolidateHierarchical(ctx, p, initial, ga, c)
	}

	// Baseline: a journaled, uninterrupted run.
	path := filepath.Join(dir, "hier.journal")
	j1, err := checkpoint.Open(path, 42, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := run(j1, context.Background())
	j1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if j1.Written() != len(baseline.Partitions) {
		t.Fatalf("journaled %d partitions, want %d", j1.Written(), len(baseline.Partitions))
	}

	// Resume: every partition must replay from the journal, and the plan
	// must be byte-identical.
	j2, err := checkpoint.Open(path, 42, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := run(j2, context.Background())
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range resumed.Partitions {
		if !sub.Replayed {
			t.Errorf("partition %d was re-solved, want replay", sub.Index)
		}
	}
	want := baseline
	for i := range want.Partitions {
		want.Partitions[i].Replayed = true
	}
	if !reflect.DeepEqual(want, resumed) {
		t.Errorf("resumed plan diverged:\n got %s\nwant %s",
			hierFingerprint(resumed), hierFingerprint(want))
	}

	// Interrupted run: cancel concurrently so the run dies at an
	// arbitrary partition boundary. Whatever prefix was journaled, the
	// subsequent resume must still converge to the baseline plan.
	tornPath := filepath.Join(dir, "torn.journal")
	j3, err := checkpoint.Open(tornPath, 42, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	torn, terr := run(j3, ctx)
	timer.Stop()
	cancel()
	j3.Close()
	if terr != nil && !errors.Is(terr, context.Canceled) {
		t.Fatalf("interrupted run failed for a non-cancellation reason: %v", terr)
	}
	if terr == nil && !reflect.DeepEqual(baseline, torn) {
		// The cancel landed after the last partition: a complete run must
		// still be byte-identical.
		t.Errorf("uncancelled run diverged:\n got %s\nwant %s",
			hierFingerprint(torn), hierFingerprint(baseline))
	}
	j4, err := checkpoint.Open(tornPath, 42, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	final, err := run(j4, context.Background())
	j4.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := planFingerprint(final.Plan), planFingerprint(baseline.Plan); got != want {
		t.Errorf("post-interrupt resume diverged:\n got %s\nwant %s", got, want)
	}
}

// TestHierarchicalValidation covers the hierarchical-specific input
// checks.
func TestHierarchicalValidation(t *testing.T) {
	ga := hierGA(1, 1)
	p := hierProblem()
	initial, err := OneAppPerServer(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConsolidateHierarchical(context.Background(), hierProblem(), initial, ga,
		HierConfig{MaxApps: 0}); err == nil {
		t.Error("MaxApps 0 accepted")
	}
	if _, err := ConsolidateHierarchical(context.Background(), hierProblem(), initial, ga,
		HierConfig{MaxApps: 4, Buckets: -1}); err == nil {
		t.Error("negative Buckets accepted")
	}
	mixed := hierProblem()
	mixed.Servers[3].CPUs = 32
	if _, err := ConsolidateHierarchical(context.Background(), mixed, initial, ga,
		HierConfig{MaxApps: 4}); err == nil {
		t.Error("non-uniform server shapes accepted")
	}
}

// TestHierarchicalSharedCacheIdentical pins that the shared simulation
// cache does not change the stitched plan: cached and uncached runs are
// byte-identical (the cache is keyed by content, and sub-pool servers
// share the pool's shape).
func TestHierarchicalSharedCacheIdentical(t *testing.T) {
	ga := hierGA(13, 1)
	cfg := HierConfig{MaxApps: 4}
	var plans []*HierPlan
	for _, cache := range []*SimCache{nil, NewSimCache(0)} {
		p := hierProblem()
		p.Cache = cache
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		hier, err := ConsolidateHierarchical(context.Background(), p, initial, ga, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, hier)
	}
	if got, want := hierFingerprint(plans[1]), hierFingerprint(plans[0]); got != want {
		t.Errorf("cached run diverged:\n got %s\nwant %s", got, want)
	}
}
