package placement

import (
	"context"
	"errors"
	"testing"
)

func TestExactOptimalBinPacking(t *testing.T) {
	// Sizes with a known optimum of 3 servers of capacity 10.
	p := binPackProblem([]float64{6, 6, 4, 4, 3, 3, 2}, 7, 10)
	plan, err := Exact(context.Background(), p, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("exact plan infeasible")
	}
	if plan.ServersUsed != 3 {
		t.Errorf("ServersUsed = %d, want the optimum 3", plan.ServersUsed)
	}
}

func TestExactSingleServer(t *testing.T) {
	p := binPackProblem([]float64{2, 3, 4}, 3, 10)
	plan, err := Exact(context.Background(), p, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ServersUsed != 1 {
		t.Errorf("ServersUsed = %d, want 1", plan.ServersUsed)
	}
}

func TestExactInfeasible(t *testing.T) {
	p := binPackProblem([]float64{20}, 1, 10)
	_, err := Exact(context.Background(), p, 10000)
	if !errors.Is(err, ErrNoFeasible) {
		t.Errorf("err = %v, want ErrNoFeasible", err)
	}
}

func TestExactBudgetExhausted(t *testing.T) {
	p := binPackProblem([]float64{6, 6, 4, 4, 3, 3, 2}, 7, 10)
	_, err := Exact(context.Background(), p, 3)
	if !errors.Is(err, ErrSearchBudget) {
		t.Errorf("err = %v, want ErrSearchBudget", err)
	}
}

func TestExactArgumentErrors(t *testing.T) {
	p := binPackProblem([]float64{1}, 1, 10)
	if _, err := Exact(context.Background(), p, 0); err == nil {
		t.Error("zero budget accepted")
	}
	hetero := binPackProblem([]float64{1, 2}, 2, 10)
	hetero.Servers[1].CPUs = 4
	if _, err := Exact(context.Background(), hetero, 100); err == nil {
		t.Error("heterogeneous servers accepted")
	}
	broken := binPackProblem([]float64{1}, 1, 10)
	broken.SlotsPerDay = 0
	if _, err := Exact(context.Background(), broken, 100); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestGAMatchesExactOnSmallInstances(t *testing.T) {
	// On small instances the GA (greedy-seeded) should reach the
	// certified optimum.
	cases := [][]float64{
		{6, 6, 4, 4, 3, 3, 2},
		{5, 5, 5, 5},
		{9, 8, 2, 1},
		{3, 3, 3, 3, 3, 3},
	}
	for i, sizes := range cases {
		p := binPackProblem(sizes, len(sizes), 10)
		exact, err := Exact(context.Background(), p, 500000)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		initial, err := OneAppPerServer(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultGAConfig(int64(i + 1))
		cfg.MaxGenerations = 120
		ga, err := Consolidate(context.Background(), p, initial, cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if ga.ServersUsed != exact.ServersUsed {
			t.Errorf("case %d: GA %d servers vs exact optimum %d",
				i, ga.ServersUsed, exact.ServersUsed)
		}
	}
}
