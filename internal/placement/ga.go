package placement

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"ropus/internal/robust"
	"ropus/internal/telemetry"
)

// ErrNoFeasible is returned by Consolidate when no assignment satisfying
// the commitments was found; callers (notably the failure planner) match
// it with errors.Is to distinguish "does not fit" from invalid input.
var ErrNoFeasible = errors.New("placement: no feasible assignment found")

// GAConfig tunes the genetic search (paper Figure 5). The zero value is
// not usable; start from DefaultGAConfig.
type GAConfig struct {
	// PopulationSize is the number of assignments per generation.
	PopulationSize int
	// MaxGenerations bounds the search.
	MaxGenerations int
	// Stagnation stops the search after this many generations without
	// score improvement ("little improvement" in Figure 5).
	Stagnation int
	// Elite is the number of best assignments copied unchanged into the
	// next generation.
	Elite int
	// TournamentK is the tournament size for parent selection.
	TournamentK int
	// MutationRate is the per-offspring probability of applying a
	// mutation (either emptying a server or moving a single app).
	MutationRate float64
	// SeedGreedy adds the first-fit-decreasing and best-fit-decreasing
	// packings to the initial population as warm starts; the search can
	// only improve on them.
	SeedGreedy bool
	// Seed makes the search deterministic.
	Seed int64
	// Islands splits the population into this many subpopulations that
	// evolve independently (each on its own deterministically derived
	// RNG) and exchange their best member around a ring every
	// MigrationInterval generations. 0 or 1 runs the classic
	// single-population search, bit-for-bit identical to earlier
	// releases; any value is byte-deterministic per (Seed, Islands)
	// regardless of how many worker goroutines evaluate offspring.
	Islands int
	// MigrationInterval is the number of generations between ring
	// migrations when Islands > 1; 0 selects DefaultMigrationInterval.
	MigrationInterval int
	// TimeBudget bounds the search's wall-clock time; when it elapses the
	// search stops at the next generation boundary and returns its best
	// plan so far, flagged Truncated. Zero means no budget.
	TimeBudget time.Duration
}

// DefaultGAConfig returns the configuration used for the case study.
func DefaultGAConfig(seed int64) GAConfig {
	return GAConfig{
		PopulationSize: 32,
		MaxGenerations: 250,
		Stagnation:     40,
		Elite:          2,
		TournamentK:    3,
		MutationRate:   0.9,
		SeedGreedy:     true,
		Seed:           seed,
	}
}

// Validate checks the GA parameters.
func (c GAConfig) Validate() error {
	switch {
	case c.PopulationSize < 2:
		return fmt.Errorf("placement: PopulationSize %d < 2", c.PopulationSize)
	case c.MaxGenerations < 1:
		return fmt.Errorf("placement: MaxGenerations %d < 1", c.MaxGenerations)
	case c.Stagnation < 1:
		return fmt.Errorf("placement: Stagnation %d < 1", c.Stagnation)
	case c.Elite < 0 || c.Elite >= c.PopulationSize:
		return fmt.Errorf("placement: Elite %d outside [0,%d)", c.Elite, c.PopulationSize)
	case c.TournamentK < 1:
		return fmt.Errorf("placement: TournamentK %d < 1", c.TournamentK)
	case c.TournamentK > c.PopulationSize:
		return fmt.Errorf("placement: TournamentK %d > PopulationSize %d", c.TournamentK, c.PopulationSize)
	// Negated-range form so that a NaN rate is rejected too.
	case !(c.MutationRate >= 0 && c.MutationRate <= 1):
		return fmt.Errorf("placement: MutationRate %v outside [0,1]", c.MutationRate)
	case c.TimeBudget < 0:
		return fmt.Errorf("placement: TimeBudget %v < 0", c.TimeBudget)
	case c.Islands < 0:
		return fmt.Errorf("placement: Islands %d < 0", c.Islands)
	case c.MigrationInterval < 0:
		return fmt.Errorf("placement: MigrationInterval %d < 0", c.MigrationInterval)
	}
	if c.Islands > 1 {
		// Every island must be able to run the same tournament/elite
		// machinery on its share of the population.
		smallest := c.PopulationSize / c.Islands
		switch {
		case smallest < 2:
			return fmt.Errorf("placement: PopulationSize %d splits below 2 members across %d islands", c.PopulationSize, c.Islands)
		case c.Elite >= smallest:
			return fmt.Errorf("placement: Elite %d >= island population %d", c.Elite, smallest)
		case c.TournamentK > smallest:
			return fmt.Errorf("placement: TournamentK %d > island population %d", c.TournamentK, smallest)
		}
	}
	return nil
}

// Consolidate runs the genetic search from the given initial assignment
// and returns the best feasible plan found. It returns an error if no
// feasible assignment is discovered (including the initial one).
//
// Cancellation degrades gracefully: ctx is checked at every generation
// boundary (and by the parallel offspring evaluations), and a cancelled
// or over-budget search returns its best feasible plan so far with
// Plan.Truncated set and a nil error. Only when cancellation strikes
// before any feasible plan exists does Consolidate return an error. The
// initial population is always evaluated to completion (detached from
// ctx's cancellation) so that a given seed yields the same best-so-far
// plan no matter when the cancel lands.
//
// With cfg.Islands > 1 the search runs the deterministic island model
// (see islands.go): the population is split into subpopulations that
// evolve independently and trade their best member around a ring every
// MigrationInterval generations. Islands <= 1 runs the classic
// single-population loop below, unchanged.
func Consolidate(ctx context.Context, p *Problem, initial Assignment, cfg GAConfig) (plan *Plan, err error) {
	defer robust.Recover("placement.Consolidate", &err)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := initial.Validate(p); err != nil {
		return nil, err
	}
	if cfg.Islands > 1 {
		return consolidateIslands(ctx, p, initial, cfg)
	}
	return consolidateSingle(ctx, p, initial, cfg)
}

// consolidateSingle is the classic single-population genetic search; its
// RNG consumption order is pinned by the deterministic golden tests and
// must not change.
func consolidateSingle(ctx context.Context, p *Problem, initial Assignment, cfg GAConfig) (plan *Plan, err error) {
	h := telemetry.OrNop(p.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, p.Hooks, "placement.consolidate",
		telemetry.Int("apps", len(p.Apps)),
		telemetry.Int("servers", len(p.Servers)),
		telemetry.Int("population", cfg.PopulationSize))
	defer span.End()
	var (
		generations = h.Counter("ga_generations_total")
		crossovers  = h.Counter("ga_crossovers_total")
		mutations   = h.Counter("ga_mutations_total")
		offspringC  = h.Counter("ga_offspring_evaluated_total")
		truncatedC  = h.Counter("ga_truncated_total")
		bestScore   = h.Gauge("ga_best_score")
		meanScore   = h.Gauge("ga_mean_score")
		bestServers = h.Gauge("ga_best_feasible_servers")
		staleGauge  = h.Gauge("ga_stagnation_generations")
		genSeconds  = h.Histogram("ga_generation_seconds", nil)
	)

	rng := rand.New(rand.NewSource(cfg.Seed))
	ev := newEvaluator(p)

	var deadline time.Time
	if cfg.TimeBudget > 0 {
		deadline = time.Now().Add(cfg.TimeBudget)
	}
	// The initial population is evaluated detached from cancellation:
	// it is the floor every truncated search can still return, and
	// keeping it complete makes best-so-far deterministic per seed.
	seedCtx := context.WithoutCancel(ctx)

	// Seed the population with the initial assignment, optional greedy
	// packings, and mutated copies of the initial assignment.
	pop := make([]*Plan, 0, cfg.PopulationSize)
	first, err := ev.evaluate(seedCtx, initial)
	if err != nil {
		return nil, err
	}
	pop = append(pop, first)
	if cfg.SeedGreedy {
		for _, greedyFn := range []func(context.Context, *Problem) (*Plan, error){FirstFitDecreasing, BestFitDecreasing} {
			plan, err := greedyFn(seedCtx, p)
			if err != nil {
				continue // a greedy failure just means no warm start
			}
			// Re-evaluate through this run's evaluator so the plan
			// shares its cache and tolerance.
			seeded, err := ev.evaluate(seedCtx, plan.Assignment)
			if err != nil {
				return nil, err
			}
			pop = append(pop, seeded)
		}
	}
	for len(pop) < cfg.PopulationSize {
		a := initial.Clone()
		mutate(a, p, rng)
		plan, err := ev.evaluate(seedCtx, a)
		if err != nil {
			return nil, err
		}
		pop = append(pop, plan)
	}
	sortPopulation(pop)

	best := bestFeasible(pop)
	stale := 0
	ran := 0
	truncated := false
	for gen := 0; gen < cfg.MaxGenerations && stale < cfg.Stagnation; gen++ {
		// Cheap per-generation degradation check: a cancelled context or
		// an exhausted time budget stops the search at this boundary with
		// whatever has been found so far.
		if ctx.Err() != nil || (!deadline.IsZero() && !time.Now().Before(deadline)) {
			truncated = true
			break
		}
		genStart := time.Now()
		next := make([]*Plan, 0, cfg.PopulationSize)
		for i := 0; i < cfg.Elite && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		// Breed serially (the RNG is not safe for concurrent use), then
		// evaluate the offspring in parallel: the simulator replays are
		// the expensive part and are independent of each other.
		offspring := make([]Assignment, 0, cfg.PopulationSize-len(next))
		for len(next)+len(offspring) < cfg.PopulationSize {
			a := crossover(tournament(pop, cfg.TournamentK, rng).Assignment,
				tournament(pop, cfg.TournamentK, rng).Assignment, rng)
			crossovers.Inc()
			if rng.Float64() < cfg.MutationRate {
				mutate(a, p, rng)
				mutations.Inc()
			}
			offspring = append(offspring, a)
		}
		plans, err := evaluateAll(ctx, ev, offspring, 0)
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation mid-generation: discard the partial
				// generation and fall back to the best completed one.
				truncated = true
				break
			}
			return nil, err
		}
		pop = append(next, plans...)
		sortPopulation(pop)

		if cand := bestFeasible(pop); cand != nil && (best == nil || cand.Score > best.Score+1e-12) {
			best = cand
			stale = 0
		} else {
			stale++
		}
		ran++

		generations.Inc()
		offspringC.Add(int64(len(plans)))
		staleGauge.Set(float64(stale))
		meanScore.Set(meanPlanScore(pop))
		if best != nil {
			bestScore.Set(best.Score)
			bestServers.Set(float64(best.ServersUsed))
		}
		genSeconds.Observe(time.Since(genStart).Seconds())
	}
	span.SetAttr(telemetry.Int("generations", ran),
		telemetry.Bool("feasible", best != nil),
		telemetry.Bool("truncated", truncated))
	if best == nil {
		if truncated {
			cause := ctx.Err()
			if cause == nil {
				cause = context.DeadlineExceeded // time budget elapsed
			}
			return nil, fmt.Errorf("placement: consolidation cancelled after %d generations with no feasible plan: %w", ran, cause)
		}
		return nil, fmt.Errorf("%w after %d generations", ErrNoFeasible, cfg.MaxGenerations)
	}
	if truncated {
		truncatedC.Inc()
		// Copy before flagging: best may alias a population member that
		// the evaluator's cache or the caller's initial plan shares.
		partial := *best
		partial.Truncated = true
		best = &partial
	}
	span.SetAttr(telemetry.Int("servers_used", best.ServersUsed), telemetry.Float("score", best.Score))
	return best, nil
}

// meanPlanScore returns the population's mean consolidation score.
func meanPlanScore(pop []*Plan) float64 {
	if len(pop) == 0 {
		return 0
	}
	sum := 0.0
	for _, plan := range pop {
		sum += plan.Score
	}
	return sum / float64(len(pop))
}

// evaluateAll evaluates assignments concurrently, preserving order.
// workers <= 0 selects GOMAXPROCS (island epochs pass their share of the
// cores instead); the evaluator's cache is shared and thread-safe, so
// duplicate groupings are still computed only ~once, and because every
// evaluation is a pure content-keyed function the results are identical
// at any worker count.
func evaluateAll(ctx context.Context, ev *evaluator, assignments []Assignment, workers int) ([]*Plan, error) {
	plans := make([]*Plan, len(assignments))
	errs := make([]error, len(assignments))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(assignments) {
		workers = len(assignments)
	}
	if workers <= 1 {
		for i, a := range assignments {
			plan, err := ev.evaluate(ctx, a)
			if err != nil {
				return nil, err
			}
			plans[i] = plan
		}
		return plans, nil
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				plans[i], errs[i] = ev.evaluate(ctx, assignments[i])
			}
		}()
	}
	for i := range assignments {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plans, nil
}

// sortPopulation orders plans best-score-first, breaking ties in favour
// of feasible plans and fewer servers.
func sortPopulation(pop []*Plan) {
	sort.SliceStable(pop, func(i, j int) bool {
		if pop[i].Feasible != pop[j].Feasible {
			return pop[i].Feasible
		}
		if pop[i].Score != pop[j].Score {
			return pop[i].Score > pop[j].Score
		}
		return pop[i].ServersUsed < pop[j].ServersUsed
	})
}

// bestFeasible returns the best feasible plan in a sorted population.
func bestFeasible(pop []*Plan) *Plan {
	for _, plan := range pop {
		if plan.Feasible {
			return plan
		}
	}
	return nil
}

// tournament picks the best of k random population members.
func tournament(pop []*Plan, k int, rng *rand.Rand) *Plan {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		if cand := pop[rng.Intn(len(pop))]; better(cand, best) {
			best = cand
		}
	}
	return best
}

// better orders two plans the same way as sortPopulation.
func better(a, b *Plan) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Score > b.Score
}

// crossover mates two assignments: each application inherits its server
// from one parent at random (the paper's "straightforward" cross-over).
func crossover(a, b Assignment, rng *rand.Rand) Assignment {
	child := make(Assignment, len(a))
	for i := range child {
		if rng.Intn(2) == 0 {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	return child
}

// mutate perturbs an assignment. Most of the time it empties one used
// server, migrating its applications to other used servers, so the step
// tends to reduce the number of servers in use by one (per the paper);
// the rest of the time it moves a single application, giving the search
// a fine-grained repair move for nearly-feasible packings.
func mutate(a Assignment, p *Problem, rng *rand.Rand) {
	if rng.Float64() < 0.4 {
		moveOneApp(a, p, rng)
		return
	}
	emptyOneServer(a, p, rng)
}

// moveOneApp reassigns one random application to another server that is
// currently in use (or any server when only one is used).
func moveOneApp(a Assignment, p *Problem, rng *rand.Rand) {
	if len(a) == 0 {
		return
	}
	app := rng.Intn(len(a))
	groups := groupByServer(a, len(p.Servers))
	var used []int
	for s, g := range groups {
		if len(g) > 0 && s != a[app] {
			used = append(used, s)
		}
	}
	if len(used) == 0 {
		a[app] = rng.Intn(len(p.Servers))
		return
	}
	a[app] = used[rng.Intn(len(used))]
}

// emptyOneServer migrates every application off one donor server.
func emptyOneServer(a Assignment, p *Problem, rng *rand.Rand) {
	groups := groupByServer(a, len(p.Servers))
	var used []int
	for s, g := range groups {
		if len(g) > 0 {
			used = append(used, s)
		}
	}
	if len(used) < 2 {
		// A single used server: migrate one random app to a random
		// server to keep the search moving.
		if len(a) > 1 {
			a[rng.Intn(len(a))] = rng.Intn(len(p.Servers))
		}
		return
	}
	// Weight donors by how lightly loaded they are (few apps => likely
	// donor), a cheap stand-in for 1 - f(U) that needs no simulation.
	weights := make([]float64, len(used))
	total := 0.0
	for i, s := range used {
		w := 1 / float64(len(groups[s]))
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	donor := used[len(used)-1]
	for i, w := range weights {
		if r < w {
			donor = used[i]
			break
		}
		r -= w
	}
	// Migrate every app on the donor to another used server.
	for _, app := range groups[donor] {
		dest := donor
		for dest == donor {
			dest = used[rng.Intn(len(used))]
		}
		a[app] = dest
	}
}
