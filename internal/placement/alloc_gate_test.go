package placement

import (
	"context"
	"runtime"
	"testing"
)

// TestConsolidateAllocBudget is the allocation gate for the
// consolidation path: a small search must stay within a fixed
// allocation budget. The ceilings sit ~2x above the measured counts
// (~11k single-population, ~14k islands on a warm sim cache), so GA
// trajectory noise passes but an accidental per-slot or per-offspring
// allocation — which multiplies counts by orders of magnitude — fails.
func TestConsolidateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate is timing-adjacent")
	}
	prev := runtime.GOMAXPROCS(1) // keep goroutine scratch out of the count
	defer runtime.GOMAXPROCS(prev)
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	initial := make(Assignment, len(sizes))
	for _, tc := range []struct {
		islands int
		budget  float64
	}{
		{0, 25_000},
		{4, 35_000},
	} {
		p := binPackProblem(sizes, 7, 10)
		cfg := islandGA(11, tc.islands)
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := Consolidate(context.Background(), p, initial, cfg); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("islands=%d allocs=%v", tc.islands, allocs)
		if allocs > tc.budget {
			t.Errorf("islands=%d: Consolidate allocates %.0f objects per run, budget %.0f", tc.islands, allocs, tc.budget)
		}
	}
}
