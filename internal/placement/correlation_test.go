package placement

import (
	"context"
	"math"
	"testing"
	"time"

	"ropus/internal/qos"
	"ropus/internal/sim"
	"ropus/internal/stats"
)

// phaseApp builds an app whose demand alternates between lo and hi with
// the given phase, so apps with opposite phases are anti-correlated.
func phaseApp(id string, lo, hi float64, phase, slots int) App {
	c2 := make([]float64, slots)
	for i := range c2 {
		if (i+phase)%2 == 0 {
			c2[i] = hi
		} else {
			c2[i] = lo
		}
	}
	return App{ID: id, Workload: sim.Workload{AppID: id, CoS1: make([]float64, slots), CoS2: c2}}
}

func TestLeastCorrelatedFitPairsOpposites(t *testing.T) {
	// Four alternating apps, two in each phase, demand 1..5. Capacity 7
	// admits one of each phase per server (peak 5+1=6) but not two of
	// the same phase (5+5=10). The correlation heuristic pairs
	// opposites without backtracking.
	slots := 28
	apps := []App{
		phaseApp("a", 1, 5, 0, slots),
		phaseApp("b", 1, 5, 0, slots),
		phaseApp("c", 1, 5, 1, slots),
		phaseApp("d", 1, 5, 1, slots),
	}
	p := &Problem{
		Apps:          apps,
		Servers:       servers(4, 7),
		Commitment:    qos.PoolCommitment{Theta: 0.99, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 0,
		Tolerance:     0.01,
	}
	plan, err := LeastCorrelatedFit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("plan infeasible")
	}
	if plan.ServersUsed != 2 {
		t.Fatalf("ServersUsed = %d, want 2 (one pair of opposite phases per server)", plan.ServersUsed)
	}
	// Each used server must host one phase-0 and one phase-1 app.
	for _, usage := range plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		if len(usage.AppIDs) != 2 {
			t.Fatalf("server hosts %v, want exactly 2 apps", usage.AppIDs)
		}
		phase0 := 0
		for _, id := range usage.AppIDs {
			if id == "a" || id == "b" {
				phase0++
			}
		}
		if phase0 != 1 {
			t.Errorf("server hosts %v: phases not mixed", usage.AppIDs)
		}
	}
}

func TestLeastCorrelatedFitImpossible(t *testing.T) {
	p := binPackProblem([]float64{20}, 1, 10)
	if _, err := LeastCorrelatedFit(context.Background(), p); err == nil {
		t.Error("oversized app accepted")
	}
	broken := binPackProblem([]float64{1}, 1, 10)
	broken.SlotsPerDay = 0
	if _, err := LeastCorrelatedFit(context.Background(), broken); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestLeastCorrelatedFitPlainBinPacking(t *testing.T) {
	// On flat (zero-variance) workloads correlation is defined as 0, so
	// the heuristic degenerates to a feasible greedy packing.
	p := binPackProblem([]float64{6, 6, 4, 4, 3, 3, 2}, 7, 10)
	plan, err := LeastCorrelatedFit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("plan infeasible")
	}
	if plan.ServersUsed > 4 {
		t.Errorf("ServersUsed = %d, want <= 4", plan.ServersUsed)
	}
}

func TestCorrelationHelperViaPlacementShapes(t *testing.T) {
	a := phaseApp("a", 0, 1, 0, 8).Workload.CoS2
	b := phaseApp("b", 0, 1, 1, 8).Workload.CoS2
	if corr := mustCorr(t, a, a); math.Abs(corr-1) > 1e-12 {
		t.Errorf("self correlation = %v, want 1", corr)
	}
	if corr := mustCorr(t, a, b); math.Abs(corr+1) > 1e-12 {
		t.Errorf("opposite-phase correlation = %v, want -1", corr)
	}
}

func mustCorr(t *testing.T, a, b []float64) float64 {
	t.Helper()
	c, err := stats.Correlation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
