package placement

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"ropus/internal/telemetry"
)

// islandGA is a small, fast configuration that is valid for every
// island count the suite exercises (32/8 = 4 members per island, which
// still clears Elite 2 and TournamentK 3).
func islandGA(seed int64, islands int) GAConfig {
	cfg := DefaultGAConfig(seed)
	cfg.MaxGenerations = 30
	cfg.Stagnation = 12
	cfg.Islands = islands
	return cfg
}

// planFingerprint folds everything observable about a plan into a
// comparable string, so "byte-identical" failures print both sides.
func planFingerprint(p *Plan) string {
	if p == nil {
		return "<nil>"
	}
	return fmt.Sprintf("assign=%v score=%b servers=%d required=%b feasible=%v truncated=%v",
		p.Assignment, p.Score, p.ServersUsed, p.RequiredTotal, p.Feasible, p.Truncated)
}

// TestIslandsDeterministicAcrossWorkers pins the island-model contract:
// for every island count, the returned plan is byte-identical per
// (Seed, Islands) no matter how many worker goroutines evaluate
// offspring. GOMAXPROCS is the worker count every internal split
// derives from, so varying it varies both the island dispatch width and
// the per-island evaluation parallelism.
func TestIslandsDeterministicAcrossWorkers(t *testing.T) {
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	initial := make(Assignment, len(sizes))
	for i := range initial {
		initial[i] = i
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, islands := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("islands=%d", islands), func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 2, 4} {
				runtime.GOMAXPROCS(workers)
				p := binPackProblem(sizes, 7, 10)
				plan, err := Consolidate(context.Background(), p, initial, islandGA(11, islands))
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := planFingerprint(plan)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d diverged:\n got %s\nwant %s", workers, got, want)
				}
			}
		})
	}
}

// TestIslandsDeterministicRepeat re-runs the same (seed, islands)
// search on a fresh problem and expects the identical plan, including
// with a migration every generation (MigrationInterval 1, the most
// barrier-heavy schedule).
func TestIslandsDeterministicRepeat(t *testing.T) {
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	initial := make(Assignment, len(sizes))
	for _, interval := range []int{0, 1, 3} {
		cfg := islandGA(23, 4)
		cfg.MigrationInterval = interval
		var want string
		for run := 0; run < 2; run++ {
			p := binPackProblem(sizes, 7, 10)
			plan, err := Consolidate(context.Background(), p, initial, cfg)
			if err != nil {
				t.Fatalf("interval=%d run=%d: %v", interval, run, err)
			}
			got := planFingerprint(plan)
			if run == 0 {
				want = got
			} else if got != want {
				t.Errorf("interval=%d not repeatable:\n got %s\nwant %s", interval, got, want)
			}
		}
	}
}

// TestIslandsOneMatchesSingle pins that Islands=1 (and 0) run the
// classic single-population search: all three spellings return the
// byte-identical plan.
func TestIslandsOneMatchesSingle(t *testing.T) {
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	initial := make(Assignment, len(sizes))
	var want string
	for _, islands := range []int{0, 1} {
		p := binPackProblem(sizes, 7, 10)
		plan, err := Consolidate(context.Background(), p, initial, islandGA(7, islands))
		if err != nil {
			t.Fatalf("islands=%d: %v", islands, err)
		}
		got := planFingerprint(plan)
		if islands == 0 {
			want = got
		} else if got != want {
			t.Errorf("islands=1 diverged from the single-population search:\n got %s\nwant %s", got, want)
		}
	}
}

// TestIslandsImproveOnGreedy checks the search still does its job under
// the island model: the greedy warm start (3 servers for this perfect
// packing) is never lost, because island 0 is seeded with it and
// migration only spreads good plans.
func TestIslandsImproveOnGreedy(t *testing.T) {
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	initial := make(Assignment, len(sizes))
	p := binPackProblem(sizes, 7, 10)
	plan, err := Consolidate(context.Background(), p, initial, islandGA(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("island search returned infeasible plan")
	}
	if plan.ServersUsed > 3 {
		t.Errorf("ServersUsed = %d, want <= 3 (the greedy warm start)", plan.ServersUsed)
	}
	if err := plan.Assignment.Validate(p); err != nil {
		t.Errorf("returned assignment invalid: %v", err)
	}
}

// TestIslandsTelemetry checks the island counters: the gauge reports
// the island count and ring migrations actually happen.
func TestIslandsTelemetry(t *testing.T) {
	sizes := []float64{6, 6, 4, 4, 3, 3, 2}
	initial := make(Assignment, len(sizes))
	p := binPackProblem(sizes, 7, 10)
	reg := telemetry.NewRegistry()
	p.Hooks = telemetry.New(reg, nil)
	cfg := islandGA(5, 4)
	cfg.MigrationInterval = 2
	if _, err := Consolidate(context.Background(), p, initial, cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("ga_islands").Value(); got != 4 {
		t.Errorf("ga_islands = %v, want 4", got)
	}
	if reg.Counter("ga_migrations_total").Value() == 0 {
		t.Error("no ring migrations recorded")
	}
	if reg.Counter("ga_generations_total").Value() == 0 {
		t.Error("no generations recorded")
	}
}

// TestIslandsValidate covers the island-specific configuration checks.
func TestIslandsValidate(t *testing.T) {
	base := DefaultGAConfig(1)
	cases := []struct {
		name   string
		mutate func(*GAConfig)
		ok     bool
	}{
		{"zero islands", func(c *GAConfig) { c.Islands = 0 }, true},
		{"one island", func(c *GAConfig) { c.Islands = 1 }, true},
		{"negative islands", func(c *GAConfig) { c.Islands = -1 }, false},
		{"negative interval", func(c *GAConfig) { c.Islands = 2; c.MigrationInterval = -1 }, false},
		{"population splits below 2", func(c *GAConfig) { c.PopulationSize = 8; c.Islands = 8; c.Elite = 0 }, false},
		{"elite eats an island", func(c *GAConfig) { c.PopulationSize = 8; c.Islands = 4; c.Elite = 2 }, false},
		{"tournament exceeds island", func(c *GAConfig) { c.PopulationSize = 8; c.Islands = 4; c.Elite = 1; c.TournamentK = 3 }, false},
		{"eight islands of four", func(c *GAConfig) { c.PopulationSize = 32; c.Islands = 8 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}
