package placement

import (
	"context"
	"fmt"
	"sort"

	"ropus/internal/stats"
)

// Correlation-aware placement. The paper's related-work discussion
// (section VIII) suggests that "heuristic search approaches that also
// take into account correlations in resource demands among workloads
// may also be worth exploring": two workloads whose demands peak
// together multiplex poorly, while anti-correlated workloads share
// capacity well. LeastCorrelatedFit implements that idea as a greedy
// heuristic, giving the repository a third baseline to compare against
// the genetic search (see BenchmarkAblationPlacementSearch).

// LeastCorrelatedFit places applications in order of decreasing peak
// allocation; each application goes to the feasible *used* server whose
// current occupants' aggregate demand correlates least with the
// application's demand (the most anti-correlated home). A new server is
// opened only when no used server can host the application, so
// consolidation still comes first and correlation decides between
// feasible homes — the multiplexing intuition without over-spreading.
func LeastCorrelatedFit(ctx context.Context, p *Problem) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := newEvaluator(p)

	// Total per-slot allocation per app, reused for correlations.
	totals := make([][]float64, len(p.Apps))
	peaks := make([]float64, len(p.Apps))
	for i, a := range p.Apps {
		tot := make([]float64, len(a.Workload.CoS1))
		peak := 0.0
		for j := range tot {
			tot[j] = a.Workload.CoS1[j] + a.Workload.CoS2[j]
			if tot[j] > peak {
				peak = tot[j]
			}
		}
		totals[i] = tot
		peaks[i] = peak
	}

	order := make([]int, len(p.Apps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return peaks[order[i]] > peaks[order[j]] })

	groups := make([][]int, len(p.Servers))
	serverTotals := make([][]float64, len(p.Servers))
	assignment := make(Assignment, len(p.Apps))

	for _, app := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("placement: least-correlated fit: %w", err)
		}
		bestServer := -1
		bestCorr := 0.0
		firstEmpty := -1
		for s := range p.Servers {
			if len(groups[s]) == 0 {
				if firstEmpty < 0 {
					firstEmpty = s
				}
				continue // new servers only as a last resort
			}
			group := append(append([]int(nil), groups[s]...), app)
			sort.Ints(group)
			usage, err := ev.evalServer(ctx, s, group)
			if err != nil {
				return nil, err
			}
			if !usage.Feasible {
				continue
			}
			corr, err := stats.Correlation(serverTotals[s], totals[app])
			if err != nil {
				return nil, err
			}
			if bestServer < 0 || corr < bestCorr {
				bestServer = s
				bestCorr = corr
			}
		}
		if bestServer < 0 && firstEmpty >= 0 {
			usage, err := ev.evalServer(ctx, firstEmpty, []int{app})
			if err != nil {
				return nil, err
			}
			if usage.Feasible {
				bestServer = firstEmpty
			}
		}
		if bestServer < 0 {
			return nil, fmt.Errorf("placement: app %q fits on no server", p.Apps[app].ID)
		}
		groups[bestServer] = append(groups[bestServer], app)
		sort.Ints(groups[bestServer])
		if serverTotals[bestServer] == nil {
			serverTotals[bestServer] = make([]float64, len(totals[app]))
		}
		for j, v := range totals[app] {
			serverTotals[bestServer][j] += v
		}
		assignment[app] = bestServer
	}
	return ev.evaluate(ctx, assignment)
}
