// Package pool simulates an entire consolidated resource pool through a
// server failure: the performability side of R-Opus, evaluated in the
// time domain rather than by feasibility checks alone.
//
// The failure planner (package failure) answers "can the affected
// applications be re-placed?"; this package answers "what do users of
// those applications experience between the failure and the completed
// migration?". Each server runs the workload-manager discipline of
// package wlmgr; at the failure slot the failed server's capacity drops
// to zero, and after the migration delay its containers resume on the
// servers the failure scenario assigned them to.
package pool

import (
	"errors"
	"fmt"
	"time"

	"ropus/internal/portfolio"
	"ropus/internal/trace"
)

// App couples an application's demand trace with its normal-mode and
// failure-mode translations.
type App struct {
	Demand  *trace.Trace
	Normal  *portfolio.Partition
	Failure *portfolio.Partition
}

// Validate checks the app's consistency.
func (a App) Validate() error {
	if a.Demand == nil || a.Normal == nil || a.Failure == nil {
		return errors.New("pool: app needs demand, normal and failure partitions")
	}
	if err := a.Demand.Validate(); err != nil {
		return err
	}
	if a.Normal.AppID != a.Demand.AppID || a.Failure.AppID != a.Demand.AppID {
		return fmt.Errorf("pool: app %q has mismatched partitions", a.Demand.AppID)
	}
	if a.Normal.CoS1.Len() != a.Demand.Len() || a.Failure.CoS1.Len() != a.Demand.Len() {
		return fmt.Errorf("pool: app %q has misaligned partitions", a.Demand.AppID)
	}
	return nil
}

// Scenario describes the failure event to simulate.
type Scenario struct {
	// Apps are the pool's applications.
	Apps []App
	// ServerCapacity is the capacity of every pool server in CPUs.
	ServerCapacity float64
	// Normal maps each app (by index) to its server before the failure.
	Normal []int
	// FailedServer is the server that fails.
	FailedServer int
	// FailAt is the slot index at which the server fails.
	FailAt int
	// MigrationDelay is the number of slots between the failure and the
	// affected containers resuming on their new servers (detection +
	// migration time).
	MigrationDelay int
	// After maps each app to its server once migration completes.
	// Unaffected applications usually keep their server, but the
	// re-consolidation may move them too. No app may map to the failed
	// server.
	After []int
}

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if len(s.Apps) == 0 {
		return errors.New("pool: no applications")
	}
	n := 0
	servers := 0
	for i, a := range s.Apps {
		if err := a.Validate(); err != nil {
			return err
		}
		if i == 0 {
			n = a.Demand.Len()
		} else if a.Demand.Len() != n {
			return fmt.Errorf("pool: app %q has %d slots, want %d", a.Demand.AppID, a.Demand.Len(), n)
		}
	}
	if s.ServerCapacity <= 0 {
		return fmt.Errorf("pool: ServerCapacity %v <= 0", s.ServerCapacity)
	}
	if len(s.Normal) != len(s.Apps) || len(s.After) != len(s.Apps) {
		return fmt.Errorf("pool: assignments cover %d/%d apps, want %d",
			len(s.Normal), len(s.After), len(s.Apps))
	}
	for _, srv := range s.Normal {
		if srv < 0 {
			return errors.New("pool: negative server index")
		}
		if srv+1 > servers {
			servers = srv + 1
		}
	}
	for i, srv := range s.After {
		if srv < 0 {
			return errors.New("pool: negative server index")
		}
		if srv == s.FailedServer {
			return fmt.Errorf("pool: app %q assigned to the failed server after migration",
				s.Apps[i].Demand.AppID)
		}
		if srv+1 > servers {
			servers = srv + 1
		}
	}
	if s.FailedServer < 0 || s.FailedServer >= servers {
		return fmt.Errorf("pool: failed server %d outside the pool of %d", s.FailedServer, servers)
	}
	if s.FailAt < 0 || s.FailAt >= n {
		return fmt.Errorf("pool: FailAt %d outside the trace of %d slots", s.FailAt, n)
	}
	if s.MigrationDelay < 0 {
		return fmt.Errorf("pool: MigrationDelay %d < 0", s.MigrationDelay)
	}
	return nil
}

// AppOutcome is the simulated experience of one application.
type AppOutcome struct {
	AppID string
	// Utilization is the achieved utilization of allocation per slot
	// (1 means fully saturated / starved, 0 means idle).
	Utilization []float64
	// StarvedSlots counts slots with demand but zero received capacity
	// (the outage window for applications on the failed server).
	StarvedSlots int
	// Migrated is true when the app was hosted on the failed server.
	Migrated bool
}

// Result is the outcome of a pool simulation.
type Result struct {
	Apps []AppOutcome
	// OutageSlots is the migration window length actually applied.
	OutageSlots int
	// Interval is the slot duration, for converting slots to time.
	Interval time.Duration
}

// OutageDuration returns the outage window as a duration.
func (r *Result) OutageDuration() time.Duration {
	return time.Duration(r.OutageSlots) * r.Interval
}

// Run simulates the pool through the failure scenario.
func Run(s *Scenario) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nSlots := s.Apps[0].Demand.Len()
	nServers := 0
	for _, srv := range append(append([]int(nil), s.Normal...), s.After...) {
		if srv+1 > nServers {
			nServers = srv + 1
		}
	}

	res := &Result{
		OutageSlots: s.MigrationDelay,
		Interval:    s.Apps[0].Demand.Interval,
		Apps:        make([]AppOutcome, len(s.Apps)),
	}
	for i, a := range s.Apps {
		res.Apps[i] = AppOutcome{
			AppID:       a.Demand.AppID,
			Utilization: make([]float64, nSlots),
			Migrated:    s.Normal[i] == s.FailedServer,
		}
	}

	migrationDone := s.FailAt + s.MigrationDelay
	req1 := make([]float64, len(s.Apps))
	req2 := make([]float64, len(s.Apps))
	sum1 := make([]float64, nServers)
	sum2 := make([]float64, nServers)

	for t := 0; t < nSlots; t++ {
		failed := t >= s.FailAt
		migrated := t >= migrationDone

		for srv := 0; srv < nServers; srv++ {
			sum1[srv], sum2[srv] = 0, 0
		}
		// Requests per app: failure-mode translation once migrated.
		for i, a := range s.Apps {
			part := a.Normal
			if migrated && res.Apps[i].Migrated {
				part = a.Failure
			}
			req1[i] = part.CoS1.Samples[t]
			req2[i] = part.CoS2.Samples[t]
			srv, hosted := hostOf(s, i, failed, migrated)
			if !hosted {
				continue
			}
			sum1[srv] += req1[i]
			sum2[srv] += req2[i]
		}

		for i, a := range s.Apps {
			srv, hosted := hostOf(s, i, failed, migrated)
			d := a.Demand.Samples[t]
			if !hosted {
				if d > 0 {
					res.Apps[i].Utilization[t] = 1
					res.Apps[i].StarvedSlots++
				}
				continue
			}
			capacity := s.ServerCapacity
			scale1 := 1.0
			if sum1[srv] > capacity {
				scale1 = capacity / sum1[srv]
			}
			remaining := capacity - sum1[srv]*scale1
			scale2 := 0.0
			if sum2[srv] > 0 {
				scale2 = remaining / sum2[srv]
				if scale2 > 1 {
					scale2 = 1
				}
			}
			got := req1[i]*scale1 + req2[i]*scale2
			switch {
			case d <= 0:
				res.Apps[i].Utilization[t] = 0
			case got <= 0:
				res.Apps[i].Utilization[t] = 1
				res.Apps[i].StarvedSlots++
			default:
				u := d / got
				if u > 1 {
					u = 1
				}
				res.Apps[i].Utilization[t] = u
			}
		}
	}
	return res, nil
}

// hostOf returns the server hosting app i in the current phase, or
// hosted=false while the app is mid-migration (its old server failed
// and the new placement is not live yet).
func hostOf(s *Scenario, i int, failed, migrated bool) (srv int, hosted bool) {
	if !failed {
		return s.Normal[i], true
	}
	if migrated {
		return s.After[i], true
	}
	if s.Normal[i] == s.FailedServer {
		return 0, false
	}
	return s.Normal[i], true
}
