package pool

import (
	"testing"
	"time"

	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/trace"
)

func app(t *testing.T, id string, samples []float64) App {
	t.Helper()
	tr, err := trace.New(id, time.Hour, samples)
	if err != nil {
		t.Fatal(err)
	}
	normal := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 100}
	failMode := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 95}
	np, err := portfolio.Translate(tr, normal, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := portfolio.Translate(tr, failMode, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return App{Demand: tr, Normal: np, Failure: fp}
}

func flat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// scenario: two apps on two servers; server 0 fails at slot 4 and its
// app migrates to server 1 after 2 slots.
func scenario(t *testing.T) *Scenario {
	return &Scenario{
		Apps:           []App{app(t, "a", flat(2, 12)), app(t, "b", flat(2, 12))},
		ServerCapacity: 16,
		Normal:         []int{0, 1},
		FailedServer:   0,
		FailAt:         4,
		MigrationDelay: 2,
		After:          []int{1, 1},
	}
}

func TestRunFailureTimeline(t *testing.T) {
	s := scenario(t)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("%d outcomes", len(res.Apps))
	}
	a, b := res.Apps[0], res.Apps[1]
	if !a.Migrated || b.Migrated {
		t.Errorf("migration flags wrong: a=%v b=%v", a.Migrated, b.Migrated)
	}
	// Before the failure both apps run at Ulow (ample capacity).
	for i := 0; i < 4; i++ {
		if a.Utilization[i] != 0.5 || b.Utilization[i] != 0.5 {
			t.Errorf("slot %d pre-failure utilization = %v/%v, want 0.5", i, a.Utilization[i], b.Utilization[i])
		}
	}
	// During the outage window app a is starved (utilization pinned at 1).
	for i := 4; i < 6; i++ {
		if a.Utilization[i] != 1 {
			t.Errorf("slot %d outage utilization = %v, want 1 (starved)", i, a.Utilization[i])
		}
		if b.Utilization[i] != 0.5 {
			t.Errorf("slot %d survivor utilization = %v, want 0.5", i, b.Utilization[i])
		}
	}
	if a.StarvedSlots != 2 {
		t.Errorf("StarvedSlots = %d, want 2", a.StarvedSlots)
	}
	// After migration both run on server 1, still within capacity.
	for i := 6; i < 12; i++ {
		if a.Utilization[i] != 0.5 || b.Utilization[i] != 0.5 {
			t.Errorf("slot %d post-migration utilization = %v/%v, want 0.5",
				i, a.Utilization[i], b.Utilization[i])
		}
	}
	if res.OutageDuration() != 2*time.Hour {
		t.Errorf("OutageDuration = %v, want 2h", res.OutageDuration())
	}
}

func TestRunContention(t *testing.T) {
	// After migration both apps (demand 6 each, allocation 12 each)
	// share a 16-CPU server: CoS1 served first, CoS2 squeezed, so the
	// utilization of allocation rises above Ulow.
	s := scenario(t)
	s.Apps = []App{app(t, "a", flat(6, 12)), app(t, "b", flat(6, 12))}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 12; i++ {
		for _, out := range res.Apps {
			if out.Utilization[i] <= 0.5 {
				t.Errorf("slot %d app %s utilization = %v, want > 0.5 under contention",
					i, out.AppID, out.Utilization[i])
			}
			if out.Utilization[i] > 1 {
				t.Errorf("slot %d app %s utilization = %v > 1", i, out.AppID, out.Utilization[i])
			}
		}
	}
}

func TestRunZeroDelayNeverStarves(t *testing.T) {
	s := scenario(t)
	s.MigrationDelay = 0
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].StarvedSlots != 0 {
		t.Errorf("StarvedSlots = %d with instant migration", res.Apps[0].StarvedSlots)
	}
}

func TestScenarioValidate(t *testing.T) {
	good := scenario(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{name: "no apps", mutate: func(s *Scenario) { s.Apps = nil }},
		{name: "zero capacity", mutate: func(s *Scenario) { s.ServerCapacity = 0 }},
		{name: "short normal assignment", mutate: func(s *Scenario) { s.Normal = s.Normal[:1] }},
		{name: "after maps to failed server", mutate: func(s *Scenario) { s.After = []int{0, 1} }},
		{name: "negative server", mutate: func(s *Scenario) { s.Normal = []int{-1, 1} }},
		{name: "fail slot out of range", mutate: func(s *Scenario) { s.FailAt = 99 }},
		{name: "negative delay", mutate: func(s *Scenario) { s.MigrationDelay = -1 }},
		{name: "failed server outside pool", mutate: func(s *Scenario) { s.FailedServer = 9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := scenario(t)
			tt.mutate(s)
			if err := s.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
			if _, err := Run(s); err == nil {
				t.Error("Run() should fail")
			}
		})
	}
}

func TestScenarioValidateMisalignedApps(t *testing.T) {
	s := scenario(t)
	s.Apps[1] = app(t, "b", flat(2, 6))
	if err := s.Validate(); err == nil {
		t.Error("misaligned apps accepted")
	}
}
