package robust

import (
	"errors"
	"strings"
	"testing"
)

func TestChaosRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover("pkg.Op", &err)
		panic("kaboom")
	}
	err := f()
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("error should wrap ErrPanic, got %v", err)
	}
	for _, want := range []string{"pkg.Op", "kaboom", "robust_test.go"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should contain %q, got:\n%v", want, err)
		}
	}
}

func TestChaosRecoverNoPanicKeepsError(t *testing.T) {
	sentinel := errors.New("real failure")
	f := func() (err error) {
		defer Recover("pkg.Op", &err)
		return sentinel
	}
	if err := f(); !errors.Is(err, sentinel) {
		t.Errorf("Recover must not touch a normal error, got %v", err)
	}
	g := func() (err error) {
		defer Recover("pkg.Op", &err)
		return nil
	}
	if err := g(); err != nil {
		t.Errorf("Recover must not invent an error, got %v", err)
	}
}
