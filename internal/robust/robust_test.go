package robust

import (
	"errors"
	"strings"
	"testing"
)

func TestChaosRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover("pkg.Op", &err)
		panic("kaboom")
	}
	err := f()
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("error should wrap ErrPanic, got %v", err)
	}
	for _, want := range []string{"pkg.Op", "kaboom", "robust_test.go"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should contain %q, got:\n%v", want, err)
		}
	}
}

func TestOnPanicHookFiresOnRecover(t *testing.T) {
	type call struct {
		op string
		v  any
	}
	var calls []call
	OnPanic(func(op string, v any) { calls = append(calls, call{op, v}) })
	defer OnPanic(nil)

	f := func() (err error) {
		defer Recover("pkg.Boom", &err)
		panic("kaboom")
	}
	if err := f(); !errors.Is(err, ErrPanic) {
		t.Fatalf("error should wrap ErrPanic, got %v", err)
	}
	if len(calls) != 1 || calls[0].op != "pkg.Boom" || calls[0].v != "kaboom" {
		t.Errorf("hook calls = %+v, want one (pkg.Boom, kaboom)", calls)
	}

	// A clean return must not fire the hook.
	g := func() (err error) {
		defer Recover("pkg.Fine", &err)
		return nil
	}
	if err := g(); err != nil || len(calls) != 1 {
		t.Errorf("hook fired without a panic: err=%v calls=%+v", err, calls)
	}

	// Uninstalling with nil stops notifications; Recover still converts.
	OnPanic(nil)
	if err := f(); !errors.Is(err, ErrPanic) {
		t.Fatalf("Recover broke after uninstall: %v", err)
	}
	if len(calls) != 1 {
		t.Errorf("uninstalled hook still fired: %+v", calls)
	}
}

func TestChaosRecoverNoPanicKeepsError(t *testing.T) {
	sentinel := errors.New("real failure")
	f := func() (err error) {
		defer Recover("pkg.Op", &err)
		return sentinel
	}
	if err := f(); !errors.Is(err, sentinel) {
		t.Errorf("Recover must not touch a normal error, got %v", err)
	}
	g := func() (err error) {
		defer Recover("pkg.Op", &err)
		return nil
	}
	if err := g(); err != nil {
		t.Errorf("Recover must not invent an error, got %v", err)
	}
}
