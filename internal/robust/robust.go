// Package robust holds the shared pieces of the pipeline's robustness
// layer: panic-to-error recovery at package API boundaries. Long-running
// entry points (placement.Consolidate, failure.Analyze, planner.Run,
// core's pipeline, the workload-manager replay) defer Recover so that a
// bug deep in a search or replay surfaces as a wrapped error the caller
// can log and degrade on, instead of tearing down a whole planning
// process that may be midway through other scenarios.
package robust

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// ErrPanic marks an error produced by recovering a panic at an API
// boundary; match it with errors.Is.
var ErrPanic = errors.New("panic recovered")

// Recover converts an in-flight panic into an error assigned to *errp,
// wrapping ErrPanic and capturing the stack. Use it in a defer with a
// named error return:
//
//	func Solve(...) (plan *Plan, err error) {
//	    defer robust.Recover("placement.Consolidate", &err)
//	    ...
func Recover(op string, errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%s: %w: %v\n%s", op, ErrPanic, r, debug.Stack())
		if fn := panicHook.Load(); fn != nil {
			(*fn)(op, r)
		}
	}
}

// panicHook is the process-wide observer Recover notifies after
// converting a panic; OnPanic installs it.
var panicHook atomic.Pointer[func(op string, v any)]

// OnPanic installs a process-wide hook called by Recover with the
// boundary name and recovered value every time a panic is converted to
// an error — the seam the CLIs and the planning service use to dump the
// flight recorder the moment something blew up, while the tail of
// events leading to the panic is still in the ring. A nil fn uninstalls
// the hook. The hook must not panic.
func OnPanic(fn func(op string, v any)) {
	if fn == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&fn)
}
