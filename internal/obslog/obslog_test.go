package obslog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"ropus/internal/flight"
	"ropus/internal/telemetry"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestTraceIDInjection(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{})
	ctx := telemetry.WithTrace(context.Background(), telemetry.TraceContext{TraceID: "abc123"})
	l.InfoContext(ctx, "with-trace")
	l.Info("without-trace")
	recs := decodeLines(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0]["trace_id"] != "abc123" {
		t.Errorf("ctx-carried trace ID not injected: %v", recs[0])
	}
	if _, ok := recs[1]["trace_id"]; ok {
		t.Errorf("trace_id invented without a trace context: %v", recs[1])
	}
}

func TestExplicitTraceIDWins(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{})
	ctx := telemetry.WithTrace(context.Background(), telemetry.TraceContext{TraceID: "from-ctx"})
	l.LogAttrs(ctx, slog.LevelInfo, "m", slog.String("trace_id", "explicit"))
	recs := decodeLines(t, &buf)
	if recs[0]["trace_id"] != "explicit" {
		t.Errorf("explicit trace_id overridden: %v", recs[0])
	}
}

func TestDeterministicModeDropsVolatiles(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		l := New(&buf, Options{Deterministic: true})
		l.Info("step", slog.Int("n", 7), slog.Any("elapsed", Volatile{Value: 123.456}))
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("deterministic runs differ:\n%s\n%s", a, b)
	}
	if strings.Contains(a, "elapsed") || strings.Contains(a, "time") {
		t.Errorf("volatile attrs leaked into deterministic output: %s", a)
	}
	if !strings.Contains(a, `"n":7`) {
		t.Errorf("stable attr dropped: %s", a)
	}
}

func TestVolatileLoggedInNormalMode(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, Options{}).Info("step", slog.Any("elapsed", Volatile{Value: 1.5}))
	recs := decodeLines(t, &buf)
	if recs[0]["elapsed"] != 1.5 {
		t.Errorf("volatile value mangled: %v", recs[0])
	}
}

func TestFlightTee(t *testing.T) {
	rec := flight.NewRecorder(8)
	var buf bytes.Buffer
	l := New(&buf, Options{Recorder: rec})
	ctx := telemetry.WithTrace(context.Background(), telemetry.TraceContext{TraceID: "tee-1"})
	l.With(slog.String("job", "j9")).InfoContext(ctx, "teed", slog.Int("n", 3))
	events := rec.Snapshot("tee-1")
	if len(events) != 1 {
		t.Fatalf("flight got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != "log" || ev.Name != "teed" || ev.TraceID != "tee-1" {
		t.Errorf("teed event: %+v", ev)
	}
	if ev.Attrs["job"] != "j9" || ev.Attrs["level"] != "INFO" {
		t.Errorf("teed attrs missing bound attr or level: %v", ev.Attrs)
	}
}

func TestWithRecorderTeesForeignLogger(t *testing.T) {
	rec := flight.NewRecorder(8)
	var buf bytes.Buffer
	l := WithRecorder(New(&buf, Options{}), rec)
	l.Info("hello")
	if rec.Len() != 1 {
		t.Errorf("WithRecorder tee recorded %d events, want 1", rec.Len())
	}
	if !strings.Contains(buf.String(), "hello") {
		t.Error("original writer lost after WithRecorder")
	}
}

func TestFromDefaultsToDiscard(t *testing.T) {
	// Must not panic and must not emit anywhere.
	From(context.Background()).Info("dropped")
	From(nil).Error("dropped") //nolint:staticcheck // nil ctx is the point
	var buf bytes.Buffer
	l := New(&buf, Options{})
	ctx := Into(context.Background(), l)
	From(ctx).Info("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Error("Into/From round trip lost the logger")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo, "": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Options{Format: "text"})
	ctx := telemetry.WithTrace(context.Background(), telemetry.TraceContext{TraceID: "txt-1"})
	l.InfoContext(ctx, "hello", slog.Int("n", 1))
	out := buf.String()
	if !strings.Contains(out, "trace_id=txt-1") || !strings.Contains(out, "n=1") {
		t.Errorf("text format output: %q", out)
	}
	if strings.Contains(out, "{") {
		t.Errorf("text format emitted JSON: %q", out)
	}
}
