// Package obslog is the repository's structured logging layer: thin
// glue over stdlib log/slog that (a) stamps every record with the
// trace ID carried by the context — the same ID the span tracer and
// flight recorder use, so one grep correlates all three signals —
// (b) optionally tees every record into a flight.Recorder, and (c) has
// a deterministic mode for tests and golden files, in which volatile
// attributes (the timestamp, durations) are suppressed so a fixed-seed
// run produces byte-identical output.
//
// Records are JSON lines on the configured writer (stderr for the
// CLIs, so -json result output on stdout stays machine-parseable).
package obslog

import (
	"context"
	"io"
	"log/slog"
	"strings"

	"ropus/internal/flight"
	"ropus/internal/telemetry"
)

// Volatile wraps attribute values that must disappear in deterministic
// mode: wall-clock durations, throughput numbers — anything a golden
// test cannot pin. In normal mode the wrapped value is logged as-is.
type Volatile struct{ Value any }

// Options configures New.
type Options struct {
	// Level is the minimum level emitted (default slog.LevelInfo).
	Level slog.Leveler
	// Format selects the record encoding: "json" (the default) or
	// "text" (slog's logfmt-style handler, for humans tailing stderr).
	Format string
	// Deterministic drops the time attribute and every Volatile-wrapped
	// value so fixed-seed runs log byte-identical streams.
	Deterministic bool
	// Recorder, when non-nil, receives every emitted record as a "log"
	// flight event (post level filter).
	Recorder *flight.Recorder
}

// New returns a logger on w with trace-ID injection, optional flight
// tee, and optional deterministic output.
func New(w io.Writer, opts Options) *slog.Logger {
	level := opts.Level
	if level == nil {
		level = slog.LevelInfo
	}
	hopts := &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if v, ok := a.Value.Any().(Volatile); ok {
				if opts.Deterministic {
					return slog.Attr{}
				}
				return slog.Attr{Key: a.Key, Value: slog.AnyValue(v.Value)}
			}
			if opts.Deterministic && len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}
	var inner slog.Handler
	if opts.Format == "text" {
		inner = slog.NewTextHandler(w, hopts)
	} else {
		inner = slog.NewJSONHandler(w, hopts)
	}
	return slog.New(&handler{inner: inner, rec: opts.Recorder, det: opts.Deterministic})
}

// WithRecorder returns a logger that additionally tees every emitted
// record into rec as a "log" flight event. The serve manager uses it to
// pull the caller-provided logger's records into its own flight
// recorder. A nil logger or recorder returns l unchanged.
func WithRecorder(l *slog.Logger, rec *flight.Recorder) *slog.Logger {
	if l == nil || rec == nil {
		return l
	}
	if h, ok := l.Handler().(*handler); ok {
		return slog.New(&handler{inner: h.inner, rec: rec, det: h.det, attrs: h.attrs, group: h.group})
	}
	return slog.New(&handler{inner: l.Handler(), rec: rec})
}

// handler decorates a slog.Handler with trace-ID injection from the
// context and the flight-recorder tee.
type handler struct {
	inner slog.Handler
	rec   *flight.Recorder
	det   bool
	// attrs accumulates WithAttrs state so the flight tee sees it too.
	attrs []slog.Attr
	group string
}

func (h *handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *handler) Handle(ctx context.Context, rec slog.Record) error {
	if id := telemetry.TraceIDFrom(ctx); id != "" && !hasTraceID(h.attrs, rec) {
		rec.AddAttrs(slog.String("trace_id", id))
	}
	if h.rec != nil {
		attrs := make(map[string]any, rec.NumAttrs()+len(h.attrs)+1)
		for _, a := range h.attrs {
			addFlightAttr(attrs, h.group, a, h.det)
		}
		rec.Attrs(func(a slog.Attr) bool {
			addFlightAttr(attrs, h.group, a, h.det)
			return true
		})
		attrs["level"] = rec.Level.String()
		traceID, _ := attrs["trace_id"].(string)
		h.rec.Record("log", rec.Message, traceID, attrs)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &handler{inner: h.inner.WithAttrs(attrs), rec: h.rec, det: h.det, attrs: merged, group: h.group}
}

func (h *handler) WithGroup(name string) slog.Handler {
	g := h.group
	if name != "" {
		if g != "" {
			g += "."
		}
		g += name
	}
	return &handler{inner: h.inner.WithGroup(name), rec: h.rec, det: h.det, attrs: h.attrs, group: g}
}

func hasTraceID(bound []slog.Attr, rec slog.Record) bool {
	for _, a := range bound {
		if a.Key == "trace_id" {
			return true
		}
	}
	found := false
	rec.Attrs(func(a slog.Attr) bool {
		if a.Key == "trace_id" {
			found = true
			return false
		}
		return true
	})
	return found
}

func addFlightAttr(out map[string]any, group string, a slog.Attr, det bool) {
	key := a.Key
	if group != "" {
		key = group + "." + key
	}
	v := a.Value.Resolve()
	if vol, ok := v.Any().(Volatile); ok {
		if det {
			return
		}
		out[key] = vol.Value
		return
	}
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			addFlightAttr(out, key, ga, det)
		}
		return
	}
	out[key] = v.Any()
}

// discardHandler drops everything (go 1.22 has no slog.DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type ctxKey struct{}

// Into returns a context carrying l, for components that log without
// threading a logger parameter through every signature.
func Into(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKey{}, l)
}

// From extracts the logger carried by ctx, or a discard logger when
// none is carried (or ctx is nil), so call sites never branch.
func From(ctx context.Context) *slog.Logger {
	if ctx == nil {
		return Discard()
	}
	if l, ok := ctx.Value(ctxKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Discard()
}

// ParseLevel maps a -log-level flag value to a slog.Level, defaulting
// to Info for unknown strings.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
