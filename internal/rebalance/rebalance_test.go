package rebalance

import (
	"context"
	"testing"
	"time"

	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/sim"
)

// flatApp mirrors the placement test helper: constant CoS2 demand makes
// required capacity additive.
func flatApp(id string, size float64, slots int) placement.App {
	c2 := make([]float64, slots)
	for i := range c2 {
		c2[i] = size
	}
	return placement.App{ID: id, Workload: sim.Workload{AppID: id, CoS1: make([]float64, slots), CoS2: c2}}
}

func problem(sizes []float64, nServers, cpus int) *placement.Problem {
	apps := make([]placement.App, len(sizes))
	for i, s := range sizes {
		apps[i] = flatApp("app-"+string(rune('a'+i)), s, 28)
	}
	servers := make([]placement.Server, nServers)
	for i := range servers {
		servers[i] = placement.Server{ID: "srv-" + string(rune('a'+i)), CPUs: cpus, CPUCapacity: 1}
	}
	return &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
	}
}

func ga() placement.GAConfig {
	cfg := placement.DefaultGAConfig(3)
	cfg.MaxGenerations = 60
	cfg.Stagnation = 15
	return cfg
}

func TestEvaluateReportsViolations(t *testing.T) {
	p := problem([]float64{6, 6}, 2, 10)
	audit, err := Evaluate(p, placement.Assignment{0, 0}) // 12 > 10
	if err != nil {
		t.Fatal(err)
	}
	if audit.Feasible {
		t.Error("overloaded assignment reported feasible")
	}
	if len(audit.Violations) != 1 || audit.Violations[0] != "srv-a" {
		t.Errorf("Violations = %v, want [srv-a]", audit.Violations)
	}

	audit, err = Evaluate(p, placement.Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Feasible || len(audit.Violations) != 0 {
		t.Errorf("clean assignment audited as %+v", audit)
	}
}

func TestRunKeepsGoodAssignment(t *testing.T) {
	// Already optimally packed: nothing to do.
	p := problem([]float64{5, 4}, 2, 10)
	prop, err := Run(context.Background(), p, placement.Assignment{0, 0}, Config{GA: ga(), MinScoreGain: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !prop.Keep {
		t.Errorf("optimal assignment not kept: %d moves proposed", len(prop.Moves))
	}
	if prop.BudgetExceeded {
		t.Error("budget flagged on a kept assignment")
	}
}

func TestRunRepairsViolation(t *testing.T) {
	// Two apps overloading one server while another sits empty.
	p := problem([]float64{6, 6}, 2, 10)
	prop, err := Run(context.Background(), p, placement.Assignment{0, 0}, Config{GA: ga()})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Keep {
		t.Fatal("violating assignment kept")
	}
	if prop.Plan == nil || !prop.Plan.Feasible {
		t.Fatal("proposal infeasible")
	}
	if len(prop.Moves) == 0 {
		t.Fatal("no moves proposed")
	}
	if prop.BudgetExceeded {
		t.Error("single-move repair flagged as over budget")
	}
}

func TestRunConsolidatesWhenWorthIt(t *testing.T) {
	// Two half-empty servers that fit on one: consolidation frees a
	// server (+1 score), above the gain threshold.
	p := problem([]float64{3, 3}, 2, 10)
	prop, err := Run(context.Background(), p, placement.Assignment{0, 1}, Config{GA: ga(), MinScoreGain: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Keep {
		t.Fatal("consolidation opportunity ignored")
	}
	if prop.Plan.ServersUsed != 1 {
		t.Errorf("proposal uses %d servers, want 1", prop.Plan.ServersUsed)
	}
	if len(prop.Moves) != 1 {
		t.Errorf("%d moves, want 1", len(prop.Moves))
	}
}

func TestRunRespectsMigrationBudget(t *testing.T) {
	// Four apps spread across four servers, all fit on one. With
	// MaxMoves 2 the trimmed proposal must not move more than... the
	// trim walk reverts moves while it can keep feasibility and server
	// count; pairing two apps per server needs only 2 moves.
	p := problem([]float64{2, 2, 2, 2}, 4, 10)
	prop, err := Run(context.Background(), p, placement.Assignment{0, 1, 2, 3}, Config{GA: ga(), MaxMoves: 2})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Keep {
		t.Fatal("consolidation opportunity ignored")
	}
	if len(prop.Moves) > 2 && !prop.BudgetExceeded {
		t.Errorf("%d moves without budget flag", len(prop.Moves))
	}
	if !prop.Plan.Feasible {
		t.Error("trimmed proposal infeasible")
	}
}

func TestRunUnrepairableReportsBudgetExceeded(t *testing.T) {
	// A single oversized app: no feasible assignment exists at all.
	p := problem([]float64{20}, 1, 10)
	prop, err := Run(context.Background(), p, placement.Assignment{0}, Config{GA: ga()})
	if err != nil {
		t.Fatal(err)
	}
	if !prop.Keep || !prop.BudgetExceeded {
		t.Errorf("unrepairable pool should keep and flag: %+v", prop)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{GA: ga()}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{GA: ga(), MaxMoves: -1}).Validate(); err == nil {
		t.Error("negative MaxMoves accepted")
	}
	if err := (Config{GA: ga(), MinScoreGain: -1}).Validate(); err == nil {
		t.Error("negative MinScoreGain accepted")
	}
	bad := ga()
	bad.PopulationSize = 0
	if err := (Config{GA: bad}).Validate(); err == nil {
		t.Error("bad GA accepted")
	}
	p := problem([]float64{1}, 1, 10)
	if _, err := Run(context.Background(), p, placement.Assignment{0}, Config{GA: bad}); err == nil {
		t.Error("Run with bad config accepted")
	}
	if _, err := Run(context.Background(), p, placement.Assignment{0, 1}, Config{GA: ga()}); err == nil {
		t.Error("Run with bad assignment accepted")
	}
}
