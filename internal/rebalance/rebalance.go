// Package rebalance implements the medium-timescale loop of Figure 1:
// "assignments may be adjusted periodically as service levels are
// evaluated or as circumstances change". Given the pool's current
// assignment and fresh demand traces, it audits whether every server
// still satisfies the resource access commitments, and when needed (or
// when consolidation can free servers) proposes a new assignment
// together with the container migrations that realize it — bounded by
// an operator-set migration budget, since each move disrupts a running
// application.
package rebalance

import (
	"context"
	"errors"
	"fmt"

	"ropus/internal/placement"
)

// Audit is the service-level evaluation of the current assignment.
type Audit struct {
	// Feasible reports whether every used server satisfies the
	// commitments under the (fresh) traces.
	Feasible bool
	// Violations lists the servers that no longer satisfy them.
	Violations []string
	// ServersUsed and Score describe the current plan.
	ServersUsed int
	Score       float64
}

// Evaluate audits the current assignment against the problem (whose
// apps carry the latest translated traces).
func Evaluate(p *placement.Problem, current placement.Assignment) (*Audit, error) {
	plan, err := placement.Evaluate(p, current)
	if err != nil {
		return nil, err
	}
	audit := &Audit{
		Feasible:    plan.Feasible,
		ServersUsed: plan.ServersUsed,
		Score:       plan.Score,
	}
	for _, usage := range plan.Usages {
		if len(usage.AppIDs) > 0 && !usage.Feasible {
			audit.Violations = append(audit.Violations, usage.Server.ID)
		}
	}
	return audit, nil
}

// Config tunes a rebalancing pass.
type Config struct {
	// GA configures the consolidation search.
	GA placement.GAConfig
	// MaxMoves caps the number of container migrations the proposal may
	// require; 0 means unlimited.
	MaxMoves int
	// MinScoreGain is the minimum score improvement that justifies
	// moving anything when the current assignment is still feasible
	// (Figure 5's "little improvement" test, applied to operations).
	MinScoreGain float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.GA.Validate(); err != nil {
		return err
	}
	if c.MaxMoves < 0 {
		return fmt.Errorf("rebalance: MaxMoves %d < 0", c.MaxMoves)
	}
	if c.MinScoreGain < 0 {
		return fmt.Errorf("rebalance: MinScoreGain %v < 0", c.MinScoreGain)
	}
	return nil
}

// Proposal is the outcome of a rebalancing pass.
type Proposal struct {
	// Audit is the evaluation of the current assignment.
	Audit *Audit
	// Keep is true when the current assignment should stay (feasible
	// and no worthwhile improvement within the migration budget).
	Keep bool
	// Plan is the proposed assignment when Keep is false.
	Plan *placement.Plan
	// Moves realizes the proposal from the current assignment.
	Moves []placement.Move
	// BudgetExceeded is true when even the trimmed proposal needs more
	// than MaxMoves migrations; the proposal is then the best found but
	// the operator must either raise the budget or stage the moves.
	BudgetExceeded bool
}

// Run audits the current assignment and, when it violates the
// commitments or a consolidation gain is available, proposes a new one.
// The search starts from the current assignment so the genetic
// operators naturally favour nearby configurations, and the proposal is
// then trimmed: moves that can be reverted without breaking feasibility
// or using more servers are dropped until the migration budget holds.
func Run(ctx context.Context, p *placement.Problem, current placement.Assignment, cfg Config) (*Proposal, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	audit, err := Evaluate(p, current)
	if err != nil {
		return nil, err
	}

	plan, err := placement.Consolidate(ctx, p, current, cfg.GA)
	if errors.Is(err, placement.ErrNoFeasible) {
		// Nothing feasible found at all; keep what we have and report.
		return &Proposal{Audit: audit, Keep: true, BudgetExceeded: !audit.Feasible}, nil
	}
	if err != nil {
		return nil, err
	}

	if audit.Feasible && plan.Score <= audit.Score+cfg.MinScoreGain {
		return &Proposal{Audit: audit, Keep: true}, nil
	}

	trimmed, err := trimMoves(p, current, plan.Assignment, cfg.MaxMoves)
	if err != nil {
		return nil, err
	}
	finalPlan, err := placement.Evaluate(p, trimmed)
	if err != nil {
		return nil, err
	}
	moves, err := placement.Migrations(p, current, trimmed)
	if err != nil {
		return nil, err
	}
	if len(moves) == 0 {
		return &Proposal{Audit: audit, Keep: true, BudgetExceeded: !audit.Feasible}, nil
	}
	return &Proposal{
		Audit:          audit,
		Plan:           finalPlan,
		Moves:          moves,
		BudgetExceeded: cfg.MaxMoves > 0 && len(moves) > cfg.MaxMoves,
	}, nil
}

// trimMoves reverts proposed moves that neither affect feasibility nor
// the number of servers in use, until the budget holds (or no revert is
// possible). Reverting one move can invalidate others' context, so the
// walk re-evaluates after each candidate revert.
func trimMoves(p *placement.Problem, current, proposed placement.Assignment, maxMoves int) (placement.Assignment, error) {
	if maxMoves <= 0 {
		return proposed, nil
	}
	result := proposed.Clone()
	basePlan, err := placement.Evaluate(p, result)
	if err != nil {
		return nil, err
	}
	for {
		moved := movedApps(current, result)
		if len(moved) <= maxMoves {
			return result, nil
		}
		reverted := false
		for _, app := range moved {
			trial := result.Clone()
			trial[app] = current[app]
			plan, err := placement.Evaluate(p, trial)
			if err != nil {
				return nil, err
			}
			if plan.Feasible && plan.ServersUsed <= basePlan.ServersUsed {
				result = trial
				basePlan = plan
				reverted = true
				break
			}
		}
		if !reverted {
			return result, nil // cannot trim further; caller flags the overrun
		}
	}
}

// movedApps lists the app indexes whose server differs between two
// assignments.
func movedApps(a, b placement.Assignment) []int {
	var out []int
	for i := range a {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	return out
}
