package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts is one longer, its
	// last element counting observations above every bound (+Inf).
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen, export-friendly view of a registry. Metrics
// written while a snapshot is being taken may or may not be included;
// each individual value is read atomically.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteJSON writes the registry's snapshot as indented JSON with
// deterministic (sorted) key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheusText writes the registry's snapshot in the Prometheus
// text exposition format (version 0.0.4). Metric names are sanitized:
// any character outside [a-zA-Z0-9_:] becomes '_'.
func (r *Registry) WritePrometheusText(w io.Writer) error {
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(snap.Gauges[name]))
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		hs := snap.Histograms[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		cumulative := int64(0)
		for i, bound := range hs.Bounds {
			cumulative += hs.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cumulative)
		}
		cumulative += hs.Counts[len(hs.Counts)-1]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, cumulative)
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(hs.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, hs.Count)
	}
	return bw.Flush()
}

// promName sanitizes a metric name for the Prometheus text format.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects: shortest exact
// representation, with infinities spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
