package telemetry

import (
	"context"
	"fmt"
	"hash/fnv"
)

// TraceContext is the correlation state a context carries through the
// pipeline: a stable trace ID naming the whole run (the serve job ID,
// or a seeded hash for CLI runs) and the currently open span, so that
// spans opened deeper in the pipeline become children of their caller's
// span instead of disconnected roots.
//
// The zero value means "no trace": StartSpanCtx then opens root spans
// with an empty trace ID, which is the pre-correlation behaviour.
type TraceContext struct {
	// TraceID attributes every span, log record and flight event of one
	// logical run. It is a 16-hex-digit string by convention (jobID /
	// SeedTraceID), but any non-empty string works.
	TraceID string
	// Span is the innermost open span, the parent for the next
	// StartSpanCtx; nil at the root of a run.
	Span *Span
}

type traceCtxKey struct{}

// WithTrace returns a context carrying tc.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the TraceContext carried by ctx; the zero value
// when none is carried.
func TraceFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// TraceIDFrom returns just the trace ID carried by ctx ("" when none).
func TraceIDFrom(ctx context.Context) string { return TraceFrom(ctx).TraceID }

// SeedTraceID derives a deterministic trace ID for a run identified by
// a name (typically the subcommand) and its seed: the FNV-1a hash of
// both, rendered like a serve job ID. A CLI run and its re-run with the
// same seed carry the same trace ID, so their traces and logs line up.
func SeedTraceID(name string, seed int64) string {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	return fmt.Sprintf("%016x", h.Sum64())
}

// StartSpanCtx opens a span correlated through ctx: a child of the
// context's current span when one is open, a root span from h
// otherwise, carrying the context's trace ID either way. It returns a
// derived context with the new span as current (for the next nested
// StartSpanCtx) and the span itself (End it to record it).
//
// When no tracer is live (h is Nop or span-less) the span is nil — a
// valid no-op — and ctx is returned unchanged, so disabled tracing
// costs a context lookup and nothing else.
func StartSpanCtx(ctx context.Context, h Hooks, name string, attrs ...Attr) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	v := ctx.Value(traceCtxKey{})
	if v == nil && h == nil {
		// Fully disabled: no trace context to extend and no hooks to open
		// a root from. Return before the assertion and dispatch below so
		// the path stays a bare context lookup.
		return ctx, nil
	}
	tc, _ := v.(TraceContext)
	return startSpanCtx(ctx, tc, h, name, attrs)
}

func startSpanCtx(ctx context.Context, tc TraceContext, h Hooks, name string, attrs []Attr) (context.Context, *Span) {
	var sp *Span
	if tc.Span != nil {
		sp = tc.Span.Child(name, attrs...)
	} else {
		sp = OrNop(h).StartSpan(name, attrs...)
		sp.setTraceID(tc.TraceID)
	}
	if sp == nil {
		return ctx, nil
	}
	return WithTrace(ctx, TraceContext{TraceID: tc.TraceID, Span: sp}), sp
}
