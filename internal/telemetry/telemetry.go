// Package telemetry is the repository's zero-dependency observability
// layer: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms), lightweight span tracing with a Chrome
// trace_event export, and a Hooks seam that long-running components
// (the GA search, the capacity simulator, the workload manager, the
// planner) accept without forcing their callers to care.
//
// Design rules:
//
//   - stdlib only; go.mod stays dependency-free.
//   - The hot path is atomic: Counter.Inc, Gauge.Set and
//     Histogram.Observe never take a lock.
//   - Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram or *Span are no-ops, so the Nop hooks cost nothing but
//     an inlined nil check (<1 ns/op, see BenchmarkTelemetryOverhead).
//   - Handles are meant to be hoisted: fetch them once outside a loop
//     (h.Counter involves a registry map lookup), then Inc/Observe per
//     iteration.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value of a
// non-nil Counter is ready to use; a nil Counter discards everything.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates d with a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= bounds[i]; the final implicit bucket counts the rest
// (+Inf). Observe is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	sumBits atomic.Uint64
	count   atomic.Int64
	// sink, when set, receives every raw observation — the seam that
	// feeds SLO ring-buffer windows without a second emission site. The
	// pointer is atomic so it can be wired after handles were hoisted.
	sink atomic.Pointer[func(float64)]
}

// DurationBuckets are the default bounds for timing histograms, in
// seconds: 1µs to ~100s, roughly 4 per decade.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100,
}

// RatioBuckets are the default bounds for metrics in [0,1], such as the
// resource access probability θ.
var RatioBuckets = []float64{
	0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
	0.95, 0.99, 0.999, 1,
}

// LinearBuckets returns count bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Linear scan: bucket counts are small and the scan is branch-
	// predictable, which beats binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if fn := h.sink.Load(); fn != nil {
		(*fn)(v)
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a concurrency-safe collection of named metrics. Lookups
// take a mutex; the handles they return are lock-free, so callers hoist
// handles out of hot loops. Counters, gauges and histograms live in
// separate namespaces.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// OnObserve registers fn to receive every raw observation recorded into
// the named histogram (created with DurationBuckets if it does not
// exist yet). A nil fn detaches the sink. Components keep observing
// into the histogram as before; the sink is how a host (the planning
// service) mirrors e.g. per-scenario sim timings into its SLO windows.
func (r *Registry) OnObserve(name string, fn func(float64)) {
	if r == nil {
		return
	}
	h := r.Histogram(name, nil)
	if fn == nil {
		h.sink.Store(nil)
		return
	}
	h.sink.Store(&fn)
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds mean DurationBuckets). Later
// calls return the existing histogram regardless of bounds: the first
// registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
