package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key-value span attribute. Values should be strings,
// integers, floats or bools so the Chrome trace export stays readable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is one completed span.
type SpanRecord struct {
	// ID identifies the span; ParentID is 0 for root spans.
	ID, ParentID int64
	// RootID identifies the span's outermost ancestor; the Chrome trace
	// export maps each root chain to its own track (tid).
	RootID int64
	// TraceID attributes the span to one logical run (serve job or
	// seeded CLI run); empty when the span was opened without a
	// TraceContext. Children inherit their parent's trace ID.
	TraceID string
	Name    string
	// Start is the offset from the tracer's epoch; Duration is the
	// span's wall-clock length.
	Start    time.Duration
	Duration time.Duration
	Attrs    []Attr
}

// DefaultMaxSpans bounds a tracer's retained spans; spans started past
// the cap are timed but dropped on End, and counted in Dropped.
const DefaultMaxSpans = 1 << 19

// Tracer collects completed spans. It is safe for concurrent use. The
// zero value is not usable; construct with NewTracer.
type Tracer struct {
	epoch    time.Time
	nextID   atomic.Int64
	dropped  atomic.Int64
	maxSpans int

	// exportMu serializes exports; mu guards the span buffer. Exports
	// swap the buffer out under mu (double-buffering), so Record never
	// blocks behind — and never loses spans to — an in-progress export.
	exportMu sync.Mutex
	mu       sync.Mutex
	spans    []SpanRecord
	onEnd    func(SpanRecord)
}

// NewTracer returns a tracer whose span timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// StartSpan opens a root span. End it to record it.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID.Add(1)
	return &Span{tracer: t, id: id, rootID: id, name: name, start: time.Now(), attrs: attrs}
}

// Dropped returns the number of spans discarded because the tracer was
// at capacity.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// OnEnd registers a sink called (outside the tracer's locks) with every
// span as it completes — the seam the flight recorder taps. Set it
// before spans flow; a nil fn disables the sink.
func (t *Tracer) OnEnd(fn func(SpanRecord)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onEnd = fn
	t.mu.Unlock()
}

// Spans returns a copy of the completed spans in completion order. The
// buffer is double-buffered around the copy: it is swapped out under
// the lock, copied without holding it, and merged back in front of any
// spans recorded meanwhile, so concurrent Record calls neither block on
// the O(n) copy nor get lost.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.exportMu.Lock()
	defer t.exportMu.Unlock()
	t.mu.Lock()
	detached := t.spans
	t.spans = nil
	t.mu.Unlock()
	out := make([]SpanRecord, len(detached))
	copy(out, detached)
	t.mu.Lock()
	t.spans = append(detached, t.spans...)
	t.mu.Unlock()
	return out
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	// The length check sees only the resident half while an export has
	// the buffer swapped out, so the cap can briefly overshoot by the
	// few spans recorded during an export; bounded memory still holds.
	if len(t.spans) >= t.maxSpans {
		onEnd := t.onEnd
		t.mu.Unlock()
		t.dropped.Add(1)
		if onEnd != nil {
			onEnd(rec)
		}
		return
	}
	t.spans = append(t.spans, rec)
	onEnd := t.onEnd
	t.mu.Unlock()
	if onEnd != nil {
		onEnd(rec)
	}
}

// Span is an in-flight operation. A nil span is a valid no-op, so code
// can call Child/SetAttr/End unconditionally.
type Span struct {
	tracer  *Tracer
	id      int64
	rootID  int64
	parent  int64
	traceID string
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// setTraceID stamps the span's trace attribution; children inherit it.
func (s *Span) setTraceID(id string) {
	if s == nil || id == "" {
		return
	}
	s.traceID = id
}

// TraceID returns the span's trace attribution ("" for a nil span or an
// unattributed one).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Child opens a sub-span linked to s; it shares s's track in the Chrome
// trace export.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:  s.tracer,
		id:      s.tracer.nextID.Add(1),
		rootID:  s.rootID,
		parent:  s.id,
		traceID: s.traceID,
		name:    name,
		start:   time.Now(),
		attrs:   attrs,
	}
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End completes the span and records it with its wall-clock duration.
// Ending a span twice records it once. The nil check stays in this thin
// wrapper so disabled tracing inlines to a single branch.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.finish()
}

func (s *Span) finish() {
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.record(SpanRecord{
		ID:       s.id,
		ParentID: s.parent,
		RootID:   s.rootID,
		TraceID:  s.traceID,
		Name:     s.name,
		Start:    s.start.Sub(s.tracer.epoch),
		Duration: end.Sub(s.start),
		Attrs:    attrs,
	})
}

// chromeEvent is one trace_event entry ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace_event spec.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace dumps the completed spans as a Chrome trace_event
// JSON file loadable in chrome://tracing and Perfetto. Each root span
// chain becomes its own track (tid), so concurrent operations do not
// interleave.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		args := make(map[string]any, len(sp.Attrs)+3)
		args["span_id"] = sp.ID
		if sp.ParentID != 0 {
			args["parent_id"] = sp.ParentID
		}
		if sp.TraceID != "" {
			args["trace_id"] = sp.TraceID
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "ropus",
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  sp.RootID,
		})
		out.TraceEvents[len(out.TraceEvents)-1].Args = args
	}
	if d := t.Dropped(); d > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "telemetry.spans_dropped",
			Cat:  "ropus",
			Ph:   "X",
			Pid:  1,
			Tid:  0,
			Args: map[string]any{"dropped": d},
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return bw.Flush()
}
