package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key-value span attribute. Values should be strings,
// integers, floats or bools so the Chrome trace export stays readable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is one completed span.
type SpanRecord struct {
	// ID identifies the span; ParentID is 0 for root spans.
	ID, ParentID int64
	// RootID identifies the span's outermost ancestor; the Chrome trace
	// export maps each root chain to its own track (tid).
	RootID int64
	Name   string
	// Start is the offset from the tracer's epoch; Duration is the
	// span's wall-clock length.
	Start    time.Duration
	Duration time.Duration
	Attrs    []Attr
}

// DefaultMaxSpans bounds a tracer's retained spans; spans started past
// the cap are timed but dropped on End, and counted in Dropped.
const DefaultMaxSpans = 1 << 19

// Tracer collects completed spans. It is safe for concurrent use. The
// zero value is not usable; construct with NewTracer.
type Tracer struct {
	epoch    time.Time
	nextID   atomic.Int64
	dropped  atomic.Int64
	maxSpans int

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns a tracer whose span timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// StartSpan opens a root span. End it to record it.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID.Add(1)
	return &Span{tracer: t, id: id, rootID: id, name: name, start: time.Now(), attrs: attrs}
}

// Dropped returns the number of spans discarded because the tracer was
// at capacity.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns a copy of the completed spans in completion order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= t.maxSpans {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Span is an in-flight operation. A nil span is a valid no-op, so code
// can call Child/SetAttr/End unconditionally.
type Span struct {
	tracer *Tracer
	id     int64
	rootID int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Child opens a sub-span linked to s; it shares s's track in the Chrome
// trace export.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		id:     s.tracer.nextID.Add(1),
		rootID: s.rootID,
		parent: s.id,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End completes the span and records it with its wall-clock duration.
// Ending a span twice records it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.record(SpanRecord{
		ID:       s.id,
		ParentID: s.parent,
		RootID:   s.rootID,
		Name:     s.name,
		Start:    s.start.Sub(s.tracer.epoch),
		Duration: end.Sub(s.start),
		Attrs:    attrs,
	})
}

// chromeEvent is one trace_event entry ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace_event spec.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace dumps the completed spans as a Chrome trace_event
// JSON file loadable in chrome://tracing and Perfetto. Each root span
// chain becomes its own track (tid), so concurrent operations do not
// interleave.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		args := make(map[string]any, len(sp.Attrs)+2)
		args["span_id"] = sp.ID
		if sp.ParentID != 0 {
			args["parent_id"] = sp.ParentID
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "ropus",
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  sp.RootID,
		})
		out.TraceEvents[len(out.TraceEvents)-1].Args = args
	}
	if d := t.Dropped(); d > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "telemetry.spans_dropped",
			Cat:  "ropus",
			Ph:   "X",
			Pid:  1,
			Tid:  0,
			Args: map[string]any{"dropped": d},
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return bw.Flush()
}
