package telemetry

// Hooks is the seam long-running components accept: a source of metric
// handles and spans. Components hold a Hooks, hoist the handles they
// need before their hot loops, and never check for nil — the handles
// returned by the no-op implementation discard everything at the cost
// of an inlined nil check.
type Hooks interface {
	// Counter returns the named counter handle.
	Counter(name string) *Counter
	// Gauge returns the named gauge handle.
	Gauge(name string) *Gauge
	// Histogram returns the named histogram handle; nil bounds select
	// DurationBuckets.
	Histogram(name string, bounds []float64) *Histogram
	// StartSpan opens a root span (End it to record it).
	StartSpan(name string, attrs ...Attr) *Span
}

// nopHooks hands out nil handles, whose methods are no-ops.
type nopHooks struct{}

func (nopHooks) Counter(string) *Counter                { return nil }
func (nopHooks) Gauge(string) *Gauge                    { return nil }
func (nopHooks) Histogram(string, []float64) *Histogram { return nil }
func (nopHooks) StartSpan(string, ...Attr) *Span        { return nil }

// Nop discards all telemetry.
var Nop Hooks = nopHooks{}

// OrNop maps a nil Hooks to Nop so components can accept "no hooks"
// configurations without branching at every emission site.
func OrNop(h Hooks) Hooks {
	if h == nil {
		return Nop
	}
	return h
}

// hooks backs Hooks with a registry and/or a tracer; either may be nil,
// in which case the corresponding handles are no-ops.
type hooks struct {
	reg    *Registry
	tracer *Tracer
}

// New builds Hooks recording metrics into reg and spans into tracer.
// Either may be nil to disable that half.
func New(reg *Registry, tracer *Tracer) Hooks {
	return hooks{reg: reg, tracer: tracer}
}

func (h hooks) Counter(name string) *Counter { return h.reg.Counter(name) }
func (h hooks) Gauge(name string) *Gauge     { return h.reg.Gauge(name) }
func (h hooks) Histogram(name string, bounds []float64) *Histogram {
	return h.reg.Histogram(name, bounds)
}
func (h hooks) StartSpan(name string, attrs ...Attr) *Span {
	return h.tracer.StartSpan(name, attrs...)
}
