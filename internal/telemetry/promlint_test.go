package telemetry

import (
	"strings"
	"testing"
)

func lint(t *testing.T, text string) error {
	t.Helper()
	return LintPrometheusText(strings.NewReader(text))
}

func TestLintAcceptsValidExposition(t *testing.T) {
	valid := `# HELP jobs_total total jobs
# TYPE jobs_total counter
jobs_total 42
# TYPE queue_depth gauge
queue_depth -3.5
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 2.25
latency_seconds_count 4
# TYPE labeled untyped
labeled{kind="a",path="C:\\x\"y\""} 1
`
	if err := lint(t, valid); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestLintRejectsMalformedExpositions(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"garbage line", "this is not a metric\n"},
		{"bad metric name", "1bad_name 1\n"},
		{"bad value", "m NaNope\n"},
		{"negative counter", "# TYPE c counter\nc -1\n"},
		{"dup label", `m{a="1",a="2"} 1` + "\n"},
		{"reserved label", `m{__x="1"} 1` + "\n"},
		{"unknown type", "# TYPE m sausage\nm 1\n"},
		{"bucket le out of order", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"},
		{"bucket not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"missing inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"count disagrees with inf", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n"},
		{"unterminated labels", `m{a="1" 1` + "\n"},
	}
	for _, tc := range cases {
		if err := lint(t, tc.text); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestLintRegistryOutput: whatever the repo's own registry renders must
// pass its own linter, including histograms and negative gauges.
func TestLintRegistryOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(3)
	reg.Gauge("temperature").Set(-12.5)
	h := reg.Histogram("latency_seconds", nil)
	for _, v := range []float64{0.001, 0.1, 5, 120} {
		h.Observe(v)
	}
	var buf strings.Builder
	if err := reg.WritePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := lint(t, buf.String()); err != nil {
		t.Errorf("registry output fails own lint: %v\n%s", err, buf.String())
	}
}
