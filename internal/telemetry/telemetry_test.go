package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.SetAttr(Int("k", 1))
	s.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if child := s.Child("x"); child != nil {
		t.Fatal("nil span must produce a nil child")
	}

	// The whole Nop/OrNop path must be inert too.
	np := OrNop(nil)
	np.Counter("x").Inc()
	np.Gauge("x").Set(1)
	np.Histogram("x", nil).Observe(1)
	sp := np.StartSpan("x")
	sp.Child("y").End()
	sp.End()

	// And a nil registry / tracer inside live hooks.
	mixed := New(nil, nil)
	mixed.Counter("x").Inc()
	mixed.StartSpan("x").End()
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})

	cases := []struct {
		v    float64
		want int // bucket index expected to receive the observation
	}{
		{0.5, 0},
		{1, 0}, // boundary values land in the bucket they bound (le semantics)
		{math.Nextafter(1, 2), 1},
		{2, 1},
		{3, 2},
		{4, 2},
		{4.0001, 3}, // above every bound: overflow bucket
		{math.Inf(1), 3},
	}
	for _, tc := range cases {
		before := make([]int64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(tc.v)
		for i := range h.counts {
			delta := h.counts[i].Load() - before[i]
			if i == tc.want && delta != 1 {
				t.Errorf("Observe(%v): bucket %d got %d increments, want 1", tc.v, i, delta)
			}
			if i != tc.want && delta != 0 {
				t.Errorf("Observe(%v): bucket %d unexpectedly incremented", tc.v, i)
			}
		}
	}
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", got, len(cases))
	}
	h.Observe(math.NaN()) // ignored
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatalf("NaN observation must be ignored; Count = %d", got)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{4, 1, 2}).Observe(1.5)
	hs := r.Snapshot().Histograms["h"]
	if want := []float64{1, 2, 4}; len(hs.Bounds) != 3 ||
		hs.Bounds[0] != want[0] || hs.Bounds[1] != want[1] || hs.Bounds[2] != want[2] {
		t.Fatalf("bounds = %v, want %v", hs.Bounds, want)
	}
	if hs.Counts[1] != 1 {
		t.Fatalf("1.5 should land in the (1,2] bucket, counts = %v", hs.Counts)
	}
}

// TestConcurrentIncrements hammers every handle type from many
// goroutines; run with -race to verify the hot paths are atomic.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	h := New(r, tr)

	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := h.Counter("stress_total")
			ga := h.Gauge("stress_gauge")
			hi := h.Histogram("stress_hist", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				hi.Observe(float64(i%100) / 100)
				if i%500 == 0 {
					sp := h.StartSpan("stress_span", Int("i", i))
					sp.Child("child").End()
					sp.End()
				}
			}
		}()
	}
	wg.Wait()

	want := int64(goroutines * perG)
	if got := r.Counter("stress_total").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("stress_gauge").Value(); got != float64(want) {
		t.Fatalf("gauge = %v, want %v", got, float64(want))
	}
	if got := r.Histogram("stress_hist", nil).Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	sum := int64(0)
	snap := r.Snapshot()
	for _, c := range snap.Histograms["stress_hist"].Counts {
		sum += c
	}
	if sum != want {
		t.Fatalf("bucket counts sum to %d, want %d", sum, want)
	}
	if got := int64(len(tr.Spans())); got != goroutines*(perG/500)*2 {
		t.Fatalf("spans = %d, want %d", got, goroutines*(perG/500)*2)
	}
}
