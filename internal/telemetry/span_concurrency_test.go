package telemetry

import (
	"sync"
	"testing"
)

// TestTracerConcurrentRecordExport is the regression test for the
// export-drops-spans bug: spans ended while Spans() has the buffer
// swapped out must not be lost. Run with -race to also catch locking
// regressions.
func TestTracerConcurrentRecordExport(t *testing.T) {
	const writers, perWriter = 4, 400
	tr := NewTracer()

	var wg sync.WaitGroup
	stopExport := make(chan struct{})
	var exporter sync.WaitGroup
	exporter.Add(1)
	go func() {
		defer exporter.Done()
		for {
			select {
			case <-stopExport:
				return
			default:
				tr.Spans()
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := tr.StartSpan("work")
				sp.Child("sub").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	close(stopExport)
	exporter.Wait()

	spans := tr.Spans()
	want := writers * perWriter * 2 // root + child per iteration
	if len(spans) != want {
		t.Fatalf("exported %d spans, want %d (dropped=%d)", len(spans), want, tr.Dropped())
	}
	seen := make(map[int64]bool, len(spans))
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("span ID %d exported twice", sp.ID)
		}
		seen[sp.ID] = true
	}
	if d := tr.Dropped(); d != 0 {
		t.Errorf("tracer dropped %d spans under capacity", d)
	}
}

// TestTracerOnEndSeesEverySpan: the OnEnd sink fires once per ended
// span, including spans dropped at capacity.
func TestTracerOnEndSeesEverySpan(t *testing.T) {
	tr := NewTracer()
	tr.maxSpans = 3
	var mu sync.Mutex
	var got []string
	tr.OnEnd(func(rec SpanRecord) {
		mu.Lock()
		got = append(got, rec.Name)
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		tr.StartSpan("s").End()
	}
	if len(got) != 5 {
		t.Errorf("OnEnd fired %d times, want 5", len(got))
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped %d, want 2", tr.Dropped())
	}
	if len(tr.Spans()) != 3 {
		t.Errorf("retained %d spans, want 3", len(tr.Spans()))
	}
}
