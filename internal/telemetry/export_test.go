package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with deterministic contents covering
// every metric kind.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ga_generations_total").Add(12)
	r.Counter("sim_search_iterations_total").Add(340)
	r.Gauge("ga_best_score").Set(7.25)
	r.Gauge("wlmgr_last_capacity_cpus").Set(16)
	h := r.Histogram("sim_probe_theta", []float64{0.5, 0.9, 1})
	for _, v := range []float64{0.4, 0.55, 0.95, 0.97, 1, 2} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/telemetry -run Golden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON regardless of the golden comparison.
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if snap.Counters["ga_generations_total"] != 12 {
		t.Fatalf("round-trip lost counter: %+v", snap.Counters)
	}
	checkGolden(t, "metrics.json.golden", buf.Bytes())
}

func TestWritePrometheusTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheusText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestSnapshotIsIsolated(t *testing.T) {
	r := goldenRegistry()
	snap := r.Snapshot()
	r.Counter("ga_generations_total").Inc()
	if snap.Counters["ga_generations_total"] != 12 {
		t.Fatal("snapshot must not track later writes")
	}
	if _, ok := snap.Histograms["sim_probe_theta"]; !ok {
		t.Fatal("snapshot lost the histogram")
	}
	hs := snap.Histograms["sim_probe_theta"]
	if hs.Count != 6 {
		t.Fatalf("histogram count = %d, want 6", hs.Count)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("counts len %d, bounds len %d", len(hs.Counts), len(hs.Bounds))
	}
}

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"ga.best-score": "ga_best_score",
		"1bad":          "_bad",
		"ok_name:42":    "ok_name:42",
		"sim probe θ":   "sim_probe__",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
