package telemetry

import (
	"context"
	"testing"
)

// BenchmarkTelemetryOverhead proves the no-op hooks path is effectively
// free (<5 ns/op): components can emit unconditionally. The live
// variants document what enabling telemetry costs.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("nop-counter-inc", func(b *testing.B) {
		c := OrNop(nil).Counter("x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("nop-histogram-observe", func(b *testing.B) {
		h := OrNop(nil).Histogram("x", nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i))
		}
	})
	b.Run("nop-span", func(b *testing.B) {
		h := OrNop(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.StartSpan("x").End()
		}
	})
	b.Run("nop-span-ctx", func(b *testing.B) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, sp := StartSpanCtx(ctx, nil, "x")
			sp.End()
		}
	})
	b.Run("live-counter-inc", func(b *testing.B) {
		c := New(NewRegistry(), nil).Counter("x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("live-histogram-observe", func(b *testing.B) {
		h := New(NewRegistry(), nil).Histogram("x", DurationBuckets)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%100) / 1000)
		}
	})
	b.Run("live-span", func(b *testing.B) {
		tr := NewTracer()
		h := New(nil, tr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.StartSpan("x").End()
		}
	})
	b.Run("live-counter-parallel", func(b *testing.B) {
		c := New(NewRegistry(), nil).Counter("x")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}
