package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanParentChildOrdering(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root", String("stage", "test"))
	childA := root.Child("child-a")
	grand := childA.Child("grandchild")
	grand.End()
	childA.End()
	childB := root.Child("child-b")
	childB.End()
	root.SetAttr(Int("children", 2))
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootRec := byName["root"]
	if rootRec.ParentID != 0 {
		t.Fatalf("root has parent %d", rootRec.ParentID)
	}
	if byName["child-a"].ParentID != rootRec.ID || byName["child-b"].ParentID != rootRec.ID {
		t.Fatal("children must link to the root span")
	}
	if byName["grandchild"].ParentID != byName["child-a"].ID {
		t.Fatal("grandchild must link to child-a")
	}
	for name, s := range byName {
		if s.RootID != rootRec.ID {
			t.Fatalf("%s has RootID %d, want %d", name, s.RootID, rootRec.ID)
		}
	}
	// Completion order: inner spans end first.
	order := []string{spans[0].Name, spans[1].Name, spans[2].Name, spans[3].Name}
	want := []string{"grandchild", "child-a", "child-b", "root"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
	// Child intervals nest within the parent's.
	if byName["grandchild"].Start < byName["child-a"].Start {
		t.Fatal("grandchild started before its parent")
	}
	childEnd := byName["child-a"].Start + byName["child-a"].Duration
	grandEnd := byName["grandchild"].Start + byName["grandchild"].Duration
	if grandEnd > childEnd {
		t.Fatal("grandchild ended after its parent")
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("once")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("got %d spans, want 1", got)
	}
}

func TestTracerDropsAtCapacity(t *testing.T) {
	tr := NewTracer()
	tr.maxSpans = 2
	for i := 0; i < 5; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("consolidate", Int("apps", 26))
	root.Child("generation", Int("gen", 0)).End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int64          `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative timing", ev.Name)
		}
		if ev.Tid == 0 {
			t.Fatalf("event %q has no track", ev.Name)
		}
	}
	if !strings.Contains(buf.String(), `"parent_id"`) {
		t.Fatal("child event must carry its parent_id in args")
	}
	if !strings.Contains(buf.String(), `"apps":26`) {
		t.Fatal("root attrs must appear in args")
	}
}
