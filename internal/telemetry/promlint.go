package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintPrometheusText validates a Prometheus text exposition (version
// 0.0.4) the way promlint would: metric-name and label syntax, a TYPE
// line declared once and before the samples it types, parseable sample
// values, non-negative counters, and — for histograms — float (or
// +Inf) le labels, a +Inf bucket, cumulative bucket counts that never
// decrease, and a _count equal to the +Inf bucket.
//
// It returns every problem found (joined with errors.Join), or nil for
// a clean exposition. Both the serve /metrics handler tests and the CLI
// sidecar tests run it, so a malformed exposition fails in-repo before
// a real scraper ever sees it.
func LintPrometheusText(r io.Reader) error {
	var errs []error
	types := map[string]string{}  // base metric name -> declared type
	sampled := map[string]bool{}  // base names that have emitted samples
	type histState struct {
		lastBucket float64
		lastLe     float64
		sawInf     bool
		infCount   float64
		count      float64
		sawCount   bool
	}
	hists := map[string]*histState{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					errs = append(errs, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line))
					continue
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					errs = append(errs, fmt.Errorf("line %d: invalid metric name %q in TYPE line", lineNo, name))
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					errs = append(errs, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ))
				}
				if _, dup := types[name]; dup {
					errs = append(errs, fmt.Errorf("line %d: duplicate TYPE line for %q", lineNo, name))
				}
				if sampled[name] {
					errs = append(errs, fmt.Errorf("line %d: TYPE line for %q after its samples", lineNo, name))
				}
				types[name] = typ
			}
			continue // other comments (HELP, ...) are fine
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			continue
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && types[b] == "histogram" {
				base = b
				break
			}
		}
		typ, ok := types[base]
		if !ok {
			errs = append(errs, fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, name))
			continue
		}
		sampled[base] = true

		switch typ {
		case "counter":
			if value < 0 {
				errs = append(errs, fmt.Errorf("line %d: counter %q is negative (%v)", lineNo, name, value))
			}
		case "histogram":
			st := hists[base]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1)}
				hists[base] = st
			}
			switch {
			case name == base+"_bucket":
				le, ok := labels["le"]
				if !ok {
					errs = append(errs, fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name))
					break
				}
				bound, err := parseLe(le)
				if err != nil {
					errs = append(errs, fmt.Errorf("line %d: %q: %w", lineNo, name, err))
					break
				}
				if bound <= st.lastLe {
					errs = append(errs, fmt.Errorf("line %d: %q le=%q out of order", lineNo, name, le))
				}
				st.lastLe = bound
				if value < st.lastBucket {
					errs = append(errs, fmt.Errorf("line %d: %q cumulative count decreased (%v after %v)",
						lineNo, name, value, st.lastBucket))
				}
				st.lastBucket = value
				if math.IsInf(bound, 1) {
					st.sawInf = true
					st.infCount = value
				}
			case name == base+"_count":
				st.count = value
				st.sawCount = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	for base, st := range hists {
		if !st.sawInf {
			errs = append(errs, fmt.Errorf("histogram %q has no +Inf bucket", base))
		} else if st.sawCount && st.count != st.infCount {
			errs = append(errs, fmt.Errorf("histogram %q: _count %v != +Inf bucket %v", base, st.count, st.infCount))
		}
	}
	return errors.Join(errs...)
}

// parseSample splits "name{label="v",...} value" into its parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	return name, labels, value, nil
}

// parseLabels parses `k="v",k2="v2"` (the content between braces).
func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		// Scan the quoted value, honouring \" \\ \n escapes.
		var val strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label %q", key)
				}
				i++
				switch s[i] {
				case '"', '\\':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func parseLe(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf", "NaN":
		return 0, fmt.Errorf("le=%q is not a valid bucket bound", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("le=%q is not a float", s)
	}
	return v, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
