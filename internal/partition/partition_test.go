package partition

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// synthSeries builds n deterministic pseudo-demand series of the given
// length: a mix of phase-shifted diurnal shapes and noise so the
// correlation structure is non-trivial.
func synthSeries(n, slots int, seed int64) ([]string, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]string, n)
	series := make([][]float64, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("app-%03d", i+1)
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.5 + rng.Float64()
		s := make([]float64, slots)
		for j := range s {
			s[j] = 1 + amp*math.Sin(2*math.Pi*float64(j)/24+phase) + 0.1*rng.Float64()
		}
		series[i] = s
	}
	return ids, series
}

// groupIDs renders a clustering as sorted ID sets, sorted, for
// order-insensitive comparison.
func groupIDs(ids []string, res *Result) [][]string {
	out := make([][]string, len(res.Groups))
	for i, g := range res.Groups {
		names := make([]string, len(g))
		for j, idx := range g {
			names[j] = ids[idx]
		}
		sort.Strings(names)
		out[i] = names
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// TestPropertyPartitionExactlyOnce: every application lands in exactly
// one sub-pool, no sub-pool is empty or over capacity, and the group
// count is ceil(n / MaxApps).
func TestPropertyPartitionExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, maxApps int }{
		{1, 1}, {1, 10}, {5, 2}, {26, 13}, {26, 5}, {40, 7}, {97, 10},
	} {
		ids, series := synthSeries(tc.n, 96, 7)
		res, err := Split(ids, series, Config{MaxApps: tc.maxApps})
		if err != nil {
			t.Fatalf("n=%d max=%d: %v", tc.n, tc.maxApps, err)
		}
		wantGroups := (tc.n + tc.maxApps - 1) / tc.maxApps
		if len(res.Groups) != wantGroups {
			t.Errorf("n=%d max=%d: %d groups, want %d", tc.n, tc.maxApps, len(res.Groups), wantGroups)
		}
		seen := make(map[int]int)
		for gi, g := range res.Groups {
			if len(g) == 0 {
				t.Errorf("n=%d max=%d: empty group %d", tc.n, tc.maxApps, gi)
			}
			if len(g) > tc.maxApps {
				t.Errorf("n=%d max=%d: group %d has %d members", tc.n, tc.maxApps, gi, len(g))
			}
			if !sort.IntsAreSorted(g) {
				t.Errorf("n=%d max=%d: group %d not sorted", tc.n, tc.maxApps, gi)
			}
			for _, idx := range g {
				seen[idx]++
			}
		}
		for i := 0; i < tc.n; i++ {
			if seen[i] != 1 {
				t.Errorf("n=%d max=%d: app %d appears %d times", tc.n, tc.maxApps, i, seen[i])
			}
		}
	}
}

// TestPropertyPartitionReorderInvariant: permuting the input
// applications relabels the groups but never changes their composition.
func TestPropertyPartitionReorderInvariant(t *testing.T) {
	ids, series := synthSeries(30, 168, 11)
	base, err := Split(ids, series, Config{MaxApps: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := groupIDs(ids, base)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(ids))
		pids := make([]string, len(ids))
		pseries := make([][]float64, len(ids))
		for i, p := range perm {
			pids[i] = ids[p]
			pseries[i] = series[p]
		}
		res, err := Split(pids, pseries, Config{MaxApps: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got := groupIDs(pids, res); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: clustering changed under reordering\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestPropertyPartitionSingleGroup: when everything fits in one
// sub-pool the result is the identity grouping.
func TestPropertyPartitionSingleGroup(t *testing.T) {
	ids, series := synthSeries(9, 48, 3)
	res, err := Split(ids, series, Config{MaxApps: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || len(res.Groups[0]) != 9 {
		t.Fatalf("Groups = %v, want one group of 9", res.Groups)
	}
	for i, idx := range res.Groups[0] {
		if idx != i {
			t.Fatalf("identity group expected, got %v", res.Groups[0])
		}
	}
}

// TestPartitionDeterminism: same inputs, same clustering, repeatedly.
func TestPartitionDeterminism(t *testing.T) {
	ids, series := synthSeries(50, 168, 2006)
	base, err := Split(ids, series, Config{MaxApps: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := Split(ids, series, Config{MaxApps: 12})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("run %d drifted: %v vs %v", i, res.Groups, base.Groups)
		}
	}
}

// TestPartitionValidation: every malformed input fails with a
// structured FieldError, never a panic or a silent success.
func TestPartitionValidation(t *testing.T) {
	ids, series := synthSeries(4, 24, 1)
	tests := []struct {
		name   string
		ids    []string
		series [][]float64
		cfg    Config
		field  string
	}{
		{"bad max apps", ids, series, Config{MaxApps: 0}, "MaxApps"},
		{"negative buckets", ids, series, Config{MaxApps: 2, Buckets: -1}, "Buckets"},
		{"no apps", nil, nil, Config{MaxApps: 2}, "ids"},
		{"length mismatch", ids, series[:3], Config{MaxApps: 2}, "series"},
		{"empty id", []string{"a", ""}, series[:2], Config{MaxApps: 1}, "ids"},
		{"duplicate id", []string{"a", "a"}, series[:2], Config{MaxApps: 1}, "ids"},
		{"empty series", []string{"a", "b"}, [][]float64{{1, 2}, {}}, Config{MaxApps: 1}, "series"},
		{"ragged series", []string{"a", "b"}, [][]float64{{1, 2}, {1}}, Config{MaxApps: 1}, "series"},
		{"nan sample", []string{"a", "b"}, [][]float64{{1, 2}, {1, math.NaN()}}, Config{MaxApps: 1}, "series"},
		{"inf sample", []string{"a", "b"}, [][]float64{{1, 2}, {math.Inf(1), 1}}, Config{MaxApps: 1}, "series"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Split(tt.ids, tt.series, tt.cfg)
			if err == nil {
				t.Fatal("Split accepted malformed input")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a FieldError: %v", err)
			}
			if !hasField(err, tt.field) {
				t.Errorf("no FieldError for %q in %v", tt.field, err)
			}
		})
	}
}

// hasField reports whether any FieldError in a joined error names the
// field.
func hasField(err error, field string) bool {
	var fe *FieldError
	if errors.As(err, &fe) && fe.Field == field {
		return true
	}
	type unwrapper interface{ Unwrap() []error }
	if u, ok := err.(unwrapper); ok {
		for _, e := range u.Unwrap() {
			if hasField(e, field) {
				return true
			}
		}
	}
	return false
}

// TestPartitionZeroVariance: constant (zero-variance) demand series are
// legal inputs — their correlation is 0 by convention — and cluster
// without error.
func TestPartitionZeroVariance(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	flat := []float64{2, 2, 2, 2, 2, 2}
	series := [][]float64{flat, flat, flat, flat}
	res, err := Split(ids, series, Config{MaxApps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(res.Groups))
	}
}

// TestPartitionAntiCorrelatedSeparation: with two clearly opposite
// demand shapes and capacity for two sub-pools of two, each sub-pool
// pairs one day-shape with one night-shape — the multiplexing-friendly
// grouping.
func TestPartitionAntiCorrelatedSeparation(t *testing.T) {
	slots := 48
	day := make([]float64, slots)
	night := make([]float64, slots)
	for j := range day {
		day[j] = 1 + math.Sin(2*math.Pi*float64(j)/24)
		night[j] = 1 - math.Sin(2*math.Pi*float64(j)/24)
	}
	jitter := func(s []float64, eps float64) []float64 {
		out := make([]float64, len(s))
		for i, v := range s {
			out[i] = v + eps*float64(i%3)
		}
		return out
	}
	ids := []string{"day-1", "day-2", "night-1", "night-2"}
	series := [][]float64{day, jitter(day, 0.01), night, jitter(night, 0.01)}
	res, err := Split(ids, series, Config{MaxApps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		if len(g) != 2 {
			t.Fatalf("unbalanced groups: %v", res.Groups)
		}
		a, b := ids[g[0]], ids[g[1]]
		if a[:3] == b[:3] {
			t.Errorf("correlated pair %s/%s co-located; groups %v", a, b, res.Groups)
		}
	}
}
