// Package partition clusters application workloads into sub-pools by
// demand correlation, the decomposition step of fleet-scale hierarchical
// placement. The paper's consolidation exercise is a single pool of ~26
// applications; planning thousands of applications in one genetic search
// is hopeless (the assignment space grows as servers^apps), but the
// provisioning-system literature the paper builds on partitions streams
// by class before solving placement. This package does the trace-driven
// analogue: applications whose demands do not rise together are the ones
// statistical multiplexing wants co-located, so the clusterer greedily
// grows sub-pools of least-correlated applications and a per-sub-pool
// consolidation then solves a tractable instance.
//
// Everything here is deterministic in the input contents: the clustering
// is computed in a canonical ID-sorted order, ties break by application
// ID, and no randomness is consumed — reordering the input applications
// yields the same sub-pools (see the property tests).
package partition

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ropus/internal/stats"
)

// DefaultBuckets is the fingerprint resolution used when Config.Buckets
// is zero: one bucket per hour of the week, so the correlation distance
// reflects the diurnal/weekly shape that drives multiplexing gains while
// keeping the clustering O(apps · partitions · 168) regardless of how
// long the traces are.
const DefaultBuckets = 168

// Config tunes the clustering.
type Config struct {
	// MaxApps caps the number of applications per sub-pool; the number
	// of sub-pools is ceil(apps / MaxApps). Required, >= 1.
	MaxApps int
	// Buckets is the demand-fingerprint resolution (0 selects
	// DefaultBuckets). Series shorter than the resolution use one bucket
	// per sample.
	Buckets int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.MaxApps < 1 {
		errs = append(errs, &FieldError{Field: "MaxApps", Value: c.MaxApps, Reason: "must be >= 1"})
	}
	if c.Buckets < 0 {
		errs = append(errs, &FieldError{Field: "Buckets", Value: c.Buckets, Reason: "must be >= 0"})
	}
	return errors.Join(errs...)
}

// buckets resolves the effective fingerprint resolution.
func (c Config) buckets() int {
	if c.Buckets > 0 {
		return c.Buckets
	}
	return DefaultBuckets
}

// FieldError pinpoints one invalid clustering input, mirroring
// workload.FieldError: fuzzers and callers recover it with errors.As to
// check that malformed inputs fail with a structured reason instead of
// a panic or a poisoned result.
type FieldError struct {
	// App is the offending application's ID ("" for config fields or
	// when the ID itself is the problem, in which case Index locates it).
	App string
	// Index is the application's position in the input (-1 for config
	// fields).
	Index int
	// Field names what was rejected (MaxApps, Buckets, ids, series).
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what the field violated.
	Reason string
}

// Error implements the error interface.
func (e *FieldError) Error() string {
	where := e.App
	if where == "" && e.Index >= 0 {
		where = fmt.Sprintf("#%d", e.Index)
	}
	if where != "" {
		return fmt.Sprintf("partition: app %s: %s = %v: %s", where, e.Field, e.Value, e.Reason)
	}
	return fmt.Sprintf("partition: %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Result is a clustering: every input application appears in exactly
// one group.
type Result struct {
	// Groups holds the sub-pools as indices into the input slices. Each
	// group is sorted ascending; the groups are ordered by their
	// lexicographically smallest member ID, so the layout is stable
	// under reordering of the input.
	Groups [][]int
	// Buckets is the effective fingerprint resolution used.
	Buckets int
}

// Split clusters the applications into ceil(len(ids)/MaxApps) sub-pools
// of at most MaxApps members each, grouping applications whose demand
// fingerprints are least correlated. ids[i] names the application whose
// per-slot total demand is series[i]; all series must be the same
// non-zero length and finite.
//
// The algorithm spreads correlated applications apart and packs
// anti-correlated ones together, the grouping statistical multiplexing
// rewards: the highest-variance application seeds the first cluster and
// each further seed is the application most correlated with the seeds
// already chosen (a family of co-moving demands must land in different
// sub-pools); the remaining applications — visited in canonical ID
// order — then join the sub-pool whose aggregate fingerprint they
// correlate with least, among those with free capacity. Zero-variance
// fingerprints have correlation 0 by the stats package's convention.
func Split(ids []string, series [][]float64, cfg Config) (*Result, error) {
	if err := validate(ids, series, cfg); err != nil {
		return nil, err
	}
	n := len(ids)
	groups := int((n + cfg.MaxApps - 1) / cfg.MaxApps)
	res := &Result{Buckets: cfg.buckets()}
	if groups == 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		res.Groups = [][]int{all}
		return res, nil
	}

	// Canonical order: indices sorted by application ID. All further
	// iteration and tie-breaking follows this order, which is what makes
	// the clustering invariant under input reordering.
	canon := make([]int, n)
	for i := range canon {
		canon[i] = i
	}
	sort.Slice(canon, func(a, b int) bool { return ids[canon[a]] < ids[canon[b]] })

	fps := make([][]float64, n)
	for i := range fps {
		fps[i] = fingerprint(series[i], cfg.buckets())
	}

	seeds := pickSeeds(canon, fps, groups)
	clusters := assign(canon, fps, seeds, n, groups)

	for _, c := range clusters {
		sort.Ints(c.members)
	}
	// Order the groups by smallest member ID so the output layout does
	// not depend on seed discovery order details.
	sort.Slice(clusters, func(a, b int) bool {
		return ids[minIDIndex(clusters[a].members, ids)] < ids[minIDIndex(clusters[b].members, ids)]
	})
	res.Groups = make([][]int, len(clusters))
	for i, c := range clusters {
		res.Groups[i] = c.members
	}
	return res, nil
}

// validate checks the clustering inputs, joining one FieldError per
// violation so a malformed fleet fails with every reason at once.
func validate(ids []string, series [][]float64, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var errs []error
	if len(ids) == 0 {
		errs = append(errs, &FieldError{Index: -1, Field: "ids", Value: 0, Reason: "no applications"})
	}
	if len(series) != len(ids) {
		errs = append(errs, &FieldError{Index: -1, Field: "series", Value: len(series),
			Reason: fmt.Sprintf("must have one series per application (%d)", len(ids))})
		return errors.Join(errs...)
	}
	seen := make(map[string]int, len(ids))
	slots := -1
	for i, id := range ids {
		if id == "" {
			errs = append(errs, &FieldError{Index: i, Field: "ids", Value: id, Reason: "application needs an ID"})
		} else if prev, dup := seen[id]; dup {
			errs = append(errs, &FieldError{App: id, Index: i, Field: "ids", Value: id,
				Reason: fmt.Sprintf("duplicate of application #%d", prev)})
		} else {
			seen[id] = i
		}
		s := series[i]
		if len(s) == 0 {
			errs = append(errs, &FieldError{App: id, Index: i, Field: "series", Value: 0, Reason: "empty demand series"})
			continue
		}
		if slots < 0 {
			slots = len(s)
		} else if len(s) != slots {
			errs = append(errs, &FieldError{App: id, Index: i, Field: "series", Value: len(s),
				Reason: fmt.Sprintf("must have %d slots like the first series", slots)})
		}
		for j, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				errs = append(errs, &FieldError{App: id, Index: i, Field: "series", Value: v,
					Reason: fmt.Sprintf("sample %d is not finite", j)})
				break
			}
		}
	}
	return errors.Join(errs...)
}

// fingerprint downsamples a series to b mean buckets (or one bucket per
// sample when the series is shorter).
func fingerprint(s []float64, b int) []float64 {
	if b > len(s) {
		b = len(s)
	}
	fp := make([]float64, b)
	for j := 0; j < b; j++ {
		lo, hi := j*len(s)/b, (j+1)*len(s)/b
		sum := 0.0
		for _, v := range s[lo:hi] {
			sum += v
		}
		fp[j] = sum / float64(hi-lo)
	}
	return fp
}

// distance is the correlation distance 1 - r between two fingerprints:
// 0 for perfectly co-moving demands, 2 for perfectly anti-correlated
// ones. Lengths always match here, so stats.Correlation cannot fail —
// but denormal-range samples can underflow the variance product to 0
// while each variance alone is nonzero, yielding a NaN/Inf ratio
// (found by FuzzPartition); such pairs get the neutral distance 1, the
// same convention as zero-variance inputs. r is also clamped to [-1,1]
// against rounding excursions so distances stay totally ordered.
func distance(a, b []float64) float64 {
	r, err := stats.Correlation(a, b)
	if err != nil || math.IsNaN(r) || math.IsInf(r, 0) {
		return 1
	}
	return 1 - math.Max(-1, math.Min(1, r))
}

// variance returns the population variance of a fingerprint.
func variance(fp []float64) float64 {
	mean := 0.0
	for _, v := range fp {
		mean += v
	}
	mean /= float64(len(fp))
	out := 0.0
	for _, v := range fp {
		d := v - mean
		out += d * d
	}
	return out / float64(len(fp))
}

// pickSeeds chooses one seed application per cluster: the
// highest-variance application first (the strongest signal), then —
// because applications whose demands rise together are the worst
// co-tenants and must end up in different sub-pools — whatever
// remaining application is most correlated (smallest minimum distance)
// with the seeds already chosen. Ties break toward the earlier
// application in canonical ID order.
func pickSeeds(canon []int, fps [][]float64, groups int) []int {
	first := canon[0]
	bestVar := variance(fps[first])
	for _, i := range canon[1:] {
		if v := variance(fps[i]); v > bestVar {
			first, bestVar = i, v
		}
	}
	seeds := []int{first}
	isSeed := map[int]bool{first: true}
	minDist := make(map[int]float64, len(canon))
	for _, i := range canon {
		minDist[i] = distance(fps[i], fps[first])
	}
	for len(seeds) < groups {
		next, nextDist := -1, math.Inf(1)
		for _, i := range canon {
			if isSeed[i] {
				continue
			}
			if d := minDist[i]; d < nextDist {
				next, nextDist = i, d
			}
		}
		seeds = append(seeds, next)
		isSeed[next] = true
		for _, i := range canon {
			if d := distance(fps[i], fps[next]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return seeds
}

// cluster is one sub-pool under construction: its members and the
// running mean of their fingerprints.
type cluster struct {
	members  []int
	centroid []float64
}

// add folds one fingerprint into the cluster's centroid.
func (c *cluster) add(i int, fp []float64) {
	n := float64(len(c.members))
	c.members = append(c.members, i)
	for j := range c.centroid {
		c.centroid[j] = (c.centroid[j]*n + fp[j]) / (n + 1)
	}
}

// assign distributes the non-seed applications, in canonical ID order,
// to the free-capacity cluster whose aggregate fingerprint they
// correlate with *least* (maximum correlation distance): joining the
// sub-pool one's demand is anti-correlated with is what lets the
// per-partition consolidation multiplex. Capacity is ceil(n/groups),
// balancing the sub-pools so every per-partition search gets a
// comparable instance; it never exceeds MaxApps.
func assign(canon []int, fps [][]float64, seeds []int, n, groups int) []*cluster {
	capacity := (n + groups - 1) / groups
	clusters := make([]*cluster, len(seeds))
	seeded := make(map[int]bool, len(seeds))
	for k, s := range seeds {
		clusters[k] = &cluster{centroid: make([]float64, len(fps[s]))}
		clusters[k].add(s, fps[s])
		seeded[s] = true
	}
	for _, i := range canon {
		if seeded[i] {
			continue
		}
		best, bestDist := -1, math.Inf(-1)
		for k, c := range clusters {
			if len(c.members) >= capacity {
				continue
			}
			if d := distance(fps[i], c.centroid); d > bestDist {
				best, bestDist = k, d
			}
		}
		clusters[best].add(i, fps[i])
	}
	return clusters
}

// minIDIndex returns the member whose ID sorts first.
func minIDIndex(members []int, ids []string) int {
	best := members[0]
	for _, m := range members[1:] {
		if ids[m] < ids[best] {
			best = m
		}
	}
	return best
}
