package partition

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"
)

// FuzzPartition drives Split with adversarial inputs — NaN/Inf samples,
// degenerate (constant, tiny, ragged-looking) series, single-app and
// over-partitioned configurations — and checks the contract: either a
// structured FieldError, or a clustering in which every application
// appears exactly once within balanced, capacity-respecting groups.
// Raw bytes are reinterpreted as float64 bits, so non-finite and
// denormal values appear naturally.
func FuzzPartition(f *testing.F) {
	f.Add(4, 2, 0, []byte{})
	f.Add(1, 1, 24, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(26, 5, 168, []byte{0xff, 0xf0, 0, 0, 0, 0, 0, 0}) // +Inf bit pattern
	f.Add(7, 3, 8, []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1})    // NaN bit pattern
	f.Add(9, 0, 4, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(3, 200, 1, []byte{42})
	// Regression: denormal-range samples underflow the variance product
	// inside Pearson r to 0, making the correlation NaN.
	f.Add(26, 5, 168, []byte("0000a0000"))
	f.Fuzz(func(t *testing.T, nApps, maxApps, buckets int, raw []byte) {
		// Bound the instance so the fuzzer explores structure, not RAM.
		if nApps < 0 {
			nApps = -nApps
		}
		nApps %= 48
		if buckets < -4 || buckets > 512 {
			buckets %= 512
		}
		slots := 1 + len(raw)%64

		ids := make([]string, nApps)
		series := make([][]float64, nApps)
		for i := range ids {
			ids[i] = fmt.Sprintf("app-%02d", i)
			s := make([]float64, slots)
			for j := range s {
				off := (i*slots + j) * 8
				if len(raw) >= 8 {
					var b [8]byte
					for k := range b {
						b[k] = raw[(off+k)%len(raw)]
					}
					s[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
				} else {
					s[j] = float64(i + j)
				}
			}
			series[i] = s
		}

		res, err := Split(ids, series, Config{MaxApps: maxApps, Buckets: buckets})
		if err != nil {
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("non-structured error: %v", err)
			}
			return
		}
		if nApps == 0 || maxApps < 1 {
			t.Fatalf("degenerate input accepted: nApps=%d maxApps=%d", nApps, maxApps)
		}
		wantGroups := (nApps + maxApps - 1) / maxApps
		if len(res.Groups) != wantGroups {
			t.Fatalf("%d groups, want %d", len(res.Groups), wantGroups)
		}
		seen := make(map[int]bool, nApps)
		for gi, g := range res.Groups {
			if len(g) == 0 || len(g) > maxApps {
				t.Fatalf("group %d has %d members (max %d)", gi, len(g), maxApps)
			}
			for _, idx := range g {
				if idx < 0 || idx >= nApps || seen[idx] {
					t.Fatalf("app index %d missing, out of range, or duplicated", idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != nApps {
			t.Fatalf("clustered %d of %d apps", len(seen), nApps)
		}
	})
}
