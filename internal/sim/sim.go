// Package sim implements the workload placement service's simulator
// component (paper section VI-A, Figure 4).
//
// The simulator emulates the assignment of several application workloads
// to a single resource. It replays the per-slot allocation-requirement
// traces produced by the portfolio translation, schedules capacity in
// workload-manager order (CoS1 first, remaining capacity to CoS2, then
// to backlogged CoS2 demand), measures the resource access probability
//
//	θ = min over (week, slot) of  Σ_days min(A, L) / Σ_days A
//
// and checks that demands not satisfied on request are satisfied within
// the commitment's deadline of s slots. A binary search over capacity
// finds the required capacity: the smallest capacity satisfying the CoS
// commitments.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ropus/internal/faultinject"
	"ropus/internal/qos"
	"ropus/internal/telemetry"
)

// Workload is one application's translated allocation requirements on a
// resource: per-slot CPU allocations for each class of service. Both
// slices must have the same length across all workloads replayed
// together.
type Workload struct {
	AppID string
	CoS1  []float64
	CoS2  []float64
}

// Validate checks the workload's structural invariants.
func (w Workload) Validate() error {
	if w.AppID == "" {
		return errors.New("sim: workload needs an AppID")
	}
	if len(w.CoS1) == 0 || len(w.CoS1) != len(w.CoS2) {
		return fmt.Errorf("sim: workload %q needs equal-length, non-empty CoS traces (got %d/%d)",
			w.AppID, len(w.CoS1), len(w.CoS2))
	}
	for i := range w.CoS1 {
		if w.CoS1[i] < 0 || w.CoS2[i] < 0 ||
			math.IsNaN(w.CoS1[i]) || math.IsNaN(w.CoS2[i]) ||
			math.IsInf(w.CoS1[i], 0) || math.IsInf(w.CoS2[i], 0) {
			return fmt.Errorf("sim: workload %q has an invalid allocation at slot %d", w.AppID, i)
		}
	}
	return nil
}

// Config parameterizes a replay.
type Config struct {
	// Capacity is the resource's CPU capacity L.
	Capacity float64
	// Commitment is the pool's CoS2 access commitment (θ and deadline).
	Commitment qos.PoolCommitment
	// SlotsPerDay is T, the number of measurement slots per day; the
	// θ statistic is grouped by (week, time-of-day slot).
	SlotsPerDay int
	// DeadlineSlots is the commitment deadline s expressed in slots.
	DeadlineSlots int
	// Hooks receives replay and search telemetry; nil disables it.
	Hooks telemetry.Hooks
	// Inject is the test-only fault injector consulted at the
	// "sim.replay" and "sim.required_capacity" points; nil (the
	// production default) injects nothing.
	Inject faultinject.Injector
	// InjectKey is the occurrence key passed to Inject (for example the
	// server ID the replay is evaluating).
	InjectKey string
}

// Validate checks the replay configuration.
func (c Config) Validate() error {
	if c.Capacity < 0 || math.IsNaN(c.Capacity) || math.IsInf(c.Capacity, 0) {
		return fmt.Errorf("sim: bad capacity %v", c.Capacity)
	}
	if c.SlotsPerDay <= 0 {
		return fmt.Errorf("sim: SlotsPerDay %d <= 0", c.SlotsPerDay)
	}
	if c.DeadlineSlots < 0 {
		return fmt.Errorf("sim: DeadlineSlots %d < 0", c.DeadlineSlots)
	}
	return c.Commitment.Validate()
}

// Result reports the outcome of replaying a set of workloads against a
// capacity.
type Result struct {
	// CoS1Peak is the peak aggregate CoS1 allocation. CoS1 is
	// guaranteed, so the workloads cannot fit unless CoS1Peak <=
	// capacity.
	CoS1Peak float64
	// CoS1OK reports whether the CoS1 guarantee holds.
	CoS1OK bool
	// Theta is the measured resource access probability for CoS2.
	Theta float64
	// DeadlineOK reports whether every CoS2 deficit was served within
	// the deadline.
	DeadlineOK bool
	// UnservedTotal is the total CoS2 demand that missed its deadline,
	// in CPU-slots.
	UnservedTotal float64
	// PeakAggregate is the peak of the total (CoS1+CoS2) allocation
	// requirement, an upper bound on useful capacity.
	PeakAggregate float64
}

// Fits reports whether the replay satisfied the commitment θ.
func (r Result) Fits(required float64) bool {
	return r.CoS1OK && r.DeadlineOK && r.Theta >= required-1e-12
}

// Aggregate holds the per-slot aggregate CoS1/CoS2 allocations of a
// workload group; computing it once amortizes replays across a binary
// search over capacity. Construct with NewAggregate.
type Aggregate struct {
	cos1, cos2 []float64
	cos1Peak   float64
	totalPeak  float64
}

// NewAggregate precomputes per-slot aggregate allocations. All
// workloads must be valid and aligned.
func NewAggregate(workloads []Workload) (*Aggregate, error) {
	if len(workloads) == 0 {
		return nil, errors.New("sim: no workloads")
	}
	n := len(workloads[0].CoS1)
	agg := &Aggregate{cos1: make([]float64, n), cos2: make([]float64, n)}
	for _, w := range workloads {
		if err := w.Validate(); err != nil {
			return nil, err
		}
		if len(w.CoS1) != n {
			return nil, fmt.Errorf("sim: workload %q has %d slots, want %d", w.AppID, len(w.CoS1), n)
		}
		for i := range w.CoS1 {
			agg.cos1[i] += w.CoS1[i]
			agg.cos2[i] += w.CoS2[i]
		}
	}
	for i := range agg.cos1 {
		if agg.cos1[i] > agg.cos1Peak {
			agg.cos1Peak = agg.cos1[i]
		}
		if total := agg.cos1[i] + agg.cos2[i]; total > agg.totalPeak {
			agg.totalPeak = total
		}
	}
	return agg, nil
}

// Slots returns the number of replay slots.
func (a *Aggregate) Slots() int { return len(a.cos1) }

// CoS1Peak returns the peak aggregate CoS1 allocation.
func (a *Aggregate) CoS1Peak() float64 { return a.cos1Peak }

// TotalPeak returns the peak aggregate CoS1+CoS2 allocation.
func (a *Aggregate) TotalPeak() float64 { return a.totalPeak }

// backlogEntry is CoS2 demand that was not satisfied on request and must
// be served by slot due.
type backlogEntry struct {
	due    int
	amount float64
}

// groupSums accumulates the per-(week, time-of-day-slot) requested and
// served totals behind the θ statistic.
type groupSums struct{ requested, served float64 }

// Replayer carries the scratch buffers one replay needs (the θ group
// sums and the CoS2 backlog queue), so a capacity search or a batch of
// evaluations can reuse them instead of re-allocating per probe. A
// Replayer is not safe for concurrent use; use one per goroutine (or
// let Replay draw from the internal pool).
type Replayer struct {
	groups  []groupSums
	backlog []backlogEntry
}

// NewReplayer returns an empty Replayer; buffers grow on first use and
// are retained across replays.
func NewReplayer() *Replayer { return &Replayer{} }

// replayerPool recycles scratch buffers for the plain Replay entry
// point, which keeps its allocation-free hot path without an API
// change.
var replayerPool = sync.Pool{New: func() any { return NewReplayer() }}

// Replay replays the aggregate against cfg.Capacity and computes the
// resource access CoS statistics (Figure 4's simulator loop). Scratch
// buffers come from an internal pool; use ReplayWith to manage them
// explicitly.
func (a *Aggregate) Replay(cfg Config) (Result, error) {
	r := replayerPool.Get().(*Replayer)
	res, err := a.ReplayWith(r, cfg)
	replayerPool.Put(r)
	return res, err
}

// ReplayWith is Replay using the caller's scratch buffers.
func (a *Aggregate) ReplayWith(r *Replayer, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	corrupted := false
	if cfg.Inject != nil {
		o := cfg.Inject.Hit("sim.replay", cfg.InjectKey)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return Result{}, fmt.Errorf("sim: replay %q: %w", cfg.InjectKey, o.Err)
		}
		// A corruption fault poisons the first slot's CoS2 request with
		// NaN, modelling a corrupted trace slot reaching the replay; the
		// NaN propagates into θ and trips the guard below.
		corrupted = o.Corrupt
	}
	const eps = 1e-9
	res := Result{
		CoS1Peak:      a.cos1Peak,
		CoS1OK:        a.cos1Peak <= cfg.Capacity+eps,
		DeadlineOK:    true,
		PeakAggregate: a.totalPeak,
	}

	t := cfg.SlotsPerDay
	n := a.Slots()

	// Per (week, slot) sums for the θ statistic.
	weeks := n / (7 * t)
	if weeks == 0 {
		weeks = 1 // partial trace: treat everything as week 0
	}
	need := weeks * t
	if cap(r.groups) < need {
		r.groups = make([]groupSums, need)
	} else {
		r.groups = r.groups[:need]
		for i := range r.groups {
			r.groups[i] = groupSums{}
		}
	}
	groups := r.groups

	backlog := r.backlog[:0]
	head := 0 // index of the first live backlog entry
	deadlineMisses := int64(0)

	for i := 0; i < n; i++ {
		avail := cfg.Capacity - a.cos1[i]
		if avail < 0 {
			avail = 0
		}
		requested := a.cos2[i]
		if corrupted && i == 0 {
			requested = math.NaN()
		}
		served := math.Min(requested, avail)
		avail -= served

		// Serve backlogged deficits oldest-first with leftover capacity.
		for head < len(backlog) && avail > eps {
			take := math.Min(backlog[head].amount, avail)
			backlog[head].amount -= take
			avail -= take
			if backlog[head].amount <= eps {
				head++
			}
		}
		// Entries due this slot that still carry demand have missed the
		// deadline.
		for head < len(backlog) && backlog[head].due <= i {
			if backlog[head].amount > eps {
				res.DeadlineOK = false
				res.UnservedTotal += backlog[head].amount
				deadlineMisses++
			}
			head++
		}
		if deficit := requested - served; deficit > eps {
			if cfg.DeadlineSlots == 0 {
				res.DeadlineOK = false
				res.UnservedTotal += deficit
				deadlineMisses++
			} else {
				backlog = append(backlog, backlogEntry{due: i + cfg.DeadlineSlots, amount: deficit})
			}
		}

		// θ bookkeeping grouped by (week, time-of-day slot).
		w := i / (7 * t)
		if w >= weeks {
			w = weeks - 1
		}
		g := w*t + i%t
		groups[g].requested += requested
		groups[g].served += served
	}
	// Deficits still pending at the end of the trace are not counted as
	// violations: their deadlines lie beyond the observation window.

	// Keep whatever capacity the backlog queue grew to for the next
	// replay through this Replayer.
	r.backlog = backlog[:0]

	res.Theta = 1
	for _, g := range groups {
		if math.IsNaN(g.requested) || math.IsNaN(g.served) {
			// Corrupted (NaN) slots would otherwise make the θ
			// comparisons silently false; surface them as an error the
			// callers' skip-and-continue paths can record.
			return Result{}, errors.New("sim: replay produced NaN statistics (corrupted trace slot?)")
		}
		ratio := 1.0
		if g.requested > eps {
			ratio = g.served / g.requested
		}
		if ratio < res.Theta {
			res.Theta = ratio
		}
	}

	h := telemetry.OrNop(cfg.Hooks)
	h.Counter("sim_replays_total").Inc()
	h.Counter("sim_replay_slots_total").Add(int64(n))
	h.Counter("sim_deadline_misses_total").Add(deadlineMisses)
	if !res.DeadlineOK {
		h.Counter("sim_deadline_violation_replays_total").Inc()
	}
	h.Histogram("sim_probe_theta", telemetry.RatioBuckets).Observe(res.Theta)
	return res, nil
}

// SearchOutcome is the detailed result of a required-capacity search.
type SearchOutcome struct {
	// Capacity is the capacity the search settled on.
	Capacity float64
	// Result is the replay outcome at Capacity.
	Result Result
	// Feasible reports whether the commitments are satisfied within the
	// search limit.
	Feasible bool
	// Unclamped reports that the bisection ran over the limit-independent
	// interval [CoS1Peak, TotalPeak] — the limit was at least TotalPeak
	// and no escalation to the limit was needed — so the same outcome
	// would be produced, bit for bit, by a search against any limit >=
	// TotalPeak. Cross-capacity caches key warm starts on this flag.
	Unclamped bool
}

// RequiredCapacity finds the smallest capacity (within tol CPUs) that
// satisfies the CoS commitments, searching [CoS1Peak, limit] by
// bisection as in Figure 4. It returns the capacity and the replay
// result at that capacity. If even the limit does not satisfy the
// commitments, ok is false and the returned result describes the replay
// at the limit. Cancelling ctx aborts the search between bisection
// iterations with a wrapped ctx error.
func (a *Aggregate) RequiredCapacity(ctx context.Context, cfg Config, limit, tol float64) (capacity float64, res Result, ok bool, err error) {
	out, err := a.Search(ctx, cfg, limit, tol)
	return out.Capacity, out.Result, out.Feasible, err
}

// Search is RequiredCapacity with the full outcome detail.
//
// The search normally runs in batched K-ary form: instead of replaying
// one bisection midpoint per pass over the trace, it evaluates the next
// several levels of the bisection tree in a single BatchReplayer pass
// and then walks the tree with the probe outcomes in hand, cutting
// trace passes by ~5× while returning the bit-identical capacity and
// Result the plain bisection would (the probe capacities and the
// decisions taken at them are exactly the bisection's own). When a
// fault injector is attached the scalar bisection runs instead, so
// "sim.replay" injection points keep firing once per probe.
func (a *Aggregate) Search(ctx context.Context, cfg Config, limit, tol float64) (SearchOutcome, error) {
	if tol <= 0 {
		return SearchOutcome{}, fmt.Errorf("sim: tolerance %v <= 0", tol)
	}
	if limit <= 0 {
		return SearchOutcome{}, fmt.Errorf("sim: capacity limit %v <= 0", limit)
	}
	if err := ctx.Err(); err != nil {
		return SearchOutcome{}, fmt.Errorf("sim: required-capacity search: %w", err)
	}
	if cfg.Inject != nil {
		o := cfg.Inject.Hit("sim.required_capacity", cfg.InjectKey)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return SearchOutcome{}, fmt.Errorf("sim: required-capacity search %q: %w", cfg.InjectKey, o.Err)
		}
		return a.searchBisect(ctx, cfg, limit, tol)
	}
	return a.searchKary(ctx, cfg, limit, tol)
}

// searchBisect is the scalar reference bisection: one replay per probe.
// It remains the path under fault injection (occurrence counting must
// see every probe) and the reference the batched-search parity suite
// pins against.
func (a *Aggregate) searchBisect(ctx context.Context, cfg Config, limit, tol float64) (SearchOutcome, error) {
	r := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(r)
	h := telemetry.OrNop(cfg.Hooks)
	h.Counter("sim_searches_total").Inc()
	iterations := h.Counter("sim_search_iterations_total")
	// The workloads cannot fit at any capacity <= limit if the
	// guaranteed class alone exceeds it.
	if a.cos1Peak > limit {
		cfg.Capacity = limit
		res, err := a.ReplayWith(r, cfg)
		h.Counter("sim_search_infeasible_total").Inc()
		return SearchOutcome{Capacity: limit, Result: res}, err
	}

	// With limit >= TotalPeak the whole search is independent of the
	// limit (barring an escalation below, which clears the flag).
	unclamped := limit >= a.totalPeak

	hi := math.Min(limit, a.totalPeak) // capacity beyond the total peak is never needed
	if hi <= 0 {
		hi = tol // all-zero workloads: any positive capacity fits
	}
	cfg.Capacity = hi
	hiRes, err := a.ReplayWith(r, cfg)
	if err != nil {
		return SearchOutcome{}, err
	}
	if !hiRes.Fits(cfg.Commitment.Theta) {
		// θ or deadline unsatisfiable even at the peak: try the full
		// limit before giving up (deadline backlogs can need headroom).
		unclamped = false
		if hi < limit {
			cfg.Capacity = limit
			hiRes, err = a.ReplayWith(r, cfg)
			if err != nil {
				return SearchOutcome{}, err
			}
			hi = limit
		}
		if !hiRes.Fits(cfg.Commitment.Theta) {
			h.Counter("sim_search_infeasible_total").Inc()
			return SearchOutcome{Capacity: hi, Result: hiRes}, nil
		}
	}

	lo := a.cos1Peak
	for hi-lo > tol {
		if err := ctx.Err(); err != nil {
			return SearchOutcome{}, fmt.Errorf("sim: required-capacity search: %w", err)
		}
		iterations.Inc()
		mid := (lo + hi) / 2
		cfg.Capacity = mid
		midRes, err := a.ReplayWith(r, cfg)
		if err != nil {
			return SearchOutcome{}, err
		}
		if midRes.Fits(cfg.Commitment.Theta) {
			hi = mid
			hiRes = midRes
		} else {
			lo = mid
		}
	}
	return SearchOutcome{Capacity: hi, Result: hiRes, Feasible: true, Unclamped: unclamped}, nil
}

// searchDepth is how many bisection levels one batched pass evaluates:
// a pass carries up to 2^searchDepth-1 speculative midpoint lanes (all
// tree nodes the next searchDepth bisection steps could visit). Depth 5
// (≤31 lanes) is the ceiling the adaptive controller below can reach on
// backlog-light traces, where a marginal lane costs ~0.1x of a scalar
// replay and the default 0.05-CPU tolerance's 8-10 bisection steps fit
// in 2 passes instead of 9-11 traversals.
const searchDepth = 5

// bisectSteps counts the halvings a bisection needs to shrink span to
// the tolerance — the number of steps left in the search.
func bisectSteps(span, tol float64) int {
	steps := 0
	for span > tol && steps < 64 {
		span /= 2
		steps++
	}
	return steps
}

// depthForWorkFrac picks the next pass's speculation depth from the
// expensive-lane fraction the previous batched pass observed. Lanes
// whose capacity sits below the demand crossing take the full
// serve/backlog arithmetic slot after slot and cost about as much as a
// scalar replay each, so speculating a deep tree (half of whose lanes
// sit below the crossing) only pays when such work is rare; otherwise
// the search degrades toward plain bisection. The signal is a
// deterministic function of the trace, so the probe grouping — and
// therefore the telemetry — is reproducible, and the probe *sequence*
// is depth-independent either way.
func depthForWorkFrac(wf float64) int {
	switch {
	case wf < 0.10:
		return searchDepth
	case wf < 0.30:
		return 2
	default:
		return 1
	}
}

// bisectTree is the speculative probe ladder for one batched pass: the
// heap-ordered midpoints of the next searchDepth levels of the
// bisection over (lo, hi). Node j's children are 2j+1 (lower half) and
// 2j+2 (upper half); nodes whose interval has already shrunk to the
// tolerance are dead (lane -1) and never evaluated.
type bisectTree struct {
	mids  []float64 // heap-ordered midpoints; NaN for dead nodes
	lanes []int     // node -> lane index in the batch, -1 for dead
	caps  []float64 // live-lane capacities, in lane order
	out   []Result  // per-lane results, in lane order
	spans []searchSpan
}

// searchSpan is one node's bisection interval during tree construction.
type searchSpan struct{ lo, hi float64 }

// treePool recycles bisectTree scratch across searches.
var treePool = sync.Pool{New: func() any { return new(bisectTree) }}

// build fills the tree with the next `depth` levels of the bisection
// over the interval (lo, hi). Midpoints are the exact (lo+hi)/2 floats
// the scalar bisection would compute, level by level, so walking the
// tree reproduces the bisection bit for bit at any depth.
func (bt *bisectTree) build(lo, hi, tol float64, depth int) {
	if depth < 1 {
		depth = 1
	} else if depth > searchDepth {
		depth = searchDepth
	}
	n := 1<<depth - 1
	maxN := 1<<searchDepth - 1
	if cap(bt.mids) < maxN {
		bt.mids = make([]float64, 0, maxN)
		bt.lanes = make([]int, 0, maxN)
		bt.caps = make([]float64, 0, maxN+1) // +1: the first pass rides the hi probe along
		bt.out = make([]Result, maxN+1)
		bt.spans = make([]searchSpan, 0, maxN)
	}
	bt.mids = bt.mids[:n]
	bt.lanes = bt.lanes[:n]
	bt.caps = bt.caps[:0]
	spans := append(bt.spans[:0], searchSpan{lo, hi})
	for j := 0; j < n; j++ {
		s := spans[j]
		if math.IsNaN(s.lo) || s.hi-s.lo <= tol {
			bt.mids[j] = math.NaN()
			bt.lanes[j] = -1
			if 2*j+2 < n {
				spans = append(spans, searchSpan{math.NaN(), math.NaN()}, searchSpan{math.NaN(), math.NaN()})
			}
			continue
		}
		mid := (s.lo + s.hi) / 2
		bt.mids[j] = mid
		bt.lanes[j] = len(bt.caps)
		bt.caps = append(bt.caps, mid)
		if 2*j+2 < n {
			spans = append(spans, searchSpan{s.lo, mid}, searchSpan{mid, s.hi})
		}
	}
	bt.spans = spans[:0]
}

// searchKary runs the bisection over batched passes: each pass
// evaluates the next ≤ searchDepth levels of midpoints in one trace
// traversal, then the walk descends the tree with every probe outcome
// already known. The capacities probed, the order of the Fits
// decisions, and the returned outcome are identical to searchBisect's.
func (a *Aggregate) searchKary(ctx context.Context, cfg Config, limit, tol float64) (SearchOutcome, error) {
	br := batchPool.Get().(*BatchReplayer)
	defer batchPool.Put(br)
	return a.searchKaryWith(ctx, cfg, limit, tol, br)
}

// searchKaryWith is searchKary against a caller-supplied replayer, the
// seam that lets tests control the depth-hint warm-up deterministically
// instead of depending on what the pool hands back.
func (a *Aggregate) searchKaryWith(ctx context.Context, cfg Config, limit, tol float64, br *BatchReplayer) (SearchOutcome, error) {
	h := telemetry.OrNop(cfg.Hooks)
	h.Counter("sim_searches_total").Inc()
	iterations := h.Counter("sim_search_iterations_total")

	// The workloads cannot fit at any capacity <= limit if the
	// guaranteed class alone exceeds it.
	if a.cos1Peak > limit {
		res, err := a.replayOne(br, cfg, limit)
		if err != nil {
			return SearchOutcome{}, err
		}
		h.Counter("sim_search_infeasible_total").Inc()
		return SearchOutcome{Capacity: limit, Result: res}, nil
	}

	unclamped := limit >= a.totalPeak
	hi := math.Min(limit, a.totalPeak)
	if hi <= 0 {
		hi = tol // all-zero workloads: any positive capacity fits
	}
	lo := a.cos1Peak

	// probes counts the capacities a scalar bisection would have
	// replayed one pass each; passes counts the trace traversals this
	// search actually made. The difference feeds the passes-saved
	// telemetry.
	probes, passes := 1, 1

	// depth is how many bisection levels each pass speculates. Two
	// signals pick it, neither of which can change what is probed or
	// returned — only how many trace traversals the probes are grouped
	// into. First, the cost regime: a pooled replayer remembers the
	// depth its last search's workFrac earned (searches inside one
	// consolidation see near-identical traces); without history, start
	// shallow. Second, the search length: a depth-d tree speculates
	// 2^d-1 probes of which the walk consumes at most d per pass, so
	// full-depth trees only amortize their waste when the span still
	// needs at least two full-depth passes' worth of steps — short
	// searches (a consolidation fitness probe spans ~5 steps at its
	// coarse tolerance) cap at depth 2 however cheap the lanes are.
	deepOK := bisectSteps(hi-lo, tol) >= 2*searchDepth-2
	depthFor := func(hint int) int {
		if hint < 1 {
			hint = 2
		}
		if hint > 2 && !deepOK {
			return 2
		}
		return hint
	}
	depth := depthFor(br.hintDepth)

	// First pass: the hi probe rides along with the speculative first
	// tree of midpoints over (lo, hi), so a feasible search starts its
	// walk with the first levels already evaluated.
	tree := treePool.Get().(*bisectTree)
	defer treePool.Put(tree)
	tree.build(lo, hi, tol, depth)
	k := len(tree.caps)
	caps := append(tree.caps, hi)
	out := tree.out[:k+1]
	if err := a.ReplayBatch(br, cfg, caps, out); err != nil {
		return SearchOutcome{}, err
	}
	tree.caps = caps[:k]
	hiRes := out[k]
	treeLive := true
	br.hintDepth = depthForWorkFrac(br.workFrac)
	depth = depthFor(br.hintDepth)

	if !hiRes.Fits(cfg.Commitment.Theta) {
		// θ or deadline unsatisfiable even at the peak: try the full
		// limit before giving up (deadline backlogs can need headroom).
		unclamped = false
		treeLive = false // the speculative tree covered (lo, old hi)
		if hi < limit {
			var err error
			if hiRes, err = a.replayOne(br, cfg, limit); err != nil {
				return SearchOutcome{}, err
			}
			probes++
			passes++
			hi = limit
		}
		if !hiRes.Fits(cfg.Commitment.Theta) {
			h.Counter("sim_search_infeasible_total").Inc()
			return SearchOutcome{Capacity: hi, Result: hiRes}, nil
		}
	}

	steps := 0
	for hi-lo > tol {
		if err := ctx.Err(); err != nil {
			return SearchOutcome{}, fmt.Errorf("sim: required-capacity search: %w", err)
		}
		if !treeLive {
			tree.build(lo, hi, tol, depth)
			if err := a.ReplayBatch(br, cfg, tree.caps, tree.out[:len(tree.caps)]); err != nil {
				return SearchOutcome{}, err
			}
			passes++
			treeLive = true
			br.hintDepth = depthForWorkFrac(br.workFrac)
			depth = depthFor(br.hintDepth)
		}
		// Walk as many levels as this tree evaluated; every decision is
		// the one the scalar bisection would have taken at that probe.
		j := 0
		for hi-lo > tol && j < len(tree.mids) && tree.lanes[j] >= 0 {
			steps++
			mid := tree.mids[j]
			midRes := tree.out[tree.lanes[j]]
			if midRes.Fits(cfg.Commitment.Theta) {
				hi = mid
				hiRes = midRes
				j = 2*j + 1
			} else {
				lo = mid
				j = 2*j + 2
			}
		}
		treeLive = false
	}
	iterations.Add(int64(steps))
	probes += steps
	h.Counter("sim_search_passes_total").Add(int64(passes))
	if saved := probes - passes; saved > 0 {
		h.Counter("sim_search_passes_saved_total").Add(int64(saved))
	}
	return SearchOutcome{Capacity: hi, Result: hiRes, Feasible: true, Unclamped: unclamped}, nil
}

// replayOne replays a single capacity through the batch replayer (the
// search already holds one, so single probes reuse its buffers).
func (a *Aggregate) replayOne(br *BatchReplayer, cfg Config, capacity float64) (Result, error) {
	one := [1]float64{capacity}
	var res [1]Result
	if err := a.ReplayBatch(br, cfg, one[:], res[:]); err != nil {
		return Result{}, err
	}
	return res[0], nil
}
