package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"ropus/internal/qos"
)

func commitment(theta float64) qos.PoolCommitment {
	return qos.PoolCommitment{Theta: theta, Deadline: time.Hour}
}

func cfg(capacity, theta float64, slotsPerDay, deadlineSlots int) Config {
	return Config{
		Capacity:      capacity,
		Commitment:    commitment(theta),
		SlotsPerDay:   slotsPerDay,
		DeadlineSlots: deadlineSlots,
	}
}

func TestWorkloadValidate(t *testing.T) {
	tests := []struct {
		name    string
		w       Workload
		wantErr bool
	}{
		{name: "valid", w: Workload{AppID: "a", CoS1: []float64{1}, CoS2: []float64{0}}},
		{name: "no id", w: Workload{CoS1: []float64{1}, CoS2: []float64{0}}, wantErr: true},
		{name: "empty", w: Workload{AppID: "a"}, wantErr: true},
		{name: "length mismatch", w: Workload{AppID: "a", CoS1: []float64{1}, CoS2: []float64{0, 0}}, wantErr: true},
		{name: "negative", w: Workload{AppID: "a", CoS1: []float64{-1}, CoS2: []float64{0}}, wantErr: true},
		{name: "NaN", w: Workload{AppID: "a", CoS1: []float64{1}, CoS2: []float64{math.NaN()}}, wantErr: true},
		{name: "Inf", w: Workload{AppID: "a", CoS1: []float64{math.Inf(1)}, CoS2: []float64{0}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.w.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg(10, 0.9, 288, 12)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "negative capacity", mutate: func(c *Config) { c.Capacity = -1 }},
		{name: "NaN capacity", mutate: func(c *Config) { c.Capacity = math.NaN() }},
		{name: "zero slots per day", mutate: func(c *Config) { c.SlotsPerDay = 0 }},
		{name: "negative deadline", mutate: func(c *Config) { c.DeadlineSlots = -1 }},
		{name: "bad theta", mutate: func(c *Config) { c.Commitment.Theta = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestNewAggregate(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{1, 2}, CoS2: []float64{3, 0}},
		{AppID: "b", CoS1: []float64{0.5, 0.5}, CoS2: []float64{1, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Slots() != 2 {
		t.Errorf("Slots = %d, want 2", agg.Slots())
	}
	if agg.CoS1Peak() != 2.5 {
		t.Errorf("CoS1Peak = %v, want 2.5", agg.CoS1Peak())
	}
	if agg.TotalPeak() != 6.5 {
		t.Errorf("TotalPeak = %v, want 6.5", agg.TotalPeak())
	}

	if _, err := NewAggregate(nil); err == nil {
		t.Error("empty workload list should fail")
	}
	if _, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{1}, CoS2: []float64{0}},
		{AppID: "b", CoS1: []float64{1, 2}, CoS2: []float64{0, 0}},
	}); err == nil {
		t.Error("misaligned workloads should fail")
	}
	if _, err := NewAggregate([]Workload{{AppID: ""}}); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestReplayAllSatisfied(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{1, 1, 1}, CoS2: []float64{2, 2, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Replay(cfg(5, 0.9, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CoS1OK || !res.DeadlineOK {
		t.Errorf("expected clean replay, got %+v", res)
	}
	if res.Theta != 1 {
		t.Errorf("Theta = %v, want 1", res.Theta)
	}
	if !res.Fits(0.9) {
		t.Error("Fits(0.9) = false, want true")
	}
}

func TestReplayCoS1Overflow(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{6}, CoS2: []float64{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Replay(cfg(5, 0.9, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CoS1OK {
		t.Error("CoS1OK = true with CoS1 peak above capacity")
	}
	if res.Fits(0.9) {
		t.Error("Fits should be false when CoS1 overflows")
	}
}

func TestReplayThetaGrouping(t *testing.T) {
	// One week, 2 slots/day, 14 samples. Slot 0 demands 2 with only 1
	// CPU free on two days; slot 1 always satisfied.
	cos1 := make([]float64, 14)
	cos2 := make([]float64, 14)
	for d := 0; d < 7; d++ {
		cos2[2*d] = 1 // slot 0
		cos2[2*d+1] = 1
	}
	cos2[0] = 3 // day 0 slot 0: only 2 of 3 served at capacity 2
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: cos1, CoS2: cos2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Replay(cfg(2, 0.5, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Slot-0 group: requested 3+1*6=9, served 2+6=8 => 8/9.
	want := 8.0 / 9.0
	if math.Abs(res.Theta-want) > 1e-9 {
		t.Errorf("Theta = %v, want %v", res.Theta, want)
	}
	if !res.DeadlineOK {
		t.Error("deficit of 1 should be served next slot within deadline 2")
	}
}

func TestReplayDeadlineMiss(t *testing.T) {
	// Capacity always saturated: deficits can never be served.
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{0, 0, 0, 0}, CoS2: []float64{2, 1, 1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Replay(cfg(1, 0.5, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineOK {
		t.Error("DeadlineOK = true, want miss: no leftover capacity ever")
	}
	if res.UnservedTotal <= 0 {
		t.Errorf("UnservedTotal = %v, want > 0", res.UnservedTotal)
	}
}

func TestReplayDeadlineZeroSlots(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{0, 0}, CoS2: []float64{2, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Replay(cfg(1, 0.5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineOK {
		t.Error("any deficit should violate a zero-slot deadline")
	}
}

func TestReplayBacklogServedWithinDeadline(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{0, 0, 0}, CoS2: []float64{2, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := agg.Replay(cfg(1, 0.4, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineOK {
		t.Error("deficit should be served in the following slot")
	}
	if math.Abs(res.Theta-0.5) > 1e-9 {
		t.Errorf("Theta = %v, want 0.5", res.Theta)
	}
}

func TestReplayPendingBacklogAtTraceEndIsNotViolation(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{0, 0}, CoS2: []float64{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deficit at the last slot has a deadline beyond the window.
	res, err := agg.Replay(cfg(1, 0.1, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineOK {
		t.Error("deficit due beyond the trace end should not count as a miss")
	}
}

func TestReplayConfigError(t *testing.T) {
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: []float64{0}, CoS2: []float64{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Replay(Config{}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRequiredCapacityThetaOne(t *testing.T) {
	// With θ=1 every unit must be served on request: required capacity
	// is the total peak.
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{1, 0, 2}, CoS2: []float64{1, 5, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(0, 1, 3, 1)
	got, res, ok, err := agg.RequiredCapacity(context.Background(), c, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected satisfiable")
	}
	if got < 5 || got > 5.02 {
		t.Errorf("required capacity = %v, want ~5 (total peak)", got)
	}
	if !res.Fits(1) {
		t.Error("result at required capacity should fit")
	}
}

func TestRequiredCapacityLowTheta(t *testing.T) {
	// With a lax θ the required capacity can sit below the peak.
	cos2 := make([]float64, 14)
	for i := range cos2 {
		cos2[i] = 1
	}
	cos2[3] = 4 // a single burst
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: make([]float64, 14), CoS2: cos2}})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(0, 0.5, 2, 4)
	got, res, ok, err := agg.RequiredCapacity(context.Background(), c, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected satisfiable")
	}
	if got >= 4 {
		t.Errorf("required capacity = %v, want below the burst peak 4", got)
	}
	if !res.Fits(0.5) {
		t.Error("result should fit at required capacity")
	}
}

func TestRequiredCapacityCoS1Dominates(t *testing.T) {
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{7, 7}, CoS2: []float64{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(0, 0.9, 2, 1)
	if _, _, ok, err := agg.RequiredCapacity(context.Background(), c, 5, 0.01); err != nil || ok {
		t.Errorf("CoS1 peak 7 over limit 5: ok=%v err=%v, want unsatisfiable", ok, err)
	}
	got, _, ok, err := agg.RequiredCapacity(context.Background(), c, 10, 0.01)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got < 7-0.01 || got > 7.02 {
		t.Errorf("required capacity = %v, want ~7 (CoS1 peak)", got)
	}
}

func TestRequiredCapacityArgumentErrors(t *testing.T) {
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: []float64{1}, CoS2: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(0, 0.9, 1, 1)
	if _, _, _, err := agg.RequiredCapacity(context.Background(), c, 10, 0); err == nil {
		t.Error("zero tolerance should fail")
	}
	if _, _, _, err := agg.RequiredCapacity(context.Background(), c, 0, 0.1); err == nil {
		t.Error("zero limit should fail")
	}
}

func TestRequiredCapacityZeroWorkload(t *testing.T) {
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: []float64{0, 0}, CoS2: []float64{0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	got, _, ok, err := agg.RequiredCapacity(context.Background(), cfg(0, 0.9, 2, 1), 10, 0.01)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got > 0.02 {
		t.Errorf("required capacity for zero workload = %v, want ~0", got)
	}
}

func TestQuickRequiredCapacityInvariants(t *testing.T) {
	f := func(raw []uint8, thetaRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		cos1 := make([]float64, len(raw))
		cos2 := make([]float64, len(raw))
		for i, v := range raw {
			cos1[i] = float64(v % 4)
			cos2[i] = float64(v / 16)
		}
		agg, err := NewAggregate([]Workload{{AppID: "q", CoS1: cos1, CoS2: cos2}})
		if err != nil {
			return false
		}
		theta := 0.05 + float64(thetaRaw)/255*0.95
		c := cfg(0, theta, 4, 3)
		const limit = 1000
		got, res, ok, err := agg.RequiredCapacity(context.Background(), c, limit, 0.05)
		if err != nil {
			return false
		}
		if !ok {
			// Unsatisfiable only when even the limit fails; re-check.
			c.Capacity = limit
			r, err := agg.Replay(c)
			return err == nil && !r.Fits(theta)
		}
		// Required capacity within [CoS1 peak, total peak] and feasible.
		if got < agg.CoS1Peak()-1e-9 || got > agg.TotalPeak()+0.05+1e-9 {
			return false
		}
		return res.Fits(theta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeadlineMonotoneInSlots(t *testing.T) {
	// A longer make-up deadline can only make a workload easier to fit:
	// if the replay satisfies the deadline at s slots, it satisfies it
	// at s+k slots too.
	f := func(raw []uint8, capRaw, sRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		cos1 := make([]float64, len(raw))
		cos2 := make([]float64, len(raw))
		for i, v := range raw {
			cos2[i] = float64(v) / 16
		}
		agg, err := NewAggregate([]Workload{{AppID: "q", CoS1: cos1, CoS2: cos2}})
		if err != nil {
			return false
		}
		capacity := 1 + float64(capRaw%12)
		s := int(sRaw % 6)
		short := cfg(capacity, 0.5, 4, s)
		long := cfg(capacity, 0.5, 4, s+3)
		rShort, err1 := agg.Replay(short)
		rLong, err2 := agg.Replay(long)
		if err1 != nil || err2 != nil {
			return false
		}
		if rShort.DeadlineOK && !rLong.DeadlineOK {
			return false
		}
		// θ is deadline-independent: it measures on-request service.
		return rShort.Theta == rLong.Theta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickThetaMonotoneInCapacity(t *testing.T) {
	f := func(raw []uint8, c1, c2 uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		cos1 := make([]float64, len(raw))
		cos2 := make([]float64, len(raw))
		for i, v := range raw {
			cos2[i] = float64(v) / 8
		}
		agg, err := NewAggregate([]Workload{{AppID: "q", CoS1: cos1, CoS2: cos2}})
		if err != nil {
			return false
		}
		capLo := float64(c1%32) + 0.5
		capHi := capLo + float64(c2%32)
		cfgLo := cfg(capLo, 0.5, 4, 2)
		cfgHi := cfg(capHi, 0.5, 4, 2)
		rLo, err1 := agg.Replay(cfgLo)
		rHi, err2 := agg.Replay(cfgHi)
		if err1 != nil || err2 != nil {
			return false
		}
		return rHi.Theta >= rLo.Theta-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
