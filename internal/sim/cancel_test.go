package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"ropus/internal/faultinject"
)

func cancelAggregate(t *testing.T) *Aggregate {
	t.Helper()
	agg, err := NewAggregate([]Workload{
		{AppID: "a", CoS1: []float64{1, 2, 1, 2}, CoS2: []float64{3, 1, 3, 1}},
		{AppID: "b", CoS1: []float64{2, 1, 2, 1}, CoS2: []float64{1, 3, 1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestCancelRequiredCapacity(t *testing.T) {
	agg := cancelAggregate(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := agg.RequiredCapacity(ctx, cfg(0, 0.9, 4, 2), 20, 0.01)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}
	// A live context searches normally.
	capacity, _, ok, err := agg.RequiredCapacity(context.Background(), cfg(0, 0.9, 4, 2), 20, 0.01)
	if err != nil || !ok {
		t.Fatalf("live search failed: capacity=%v ok=%v err=%v", capacity, ok, err)
	}
}

func TestChaosReplayInjectedError(t *testing.T) {
	agg := cancelAggregate(t)
	c := cfg(10, 0.9, 4, 2)
	c.Inject = faultinject.MustScript(1, faultinject.Rule{Point: "sim.replay", Key: "srv-x"})
	c.InjectKey = "srv-x"
	if _, err := agg.Replay(c); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error should wrap faultinject.ErrInjected, got %v", err)
	}
	// A different key leaves the replay alone.
	c.InjectKey = "srv-y"
	if _, err := agg.Replay(c); err != nil {
		t.Errorf("unkeyed replay should succeed, got %v", err)
	}
}

func TestChaosReplayCorruptedSlotDetected(t *testing.T) {
	agg := cancelAggregate(t)
	c := cfg(10, 0.9, 4, 2)
	c.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "sim.replay", Corrupt: true})
	_, err := agg.Replay(c)
	if err == nil {
		t.Fatal("corrupted replay should be detected, not silently averaged")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error should name the NaN statistics, got %v", err)
	}
}

func TestChaosCorruptedWorkloadRejected(t *testing.T) {
	// NaN slots from a corrupted monitoring feed must be rejected at
	// workload validation, before they can poison the statistics.
	samples := faultinject.CorruptSlots([]float64{1, 2, 3, 4}, 0.25, 9)
	w := Workload{AppID: "a", CoS1: samples, CoS2: []float64{0, 0, 0, 0}}
	if err := w.Validate(); err == nil {
		t.Error("workload with NaN slots accepted")
	}
	if _, err := NewAggregate([]Workload{w}); err == nil {
		t.Error("aggregate built from NaN workload")
	}
	if !math.IsNaN(samples[0]) && !math.IsNaN(samples[1]) &&
		!math.IsNaN(samples[2]) && !math.IsNaN(samples[3]) {
		t.Fatal("CorruptSlots corrupted nothing")
	}
}

func TestChaosRequiredCapacityInjectedError(t *testing.T) {
	agg := cancelAggregate(t)
	c := cfg(0, 0.9, 4, 2)
	c.Inject = faultinject.MustScript(1, faultinject.Rule{Point: "sim.required_capacity"})
	_, _, _, err := agg.RequiredCapacity(context.Background(), c, 20, 0.01)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error should wrap faultinject.ErrInjected, got %v", err)
	}
}
