package sim

import (
	"context"
	"testing"
	"time"

	"ropus/internal/qos"
)

// replayFixture builds an aggregate with a daily burst pattern plus a
// config whose deadline forces backlog activity.
func replayFixture(t *testing.T) (*Aggregate, Config) {
	t.Helper()
	slots := 7 * 8 * 2 // two weeks, 8 slots/day
	c1 := make([]float64, slots)
	c2 := make([]float64, slots)
	for i := range c2 {
		c1[i] = 1
		c2[i] = float64(i % 8)
	}
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: c1, CoS2: c2}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Capacity:      4,
		Commitment:    qos.PoolCommitment{Theta: 0.7, Deadline: time.Hour},
		SlotsPerDay:   8,
		DeadlineSlots: 2,
	}
	return agg, cfg
}

func TestReplayWithMatchesReplay(t *testing.T) {
	agg, cfg := replayFixture(t)
	want, err := agg.Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplayer()
	for i := 0; i < 3; i++ { // reuse must not leak state across replays
		got, err := agg.ReplayWith(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replay %d through a reused Replayer diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

func TestReplayWithZeroAllocsSteadyState(t *testing.T) {
	agg, cfg := replayFixture(t)
	r := NewReplayer()
	if _, err := agg.ReplayWith(r, cfg); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := agg.ReplayWith(r, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm ReplayWith allocates %.1f objects per run, want 0", allocs)
	}
}

func TestSearchMatchesRequiredCapacity(t *testing.T) {
	agg, cfg := replayFixture(t)
	ctx := context.Background()
	for _, limit := range []float64{6, 8, 16} {
		capacity, res, ok, err := agg.RequiredCapacity(ctx, cfg, limit, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		out, err := agg.Search(ctx, cfg, limit, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if out.Capacity != capacity || out.Result != res || out.Feasible != ok {
			t.Errorf("limit %v: Search %+v diverges from RequiredCapacity (%v, %+v, %v)",
				limit, out, capacity, res, ok)
		}
	}
}

func TestSearchUnclampedFlag(t *testing.T) {
	agg, cfg := replayFixture(t)
	ctx := context.Background()

	// Limit above TotalPeak: the bisection interval is [CoS1Peak,
	// TotalPeak], independent of the limit.
	wide, err := agg.Search(ctx, cfg, agg.TotalPeak()+10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !wide.Feasible || !wide.Unclamped {
		t.Fatalf("limit above TotalPeak should be feasible and unclamped, got %+v", wide)
	}
	// The warm-start contract: any other limit >= TotalPeak reproduces
	// the outcome exactly.
	other, err := agg.Search(ctx, cfg, agg.TotalPeak()+1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if other != wide {
		t.Fatalf("unclamped outcomes must be limit-invariant: %+v vs %+v", other, wide)
	}

	// Limit below TotalPeak: the interval is clamped by the limit.
	narrow, err := agg.Search(ctx, cfg, agg.TotalPeak()-1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Unclamped {
		t.Fatalf("limit below TotalPeak must not claim unclamped, got %+v", narrow)
	}
}
