package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ropus/internal/telemetry"
)

// Batched multi-capacity replay. A required-capacity search replays the
// same aggregate trace once per probe; the probes differ only in the
// scalar capacity being tested. BatchReplayer replays K candidate
// capacities in ONE pass over the trace: the per-slot work that does not
// depend on the capacity (trace loads, the θ group index, the requested
// sums) is computed once and shared, while the per-capacity state lives
// in contiguous slot-major lanes (a []float64 of per-(group,lane) served
// sums plus a small per-lane backlog) so the inner loop is branch-light:
// lanes are kept sorted by capacity, which makes "this lane has a
// deficit" a prefix property, and slots where no lane carries backlog
// take a two-branch fast path.
//
// Every lane reproduces, bit for bit, what a scalar ReplayWith at that
// capacity would produce: the per-lane floating-point operations are
// issued in exactly the same order as the scalar loop, so batched and
// scalar replays are byte-identical (the parity suite in batch_test.go
// pins this across the golden corpus, backlog/deadline edge cases and
// the NaN-corruption fault path).

// batchLane is the per-capacity cold state: the CoS2 deficit backlog and
// the deadline statistics. The hot per-lane state (capacity, served
// sums) lives in the BatchReplayer's contiguous lanes.
type batchLane struct {
	backlog    []backlogEntry
	head       int
	deadlineOK bool
	unserved   float64
	misses     int64
}

// live reports whether the lane carries undischarged backlog.
func (l *batchLane) live() bool { return l.head < len(l.backlog) }

// BatchReplayer carries the scratch buffers for batched replays: the
// shared per-group requested sums, the lane-major served sums, and the
// per-lane backlog queues. Buffers grow on first use and are retained
// across calls, so steady-state batched replay is allocation-free.
//
// A BatchReplayer is not safe for concurrent use; unlike Replayer, this
// is enforced by a cheap always-on reentrancy guard (a single atomic
// compare-and-swap per pass, noise next to a trace traversal): a
// concurrent or re-entrant ReplayBatch panics instead of corrupting
// lanes silently.
type BatchReplayer struct {
	// busy is the reentrancy guard: 1 while a pass is running.
	busy atomic.Int32

	caps   []float64 // lane capacities, ascending
	order  []int     // order[j] = caller index of sorted lane j
	req    []float64 // per-group requested sums (capacity-independent)
	served []float64 // per-(group,lane) served sums: served[g*K+j]
	lanes  []batchLane

	// workFrac is the last pass's mean expensive-lane fraction: the
	// share of (slot, lane) pairs that took the full serve/backlog
	// arithmetic instead of a clean shortcut (full-service add or
	// suffix break). It is the cost signal the K-ary search adapts its
	// speculation depth to — a shortcut lane-slot costs ~0.1x of its
	// scalar equivalent, an arithmetic one ~1x — and never affects
	// replay results.
	workFrac float64
	// hintDepth is cross-search scratch for the K-ary search: the
	// speculation depth the last search on this (pooled) replayer
	// settled on. Zero means "no history". Results are independent of
	// it; only the grouping of probes into passes changes.
	hintDepth int
}

// NewBatchReplayer returns an empty BatchReplayer; buffers grow on
// first use.
func NewBatchReplayer() *BatchReplayer { return &BatchReplayer{} }

// batchPool recycles BatchReplayers for the K-ary capacity search.
var batchPool = sync.Pool{New: func() any { return NewBatchReplayer() }}

// acquire takes the reentrancy guard.
func (r *BatchReplayer) acquire() {
	if !r.busy.CompareAndSwap(0, 1) {
		panic("sim: BatchReplayer used concurrently (it is not safe for concurrent use; use one per goroutine)")
	}
}

// release returns the guard.
func (r *BatchReplayer) release() { r.busy.Store(0) }

// setup sizes and clears the scratch for K lanes × groups θ groups and
// sorts the lanes by capacity.
func (r *BatchReplayer) setup(capacities []float64, groups int) {
	k := len(capacities)
	if cap(r.caps) < k {
		r.caps = make([]float64, k)
		r.order = make([]int, k)
	}
	r.caps = r.caps[:k]
	r.order = r.order[:k]
	for i := range r.order {
		r.order[i] = i
	}
	// Ascending capacities make deficits a lane-prefix property; a
	// stable insertion sort keeps equal capacities in caller order
	// (their results are identical either way) and, unlike sort.Slice,
	// allocates nothing — K is a few dozen at most.
	for i := 1; i < k; i++ {
		idx := r.order[i]
		c := capacities[idx]
		j := i - 1
		for ; j >= 0 && capacities[r.order[j]] > c; j-- {
			r.order[j+1] = r.order[j]
		}
		r.order[j+1] = idx
	}
	for j, idx := range r.order {
		r.caps[j] = capacities[idx]
	}

	if cap(r.req) < groups {
		r.req = make([]float64, groups)
	}
	r.req = r.req[:groups]
	for i := range r.req {
		r.req[i] = 0
	}
	need := groups * k
	if cap(r.served) < need {
		r.served = make([]float64, need)
	}
	r.served = r.served[:need]
	for i := range r.served {
		r.served[i] = 0
	}

	for len(r.lanes) < k {
		r.lanes = append(r.lanes, batchLane{})
	}
	for j := 0; j < k; j++ {
		ln := &r.lanes[j]
		ln.backlog = ln.backlog[:0]
		ln.head = 0
		ln.deadlineOK = true
		ln.unserved = 0
		ln.misses = 0
	}
}

// ReplayBatch replays the aggregate against every capacity in one pass
// over the trace and writes the per-capacity results to out (out[i] is
// the outcome at capacities[i]); each result is bit-identical to a
// scalar ReplayWith at that capacity. cfg.Capacity is ignored — the
// lane capacities replace it. A corruption fault injected at the
// "sim.replay" point poisons the shared slot-0 request exactly as it
// does for a scalar replay, so the whole batch surfaces the same
// NaN-statistics error.
func (a *Aggregate) ReplayBatch(r *BatchReplayer, cfg Config, capacities []float64, out []Result) error {
	cfg.Capacity = 0 // ignored; keep Validate happy for the shared fields
	if err := cfg.Validate(); err != nil {
		return err
	}
	k := len(capacities)
	if k == 0 {
		return fmt.Errorf("sim: batch replay needs at least one capacity")
	}
	if len(out) != k {
		return fmt.Errorf("sim: batch replay: %d capacities but %d result slots", k, len(out))
	}
	for _, c := range capacities {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("sim: bad capacity %v", c)
		}
	}
	corrupted := false
	if cfg.Inject != nil {
		o := cfg.Inject.Hit("sim.replay", cfg.InjectKey)
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return fmt.Errorf("sim: replay %q: %w", cfg.InjectKey, o.Err)
		}
		corrupted = o.Corrupt
	}

	r.acquire()
	defer r.release()

	const eps = 1e-9
	t := cfg.SlotsPerDay
	n := a.Slots()
	weeks := n / (7 * t)
	if weeks == 0 {
		weeks = 1
	}
	groups := weeks * t
	r.setup(capacities, groups)

	var (
		caps   = r.caps
		req    = r.req
		served = r.served
		lanes  = r.lanes[:k]
	)

	// backlogLive counts lanes carrying backlog; while it is zero the
	// slot takes the fast path below. maxLive is an upper bound on the
	// highest live lane index (-1 when none): every lane above it is
	// backlog-free, so the slow path can bulk-serve the clean suffix.
	// workSlots accumulates the (slot, lane) pairs that took the full
	// serve/backlog arithmetic, for the workFrac cost signal.
	backlogLive := 0
	maxLive := -1
	workSlots := int64(0)
	// Incremental θ group index: g = week*t + (i mod t), with the
	// trailing partial week folded into the last one (the scalar loop's
	// clamp).
	tod, week, weekSlot := 0, 0, 0
	lastWeek := weeks - 1

	for i := 0; i < n; i++ {
		cos1 := a.cos1[i]
		requested := a.cos2[i]
		if corrupted && i == 0 {
			requested = math.NaN()
		}
		g := week*t + tod
		req[g] += requested
		row := served[g*k : g*k+k]

		if backlogLive == 0 {
			// No lane has backlog. Lanes that cannot serve the full
			// request form a prefix of the ascending-capacity lanes;
			// everything past the prefix serves `requested` exactly.
			j := 0
			for ; j < k; j++ {
				avail := caps[j] - cos1
				if avail < 0 {
					avail = 0
				}
				if avail >= requested {
					break
				}
				s := math.Min(requested, avail)
				row[j] += s
				if deficit := requested - s; deficit > eps {
					ln := &lanes[j]
					if cfg.DeadlineSlots == 0 {
						ln.deadlineOK = false
						ln.unserved += deficit
						ln.misses++
					} else {
						ln.backlog = append(ln.backlog, backlogEntry{due: i + cfg.DeadlineSlots, amount: deficit})
						backlogLive++
						maxLive = j // ascending loop: the last append is the highest
					}
				}
			}
			workSlots += int64(j) // the deficit prefix did full arithmetic
			for ; j < k; j++ {
				row[j] += requested
			}
		} else {
			// bound is maxLive frozen at slot start: lanes above it were
			// backlog-free entering the slot and are processed after any
			// lane that could go live this slot, so once the loop passes
			// bound with a fully-served clean lane, every remaining lane
			// is clean and serves exactly `requested` too.
			bound := maxLive
			for j := 0; j < k; j++ {
				ln := &lanes[j]
				avail := caps[j] - cos1
				if avail < 0 {
					avail = 0
				}
				if avail >= requested && !ln.live() {
					// Clean lane: no backlog to drain or expire, and
					// min(requested, avail) is exactly `requested` (no
					// arithmetic), so this is the scalar result bit for
					// bit. A NaN request never takes this branch (the
					// comparison is false), keeping corruption parity.
					if j > bound {
						for ; j < k; j++ {
							row[j] += requested
						}
						break
					}
					row[j] += requested
					continue
				}
				workSlots++
				s := math.Min(requested, avail)
				avail -= s
				wasLive := ln.live()
				if wasLive {
					for ln.head < len(ln.backlog) && avail > eps {
						take := math.Min(ln.backlog[ln.head].amount, avail)
						ln.backlog[ln.head].amount -= take
						avail -= take
						if ln.backlog[ln.head].amount <= eps {
							ln.head++
						}
					}
					for ln.head < len(ln.backlog) && ln.backlog[ln.head].due <= i {
						if ln.backlog[ln.head].amount > eps {
							ln.deadlineOK = false
							ln.unserved += ln.backlog[ln.head].amount
							ln.misses++
						}
						ln.head++
					}
				}
				if deficit := requested - s; deficit > eps {
					if cfg.DeadlineSlots == 0 {
						ln.deadlineOK = false
						ln.unserved += deficit
						ln.misses++
					} else {
						ln.backlog = append(ln.backlog, backlogEntry{due: i + cfg.DeadlineSlots, amount: deficit})
					}
				}
				if nowLive := ln.live(); nowLive != wasLive {
					if nowLive {
						backlogLive++
						if j > maxLive {
							maxLive = j
						}
					} else {
						ln.backlog = ln.backlog[:0]
						ln.head = 0
						backlogLive--
					}
				}
				row[j] += s
			}
			// Tighten the stale bound so the next slot's suffix break
			// starts as low as possible.
			if backlogLive == 0 {
				maxLive = -1
			} else {
				for maxLive >= 0 && !lanes[maxLive].live() {
					maxLive--
				}
			}
		}

		if tod++; tod == t {
			tod = 0
		}
		if weekSlot++; weekSlot == 7*t {
			weekSlot = 0
			if week < lastWeek {
				week++
			}
		}
	}

	// Finalize each lane exactly like the scalar θ loop, writing results
	// back in the caller's capacity order.
	h := telemetry.OrNop(cfg.Hooks)
	thetaHist := h.Histogram("sim_probe_theta", telemetry.RatioBuckets)
	var missesTotal int64
	for j := 0; j < k; j++ {
		res := Result{
			CoS1Peak:      a.cos1Peak,
			CoS1OK:        a.cos1Peak <= caps[j]+eps,
			DeadlineOK:    lanes[j].deadlineOK,
			UnservedTotal: lanes[j].unserved,
			PeakAggregate: a.totalPeak,
		}
		res.Theta = 1
		for g := 0; g < groups; g++ {
			rq, sv := req[g], served[g*k+j]
			if math.IsNaN(rq) || math.IsNaN(sv) {
				return fmt.Errorf("sim: replay produced NaN statistics (corrupted trace slot?)")
			}
			ratio := 1.0
			if rq > eps {
				ratio = sv / rq
			}
			if ratio < res.Theta {
				res.Theta = ratio
			}
		}
		missesTotal += lanes[j].misses
		if !res.DeadlineOK {
			h.Counter("sim_deadline_violation_replays_total").Inc()
		}
		thetaHist.Observe(res.Theta)
		out[r.order[j]] = res
	}
	h.Counter("sim_replays_total").Add(int64(k))
	h.Counter("sim_replay_slots_total").Add(int64(n))
	r.workFrac = 0
	if n > 0 {
		r.workFrac = float64(workSlots) / float64(int64(n)*int64(k))
	}
	h.Counter("sim_batch_passes_total").Inc()
	h.Counter("sim_batch_lanes_total").Add(int64(k))
	h.Counter("sim_deadline_misses_total").Add(missesTotal)
	return nil
}
