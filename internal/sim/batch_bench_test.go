package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ropus/internal/qos"
	"ropus/internal/telemetry"
)

// Benchmarks for the batched multi-capacity replay and the K-ary
// capacity search built on it. The trace is diurnal-plus-spikes — the
// shape the fleet generator produces — because batched replay's
// economics depend on it: on bursty traces most slots leave every lane
// backlog-free, so a marginal lane costs ~0.1x of a full scalar replay
// and a 15-lane pass replaces 15 trace traversals for ~2x the cost of
// one. (On an adversarial uniform-random trace where half the lanes
// carry permanent backlog, a marginal lane costs about as much as a
// scalar pass and batching only wins on traversal count.)

// benchBurstyAgg builds a 4-week, 5-minute-slot trace with a diurnal
// base load and 2% demand spikes.
func benchBurstyAgg() *Aggregate {
	r := rand.New(rand.NewSource(11))
	const weeks, spd = 4, 288
	n := weeks * 7 * spd
	cos1 := make([]float64, n)
	cos2 := make([]float64, n)
	for i := 0; i < n; i++ {
		day := float64(i%spd) / float64(spd)
		base := 1.5 + 1.2*math.Sin(2*math.Pi*day)
		if base < 0.2 {
			base = 0.2
		}
		c2 := base * (0.7 + 0.6*r.Float64())
		if r.Float64() < 0.02 {
			c2 *= 3.5
		}
		cos1[i] = 0.4 * c2
		cos2[i] = c2
	}
	return batchAgg(cos1, cos2)
}

func benchBatchConfig() Config {
	return Config{
		SlotsPerDay:   288,
		DeadlineSlots: 12,
		Commitment:    qos.PoolCommitment{Theta: 0.7},
	}
}

// BenchmarkReplayScalar is the baseline: one scalar replay of the
// bursty trace at a mid-range capacity.
func BenchmarkReplayScalar(b *testing.B) {
	a := benchBurstyAgg()
	cfg := benchBatchConfig()
	cfg.Capacity = (a.cos1Peak + a.totalPeak) / 2
	r := NewReplayer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ReplayWith(r, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReplayBatch times one batched pass with k lanes spread across
// the searchable capacity range and reports the per-lane cost.
func benchReplayBatch(b *testing.B, k int) {
	a := benchBurstyAgg()
	cfg := benchBatchConfig()
	caps := make([]float64, k)
	for j := range caps {
		caps[j] = a.cos1Peak + (a.totalPeak-a.cos1Peak)*float64(j+1)/float64(k+1)
	}
	out := make([]Result, k)
	br := NewBatchReplayer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.ReplayBatch(br, cfg, caps, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/lane")
}

func BenchmarkReplayBatch15(b *testing.B) { benchReplayBatch(b, 15) }
func BenchmarkReplayBatch31(b *testing.B) { benchReplayBatch(b, 31) }

// BenchmarkSearchBisect is the scalar reference search: one trace
// traversal per probe.
func BenchmarkSearchBisect(b *testing.B) {
	a := benchBurstyAgg()
	cfg := benchBatchConfig()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.searchBisect(ctx, cfg, a.totalPeak*2, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchKary is the batched search over the identical probe
// sequence; it also reports the trace traversals per search so the
// pass reduction lands in the benchmark output next to the ns/op.
func BenchmarkSearchKary(b *testing.B) {
	a := benchBurstyAgg()
	reg := telemetry.NewRegistry()
	cfg := benchBatchConfig()
	cfg.Hooks = telemetry.New(reg, nil)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.searchKary(ctx, cfg, a.totalPeak*2, 0.01); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	passes := reg.Counter("sim_search_passes_total").Value()
	saved := reg.Counter("sim_search_passes_saved_total").Value()
	b.ReportMetric(float64(passes)/float64(b.N), "passes/search")
	b.ReportMetric(float64(passes+saved)/float64(b.N), "probes/search")
}
