package sim

import (
	"math"
	"testing"
)

func TestDiagnoseMatchesReplayTheta(t *testing.T) {
	// One week of 2-slot days with a hot slot 0 on two days.
	cos1 := make([]float64, 14)
	cos2 := make([]float64, 14)
	for d := 0; d < 7; d++ {
		cos2[2*d] = 1
		cos2[2*d+1] = 1
	}
	cos2[0] = 3
	cos2[4] = 4
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: cos1, CoS2: cos2}})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(2, 0.5, 2, 2)
	res, err := agg.Replay(c)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := agg.Diagnose(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(diag.Theta-res.Theta) > 1e-12 {
		t.Errorf("Diagnose theta %v != Replay theta %v", diag.Theta, res.Theta)
	}
	if diag.WorstSlot != 0 {
		t.Errorf("WorstSlot = %d, want 0 (the hot slot)", diag.WorstSlot)
	}
	if diag.Weeks != 1 || diag.SlotsPerDay != 2 {
		t.Errorf("dimensions = %d weeks x %d slots", diag.Weeks, diag.SlotsPerDay)
	}
	// Shortfall: slot 0 misses (3-2)+(4-2)=3 CPU-slots; slot 1 none.
	if math.Abs(diag.SlotShortfall[0]-3) > 1e-9 {
		t.Errorf("SlotShortfall[0] = %v, want 3", diag.SlotShortfall[0])
	}
	if diag.SlotShortfall[1] != 0 {
		t.Errorf("SlotShortfall[1] = %v, want 0", diag.SlotShortfall[1])
	}
	if got := diag.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestDiagnoseIdleGroupsReportOne(t *testing.T) {
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: make([]float64, 4), CoS2: make([]float64, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := agg.Diagnose(cfg(1, 0.5, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if diag.Theta != 1 {
		t.Errorf("idle workload theta = %v, want 1", diag.Theta)
	}
	for g, v := range diag.GroupTheta {
		if v != 1 {
			t.Errorf("GroupTheta[%d] = %v, want 1", g, v)
		}
	}
}

func TestWorstGroups(t *testing.T) {
	d := &Diagnostics{GroupTheta: []float64{0.9, 0.2, 1.0, 0.5}}
	got := d.WorstGroups(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("WorstGroups = %v, want [1 3]", got)
	}
	if got := d.WorstGroups(0); got != nil {
		t.Errorf("WorstGroups(0) = %v", got)
	}
	if got := d.WorstGroups(10); len(got) != 4 {
		t.Errorf("WorstGroups beyond len = %v", got)
	}
}

func TestDiagnoseConfigError(t *testing.T) {
	agg, err := NewAggregate([]Workload{{AppID: "a", CoS1: []float64{0}, CoS2: []float64{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Diagnose(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
