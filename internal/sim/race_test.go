package sim

import (
	"math/rand"
	"sync"
	"testing"

	"ropus/internal/qos"
)

// TestConcurrentReplayersNoRace stresses the documented concurrency
// contract under the race detector: one Aggregate may be replayed from
// many goroutines at once as long as each goroutine uses its own
// Replayer / BatchReplayer (the aggregate itself is read-only during a
// replay). Every goroutine checks its results against a precomputed
// reference, so a data race that corrupts scratch instead of tripping
// the detector still fails the test.
func TestConcurrentReplayersNoRace(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	a := randBatchAgg(r, 2, 12)
	cfg := Config{
		SlotsPerDay:   12,
		DeadlineSlots: 3,
		Commitment:    qos.PoolCommitment{Theta: 0.7},
	}
	caps := make([]float64, 9)
	for j := range caps {
		caps[j] = a.cos1Peak + (a.totalPeak-a.cos1Peak)*float64(j)/float64(len(caps)-1)
	}
	want := make([]Result, len(caps))
	for j, c := range caps {
		scfg := cfg
		scfg.Capacity = c
		res, err := a.ReplayWith(NewReplayer(), scfg)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = res
	}

	const goroutines = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sr := NewReplayer()
			br := NewBatchReplayer()
			out := make([]Result, len(caps))
			for round := 0; round < rounds; round++ {
				if g%2 == 0 {
					// Scalar replays, one capacity per pass.
					for j, c := range caps {
						scfg := cfg
						scfg.Capacity = c
						res, err := a.ReplayWith(sr, scfg)
						if err != nil {
							errs <- err
							return
						}
						out[j] = res
					}
				} else if err := a.ReplayBatch(br, cfg, caps, out); err != nil {
					errs <- err
					return
				}
				for j := range want {
					if out[j] != want[j] {
						t.Errorf("goroutine %d round %d lane %d diverged", g, round, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
