package sim

import (
	"context"
	"testing"
	"time"

	"ropus/internal/portfolio"
	"ropus/internal/qos"
	"ropus/internal/workload"
)

// TestSearchKaryGoldenCorpus is the corpus-level regression for the
// batched search rewrite: for every aggregate built from the same
// fleet shapes the golden experiments use, the K-ary Search must
// return the identical SearchOutcome — capacity, Result, Feasible,
// Unclamped, bit for bit — as a cold scalar bisection, across the θ
// targets, limits and tolerances the pipeline exercises. Each search
// runs twice so the second pass starts from pooled, already-grown
// (warm) batch scratch; the outcome must not depend on that.
func TestSearchKaryGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus regression is slow")
	}
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97, TDegr: 30 * time.Minute}
	ctx := context.Background()
	for _, seed := range []int64{3, 7, 2006} {
		set, err := workload.Fleet(workload.FleetConfig{
			Spiky: 2, Bursty: 2, Smooth: 2, Batch: 2,
			Weeks: 2, Interval: 5 * time.Minute, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var pool []Workload
		for i := range set {
			part, err := portfolio.Translate(set[i], q, 0.60)
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, Workload{
				AppID: set[i].AppID, CoS1: part.CoS1.Samples, CoS2: part.CoS2.Samples,
			})
		}
		// Aggregates over growing prefixes mimic the server groupings the
		// placement search evaluates (single apps through the full pool).
		for _, n := range []int{1, 2, 4, len(pool)} {
			agg, err := NewAggregate(pool[:n])
			if err != nil {
				t.Fatal(err)
			}
			for _, theta := range []float64{0.60, 0.95} {
				for _, tol := range []float64{0.25, 0.05} {
					cfg := Config{
						SlotsPerDay:   288,
						DeadlineSlots: 6,
						Commitment:    qos.PoolCommitment{Theta: theta, Deadline: 30 * time.Minute},
					}
					for _, limit := range []float64{agg.TotalPeak() * 0.5, agg.TotalPeak() * 1.5, 64} {
						want, err := agg.searchBisect(ctx, cfg, limit, tol)
						if err != nil {
							t.Fatal(err)
						}
						for round := 0; round < 2; round++ {
							got, err := agg.searchKary(ctx, cfg, limit, tol)
							if err != nil {
								t.Fatal(err)
							}
							if got != want {
								t.Fatalf("seed=%d apps=%d theta=%v tol=%v limit=%v round=%d:\n kary  =%+v\n bisect=%+v",
									seed, n, theta, tol, limit, round, got, want)
							}
						}
					}
				}
			}
		}
	}
}
