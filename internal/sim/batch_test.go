package sim

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ropus/internal/faultinject"
	"ropus/internal/qos"
	"ropus/internal/telemetry"
)

// batchAgg builds an Aggregate directly from per-slot traces.
func batchAgg(cos1, cos2 []float64) *Aggregate {
	a := &Aggregate{cos1: cos1, cos2: cos2}
	for i := range cos1 {
		if cos1[i] > a.cos1Peak {
			a.cos1Peak = cos1[i]
		}
		if t := cos1[i] + cos2[i]; t > a.totalPeak {
			a.totalPeak = t
		}
	}
	return a
}

// randBatchAgg draws a random trace with enough spikes to force CoS2
// backlogs at low capacities.
func randBatchAgg(r *rand.Rand, weeks, slotsPerDay int) *Aggregate {
	n := weeks * 7 * slotsPerDay
	cos1 := make([]float64, n)
	cos2 := make([]float64, n)
	for i := 0; i < n; i++ {
		cos1[i] = r.Float64() * 3
		cos2[i] = r.Float64() * 6
	}
	return batchAgg(cos1, cos2)
}

// TestBatchReplayParity pins the core contract: every lane of a batched
// replay is bit-identical to a scalar ReplayWith at that capacity, for
// random traces spanning partial weeks, DeadlineSlots = 0 (immediate
// misses) and backlog-carrying regimes, at lane counts from 1 to 17.
func TestBatchReplayParity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	br := NewBatchReplayer()
	sr := NewReplayer()
	for trial := 0; trial < 300; trial++ {
		weeks := 1 + r.Intn(3)
		slotsPerDay := 4 + r.Intn(8)
		a := randBatchAgg(r, weeks, slotsPerDay)
		cfg := Config{
			SlotsPerDay:   slotsPerDay,
			DeadlineSlots: r.Intn(4), // 0 exercises the immediate-miss path
			Commitment:    qos.PoolCommitment{Theta: 0.5 + r.Float64()*0.4},
		}
		k := 1 + r.Intn(17)
		caps := make([]float64, k)
		for j := range caps {
			caps[j] = r.Float64() * a.totalPeak * 1.2
		}
		out := make([]Result, k)
		if err := a.ReplayBatch(br, cfg, caps, out); err != nil {
			t.Fatalf("trial %d: batch: %v", trial, err)
		}
		for j := range caps {
			c := cfg
			c.Capacity = caps[j]
			want, err := a.ReplayWith(sr, c)
			if err != nil {
				t.Fatalf("trial %d: scalar: %v", trial, err)
			}
			if want != out[j] {
				t.Fatalf("trial %d lane %d cap=%v deadline=%d:\n scalar=%+v\n batch =%+v",
					trial, j, caps[j], cfg.DeadlineSlots, want, out[j])
			}
		}
	}
}

// TestBatchReplayParityEdges pins hand-picked edge traces: all-zero
// demand, capacity exactly at the peak, capacity zero, duplicate lane
// capacities, and a deficit that expires exactly at its deadline slot.
func TestBatchReplayParityEdges(t *testing.T) {
	cases := []struct {
		name       string
		cos1, cos2 []float64
		deadline   int
		caps       []float64
	}{
		{
			name: "all zero",
			cos1: make([]float64, 28), cos2: make([]float64, 28),
			deadline: 2, caps: []float64{0, 1, 2},
		},
		{
			name:     "exact peak and zero capacity",
			cos1:     []float64{1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0, 1, 2, 1, 0},
			cos2:     []float64{3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0, 3, 0},
			deadline: 1, caps: []float64{0, 2, 5, 5, 3.5},
		},
		{
			name:     "deadline-boundary expiry",
			cos1:     []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
			cos2:     []float64{5, 5, 5, 0, 0, 0, 0, 0, 5, 5, 5, 0, 0, 0, 0, 0, 5, 5, 5, 0, 0, 0, 0, 0, 5, 5, 5, 0},
			deadline: 3, caps: []float64{1, 2, 3, 4, 4.999, 5},
		},
	}
	br := NewBatchReplayer()
	sr := NewReplayer()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := batchAgg(tc.cos1, tc.cos2)
			cfg := Config{
				SlotsPerDay:   4,
				DeadlineSlots: tc.deadline,
				Commitment:    qos.PoolCommitment{Theta: 0.6},
			}
			out := make([]Result, len(tc.caps))
			if err := a.ReplayBatch(br, cfg, tc.caps, out); err != nil {
				t.Fatal(err)
			}
			for j, c := range tc.caps {
				scfg := cfg
				scfg.Capacity = c
				want, err := a.ReplayWith(sr, scfg)
				if err != nil {
					t.Fatal(err)
				}
				if want != out[j] {
					t.Errorf("lane %d cap=%v:\n scalar=%+v\n batch =%+v", j, c, want, out[j])
				}
			}
		})
	}
}

// TestBatchReplayCorruptionParity pins the NaN fault path: a corruption
// injected at "sim.replay" must surface the same NaN-statistics error
// from the batched replay as from the scalar one.
func TestBatchReplayCorruptionParity(t *testing.T) {
	a := batchAgg(
		[]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		[]float64{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})
	mk := func() Config {
		return Config{
			SlotsPerDay:   4,
			DeadlineSlots: 2,
			Commitment:    qos.PoolCommitment{Theta: 0.6},
			Inject:        faultinject.MustScript(1, faultinject.Rule{Point: "sim.replay", Corrupt: true}),
		}
	}
	scfg := mk()
	scfg.Capacity = 2
	_, scalarErr := a.ReplayWith(NewReplayer(), scfg)
	if scalarErr == nil || !strings.Contains(scalarErr.Error(), "NaN") {
		t.Fatalf("scalar corruption error = %v, want NaN-statistics error", scalarErr)
	}
	out := make([]Result, 3)
	batchErr := a.ReplayBatch(NewBatchReplayer(), mk(), []float64{1, 2, 3}, out)
	if batchErr == nil || batchErr.Error() != scalarErr.Error() {
		t.Fatalf("batch corruption error = %v, want %v", batchErr, scalarErr)
	}
}

// TestBatchReplayValidation covers the batch-specific argument checks.
func TestBatchReplayValidation(t *testing.T) {
	a := batchAgg(make([]float64, 28), make([]float64, 28))
	cfg := Config{SlotsPerDay: 4, Commitment: qos.PoolCommitment{Theta: 0.6}}
	br := NewBatchReplayer()
	if err := a.ReplayBatch(br, cfg, nil, nil); err == nil {
		t.Error("empty capacity list accepted")
	}
	if err := a.ReplayBatch(br, cfg, []float64{1, 2}, make([]Result, 1)); err == nil {
		t.Error("mismatched out length accepted")
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := a.ReplayBatch(br, cfg, []float64{bad}, make([]Result, 1)); err == nil {
			t.Errorf("capacity %v accepted", bad)
		}
	}
}

// TestBatchReplayerReentrancyGuard verifies the always-on guard: a
// ReplayBatch on a BatchReplayer that is already mid-pass panics
// instead of corrupting lanes.
func TestBatchReplayerReentrancyGuard(t *testing.T) {
	a := batchAgg(make([]float64, 28), make([]float64, 28))
	cfg := Config{SlotsPerDay: 4, Commitment: qos.PoolCommitment{Theta: 0.6}}
	br := NewBatchReplayer()
	br.busy.Store(1) // simulate a pass in flight on another goroutine
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("concurrent ReplayBatch did not panic")
		}
	}()
	_ = a.ReplayBatch(br, cfg, []float64{1}, make([]Result, 1))
}

// TestSearchKaryMatchesBisect is the randomized search-level parity
// check: the batched K-ary search must return the identical SearchOutcome
// — capacity, Result, Feasible and Unclamped, bit for bit — as the
// scalar reference bisection, across feasible, infeasible and escalation
// regimes.
func TestSearchKaryMatchesBisect(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ctx := context.Background()
	for trial := 0; trial < 400; trial++ {
		weeks := 1 + r.Intn(3)
		slotsPerDay := 4 + r.Intn(8)
		a := randBatchAgg(r, weeks, slotsPerDay)
		cfg := Config{
			SlotsPerDay:   slotsPerDay,
			DeadlineSlots: r.Intn(4),
			Commitment:    qos.PoolCommitment{Theta: 0.5 + r.Float64()*0.45},
		}
		// Limits straddling CoS1Peak, TotalPeak and beyond cover the
		// infeasible, clamped and unclamped branches.
		limit := a.totalPeak * (0.3 + r.Float64()*1.2)
		if limit <= 0 {
			limit = 1
		}
		tol := 0.01 + r.Float64()*0.2
		want, err := a.searchBisect(ctx, cfg, limit, tol)
		if err != nil {
			t.Fatalf("trial %d: bisect: %v", trial, err)
		}
		got, err := a.searchKary(ctx, cfg, limit, tol)
		if err != nil {
			t.Fatalf("trial %d: kary: %v", trial, err)
		}
		if want != got {
			t.Fatalf("trial %d (limit=%v tol=%v deadline=%d theta=%v):\n bisect=%+v\n kary  =%+v",
				trial, limit, tol, cfg.DeadlineSlots, cfg.Commitment.Theta, want, got)
		}
	}
}

// TestSearchInjectUsesScalarPath pins the fault-injection contract:
// with an injector configured, Search must take the scalar bisection so
// "sim.replay" occurrence counting still sees one hit per probe.
func TestSearchInjectUsesScalarPath(t *testing.T) {
	cos2 := make([]float64, 28)
	for i := range cos2 {
		cos2[i] = float64(1 + i%3)
	}
	a := batchAgg(make([]float64, 28), cos2)
	inj := faultinject.MustScript(1) // no rules: counts hits, injects nothing
	cfg := Config{
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Commitment:    qos.PoolCommitment{Theta: 0.6},
		Inject:        inj,
	}
	out, err := a.Search(context.Background(), cfg, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("search infeasible")
	}
	if replays := inj.Hits("sim.replay"); replays < 5 {
		t.Errorf("scalar fallback should hit sim.replay once per probe; saw %d", replays)
	}
}

// TestBatchReplayAllocs is the satellite alloc gate: once warmed, a
// batched replay of the search ladder must not allocate.
func TestBatchReplayAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randBatchAgg(r, 2, 12)
	cfg := Config{SlotsPerDay: 12, DeadlineSlots: 3, Commitment: qos.PoolCommitment{Theta: 0.7}}
	caps := make([]float64, 16)
	for j := range caps {
		caps[j] = a.totalPeak * float64(j+1) / 16
	}
	out := make([]Result, len(caps))
	br := NewBatchReplayer()
	if err := a.ReplayBatch(br, cfg, caps, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := a.ReplayBatch(br, cfg, caps, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm ReplayBatch allocates %v times per pass, want 0", allocs)
	}
}

// TestSearchPassesSaved checks the tentpole's pass economics through
// the telemetry counters: on a production-shaped workload (the diurnal
// bursty trace the benchmarks use, backlog-light like real pool
// demand) a steady-state search spanning 10 bisection steps must make
// at least 5x fewer trace traversals (passes) than the probes a scalar
// bisection would have replayed one at a time. Two warm-up searches
// first teach the pooled replayer the trace's cost regime — the depth
// controller starts shallow on an unknown trace, and a consolidation's
// thousands of searches over one portfolio all run warm.
func TestSearchPassesSaved(t *testing.T) {
	a := benchBurstyAgg()
	reg := telemetry.NewRegistry()
	cfg := benchBatchConfig()
	cfg.Hooks = telemetry.New(reg, nil)
	ctx := context.Background()
	limit := a.totalPeak * 2
	// 2^9 < 1000 <= 2^10: exactly 10 halvings of the (cos1Peak,
	// totalPeak) bracket, the step count the default 0.05-CPU tolerance
	// yields on pool-sized capacity ranges.
	tol := (a.totalPeak - a.cos1Peak) / 1000
	br := NewBatchReplayer()
	for i := 0; i < 2; i++ {
		if _, err := a.searchKaryWith(ctx, cfg, limit, tol, br); err != nil {
			t.Fatal(err)
		}
	}
	passes0 := reg.Counter("sim_search_passes_total").Value()
	saved0 := reg.Counter("sim_search_passes_saved_total").Value()
	got, err := a.searchKaryWith(ctx, cfg, limit, tol, br)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Feasible {
		t.Fatal("search infeasible")
	}
	scalar, err := a.searchBisect(ctx, cfg, limit, tol)
	if err != nil {
		t.Fatal(err)
	}
	if got != scalar {
		t.Fatalf("kary=%+v, want %+v", got, scalar)
	}
	passes := reg.Counter("sim_search_passes_total").Value() - passes0
	saved := reg.Counter("sim_search_passes_saved_total").Value() - saved0
	probes := passes + saved
	t.Logf("probes=%d passes=%d saved=%d", probes, passes, saved)
	if passes == 0 {
		t.Fatal("no passes recorded")
	}
	if probes < 5*passes {
		t.Errorf("batched search saved too few passes: %d probes over %d passes (< 5x)", probes, passes)
	}
}
