package sim

import (
	"fmt"
	"math"
)

// Diagnostics exposes what the scalar Result hides: where in the
// calendar the resource access probability is earned or lost. Operators
// use it to see which time-of-day slots drive the required capacity of
// a server (Figure 4's simulator reports only the verdict; this is the
// accompanying evidence).
type Diagnostics struct {
	// SlotsPerDay is T, the table width.
	SlotsPerDay int
	// Weeks is the number of week rows.
	Weeks int
	// GroupTheta holds the per-(week, slot) access ratio
	// Σ_days served / Σ_days requested, indexed week*SlotsPerDay+slot;
	// groups with no CoS2 demand report 1.
	GroupTheta []float64
	// WorstWeek and WorstSlot locate the minimum (the measured θ).
	WorstWeek int
	WorstSlot int
	// Theta is the measured resource access probability (the minimum of
	// GroupTheta).
	Theta float64
	// SlotShortfall holds, per time-of-day slot, the total CoS2 demand
	// (in CPU-slots) that was not served on request across the whole
	// trace — the capacity pressure profile over the day.
	SlotShortfall []float64
}

// WorstGroups returns the n (week, slot) groups with the lowest access
// ratios, ordered worst-first, as flat indexes into GroupTheta.
func (d *Diagnostics) WorstGroups(n int) []int {
	if n <= 0 {
		return nil
	}
	idx := make([]int, len(d.GroupTheta))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is small.
	if n > len(idx) {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		minJ := i
		for j := i + 1; j < len(idx); j++ {
			if d.GroupTheta[idx[j]] < d.GroupTheta[idx[minJ]] {
				minJ = j
			}
		}
		idx[i], idx[minJ] = idx[minJ], idx[i]
	}
	return idx[:n]
}

// Diagnose replays the aggregate like Replay but records the
// per-(week, slot) access ratios and the per-slot shortfall profile.
func (a *Aggregate) Diagnose(cfg Config) (*Diagnostics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const eps = 1e-9
	t := cfg.SlotsPerDay
	n := a.Slots()
	weeks := n / (7 * t)
	if weeks == 0 {
		weeks = 1
	}
	d := &Diagnostics{
		SlotsPerDay:   t,
		Weeks:         weeks,
		SlotShortfall: make([]float64, t),
	}
	requested := make([]float64, weeks*t)
	served := make([]float64, weeks*t)

	for i := 0; i < n; i++ {
		avail := cfg.Capacity - a.cos1[i]
		if avail < 0 {
			avail = 0
		}
		req := a.cos2[i]
		srv := math.Min(req, avail)
		w := i / (7 * t)
		if w >= weeks {
			w = weeks - 1
		}
		g := w*t + i%t
		requested[g] += req
		served[g] += srv
		d.SlotShortfall[i%t] += req - srv
	}

	d.GroupTheta = make([]float64, weeks*t)
	d.Theta = 1
	for g := range d.GroupTheta {
		ratio := 1.0
		if requested[g] > eps {
			ratio = served[g] / requested[g]
		}
		d.GroupTheta[g] = ratio
		if ratio < d.Theta {
			d.Theta = ratio
			d.WorstWeek = g / t
			d.WorstSlot = g % t
		}
	}
	return d, nil
}

// String summarizes the diagnostics in one line.
func (d *Diagnostics) String() string {
	return fmt.Sprintf("theta=%.4f (worst at week %d, slot %d of %d)",
		d.Theta, d.WorstWeek, d.WorstSlot, d.SlotsPerDay)
}
