package planner

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
)

// TestRunJournalResume interrupts a checkpointed planning run after the
// baseline and resumes it: the resumed plan must be byte-identical to
// an uninterrupted, journal-free run, and the journaled steps must not
// be recomputed.
func TestRunJournalResume(t *testing.T) {
	ctx := context.Background()
	set := fleet(t, 3)

	cfg := validConfig(t)
	baseline, err := Run(ctx, cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "plan.ckpt")
	const run = uint64(0x9a)

	// First pass: cancel after the first horizon step completes, so the
	// journal holds the baseline and step +2w but not +4w.
	j, err := checkpoint.Open(path, run, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	icfg := validConfig(t)
	icfg.Journal = j
	hits := 0
	icfg.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		if point == "planner.step" {
			hits++
			if hits == 3 { // baseline, +2w, then cancel before +4w finishes
				cancel()
			}
		}
		return faultinject.Outcome{}
	})
	if _, err := Run(cctx, icfg, set); err != nil {
		t.Fatalf("interrupted run should degrade: %v", err)
	}
	cancel()
	j.Close()

	// Resume: journaled steps replay, the rest compute fresh. A poisoned
	// injector on already-journaled keys proves they are not recomputed.
	j2, err := checkpoint.Open(path, run, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Replayed() == 0 {
		t.Fatal("interrupted run journaled nothing")
	}
	rcfg := validConfig(t)
	rcfg.Journal = j2
	rcfg.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		if point == "planner.step" && (key == "0" || key == "2") {
			t.Errorf("journaled step %q recomputed on resume", key)
		}
		return faultinject.Outcome{}
	})
	resumed, err := Run(ctx, rcfg, set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed plan differs from the uninterrupted baseline")
	}
}
