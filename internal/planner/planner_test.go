package planner

import (
	"context"
	"testing"
	"time"

	"ropus/internal/core"
	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/trace"
	"ropus/internal/workload"
)

func framework(t *testing.T) *core.Framework {
	t.Helper()
	ga := placement.DefaultGAConfig(13)
	ga.MaxGenerations = 30
	ga.Stagnation = 8
	f, err := core.New(core.Config{
		Commitment:           qos.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func requirements() core.Requirements {
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	return core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}}
}

func fleet(t *testing.T, weeks int) trace.Set {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 0, Bursty: 1, Smooth: 3,
		Weeks: weeks, Interval: time.Hour, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func validConfig(t *testing.T) Config {
	return Config{
		Framework:    framework(t),
		Requirements: requirements(),
		HorizonWeeks: 4,
		StepWeeks:    2,
		PoolServers:  2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig(t).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil framework", mutate: func(c *Config) { c.Framework = nil }},
		{name: "bad requirements", mutate: func(c *Config) { c.Requirements = core.Requirements{} }},
		{name: "zero horizon", mutate: func(c *Config) { c.HorizonWeeks = 0 }},
		{name: "step does not divide", mutate: func(c *Config) { c.StepWeeks = 3 }},
		{name: "zero step", mutate: func(c *Config) { c.StepWeeks = 0 }},
		{name: "negative growth", mutate: func(c *Config) { c.Growth = map[string]float64{"a": -1} }},
		{name: "negative pool", mutate: func(c *Config) { c.PoolServers = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig(t)
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestRunFlatDemandStaysFlat(t *testing.T) {
	cfg := validConfig(t)
	set := fleet(t, 3)
	plan, err := Run(context.Background(), cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("%d steps, want 2", len(plan.Steps))
	}
	for i, step := range plan.Steps {
		if step.WeeksAhead != (i+1)*cfg.StepWeeks {
			t.Errorf("step %d WeeksAhead = %d", i, step.WeeksAhead)
		}
		if !step.Feasible {
			t.Fatalf("trendless step %d infeasible", i)
		}
		if step.Servers < 1 || step.CRequ <= 0 || step.CPeak <= 0 {
			t.Errorf("step %d looks empty: %+v", i, step)
		}
		// A trendless workload should need roughly the baseline pool.
		if step.Servers > plan.Baseline.Servers+1 {
			t.Errorf("step %d needs %d servers vs baseline %d without any growth",
				i, step.Servers, plan.Baseline.Servers)
		}
	}
}

func TestRunGrowthExhaustsPool(t *testing.T) {
	cfg := validConfig(t)
	set := fleet(t, 3)
	// Set the pool size to the baseline so any growth overflows it.
	base, err := Run(context.Background(), cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PoolServers = base.Baseline.Servers
	cfg.Growth = map[string]float64{}
	for _, tr := range set {
		cfg.Growth[tr.AppID] = 4 // 4x demand by the end of the horizon
	}
	plan, err := Run(context.Background(), cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ExhaustedAtWeeks == 0 {
		t.Errorf("4x growth over %d weeks should exhaust a %d-server pool: %+v",
			cfg.HorizonWeeks, cfg.PoolServers, plan.Steps)
	}
	last := plan.Steps[len(plan.Steps)-1]
	if last.CPeak <= plan.Baseline.CPeak {
		t.Errorf("growth did not raise CPeak: %v <= %v", last.CPeak, plan.Baseline.CPeak)
	}
	if last.Feasible && last.Servers <= cfg.PoolServers {
		t.Errorf("last step should exceed the pool: %+v", last)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := validConfig(t)
	if _, err := Run(context.Background(), cfg, trace.Set{}); err == nil {
		t.Error("empty trace set accepted")
	}
	oneWeek := fleet(t, 1)
	if _, err := Run(context.Background(), cfg, oneWeek); err == nil {
		t.Error("single-week history accepted")
	}
	set := fleet(t, 3)
	cfg.Growth = map[string]float64{"unknown-app": 2}
	if _, err := Run(context.Background(), cfg, set); err == nil {
		t.Error("growth for unknown app accepted")
	}
	bad := validConfig(t)
	bad.HorizonWeeks = 0
	if _, err := Run(context.Background(), bad, set); err == nil {
		t.Error("invalid config accepted")
	}
}
