package planner

import (
	"context"
	"errors"
	"testing"

	"ropus/internal/faultinject"
)

func TestCancelPlannerPartialPlan(t *testing.T) {
	cfg := validConfig(t) // horizon 4, step 2: baseline + steps at +2w, +4w
	set := fleet(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel when the planner reaches the +4w step: the baseline and
	// the +2w step have completed, so the plan degrades to that prefix.
	cfg.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		if point == "planner.step" && key == "4" {
			cancel()
		}
		return faultinject.Outcome{}
	})
	plan, err := Run(ctx, cfg, set)
	if err != nil {
		t.Fatalf("cancelled planning should degrade, got %v", err)
	}
	if !plan.Truncated {
		t.Error("cancelled plan should be flagged Truncated")
	}
	if len(plan.Steps) != 1 || plan.Steps[0].WeeksAhead != 2 {
		t.Errorf("want the completed +2w prefix, got %+v", plan.Steps)
	}
	if !plan.Baseline.Feasible {
		t.Error("baseline should have completed before the cancel")
	}
}

func TestCancelPlannerBeforeBaseline(t *testing.T) {
	cfg := validConfig(t)
	set := fleet(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Without a baseline there is no useful partial plan: the
	// cancellation surfaces as an error.
	if _, err := Run(ctx, cfg, set); !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}
}

func TestChaosPlannerStepInjectedError(t *testing.T) {
	cfg := validConfig(t)
	set := fleet(t, 3)
	// A scripted error at a horizon step (not the baseline, not a
	// cancellation) is a real failure and must abort with context.
	cfg.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "planner.step", Key: "2"})
	_, err := Run(context.Background(), cfg, set)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error should wrap faultinject.ErrInjected, got %v", err)
	}
}
