// Package planner implements the long-term side of Figure 1's capacity
// management spectrum: capacity planning. Where the workload placement
// service answers "how do I run this month's workloads on the servers I
// have", the planner answers "when will I need more servers, so that
// procurement can start early enough".
//
// It projects each application's demand forward (per-slot linear trend
// via trace.ForecastWeeks, optionally combined with business-forecast
// growth factors per application), re-runs the consolidation for each
// future horizon step, and reports the number of servers needed over
// time together with the first step at which the current pool size is
// exceeded.
package planner

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/core"
	"ropus/internal/faultinject"
	"ropus/internal/obslog"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
	"ropus/internal/trace"
)

// unitStep is the checkpoint-journal unit for completed horizon steps.
const unitStep = "planner.step"

// Config parameterizes a planning run.
type Config struct {
	// Framework performs translation and consolidation at each step.
	Framework *core.Framework
	// Requirements are the per-application QoS requirements.
	Requirements core.Requirements
	// HorizonWeeks is how far to look ahead.
	HorizonWeeks int
	// StepWeeks is the granularity of the projection (evaluate every
	// StepWeeks weeks); must divide HorizonWeeks.
	StepWeeks int
	// Growth holds optional business-forecast multipliers per
	// application, applied on top of the observed trend linearly over
	// the horizon: a factor of 1.5 means the application is expected to
	// reach 150% of trend by the end of the horizon.
	Growth map[string]float64
	// PoolServers is the number of servers currently in the pool; the
	// planner reports the first step needing more than this.
	PoolServers int
	// Hooks receives planning telemetry (per-step spans and timings);
	// nil disables it. Note the Framework carries its own hooks for the
	// translation and consolidation it performs.
	Hooks telemetry.Hooks
	// Inject is the test-only fault injector consulted at the
	// "planner.step" point (keyed by weeks ahead, "0" for the baseline);
	// nil (the production default) injects nothing.
	Inject faultinject.Injector
	// Retry re-attempts a horizon step whose consolidation failed with a
	// transient error (or whose per-attempt deadline expired) before the
	// run gives up on it. The zero value makes a single attempt.
	Retry resilience.Policy
	// Journal, when non-nil, checkpoints every completed horizon step
	// (keyed by weeks ahead) and replays steps already journaled by a
	// resumed run; replay is bit-exact. Append failures are counted
	// (checkpoint_append_errors_total) and otherwise ignored.
	Journal *checkpoint.Journal
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Framework == nil {
		return errors.New("planner: nil framework")
	}
	if err := c.Requirements.Validate(); err != nil {
		return err
	}
	if c.HorizonWeeks <= 0 {
		return fmt.Errorf("planner: HorizonWeeks %d <= 0", c.HorizonWeeks)
	}
	if c.StepWeeks <= 0 || c.HorizonWeeks%c.StepWeeks != 0 {
		return fmt.Errorf("planner: StepWeeks %d must be positive and divide HorizonWeeks %d",
			c.StepWeeks, c.HorizonWeeks)
	}
	for id, g := range c.Growth {
		if g < 0 {
			return fmt.Errorf("planner: negative growth %v for %q", g, id)
		}
	}
	if c.PoolServers < 0 {
		return fmt.Errorf("planner: PoolServers %d < 0", c.PoolServers)
	}
	return c.Retry.Validate()
}

// Step is the consolidation outcome for one future horizon step.
type Step struct {
	// WeeksAhead is the number of weeks into the future.
	WeeksAhead int
	// Feasible reports whether the projected demand could be placed at
	// all. When false, at least one application no longer fits any
	// single server of the configured size: the pool needs bigger
	// servers, not just more of them.
	Feasible bool
	// Servers is the number of servers the placement service reports as
	// needed for the projected demand (0 when not Feasible).
	Servers int
	// CRequ is the sum of per-server required capacities (0 when not
	// Feasible).
	CRequ float64
	// CPeak is the sum of per-application peak allocations.
	CPeak float64
}

// Plan is the outcome of a capacity planning run.
type Plan struct {
	// Baseline is the consolidation on the observed (unprojected)
	// traces.
	Baseline Step
	// Steps holds one entry per horizon step, nearest first.
	Steps []Step
	// ExhaustedAtWeeks is the first horizon step (weeks ahead) at which
	// more than PoolServers servers are needed; 0 when the pool
	// suffices for the whole horizon.
	ExhaustedAtWeeks int
	// Truncated reports that the run was cancelled before every horizon
	// step was evaluated; Steps holds the completed prefix (nearest
	// horizons first, which are also the most actionable ones).
	Truncated bool
}

// Run projects the traces and consolidates at every horizon step.
// Cancelling ctx stops the projection at the next step boundary and
// returns the completed prefix of steps with Plan.Truncated set and a
// nil error; the baseline must complete for any plan to be returned.
func Run(ctx context.Context, cfg Config, traces trace.Set) (plan *Plan, err error) {
	defer robust.Recover("planner.Run", &err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := traces.Validate(); err != nil {
		return nil, err
	}
	if traces[0].Weeks() < 2 {
		return nil, fmt.Errorf("planner: need >= 2 weeks of history, have %d", traces[0].Weeks())
	}
	for id := range cfg.Growth {
		if traces.ByID(id) == nil {
			return nil, fmt.Errorf("planner: growth factor for unknown app %q", id)
		}
	}

	h := telemetry.OrNop(cfg.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, cfg.Hooks, "planner.run",
		telemetry.Int("horizon_weeks", cfg.HorizonWeeks),
		telemetry.Int("step_weeks", cfg.StepWeeks))
	defer span.End()
	obslog.From(ctx).InfoContext(ctx, "planner.run",
		slog.Int("horizon_weeks", cfg.HorizonWeeks),
		slog.Int("step_weeks", cfg.StepWeeks))
	stepsC := h.Counter("planner_steps_total")
	truncatedC := h.Counter("planner_truncated_total")
	replayC := h.Counter("planner_steps_replayed_total")
	appendErrC := h.Counter("checkpoint_append_errors_total")
	stepSecs := h.Histogram("planner_step_seconds", nil)

	retry := cfg.Retry
	if retry.Hooks == nil {
		retry.Hooks = cfg.Hooks
	}
	// lookupStep replays a horizon step already checkpointed by a prior
	// run; recordStep journals a freshly computed one (append failures
	// only cost recompute on the next resume, never the run).
	lookupStep := func(ahead int) (Step, bool) {
		var cached Step
		ok, cerr := cfg.Journal.Lookup(unitStep, checkpoint.NewHasher().Int(int64(ahead)).Sum(), &cached)
		if cerr == nil && ok {
			replayC.Inc()
			stepsC.Inc()
			return cached, true
		}
		return Step{}, false
	}
	recordStep := func(ahead int, step Step) {
		if ctx.Err() != nil {
			return // a cancellation may have cut this step's search short
		}
		if aerr := cfg.Journal.Append(unitStep, checkpoint.NewHasher().Int(int64(ahead)).Sum(), step); aerr != nil {
			appendErrC.Inc()
		}
	}

	baseline, replayed := lookupStep(0)
	if !replayed {
		start := time.Now()
		baseline, _, err = resilience.Do(ctx, retry, "0",
			func(attemptCtx context.Context) (Step, error) {
				return consolidateStep(attemptCtx, ctx, cfg, traces, 0)
			})
		if err != nil {
			return nil, fmt.Errorf("planner: baseline: %w", err)
		}
		stepsC.Inc()
		stepSecs.Observe(time.Since(start).Seconds())
		recordStep(0, baseline)
	}
	plan = &Plan{Baseline: baseline}
	if !baseline.Feasible {
		return nil, errors.New("planner: current demand is already unplaceable")
	}

	for ahead := cfg.StepWeeks; ahead <= cfg.HorizonWeeks; ahead += cfg.StepWeeks {
		if ctx.Err() != nil {
			plan.Truncated = true
			break
		}
		step, replayed := lookupStep(ahead)
		if !replayed {
			stepCtx, stepSpan := telemetry.StartSpanCtx(ctx, cfg.Hooks, "planner.step",
				telemetry.Int("weeks_ahead", ahead))
			start := time.Now()
			projected, err := projectSet(cfg, traces, ahead)
			if err != nil {
				stepSpan.End()
				return nil, fmt.Errorf("planner: project +%dw: %w", ahead, err)
			}
			step, _, err = resilience.Do(stepCtx, retry, strconv.Itoa(ahead),
				func(attemptCtx context.Context) (Step, error) {
					return consolidateStep(attemptCtx, stepCtx, cfg, projected, ahead)
				})
			if err != nil {
				stepSpan.End()
				if ctx.Err() != nil {
					// Cancellation surfaced through the consolidation stack:
					// degrade to the completed prefix of steps.
					plan.Truncated = true
					break
				}
				return nil, fmt.Errorf("planner: consolidate +%dw: %w", ahead, err)
			}
			stepsC.Inc()
			stepSecs.Observe(time.Since(start).Seconds())
			stepSpan.SetAttr(
				telemetry.Bool("feasible", step.Feasible),
				telemetry.Int("servers", step.Servers))
			stepSpan.End()
			step.WeeksAhead = ahead
			obslog.From(ctx).InfoContext(ctx, "planner.step",
				slog.Int("weeks_ahead", ahead),
				slog.Bool("feasible", step.Feasible),
				slog.Int("servers", step.Servers))
			recordStep(ahead, step)
		}
		plan.Steps = append(plan.Steps, step)
		exhausted := !step.Feasible || (cfg.PoolServers > 0 && step.Servers > cfg.PoolServers)
		if plan.ExhaustedAtWeeks == 0 && exhausted {
			plan.ExhaustedAtWeeks = ahead
		}
	}
	if plan.Truncated {
		truncatedC.Inc()
	}
	span.SetAttr(
		telemetry.Int("exhausted_at_weeks", plan.ExhaustedAtWeeks),
		telemetry.Bool("truncated", plan.Truncated))
	return plan, nil
}

// projectSet builds the demand traces expected `ahead` weeks out: the
// trend forecast for the window ending at that point, scaled by the
// interpolated business growth factor.
func projectSet(cfg Config, traces trace.Set, ahead int) (trace.Set, error) {
	out := make(trace.Set, len(traces))
	progress := float64(ahead) / float64(cfg.HorizonWeeks)
	for i, tr := range traces {
		fc, err := trace.ForecastWeeks(tr, ahead)
		if err != nil {
			return nil, err
		}
		// Keep the evaluation window the same length as the history by
		// taking the last weeks of history+forecast.
		joined, err := tr.Concat(fc)
		if err != nil {
			return nil, err
		}
		window, err := joined.LastWeeks(tr.Weeks())
		if err != nil {
			return nil, err
		}
		factor := 1.0
		if g, ok := cfg.Growth[tr.AppID]; ok {
			factor = 1 + (g-1)*progress
		}
		out[i], err = trace.ApplyGrowth(window, factor)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// consolidateStep translates and consolidates one trace set. A
// placement that fits on no pool configuration is reported as an
// infeasible step, not an error. ctx is the (possibly deadline-bounded)
// attempt context; parent is the run context, used to convert an
// attempt-deadline-truncated search into a retryable error.
func consolidateStep(ctx, parent context.Context, cfg Config, traces trace.Set, ahead int) (Step, error) {
	if cfg.Inject != nil {
		o := cfg.Inject.Hit("planner.step", strconv.Itoa(ahead))
		if o.Delay > 0 {
			t := time.NewTimer(o.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Step{}, ctx.Err()
			}
		}
		if o.Err != nil {
			return Step{}, o.Err
		}
	}
	translation, err := cfg.Framework.Translate(ctx, traces, cfg.Requirements)
	if err != nil {
		return Step{}, err
	}
	step := Step{CPeak: translation.CPeakTotal()}
	cons, err := cfg.Framework.Consolidate(ctx, translation)
	if errors.Is(err, placement.ErrNoFeasible) {
		return step, nil
	}
	if err != nil {
		return Step{}, err
	}
	if cons.Plan != nil && cons.Plan.Truncated && ctx.Err() != nil && parent.Err() == nil {
		return Step{}, resilience.MarkTransient(
			fmt.Errorf("planner: step +%dw: attempt deadline cut the search short", ahead))
	}
	step.Feasible = true
	step.Servers = cons.ServersUsed()
	step.CRequ = cons.CRequTotal()
	return step, nil
}
