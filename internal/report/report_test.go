package report

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"ropus/internal/core"
	"ropus/internal/failure"
	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/workload"
)

func sampleReport(t *testing.T) *core.Report {
	t.Helper()
	set, err := workload.Fleet(workload.FleetConfig{
		Spiky: 1, Bursty: 1, Smooth: 2,
		Weeks: 1, Interval: time.Hour, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ga := placement.DefaultGAConfig(2)
	ga.MaxGenerations = 30
	ga.Stagnation = 8
	f, err := core.New(core.Config{
		Commitment:           qos.PoolCommitment{Theta: 0.6, Deadline: time.Hour},
		ServerCPUs:           16,
		ServerCapacityPerCPU: 1,
		GA:                   ga,
		Tolerance:            0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := qos.AppQoS{ULow: 0.5, UHigh: 0.66, UDegr: 0.9, MPercent: 97}
	r, err := f.Run(context.Background(), set, core.Requirements{Default: qos.Requirement{Normal: q, Failure: q}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSummarize(t *testing.T) {
	r := sampleReport(t)
	s, err := Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if s.Applications != 4 {
		t.Errorf("Applications = %d, want 4", s.Applications)
	}
	if len(s.Apps) != 4 {
		t.Errorf("%d app summaries", len(s.Apps))
	}
	if s.ServersUsed != len(s.Servers) {
		t.Errorf("ServersUsed %d != %d server summaries", s.ServersUsed, len(s.Servers))
	}
	if s.CRequCPU <= 0 || s.CPeakCPU <= 0 || s.CRequCPU > s.CPeakCPU {
		t.Errorf("capacity totals wrong: CRequ=%v CPeak=%v", s.CRequCPU, s.CPeakCPU)
	}
	if s.SavingsPercent <= 0 || s.SavingsPercent >= 100 {
		t.Errorf("SavingsPercent = %v", s.SavingsPercent)
	}
	if len(s.Failures) != s.ServersUsed {
		t.Errorf("%d failure summaries for %d servers", len(s.Failures), s.ServersUsed)
	}
	// Every app is hosted exactly once.
	hosted := make(map[string]int)
	for _, srv := range s.Servers {
		for _, id := range srv.AppIDs {
			hosted[id]++
		}
	}
	for _, a := range s.Apps {
		if hosted[a.ID] != 1 {
			t.Errorf("app %s hosted %d times", a.ID, hosted[a.ID])
		}
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("nil report accepted")
	}
	if _, err := Summarize(&core.Report{}); err == nil {
		t.Error("empty report accepted")
	}
}

func TestJSONRoundTrips(t *testing.T) {
	r := sampleReport(t)
	var buf bytes.Buffer
	if err := JSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON produced: %v", err)
	}
	if s.Applications != 4 {
		t.Errorf("round-tripped Applications = %d", s.Applications)
	}
	if err := JSON(&buf, nil); err == nil {
		t.Error("nil report accepted")
	}
}

func TestText(t *testing.T) {
	r := sampleReport(t)
	var buf bytes.Buffer
	if err := Text(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"R-Opus capacity report",
		"app-01",
		"failure scenarios:",
		"verdict:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if err := Text(&buf, nil); err == nil {
		t.Error("nil report accepted")
	}
}

// TestTextRetryAnnotations pins the failure-scenario verdict lines to
// hand-crafted retry records, covering the edge cases the live pipeline
// rarely produces: Recovered at Attempts=1 (no bogus "attempt 1"
// count), single-attempt give-ups, and a zero-scenario failure report.
func TestTextRetryAnnotations(t *testing.T) {
	base := sampleReport(t)
	cases := []struct {
		name      string
		scenarios []failure.Scenario
		want      []string
		dontWant  []string
	}{
		{
			name: "recovered with attempt count",
			scenarios: []failure.Scenario{
				{FailedServer: "srv-01", Feasible: true, Attempts: 3, Recovered: true},
			},
			want: []string{"(recovered on attempt 3)", "1 scenario(s) recovered"},
		},
		{
			name: "recovered without attempt count",
			scenarios: []failure.Scenario{
				{FailedServer: "srv-01", Feasible: true, Attempts: 1, Recovered: true},
			},
			want:     []string{"absorbable (recovered)"},
			dontWant: []string{"recovered on attempt 1"},
		},
		{
			name: "single-attempt give-up",
			scenarios: []failure.Scenario{
				{FailedServer: "srv-01", Attempts: 1, Err: errors.New("boom"), GaveUp: true},
			},
			want:     []string{"INCONCLUSIVE (analysis failed)", "1 gave up"},
			dontWant: []string{"gave up after 1 attempts"},
		},
		{
			name:     "zero scenarios",
			dontWant: []string{"failure scenarios:", "verdict:", "self-healing:"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := *base
			r.Failures = &failure.Report{Scenarios: tc.scenarios}
			var buf bytes.Buffer
			if err := Text(&buf, &r); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
			for _, dont := range tc.dontWant {
				if strings.Contains(out, dont) {
					t.Errorf("output contains %q:\n%s", dont, out)
				}
			}
		})
	}
}
