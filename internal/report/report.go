// Package report renders the output of a capacity-management pass
// (core.Report) for humans and machines: a text summary for terminals
// and a stable JSON document for dashboards and follow-up tooling.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

import "ropus/internal/core"

// AppSummary describes one application's translation.
type AppSummary struct {
	ID string `json:"id"`
	// Breakpoint is the CoS1/CoS2 demand breakpoint p.
	Breakpoint float64 `json:"breakpoint"`
	// PeakDemandCPU is the observed peak demand D_max.
	PeakDemandCPU float64 `json:"peakDemandCpu"`
	// CappedDemandCPU is D_new_max after the degradation allowances.
	CappedDemandCPU float64 `json:"cappedDemandCpu"`
	// MaxAllocationCPU is the maximum allocation D_new_max / Ulow.
	MaxAllocationCPU float64 `json:"maxAllocationCpu"`
	// CapReductionPercent is the achieved MaxCapReduction in percent.
	CapReductionPercent float64 `json:"capReductionPercent"`
}

// ServerSummary describes one used server of the consolidated plan.
type ServerSummary struct {
	ID          string   `json:"id"`
	AppIDs      []string `json:"appIds"`
	RequiredCPU float64  `json:"requiredCpu"`
	CapacityCPU float64  `json:"capacityCpu"`
	// MeasuredTheta is the resource access probability the simulator
	// measured at the reported capacity.
	MeasuredTheta float64 `json:"measuredTheta"`
}

// FailureSummary describes one single-server failure scenario.
type FailureSummary struct {
	FailedServer string   `json:"failedServer"`
	AffectedApps []string `json:"affectedApps"`
	Absorbable   bool     `json:"absorbable"`
	// Attempts is how many analysis attempts the scenario took; > 1
	// means the retry policy re-attempted a transient fault.
	Attempts int `json:"attempts"`
	// Recovered marks a scenario that failed transiently and then
	// succeeded on a retry.
	Recovered bool `json:"recovered,omitempty"`
	// Inconclusive marks a scenario whose analysis failed even after
	// exhausting the retry policy: Absorbable proves nothing for it.
	Inconclusive bool `json:"inconclusive,omitempty"`
	// Error carries the inconclusive scenario's last error message.
	Error string `json:"error,omitempty"`
}

// Summary is the JSON-friendly distillation of a core.Report.
type Summary struct {
	Applications   int     `json:"applications"`
	ServersUsed    int     `json:"serversUsed"`
	CPeakCPU       float64 `json:"cPeakCpu"`
	CRequCPU       float64 `json:"cRequCpu"`
	SavingsPercent float64 `json:"savingsPercent"`
	SpareNeeded    bool    `json:"spareNeeded"`

	// Retry accounting for the failure sweep: extra attempts beyond
	// each scenario's first, scenarios recovered by a retry, and
	// scenarios recorded inconclusive after exhausting the policy.
	ExtraAttempts      int `json:"extraAttempts,omitempty"`
	RecoveredScenarios int `json:"recoveredScenarios,omitempty"`
	GaveUpScenarios    int `json:"gaveUpScenarios,omitempty"`

	Apps     []AppSummary     `json:"apps"`
	Servers  []ServerSummary  `json:"servers"`
	Failures []FailureSummary `json:"failures"`
}

// Summarize distills a core.Report.
func Summarize(r *core.Report) (*Summary, error) {
	if r == nil || r.Translation == nil || r.Consolidation == nil {
		return nil, errors.New("report: incomplete report")
	}
	s := &Summary{
		Applications: len(r.Translation.Normal),
		ServersUsed:  r.Consolidation.ServersUsed(),
		CPeakCPU:     r.Translation.CPeakTotal(),
		CRequCPU:     r.Consolidation.CRequTotal(),
	}
	if s.CPeakCPU > 0 {
		s.SavingsPercent = (1 - s.CRequCPU/s.CPeakCPU) * 100
	}
	for _, p := range r.Translation.Normal {
		s.Apps = append(s.Apps, AppSummary{
			ID:                  p.AppID,
			Breakpoint:          p.P,
			PeakDemandCPU:       p.DMax,
			CappedDemandCPU:     p.DNewMax,
			MaxAllocationCPU:    p.MaxAllocation(),
			CapReductionPercent: p.MaxCapReduction() * 100,
		})
	}
	for i, usage := range r.Consolidation.Plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		s.Servers = append(s.Servers, ServerSummary{
			ID:            r.Consolidation.Problem.Servers[i].ID,
			AppIDs:        usage.AppIDs,
			RequiredCPU:   usage.Required,
			CapacityCPU:   r.Consolidation.Problem.Servers[i].Capacity(),
			MeasuredTheta: usage.Result.Theta,
		})
	}
	if r.Failures != nil {
		s.SpareNeeded = r.Failures.SpareNeeded
		s.ExtraAttempts, s.RecoveredScenarios, s.GaveUpScenarios = r.Failures.Retries()
		for _, sc := range r.Failures.Scenarios {
			fs := FailureSummary{
				FailedServer: sc.FailedServer,
				AffectedApps: sc.AffectedApps,
				Absorbable:   sc.Feasible,
				Attempts:     sc.Attempts,
				Recovered:    sc.Recovered,
			}
			if sc.Err != nil {
				fs.Inconclusive = true
				fs.Error = sc.Err.Error()
			}
			s.Failures = append(s.Failures, fs)
		}
	}
	return s, nil
}

// JSON writes the summary as indented JSON.
func JSON(w io.Writer, r *core.Report) error {
	s, err := Summarize(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text writes a human-readable summary.
func Text(w io.Writer, r *core.Report) error {
	s, err := Summarize(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "R-Opus capacity report: %d applications on %d servers\n",
		s.Applications, s.ServersUsed)
	fmt.Fprintf(w, "sum of peak allocations %.1f CPUs, required %.1f CPUs (%.0f%% saved by sharing)\n\n",
		s.CPeakCPU, s.CRequCPU, s.SavingsPercent)

	fmt.Fprintf(w, "%-10s %6s %10s %10s %10s %8s\n",
		"app", "p", "Dmax", "DnewMax", "maxAlloc", "red%")
	for _, a := range s.Apps {
		fmt.Fprintf(w, "%-10s %6.3f %10.2f %10.2f %10.2f %8.2f\n",
			a.ID, a.Breakpoint, a.PeakDemandCPU, a.CappedDemandCPU,
			a.MaxAllocationCPU, a.CapReductionPercent)
	}

	fmt.Fprintf(w, "\n%-10s %10s %10s %8s  %s\n", "server", "required", "capacity", "theta'", "apps")
	for _, srv := range s.Servers {
		fmt.Fprintf(w, "%-10s %10.2f %10.1f %8.4f  %v\n",
			srv.ID, srv.RequiredCPU, srv.CapacityCPU, srv.MeasuredTheta, srv.AppIDs)
	}

	if len(s.Failures) > 0 {
		fmt.Fprintln(w, "\nfailure scenarios:")
		for _, f := range s.Failures {
			verdict := "absorbable"
			switch {
			case f.Inconclusive:
				verdict = "INCONCLUSIVE (analysis failed"
				if f.Attempts > 1 {
					verdict += fmt.Sprintf(", gave up after %d attempts", f.Attempts)
				}
				verdict += ")"
			case !f.Absorbable:
				verdict = "NOT absorbable"
			}
			// A recovery implies a retried attempt; data that claims
			// Recovered at Attempts <= 1 (hand-built or partially
			// populated reports) gets the fact without the bogus count.
			switch {
			case f.Recovered && f.Attempts > 1:
				verdict += fmt.Sprintf(" (recovered on attempt %d)", f.Attempts)
			case f.Recovered:
				verdict += " (recovered)"
			}
			fmt.Fprintf(w, "  %-10s %d apps affected: %s\n", f.FailedServer, len(f.AffectedApps), verdict)
		}
		if s.RecoveredScenarios > 0 || s.GaveUpScenarios > 0 {
			fmt.Fprintf(w, "self-healing: %d extra attempt(s), %d scenario(s) recovered, %d gave up\n",
				s.ExtraAttempts, s.RecoveredScenarios, s.GaveUpScenarios)
		}
		if s.SpareNeeded {
			fmt.Fprintln(w, "verdict: a spare server is needed")
		} else {
			fmt.Fprintln(w, "verdict: no spare server needed")
		}
	}
	return nil
}
