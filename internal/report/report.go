// Package report renders the output of a capacity-management pass
// (core.Report) for humans and machines: a text summary for terminals
// and a stable JSON document for dashboards and follow-up tooling.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

import "ropus/internal/core"

// AppSummary describes one application's translation.
type AppSummary struct {
	ID string `json:"id"`
	// Breakpoint is the CoS1/CoS2 demand breakpoint p.
	Breakpoint float64 `json:"breakpoint"`
	// PeakDemandCPU is the observed peak demand D_max.
	PeakDemandCPU float64 `json:"peakDemandCpu"`
	// CappedDemandCPU is D_new_max after the degradation allowances.
	CappedDemandCPU float64 `json:"cappedDemandCpu"`
	// MaxAllocationCPU is the maximum allocation D_new_max / Ulow.
	MaxAllocationCPU float64 `json:"maxAllocationCpu"`
	// CapReductionPercent is the achieved MaxCapReduction in percent.
	CapReductionPercent float64 `json:"capReductionPercent"`
}

// ServerSummary describes one used server of the consolidated plan.
type ServerSummary struct {
	ID          string   `json:"id"`
	AppIDs      []string `json:"appIds"`
	RequiredCPU float64  `json:"requiredCpu"`
	CapacityCPU float64  `json:"capacityCpu"`
	// MeasuredTheta is the resource access probability the simulator
	// measured at the reported capacity.
	MeasuredTheta float64 `json:"measuredTheta"`
}

// FailureSummary describes one single-server failure scenario.
type FailureSummary struct {
	FailedServer string   `json:"failedServer"`
	AffectedApps []string `json:"affectedApps"`
	Absorbable   bool     `json:"absorbable"`
	// Attempts is how many analysis attempts the scenario took; > 1
	// means the retry policy re-attempted a transient fault.
	Attempts int `json:"attempts"`
	// Recovered marks a scenario that failed transiently and then
	// succeeded on a retry.
	Recovered bool `json:"recovered,omitempty"`
	// Inconclusive marks a scenario whose analysis failed even after
	// exhausting the retry policy: Absorbable proves nothing for it.
	Inconclusive bool `json:"inconclusive,omitempty"`
	// Error carries the inconclusive scenario's last error message.
	Error string `json:"error,omitempty"`
}

// ScenarioSummary describes one named failure scenario (domain loss,
// cascade, maintenance window) with its revenue-at-risk pricing.
type ScenarioSummary struct {
	Name          string   `json:"name"`
	FailedServers []string `json:"failedServers"`
	AffectedApps  []string `json:"affectedApps"`
	Absorbable    bool     `json:"absorbable"`
	// Theta is the scenario's commitment override; 0 means pool default.
	Theta float64 `json:"theta,omitempty"`
	// CascadeRounds / CascadeAdded record the overload closure: how many
	// rounds it ran and which servers it failed beyond the initial set.
	CascadeRounds int      `json:"cascadeRounds,omitempty"`
	CascadeAdded  []string `json:"cascadeAdded,omitempty"`
	// Probability weights RevenueAtRisk into ExpectedRevenueAtRisk.
	Probability           float64 `json:"probability"`
	RevenueAtRisk         float64 `json:"revenueAtRisk"`
	ExpectedRevenueAtRisk float64 `json:"expectedRevenueAtRisk"`
	// AppRisk breaks RevenueAtRisk down per affected application; the
	// entries sum exactly to RevenueAtRisk.
	AppRisk []AppRiskSummary `json:"appRisk,omitempty"`
	// Inconclusive / Error mirror the failure sweep's diagnosis.
	Inconclusive bool   `json:"inconclusive,omitempty"`
	Error        string `json:"error,omitempty"`
	Attempts     int    `json:"attempts,omitempty"`
	Recovered    bool   `json:"recovered,omitempty"`
}

// AppRiskSummary is one application's share of a scenario's revenue at
// risk.
type AppRiskSummary struct {
	AppID  string  `json:"appId"`
	AtRisk float64 `json:"atRisk"`
}

// Summary is the JSON-friendly distillation of a core.Report.
type Summary struct {
	Applications   int     `json:"applications"`
	ServersUsed    int     `json:"serversUsed"`
	CPeakCPU       float64 `json:"cPeakCpu"`
	CRequCPU       float64 `json:"cRequCpu"`
	SavingsPercent float64 `json:"savingsPercent"`
	SpareNeeded    bool    `json:"spareNeeded"`

	// Retry accounting for the failure sweep: extra attempts beyond
	// each scenario's first, scenarios recovered by a retry, and
	// scenarios recorded inconclusive after exhausting the policy.
	ExtraAttempts      int `json:"extraAttempts,omitempty"`
	RecoveredScenarios int `json:"recoveredScenarios,omitempty"`
	GaveUpScenarios    int `json:"gaveUpScenarios,omitempty"`

	Apps     []AppSummary     `json:"apps"`
	Servers  []ServerSummary  `json:"servers"`
	Failures []FailureSummary `json:"failures"`

	// Scenarios holds the named-scenario sweep, ranked by descending
	// expected revenue at risk (the order to buy down risk in); empty
	// when the pass ran without a scenario universe so plain reports
	// keep their historical byte-exact form.
	Scenarios []ScenarioSummary `json:"scenarios,omitempty"`
	// TotalExpectedRevenueAtRiskPerHour sums the ranked scenarios'
	// expected revenue at risk.
	TotalExpectedRevenueAtRiskPerHour float64 `json:"totalExpectedRevenueAtRiskPerHour,omitempty"`
	// ScenariosTruncated reports a scenario sweep cancelled before every
	// scenario was evaluated.
	ScenariosTruncated bool `json:"scenariosTruncated,omitempty"`
}

// Summarize distills a core.Report.
func Summarize(r *core.Report) (*Summary, error) {
	if r == nil || r.Translation == nil || r.Consolidation == nil {
		return nil, errors.New("report: incomplete report")
	}
	s := &Summary{
		Applications: len(r.Translation.Normal),
		ServersUsed:  r.Consolidation.ServersUsed(),
		CPeakCPU:     r.Translation.CPeakTotal(),
		CRequCPU:     r.Consolidation.CRequTotal(),
	}
	if s.CPeakCPU > 0 {
		s.SavingsPercent = (1 - s.CRequCPU/s.CPeakCPU) * 100
	}
	for _, p := range r.Translation.Normal {
		s.Apps = append(s.Apps, AppSummary{
			ID:                  p.AppID,
			Breakpoint:          p.P,
			PeakDemandCPU:       p.DMax,
			CappedDemandCPU:     p.DNewMax,
			MaxAllocationCPU:    p.MaxAllocation(),
			CapReductionPercent: p.MaxCapReduction() * 100,
		})
	}
	for i, usage := range r.Consolidation.Plan.Usages {
		if len(usage.AppIDs) == 0 {
			continue
		}
		s.Servers = append(s.Servers, ServerSummary{
			ID:            r.Consolidation.Problem.Servers[i].ID,
			AppIDs:        usage.AppIDs,
			RequiredCPU:   usage.Required,
			CapacityCPU:   r.Consolidation.Problem.Servers[i].Capacity(),
			MeasuredTheta: usage.Result.Theta,
		})
	}
	if r.Failures != nil {
		s.SpareNeeded = r.Failures.SpareNeeded
		s.ExtraAttempts, s.RecoveredScenarios, s.GaveUpScenarios = r.Failures.Retries()
		for _, sc := range r.Failures.Scenarios {
			fs := FailureSummary{
				FailedServer: sc.FailedServer,
				AffectedApps: sc.AffectedApps,
				Absorbable:   sc.Feasible,
				Attempts:     sc.Attempts,
				Recovered:    sc.Recovered,
			}
			if sc.Err != nil {
				fs.Inconclusive = true
				fs.Error = sc.Err.Error()
			}
			s.Failures = append(s.Failures, fs)
		}
	}
	if r.Scenarios != nil {
		s.TotalExpectedRevenueAtRiskPerHour = r.Scenarios.TotalExpectedRevenueAtRisk
		s.ScenariosTruncated = r.Scenarios.Truncated
		if r.Scenarios.SparesNeeded {
			s.SpareNeeded = true
		}
		for _, sc := range r.Scenarios.Ranked() {
			ss := ScenarioSummary{
				Name:                  sc.Name,
				FailedServers:         sc.FailedServers,
				AffectedApps:          sc.AffectedApps,
				Absorbable:            sc.Feasible,
				Theta:                 sc.Theta,
				CascadeRounds:         sc.CascadeRounds,
				CascadeAdded:          sc.CascadeAdded,
				Probability:           sc.Probability,
				RevenueAtRisk:         sc.RevenueAtRisk,
				ExpectedRevenueAtRisk: sc.ExpectedRevenueAtRisk,
				Attempts:              sc.Attempts,
				Recovered:             sc.Recovered,
			}
			for _, ar := range sc.AppRisk {
				ss.AppRisk = append(ss.AppRisk, AppRiskSummary{AppID: ar.AppID, AtRisk: ar.AtRisk})
			}
			if sc.Err != nil || sc.ErrText != "" {
				ss.Inconclusive = true
				ss.Error = sc.ErrText
				if ss.Error == "" {
					ss.Error = sc.Err.Error()
				}
			}
			s.Scenarios = append(s.Scenarios, ss)
		}
	}
	return s, nil
}

// JSON writes the summary as indented JSON.
func JSON(w io.Writer, r *core.Report) error {
	s, err := Summarize(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text writes a human-readable summary.
func Text(w io.Writer, r *core.Report) error {
	s, err := Summarize(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "R-Opus capacity report: %d applications on %d servers\n",
		s.Applications, s.ServersUsed)
	fmt.Fprintf(w, "sum of peak allocations %.1f CPUs, required %.1f CPUs (%.0f%% saved by sharing)\n\n",
		s.CPeakCPU, s.CRequCPU, s.SavingsPercent)

	fmt.Fprintf(w, "%-10s %6s %10s %10s %10s %8s\n",
		"app", "p", "Dmax", "DnewMax", "maxAlloc", "red%")
	for _, a := range s.Apps {
		fmt.Fprintf(w, "%-10s %6.3f %10.2f %10.2f %10.2f %8.2f\n",
			a.ID, a.Breakpoint, a.PeakDemandCPU, a.CappedDemandCPU,
			a.MaxAllocationCPU, a.CapReductionPercent)
	}

	fmt.Fprintf(w, "\n%-10s %10s %10s %8s  %s\n", "server", "required", "capacity", "theta'", "apps")
	for _, srv := range s.Servers {
		fmt.Fprintf(w, "%-10s %10.2f %10.1f %8.4f  %v\n",
			srv.ID, srv.RequiredCPU, srv.CapacityCPU, srv.MeasuredTheta, srv.AppIDs)
	}

	if len(s.Failures) > 0 {
		fmt.Fprintln(w, "\nfailure scenarios:")
		for _, f := range s.Failures {
			verdict := "absorbable"
			switch {
			case f.Inconclusive:
				verdict = "INCONCLUSIVE (analysis failed"
				if f.Attempts > 1 {
					verdict += fmt.Sprintf(", gave up after %d attempts", f.Attempts)
				}
				verdict += ")"
			case !f.Absorbable:
				verdict = "NOT absorbable"
			}
			// A recovery implies a retried attempt; data that claims
			// Recovered at Attempts <= 1 (hand-built or partially
			// populated reports) gets the fact without the bogus count.
			switch {
			case f.Recovered && f.Attempts > 1:
				verdict += fmt.Sprintf(" (recovered on attempt %d)", f.Attempts)
			case f.Recovered:
				verdict += " (recovered)"
			}
			fmt.Fprintf(w, "  %-10s %d apps affected: %s\n", f.FailedServer, len(f.AffectedApps), verdict)
		}
		if s.RecoveredScenarios > 0 || s.GaveUpScenarios > 0 {
			fmt.Fprintf(w, "self-healing: %d extra attempt(s), %d scenario(s) recovered, %d gave up\n",
				s.ExtraAttempts, s.RecoveredScenarios, s.GaveUpScenarios)
		}
		if s.SpareNeeded {
			fmt.Fprintln(w, "verdict: a spare server is needed")
		} else {
			fmt.Fprintln(w, "verdict: no spare server needed")
		}
	}

	if len(s.Scenarios) > 0 {
		fmt.Fprintln(w, "\nscenario universe (ranked by expected revenue at risk):")
		for i, sc := range s.Scenarios {
			verdict := "absorbable"
			switch {
			case sc.Inconclusive:
				verdict = "INCONCLUSIVE"
			case !sc.Absorbable:
				verdict = "NOT absorbable"
			}
			fmt.Fprintf(w, "  %2d. %-24s p=%.3g  at-risk %.2f/h  expected %.2f/h  [%s]\n",
				i+1, sc.Name, sc.Probability, sc.RevenueAtRisk, sc.ExpectedRevenueAtRisk, verdict)
			fmt.Fprintf(w, "      fails %v", sc.FailedServers)
			if len(sc.CascadeAdded) > 0 {
				fmt.Fprintf(w, " (cascade added %v in %d round(s))", sc.CascadeAdded, sc.CascadeRounds)
			}
			if sc.Theta > 0 {
				fmt.Fprintf(w, " at theta=%.3g", sc.Theta)
			}
			fmt.Fprintf(w, ", %d app(s) affected\n", len(sc.AffectedApps))
			if sc.Inconclusive && sc.Error != "" {
				fmt.Fprintf(w, "      error: %s\n", sc.Error)
			}
		}
		fmt.Fprintf(w, "total expected revenue at risk: %.2f/h\n", s.TotalExpectedRevenueAtRiskPerHour)
		if s.ScenariosTruncated {
			fmt.Fprintln(w, "scenario sweep truncated before completion")
		}
	}
	return nil
}
