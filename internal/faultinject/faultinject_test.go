package faultinject

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"ropus/internal/resilience"
)

func TestChaosRuleValidate(t *testing.T) {
	tests := []struct {
		name    string
		rule    Rule
		wantErr bool
	}{
		{name: "valid", rule: Rule{Point: "p"}},
		{name: "no point", rule: Rule{}, wantErr: true},
		{name: "negative nth", rule: Rule{Point: "p", Nth: -1}, wantErr: true},
		{name: "prob above one", rule: Rule{Point: "p", Prob: 1.5}, wantErr: true},
		{name: "prob NaN", rule: Rule{Point: "p", Prob: math.NaN()}, wantErr: true},
		{name: "negative delay", rule: Rule{Point: "p", Delay: -time.Second}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.rule.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	if _, err := NewScript(1, Rule{}); err == nil {
		t.Error("NewScript should reject an invalid rule")
	}
}

func TestChaosScriptErrorRule(t *testing.T) {
	s := MustScript(1, Rule{Point: "failure.scenario", Key: "srv-b"})
	if o := s.Hit("failure.scenario", "srv-a"); o.Err != nil {
		t.Errorf("key srv-a should not fire, got %v", o.Err)
	}
	o := s.Hit("failure.scenario", "srv-b")
	if !errors.Is(o.Err, ErrInjected) {
		t.Errorf("injected error should wrap ErrInjected, got %v", o.Err)
	}
	if o := s.Hit("other.point", "srv-b"); o.Err != nil {
		t.Errorf("other point should not fire, got %v", o.Err)
	}
	if got := s.Hits("failure.scenario"); got != 2 {
		t.Errorf("Hits = %d, want 2", got)
	}
	if got := s.Fired("failure.scenario"); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
}

func TestChaosScriptCustomErrDelayCorrupt(t *testing.T) {
	sentinel := errors.New("boom")
	s := MustScript(1,
		Rule{Point: "p", Err: sentinel},
		Rule{Point: "p", Delay: 5 * time.Millisecond},
		Rule{Point: "p", Corrupt: true},
	)
	o := s.Hit("p", "k")
	if !errors.Is(o.Err, sentinel) {
		t.Errorf("Err = %v, want sentinel", o.Err)
	}
	if o.Delay != 5*time.Millisecond {
		t.Errorf("Delay = %v, want 5ms", o.Delay)
	}
	if !o.Corrupt {
		t.Error("Corrupt should be set")
	}
}

func TestChaosScriptNthFiresOnce(t *testing.T) {
	s := MustScript(1, Rule{Point: "p", Nth: 3})
	for i := 1; i <= 5; i++ {
		o := s.Hit("p", "k")
		if (o.Err != nil) != (i == 3) {
			t.Errorf("hit %d: err = %v", i, o.Err)
		}
	}
}

func TestChaosScriptProbDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		s := MustScript(seed, Rule{Point: "p", Prob: 0.5})
		out := make([]bool, 20)
		for i := range out {
			out[i] = s.Hit("p", "k").Err != nil
		}
		return out
	}
	a, b := fire(7), fire(7)
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Errorf("Prob 0.5 over 20 hits should fire sometimes but not always (got %v)", a)
	}
}

func TestChaosNilInjectorsAreSafe(t *testing.T) {
	var s *Script
	if o := s.Hit("p", "k"); o.Err != nil || o.Delay != 0 || o.Corrupt {
		t.Errorf("nil script injected %+v", o)
	}
	f := Func(func(point, key string) Outcome {
		return Outcome{Err: fmt.Errorf("%s[%s]", point, key)}
	})
	if o := f.Hit("p", "k"); o.Err == nil {
		t.Error("Func adapter did not pass through")
	}
}

func TestChaosScriptConcurrent(t *testing.T) {
	s := MustScript(1, Rule{Point: "p", Prob: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Hit("p", "k")
			}
		}()
	}
	wg.Wait()
	if got := s.Hits("p"); got != 800 {
		t.Errorf("Hits = %d, want 800", got)
	}
}

func TestChaosCorruptSlots(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out := CorruptSlots(in, 0.25, 3)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d", len(out))
	}
	nans := 0
	for i, v := range in {
		if v != in[i] && !math.IsNaN(out[i]) {
			t.Errorf("slot %d changed to non-NaN %v", i, out[i])
		}
		if math.IsNaN(out[i]) {
			nans++
		}
	}
	if nans != 2 {
		t.Errorf("corrupted %d slots, want 2", nans)
	}
	again := CorruptSlots(in, 0.25, 3)
	for i := range out {
		if math.IsNaN(out[i]) != math.IsNaN(again[i]) {
			t.Fatalf("same seed corrupted different slots")
		}
	}
	for _, v := range in {
		if math.IsNaN(v) {
			t.Fatal("input was mutated")
		}
	}
	if tiny := CorruptSlots([]float64{1}, 0.01, 1); !math.IsNaN(tiny[0]) {
		t.Error("at least one slot should be corrupted")
	}
}

func TestChaosChurn(t *testing.T) {
	in := []string{"a", "b", "c", "d"}
	out := Churn(in, 2, 5)
	if len(out) != 2 {
		t.Fatalf("Churn kept %d items, want 2", len(out))
	}
	again := Churn(in, 2, 5)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("same seed churned differently")
		}
	}
	if got := Churn(in, 10, 5); len(got) != 1 {
		t.Errorf("Churn should never drop below one item, kept %d", len(got))
	}
	if got := Churn(in, 0, 5); len(got) != len(in) {
		t.Errorf("drop 0 should keep everything, kept %d", len(got))
	}
}

func TestChaosTransientClassification(t *testing.T) {
	s := MustScript(1,
		Rule{Point: "p", Key: "flaky", Transient: true},
		Rule{Point: "p", Key: "dead"},
		Rule{Point: "p", Key: "custom", Err: errors.New("wrapped blip"), Transient: true},
	)

	flaky := s.Hit("p", "flaky")
	if flaky.Err == nil || !flaky.Transient {
		t.Fatalf("transient rule outcome = %+v", flaky)
	}
	if !resilience.Transient(flaky.Err) {
		t.Error("transient injected error must classify via resilience.Transient")
	}
	if !errors.Is(flaky.Err, ErrInjected) {
		t.Error("transient wrapping must preserve the ErrInjected chain")
	}
	if !errors.Is(flaky.Err, resilience.ErrTransient) {
		t.Error("transient injected error must match resilience.ErrTransient")
	}

	dead := s.Hit("p", "dead")
	if dead.Err == nil || dead.Transient {
		t.Fatalf("permanent rule outcome = %+v", dead)
	}
	if resilience.Transient(dead.Err) {
		t.Error("the permanent default must not classify as transient")
	}

	custom := s.Hit("p", "custom")
	if !resilience.Transient(custom.Err) || custom.Err.Error() != "wrapped blip" {
		t.Errorf("custom transient error = %v (transient %v)", custom.Err, custom.Transient)
	}
}
