// Package faultinject provides deterministic, scripted fault injection
// for exercising the planning pipeline's graceful-degradation paths.
//
// A Script is a seeded list of Rules. Instrumented components (the
// failure planner, the simulator's required-capacity search, the
// workload-manager replay) call Hit at named injection points; the
// script decides — deterministically for a given seed and hit sequence —
// whether to inject an error, an artificial delay, or a request to
// corrupt the data flowing through the point. Production code paths pay
// nothing: components only consult an Injector when one is configured,
// and the zero configuration is nil.
//
// Injection points currently consumed by the repository:
//
//	failure.scenario        key = failed server ID (or multi-failure Key)
//	planner.step            key = weeks ahead ("0" for the baseline)
//	sim.required_capacity   key = Problem server ID (via Config.InjectKey)
//	sim.replay              key = Config.InjectKey
//	wlmgr.container         key = application ID
//	lease.acquire           key = lease name; Err fails the acquisition
//	lease.expire            key = lease name; any fired outcome makes a
//	                        live peer lease count as expired, forcing a
//	                        deterministic (contested) steal
//	lease.steal             key = lease name; Delay widens the window
//	                        between expiry detection and the steal rename,
//	                        staging multi-instance steal races
//	lease.renew             key = lease name; Err makes the holder observe
//	                        a lost lease on its next heartbeat
//
// The package is dependency-free (stdlib plus the repo's resilience
// classification) and safe for concurrent use.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"ropus/internal/resilience"
)

// ErrInjected is the base error of every scripted fault, so tests and
// degradation paths can match injected failures with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Outcome is what a Hit decided: any combination of an error to
// surface, a delay to impose, and a request to corrupt the data at the
// injection point. The zero Outcome means "proceed normally".
type Outcome struct {
	// Err is the scripted error, nil when no error fault fired. A
	// transient fault's Err is wrapped with resilience.MarkTransient, so
	// resilience.Transient(Err) and errors.Is(Err, resilience.ErrTransient)
	// both classify it.
	Err error
	// Delay is an artificial latency the component should impose
	// (modelling a slow stage); zero when none fired.
	Delay time.Duration
	// Corrupt asks the component to corrupt the data flowing through
	// the point (e.g. a NaN trace slot) and exercise its detection path.
	Corrupt bool
	// Transient classifies the injected fault: true models a blip a
	// retry could absorb, false (the default — existing scripts keep
	// their behaviour) a permanent failure that retrying cannot fix.
	Transient bool
}

// Injector decides the fate of each instrumented operation. A nil
// Injector (the production default) injects nothing.
type Injector interface {
	// Hit reports the scripted outcome for one occurrence of the named
	// injection point; key identifies the occurrence (a server ID, an
	// application ID, ...).
	Hit(point, key string) Outcome
}

// Func adapts a plain function to the Injector interface, handy for
// one-off test injectors (e.g. cancelling a context on the nth hit).
type Func func(point, key string) Outcome

// Hit implements Injector.
func (f Func) Hit(point, key string) Outcome { return f(point, key) }

// Rule scripts faults for one injection point. A rule fires when the
// point matches, the key matches (empty Key matches every key), the
// occurrence count matches Nth (0 = every occurrence), and the seeded
// coin matches Prob (0 = always).
type Rule struct {
	// Point is the injection point the rule applies to (required).
	Point string
	// Key restricts the rule to one occurrence key; empty matches all.
	Key string
	// Nth fires the rule only on the nth matching hit (1-based);
	// 0 fires on every matching hit.
	Nth int
	// Prob fires the rule with this probability per matching hit, drawn
	// from the script's seeded generator; 0 (or >= 1) means always.
	Prob float64
	// Err is the error to inject; when nil but the rule is an error
	// fault (neither Delay nor Corrupt set), a wrapped ErrInjected
	// naming the point and key is injected instead.
	Err error
	// Delay is an artificial latency to inject.
	Delay time.Duration
	// Corrupt requests data corruption at the point.
	Corrupt bool
	// Transient marks the injected error as transient (retryable under
	// a resilience.Policy). The zero value keeps the historical
	// behaviour: injected faults are permanent and never retried.
	Transient bool
}

// Validate checks the rule.
func (r Rule) Validate() error {
	if r.Point == "" {
		return errors.New("faultinject: rule needs a Point")
	}
	if r.Nth < 0 {
		return fmt.Errorf("faultinject: rule %q: Nth %d < 0", r.Point, r.Nth)
	}
	if r.Prob < 0 || r.Prob > 1 || math.IsNaN(r.Prob) {
		return fmt.Errorf("faultinject: rule %q: Prob %v outside [0,1]", r.Point, r.Prob)
	}
	if r.Delay < 0 {
		return fmt.Errorf("faultinject: rule %q: negative Delay %v", r.Point, r.Delay)
	}
	return nil
}

// Script is a deterministic, seeded Injector driven by a rule list. It
// is safe for concurrent use; determinism across runs holds as long as
// the sequence of Hit calls is itself deterministic (the repository's
// consumers hit their points in loop order).
type Script struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	// ruleHits counts matching hits per rule (for Nth).
	ruleHits []int
	// hits counts every Hit per point, fired those that injected
	// something.
	hits  map[string]int
	fired map[string]int
}

// NewScript builds a Script from validated rules. Invalid rules are
// reported immediately so a typo cannot silently disable a chaos test.
func NewScript(seed int64, rules ...Rule) (*Script, error) {
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("faultinject: rule %d: %w", i, err)
		}
	}
	return &Script{
		rng:      rand.New(rand.NewSource(seed)),
		rules:    append([]Rule(nil), rules...),
		ruleHits: make([]int, len(rules)),
		hits:     make(map[string]int),
		fired:    make(map[string]int),
	}, nil
}

// MustScript is NewScript for rule lists known to be valid (tests).
func MustScript(seed int64, rules ...Rule) *Script {
	s, err := NewScript(seed, rules...)
	if err != nil {
		panic(err)
	}
	return s
}

// Hit implements Injector. A nil *Script injects nothing.
func (s *Script) Hit(point, key string) Outcome {
	if s == nil {
		return Outcome{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits[point]++
	var out Outcome
	for i := range s.rules {
		r := &s.rules[i]
		if r.Point != point || (r.Key != "" && r.Key != key) {
			continue
		}
		s.ruleHits[i]++
		if r.Nth > 0 && s.ruleHits[i] != r.Nth {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && s.rng.Float64() >= r.Prob {
			continue
		}
		if r.Delay > 0 && out.Delay < r.Delay {
			out.Delay = r.Delay
		}
		if r.Corrupt {
			out.Corrupt = true
		}
		var injected error
		if r.Err != nil {
			injected = r.Err
		} else if r.Delay == 0 && !r.Corrupt && out.Err == nil {
			injected = fmt.Errorf("%w at %s[%s]", ErrInjected, point, key)
		}
		if injected != nil {
			if r.Transient {
				injected = resilience.MarkTransient(injected)
			}
			out.Err = injected
			out.Transient = r.Transient
		}
	}
	if out.Err != nil || out.Delay > 0 || out.Corrupt {
		s.fired[point]++
	}
	return out
}

// Hits returns how many times the point was consulted.
func (s *Script) Hits(point string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[point]
}

// Fired returns how many hits at the point injected something.
func (s *Script) Fired(point string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[point]
}

// CorruptSlots returns a copy of samples with roughly frac of its slots
// (at least one) replaced by NaN, chosen deterministically from seed.
// Tests use it to model corrupted monitoring data reaching the pipeline.
func CorruptSlots(samples []float64, frac float64, seed int64) []float64 {
	out := append([]float64(nil), samples...)
	if len(out) == 0 {
		return out
	}
	n := int(float64(len(out)) * frac)
	if n < 1 {
		n = 1
	}
	if n > len(out) {
		n = len(out)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, i := range rng.Perm(len(out))[:n] {
		out[i] = math.NaN()
	}
	return out
}

// Churn returns a copy of items with drop elements removed at
// deterministic seeded positions — simulated server-list churn for
// tests that shrink a pool mid-exercise. It never drops below one item.
func Churn[T any](items []T, drop int, seed int64) []T {
	if drop <= 0 || len(items) == 0 {
		return append([]T(nil), items...)
	}
	if drop >= len(items) {
		drop = len(items) - 1
	}
	rng := rand.New(rand.NewSource(seed))
	gone := make(map[int]bool, drop)
	for _, i := range rng.Perm(len(items))[:drop] {
		gone[i] = true
	}
	out := make([]T, 0, len(items)-drop)
	for i, it := range items {
		if !gone[i] {
			out = append(out, it)
		}
	}
	return out
}
