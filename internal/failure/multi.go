package failure

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
)

// Multi-node failure planning: the paper notes that the single-failure
// scenario "can be extended to multiple node failures". AnalyzeMulti
// evaluates every combination of k concurrent server failures among the
// servers used by the base plan, re-translating all affected
// applications with their failure-mode QoS and re-running the
// consolidation on the surviving servers.

// MultiScenario is the outcome for one set of concurrently failed
// servers — a k-combination from AnalyzeMulti, or a named scenario
// class (domain loss, cascade, maintenance window) from
// AnalyzeScenarios.
type MultiScenario struct {
	// Name identifies a named scenario (AnalyzeScenarios); empty for
	// k-combination sweeps, whose identity is Key().
	Name string `json:",omitempty"`
	// FailedServers are the servers removed in this scenario, in pool
	// order — including any cascade casualties.
	FailedServers []string
	// AffectedApps are the applications that were hosted on them.
	AffectedApps []string
	// Theta is the scenario's commitment override (maintenance window);
	// 0 means the pool default applied.
	Theta float64 `json:",omitempty"`
	// CascadeRounds counts the overload-closure rounds a cascading
	// scenario ran before reaching its fixed point (0 for none).
	CascadeRounds int `json:",omitempty"`
	// CascadeAdded lists the servers the cascade closure failed beyond
	// the initial set, in pool order.
	CascadeAdded []string `json:",omitempty"`
	// Feasible reports whether the affected applications could be
	// placed on the surviving servers under failure-mode QoS.
	Feasible bool
	// Plan is the re-consolidated plan when feasible; nil otherwise.
	Plan *placement.Plan
	// Servers is the surviving server list the plan was computed
	// against.
	Servers []placement.Server
	// Attempts is how many analysis attempts the combination took.
	Attempts int
	// Recovered reports a combination that succeeded only after a retry.
	Recovered bool
	// GaveUp reports a combination whose transient failures exhausted
	// the retry policy (see Scenario.GaveUp).
	GaveUp bool
	// Probability weights a named scenario's revenue at risk into its
	// expected value (1 when unset); economics fields are scored at
	// report assembly and are zero for plain k-combination sweeps run
	// without economics.
	Probability float64 `json:",omitempty"`
	// RevenueAtRisk is the per-hour value at risk under this scenario:
	// revenue + penalty of every affected application when the scenario
	// is unabsorbable (or inconclusive), penalties alone when the
	// survivors absorb it under failure-mode QoS.
	RevenueAtRisk float64 `json:",omitempty"`
	// ExpectedRevenueAtRisk is Probability × RevenueAtRisk.
	ExpectedRevenueAtRisk float64 `json:",omitempty"`
	// AppRisk breaks RevenueAtRisk down per affected application; the
	// entries sum exactly to RevenueAtRisk.
	AppRisk []AppRisk `json:",omitempty"`
	// Err records a scenario that could not be evaluated; like the
	// single-failure case it is inconclusive, does not count toward
	// SparesNeeded, and is never checkpointed (a resumed run
	// re-attempts it).
	Err error `json:"-"`
	// ErrText mirrors Err for serialized reports: error values do not
	// survive JSON, so remote consumers (serve results, flight
	// recordings) diagnose inconclusive scenarios through this field.
	ErrText string `json:",omitempty"`
}

// Key returns a stable identifier for the failed-server combination.
func (s MultiScenario) Key() string { return strings.Join(s.FailedServers, "+") }

// MultiReport aggregates all k-failure scenarios, or all named
// scenarios of an AnalyzeScenarios sweep (K = 0 there — the failed-set
// sizes vary per scenario).
type MultiReport struct {
	// K is the number of concurrent failures analyzed.
	K         int
	Scenarios []MultiScenario
	// SparesNeeded is true when at least one combination was proven
	// unabsorbable by the surviving servers; errored scenarios are
	// inconclusive and do not set it.
	SparesNeeded bool
	// Truncated reports that the sweep was cancelled before every
	// combination was evaluated; Scenarios holds the completed prefix.
	Truncated bool
	// TotalExpectedRevenueAtRisk sums ExpectedRevenueAtRisk over every
	// completed scenario (0 when the sweep ran without economics).
	TotalExpectedRevenueAtRisk float64 `json:",omitempty"`
}

// Ranked returns the scenarios ordered by descending expected revenue
// at risk — the order an operator should buy down risk in — breaking
// ties by sweep order so the ranking is deterministic. The receiver's
// Scenarios slice is not modified.
func (r *MultiReport) Ranked() []MultiScenario {
	out := append([]MultiScenario(nil), r.Scenarios...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].ExpectedRevenueAtRisk > out[j].ExpectedRevenueAtRisk
	})
	return out
}

// Errors returns the per-scenario errors recorded during the sweep, in
// scenario order (empty when every scenario evaluated cleanly).
func (r *MultiReport) Errors() []error {
	var errs []error
	for _, s := range r.Scenarios {
		if s.Err != nil {
			errs = append(errs, s.Err)
		}
	}
	return errs
}

// Retries summarizes the sweep's self-healing; see Report.Retries.
func (r *MultiReport) Retries() (extra, recovered, gaveUp int) {
	for _, s := range r.Scenarios {
		if s.Attempts > 1 {
			extra += s.Attempts - 1
		}
		if s.Recovered {
			recovered++
		}
		if s.GaveUp {
			gaveUp++
		}
	}
	return extra, recovered, gaveUp
}

// Worst returns the scenario with the most affected applications among
// the infeasible ones, or nil if every scenario is feasible.
func (r *MultiReport) Worst() *MultiScenario {
	var worst *MultiScenario
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		if sc.Feasible {
			continue
		}
		if worst == nil || len(sc.AffectedApps) > len(worst.AffectedApps) {
			worst = sc
		}
	}
	return worst
}

// AnalyzeMulti evaluates every combination of k concurrent failures of
// servers used by basePlan. k=1 degenerates to Analyze's scenarios.
// Degradation mirrors Analyze: errored combinations are recorded and
// skipped, cancellation truncates the sweep at a combination boundary,
// and a top-level error occurs only when every combination errors.
func AnalyzeMulti(ctx context.Context, in Input, basePlan *placement.Plan, k int) (report *MultiReport, err error) {
	defer robust.Recover("failure.AnalyzeMulti", &err)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if basePlan == nil {
		return nil, errors.New("failure: nil base plan")
	}
	if err := basePlan.Assignment.Validate(in.Problem); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("failure: k %d < 1", k)
	}

	var used []int
	for srvIdx := range in.Problem.Servers {
		if len(appsOn(basePlan.Assignment, srvIdx)) > 0 {
			used = append(used, srvIdx)
		}
	}
	if k > len(used) {
		return nil, fmt.Errorf("failure: k=%d exceeds the %d servers in use", k, len(used))
	}

	h := telemetry.OrNop(in.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, in.Hooks, "failure.analyze_multi",
		telemetry.Int("k", k),
		telemetry.Int("servers_in_use", len(used)))
	defer span.End()
	scenarioC := h.Counter("failure_scenarios_total")
	infeasibleC := h.Counter("failure_infeasible_scenarios_total")
	errorC := h.Counter("failure_scenario_errors_total")
	replayC := h.Counter("failure_scenarios_replayed_total")
	appendErrC := h.Counter("checkpoint_append_errors_total")
	scenarioSecs := h.Histogram("failure_scenario_seconds", nil)

	retry := in.Retry
	if retry.Hooks == nil {
		retry.Hooks = in.Hooks
	}

	// Fan the combinations out on the worker pool; like Analyze, results
	// land in combination order and the dispatched prefix is contiguous,
	// so truncation semantics match the sequential sweep.
	combos := combinations(used, k)
	scenarios := make([]MultiScenario, len(combos))
	scenarioErrs := make([]error, len(combos))
	done := parallel.ForEach(ctx, in.Workers, len(combos), func(i int) {
		comboKey := comboID(in.Problem, combos[i])
		key := checkpoint.NewHasher().Int(int64(k)).String(comboKey).Sum()
		var cached MultiScenario
		if ok, cerr := in.Journal.Lookup(unitMulti, key, &cached); cerr == nil && ok {
			scenarios[i] = cached
			scenarioC.Inc()
			replayC.Inc()
			return
		}
		start := time.Now()
		scenario, stats, err := resilience.Do(ctx, retry, comboKey,
			func(attemptCtx context.Context) (MultiScenario, error) {
				return analyzeCombo(attemptCtx, ctx, in, basePlan, combos[i])
			})
		scenario.Attempts = stats.Attempts
		scenario.Recovered = stats.Recovered
		scenario.GaveUp = stats.GaveUp
		scenarioC.Inc()
		scenarioSecs.Observe(time.Since(start).Seconds())
		// See Analyze: only clean, complete verdicts are checkpointed.
		if err == nil && ctx.Err() == nil && (scenario.Plan == nil || !scenario.Plan.Truncated) {
			if aerr := in.Journal.Append(unitMulti, key, scenario); aerr != nil {
				appendErrC.Inc()
			}
		}
		scenarios[i], scenarioErrs[i] = scenario, err
	})

	report = &MultiReport{K: k, Truncated: done < len(combos)}
	errored := 0
	for i := 0; i < done; i++ {
		scenario := scenarios[i]
		if err := scenarioErrs[i]; err != nil {
			scenario.Err = fmt.Errorf("failure: scenario %q: %w", scenario.Key(), err)
			scenario.ErrText = scenario.Err.Error()
			errorC.Inc()
			errored++
		} else if !scenario.Feasible {
			infeasibleC.Inc()
			report.SparesNeeded = true
		}
		report.Scenarios = append(report.Scenarios, scenario)
	}
	span.SetAttr(
		telemetry.Int("scenarios", len(report.Scenarios)),
		telemetry.Int("errors", errored),
		telemetry.Bool("spares_needed", report.SparesNeeded),
		telemetry.Bool("truncated", report.Truncated))
	if errored > 0 && errored == len(report.Scenarios) {
		return nil, fmt.Errorf("failure: every scenario failed to evaluate: %w", errors.Join(report.Errors()...))
	}
	return report, nil
}

// comboID is the stable identifier of a failed-server combination,
// matching MultiScenario.Key for the same combination.
func comboID(p *placement.Problem, combo []int) string {
	ids := make([]string, 0, len(combo))
	for _, s := range combo {
		ids = append(ids, p.Servers[s].ID)
	}
	return strings.Join(ids, "+")
}

// analyzeCombo re-consolidates after removing the given servers. Even
// when it errors, the returned scenario carries the combination's
// identity so the report can record which analysis failed. ctx is the
// attempt context, parent the sweep context (see analyzeScenario).
func analyzeCombo(ctx, parent context.Context, in Input, basePlan *placement.Plan, combo []int) (MultiScenario, error) {
	p := in.Problem
	failed := make(map[int]bool, len(combo))
	scenario := MultiScenario{}
	for _, s := range combo {
		failed[s] = true
		scenario.FailedServers = append(scenario.FailedServers, p.Servers[s].ID)
	}
	if in.Inject != nil {
		o := in.Inject.Hit("failure.scenario", scenario.Key())
		if o.Delay > 0 {
			t := time.NewTimer(o.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return scenario, ctx.Err()
			}
		}
		if o.Err != nil {
			return scenario, o.Err
		}
	}

	var affected []int
	for app, srv := range basePlan.Assignment {
		if failed[srv] {
			affected = append(affected, app)
		}
	}
	sort.Ints(affected)
	for _, a := range affected {
		scenario.AffectedApps = append(scenario.AffectedApps, p.Apps[a].ID)
	}

	if len(p.Servers) <= len(combo) {
		return scenario, nil // nothing survives
	}

	feasible, plan, servers, err := consolidateSurvivors(ctx, in, basePlan, failed, affected, 0)
	if err != nil {
		return scenario, err
	}
	if plan != nil && plan.Truncated && ctx.Err() != nil && parent.Err() == nil {
		return scenario, resilience.MarkTransient(
			fmt.Errorf("failure: scenario %q: attempt deadline cut the search short", scenario.Key()))
	}
	if feasible {
		scenario.Feasible = true
		scenario.Plan = plan
		scenario.Servers = servers
	}
	return scenario, nil
}

// combinations enumerates all k-element subsets of items in
// lexicographic order.
func combinations(items []int, k int) [][]int {
	var out [][]int
	combo := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i <= len(items)-(k-depth); i++ {
			combo[depth] = items[i]
			rec(i+1, depth+1)
		}
	}
	if k >= 1 && k <= len(items) {
		rec(0, 0)
	}
	return out
}
