package failure

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
)

// Multi-node failure planning: the paper notes that the single-failure
// scenario "can be extended to multiple node failures". AnalyzeMulti
// evaluates every combination of k concurrent server failures among the
// servers used by the base plan, re-translating all affected
// applications with their failure-mode QoS and re-running the
// consolidation on the surviving servers.

// MultiScenario is the outcome for one set of concurrently failed
// servers.
type MultiScenario struct {
	// FailedServers are the servers removed in this scenario, in pool
	// order.
	FailedServers []string
	// AffectedApps are the applications that were hosted on them.
	AffectedApps []string
	// Feasible reports whether the affected applications could be
	// placed on the surviving servers under failure-mode QoS.
	Feasible bool
	// Plan is the re-consolidated plan when feasible; nil otherwise.
	Plan *placement.Plan
	// Servers is the surviving server list the plan was computed
	// against.
	Servers []placement.Server
	// Err records a scenario that could not be evaluated; like the
	// single-failure case it is inconclusive and does not count toward
	// SparesNeeded.
	Err error
}

// Key returns a stable identifier for the failed-server combination.
func (s MultiScenario) Key() string { return strings.Join(s.FailedServers, "+") }

// MultiReport aggregates all k-failure scenarios.
type MultiReport struct {
	// K is the number of concurrent failures analyzed.
	K         int
	Scenarios []MultiScenario
	// SparesNeeded is true when at least one combination was proven
	// unabsorbable by the surviving servers; errored scenarios are
	// inconclusive and do not set it.
	SparesNeeded bool
	// Truncated reports that the sweep was cancelled before every
	// combination was evaluated; Scenarios holds the completed prefix.
	Truncated bool
}

// Errors returns the per-scenario errors recorded during the sweep, in
// scenario order (empty when every scenario evaluated cleanly).
func (r *MultiReport) Errors() []error {
	var errs []error
	for _, s := range r.Scenarios {
		if s.Err != nil {
			errs = append(errs, s.Err)
		}
	}
	return errs
}

// Worst returns the scenario with the most affected applications among
// the infeasible ones, or nil if every scenario is feasible.
func (r *MultiReport) Worst() *MultiScenario {
	var worst *MultiScenario
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		if sc.Feasible {
			continue
		}
		if worst == nil || len(sc.AffectedApps) > len(worst.AffectedApps) {
			worst = sc
		}
	}
	return worst
}

// AnalyzeMulti evaluates every combination of k concurrent failures of
// servers used by basePlan. k=1 degenerates to Analyze's scenarios.
// Degradation mirrors Analyze: errored combinations are recorded and
// skipped, cancellation truncates the sweep at a combination boundary,
// and a top-level error occurs only when every combination errors.
func AnalyzeMulti(ctx context.Context, in Input, basePlan *placement.Plan, k int) (report *MultiReport, err error) {
	defer robust.Recover("failure.AnalyzeMulti", &err)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if basePlan == nil {
		return nil, errors.New("failure: nil base plan")
	}
	if err := basePlan.Assignment.Validate(in.Problem); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("failure: k %d < 1", k)
	}

	var used []int
	for srvIdx := range in.Problem.Servers {
		if len(appsOn(basePlan.Assignment, srvIdx)) > 0 {
			used = append(used, srvIdx)
		}
	}
	if k > len(used) {
		return nil, fmt.Errorf("failure: k=%d exceeds the %d servers in use", k, len(used))
	}

	h := telemetry.OrNop(in.Hooks)
	span := h.StartSpan("failure.analyze_multi",
		telemetry.Int("k", k),
		telemetry.Int("servers_in_use", len(used)))
	defer span.End()
	scenarioC := h.Counter("failure_scenarios_total")
	infeasibleC := h.Counter("failure_infeasible_scenarios_total")
	errorC := h.Counter("failure_scenario_errors_total")
	scenarioSecs := h.Histogram("failure_scenario_seconds", nil)

	// Fan the combinations out on the worker pool; like Analyze, results
	// land in combination order and the dispatched prefix is contiguous,
	// so truncation semantics match the sequential sweep.
	combos := combinations(used, k)
	scenarios := make([]MultiScenario, len(combos))
	scenarioErrs := make([]error, len(combos))
	done := parallel.ForEach(ctx, in.Workers, len(combos), func(i int) {
		start := time.Now()
		scenario, err := analyzeCombo(ctx, in, basePlan, combos[i])
		scenarioC.Inc()
		scenarioSecs.Observe(time.Since(start).Seconds())
		scenarios[i], scenarioErrs[i] = scenario, err
	})

	report = &MultiReport{K: k, Truncated: done < len(combos)}
	errored := 0
	for i := 0; i < done; i++ {
		scenario := scenarios[i]
		if err := scenarioErrs[i]; err != nil {
			scenario.Err = fmt.Errorf("failure: scenario %q: %w", scenario.Key(), err)
			errorC.Inc()
			errored++
		} else if !scenario.Feasible {
			infeasibleC.Inc()
			report.SparesNeeded = true
		}
		report.Scenarios = append(report.Scenarios, scenario)
	}
	span.SetAttr(
		telemetry.Int("scenarios", len(report.Scenarios)),
		telemetry.Int("errors", errored),
		telemetry.Bool("spares_needed", report.SparesNeeded),
		telemetry.Bool("truncated", report.Truncated))
	if errored > 0 && errored == len(report.Scenarios) {
		return nil, fmt.Errorf("failure: every scenario failed to evaluate: %w", errors.Join(report.Errors()...))
	}
	return report, nil
}

// analyzeCombo re-consolidates after removing the given servers. Even
// when it errors, the returned scenario carries the combination's
// identity so the report can record which analysis failed.
func analyzeCombo(ctx context.Context, in Input, basePlan *placement.Plan, combo []int) (MultiScenario, error) {
	p := in.Problem
	failed := make(map[int]bool, len(combo))
	scenario := MultiScenario{}
	for _, s := range combo {
		failed[s] = true
		scenario.FailedServers = append(scenario.FailedServers, p.Servers[s].ID)
	}
	if in.Inject != nil {
		o := in.Inject.Hit("failure.scenario", scenario.Key())
		if o.Delay > 0 {
			time.Sleep(o.Delay)
		}
		if o.Err != nil {
			return scenario, o.Err
		}
	}

	var affected []int
	for app, srv := range basePlan.Assignment {
		if failed[srv] {
			affected = append(affected, app)
		}
	}
	sort.Ints(affected)
	for _, a := range affected {
		scenario.AffectedApps = append(scenario.AffectedApps, p.Apps[a].ID)
	}

	if len(p.Servers) <= len(combo) {
		return scenario, nil // nothing survives
	}

	isAffected := make(map[int]bool, len(affected))
	for _, a := range affected {
		isAffected[a] = true
	}
	apps := make([]placement.App, len(p.Apps))
	for i := range p.Apps {
		if isAffected[i] {
			apps[i] = in.FailureApps[i]
		} else {
			apps[i] = p.Apps[i]
		}
	}
	servers := make([]placement.Server, 0, len(p.Servers)-len(combo))
	oldToNew := make([]int, len(p.Servers))
	for i, s := range p.Servers {
		if failed[i] {
			oldToNew[i] = -1
			continue
		}
		oldToNew[i] = len(servers)
		servers = append(servers, s)
	}
	reduced := &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    p.Commitment,
		SlotsPerDay:   p.SlotsPerDay,
		DeadlineSlots: p.DeadlineSlots,
		Tolerance:     p.Tolerance,
		Hooks:         in.Hooks,
		Inject:        in.Inject,
		Cache:         p.Cache,
	}
	initial := make(placement.Assignment, len(apps))
	next := 0
	for i, old := range basePlan.Assignment {
		if mapped := oldToNew[old]; mapped >= 0 {
			initial[i] = mapped
			continue
		}
		initial[i] = next % len(servers)
		next++
	}

	plan, err := placement.Consolidate(ctx, reduced, initial, in.GA)
	if errors.Is(err, placement.ErrNoFeasible) {
		return scenario, nil
	}
	if err != nil {
		return scenario, err
	}
	scenario.Feasible = true
	scenario.Plan = plan
	scenario.Servers = servers
	return scenario, nil
}

// combinations enumerates all k-element subsets of items in
// lexicographic order.
func combinations(items []int, k int) [][]int {
	var out [][]int
	combo := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i <= len(items)-(k-depth); i++ {
			combo[depth] = items[i]
			rec(i+1, depth+1)
		}
	}
	if k >= 1 && k <= len(items) {
		rec(0, 0)
	}
	return out
}
