// Package failure implements R-Opus's failure-mode planning (paper
// section VI-C).
//
// Starting from a consolidated normal-mode plan, the planner removes one
// server at a time, switches the applications that were hosted on it to
// their failure-mode QoS translation, and re-runs the consolidation
// algorithm on the remaining servers. If every single-server failure can
// be absorbed this way, the pool needs no spare server: the affected
// applications can operate under their (typically weaker) failure QoS
// until the server is repaired. Realizing the new configuration requires
// a workload migration mechanism, which is outside the planner's scope.
package failure

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
	"ropus/internal/obslog"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
)

// Journal unit names for checkpointed sweep results.
const (
	unitScenario = "failure.scenario"
	unitMulti    = "failure.multi"
)

// Input is everything the planner needs beyond the base plan.
type Input struct {
	// Problem is the normal-mode consolidation problem the base plan
	// was computed for.
	Problem *placement.Problem
	// FailureApps holds the failure-mode translations, one per
	// application, aligned by index with Problem.Apps (same IDs).
	FailureApps []placement.App
	// GA configures the re-consolidation searches.
	GA placement.GAConfig
	// Hooks receives planning telemetry (scenario counts, timings and
	// per-scenario spans); nil disables it. It is also propagated to the
	// reduced consolidation problems each scenario solves.
	Hooks telemetry.Hooks
	// Inject is the test-only fault injector consulted at the
	// "failure.scenario" point (keyed by failed server ID or multi-failure
	// Key) and propagated to the reduced consolidation problems; nil (the
	// production default) injects nothing.
	Inject faultinject.Injector
	// Workers bounds the number of scenarios analyzed concurrently: 0
	// selects GOMAXPROCS and 1 forces the sequential sweep. Scenario
	// order, per-scenario results and the Truncated/error semantics are
	// identical at every worker count (scenarios are independent
	// analyses; Problem.Cache, when set, keeps their results bit-exact
	// regardless of completion order).
	Workers int
	// Retry governs self-healing: a scenario whose analysis fails with a
	// transient error (resilience.Transient, or an expired per-attempt
	// deadline) is re-attempted under this policy before being recorded
	// inconclusive. The zero value makes a single attempt, preserving
	// the historical record-and-continue behaviour.
	Retry resilience.Policy
	// Journal, when non-nil, checkpoints every successfully analyzed
	// scenario and replays scenarios already journaled by a resumed run.
	// Replay is bit-exact, so a resumed sweep reports byte-identical
	// results. Journal write failures degrade gracefully: the scenario
	// result is kept, the failed append is counted
	// (checkpoint_append_errors_total) and the sweep continues — a lost
	// checkpoint only costs recompute on the next resume.
	Journal *checkpoint.Journal
}

// Validate checks the input's structural invariants.
func (in Input) Validate() error {
	if in.Problem == nil {
		return errors.New("failure: nil problem")
	}
	if err := in.Problem.Validate(); err != nil {
		return err
	}
	if len(in.FailureApps) != len(in.Problem.Apps) {
		return fmt.Errorf("failure: %d failure-mode apps for %d normal-mode apps",
			len(in.FailureApps), len(in.Problem.Apps))
	}
	for i, a := range in.FailureApps {
		if a.ID != in.Problem.Apps[i].ID {
			return fmt.Errorf("failure: failure-mode app %d is %q, want %q",
				i, a.ID, in.Problem.Apps[i].ID)
		}
		if err := a.Workload.Validate(); err != nil {
			return err
		}
	}
	if err := in.Retry.Validate(); err != nil {
		return err
	}
	return in.GA.Validate()
}

// Scenario is the outcome for the failure of one server.
type Scenario struct {
	// FailedServer is the server removed in this scenario.
	FailedServer string
	// AffectedApps are the applications that were hosted on it.
	AffectedApps []string
	// Feasible reports whether the affected applications could be
	// placed on the remaining servers under failure-mode QoS.
	Feasible bool
	// Plan is the re-consolidated plan when feasible; nil otherwise.
	// Server indexes in the plan refer to Servers below.
	Plan *placement.Plan
	// Servers is the reduced server list the plan was computed against.
	Servers []placement.Server
	// Attempts is how many analysis attempts the scenario took (1 when
	// the first try succeeded; 0 only for a scenario never started).
	Attempts int
	// Recovered reports a scenario that failed transiently and then
	// succeeded on a retry: the verdict is as trustworthy as any other,
	// but the recovery is worth surfacing next to gave-up scenarios.
	Recovered bool
	// GaveUp reports a scenario whose transient failures exhausted the
	// retry policy (true even for a single-attempt policy; false when
	// the sweep's cancellation, not the policy, stopped the attempts).
	GaveUp bool
	// Err records a scenario that could not be evaluated (solver error,
	// injected fault that exhausted the retry policy, ...). An errored
	// scenario proves nothing: Feasible is false but it does not count
	// toward SpareNeeded, because the failure was in the analysis, not
	// in the pool. Errored scenarios are never checkpointed, so a
	// resumed run re-attempts them.
	Err error `json:"-"`
	// ErrText mirrors Err for serialized reports (error values do not
	// survive JSON), so inconclusive scenarios stay diagnosable in serve
	// results and flight recordings.
	ErrText string `json:",omitempty"`
}

// Report aggregates all single-server failure scenarios.
type Report struct {
	Scenarios []Scenario
	// SpareNeeded is true when at least one failure was proven
	// unabsorbable by the remaining servers. Errored scenarios (Err set)
	// are inconclusive and do not set it.
	SpareNeeded bool
	// Truncated reports that the sweep was cancelled before every
	// scenario was evaluated; Scenarios holds the completed prefix.
	Truncated bool
}

// Errors returns the per-scenario errors recorded during the sweep, in
// scenario order (empty when every scenario evaluated cleanly).
func (r *Report) Errors() []error {
	var errs []error
	for _, s := range r.Scenarios {
		if s.Err != nil {
			errs = append(errs, s.Err)
		}
	}
	return errs
}

// Retries summarizes the sweep's self-healing: extra is the number of
// attempts beyond each scenario's first, recovered counts scenarios
// that succeeded after retrying, and gaveUp counts scenarios recorded
// inconclusive after exhausting the retry policy. gaveUp uses the
// per-scenario GaveUp record rather than inferring from Attempts, so a
// single-attempt policy's failures count and scenarios stopped by
// cancellation (not by the policy) do not.
func (r *Report) Retries() (extra, recovered, gaveUp int) {
	for _, s := range r.Scenarios {
		if s.Attempts > 1 {
			extra += s.Attempts - 1
		}
		if s.Recovered {
			recovered++
		}
		if s.GaveUp {
			gaveUp++
		}
	}
	return extra, recovered, gaveUp
}

// Analyze evaluates every single-server failure of the servers used by
// basePlan (removing an unused server is a non-event). The base plan
// must have been produced for in.Problem.
//
// The sweep degrades gracefully: a scenario that cannot be evaluated is
// recorded with its Err and the sweep continues; only when every
// scenario errors does Analyze return a top-level error. Cancelling ctx
// stops the sweep at the next scenario boundary and returns the
// completed prefix with Report.Truncated set and a nil error.
func Analyze(ctx context.Context, in Input, basePlan *placement.Plan) (report *Report, err error) {
	defer robust.Recover("failure.Analyze", &err)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if basePlan == nil {
		return nil, errors.New("failure: nil base plan")
	}
	if err := basePlan.Assignment.Validate(in.Problem); err != nil {
		return nil, err
	}

	h := telemetry.OrNop(in.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, in.Hooks, "failure.analyze",
		telemetry.Int("servers", len(in.Problem.Servers)))
	defer span.End()
	scenarioC := h.Counter("failure_scenarios_total")
	infeasibleC := h.Counter("failure_infeasible_scenarios_total")
	errorC := h.Counter("failure_scenario_errors_total")
	replayC := h.Counter("failure_scenarios_replayed_total")
	appendErrC := h.Counter("checkpoint_append_errors_total")
	scenarioSecs := h.Histogram("failure_scenario_seconds", nil)

	// The retry policy reports through the sweep's hooks unless the
	// caller wired its own.
	retry := in.Retry
	if retry.Hooks == nil {
		retry.Hooks = in.Hooks
	}

	// Enumerate the scenarios up front (failing an unused server is a
	// non-event), then fan them out on the worker pool. Results land in
	// index order; ForEach's contiguous-prefix contract preserves the
	// sequential sweep's completed-prefix truncation semantics.
	type job struct {
		srvIdx   int
		affected []int
	}
	var jobs []job
	for srvIdx := range in.Problem.Servers {
		if affected := appsOn(basePlan.Assignment, srvIdx); len(affected) > 0 {
			jobs = append(jobs, job{srvIdx: srvIdx, affected: affected})
		}
	}

	scenarios := make([]Scenario, len(jobs))
	scenarioErrs := make([]error, len(jobs))
	done := parallel.ForEach(ctx, in.Workers, len(jobs), func(i int) {
		j := jobs[i]
		serverID := in.Problem.Servers[j.srvIdx].ID
		key := checkpoint.NewHasher().String(serverID).Sum()
		var cached Scenario
		if ok, cerr := in.Journal.Lookup(unitScenario, key, &cached); cerr == nil && ok {
			// Replayed from a prior run's checkpoint: bit-exact, so the
			// resumed report is byte-identical to an uninterrupted one.
			scenarios[i] = cached
			scenarioC.Inc()
			replayC.Inc()
			return
		}
		start := time.Now()
		scenario, stats, err := resilience.Do(ctx, retry, serverID,
			func(attemptCtx context.Context) (Scenario, error) {
				return analyzeScenario(attemptCtx, ctx, in, basePlan, j.srvIdx, j.affected, serverID)
			})
		scenario.Attempts = stats.Attempts
		scenario.Recovered = stats.Recovered
		scenario.GaveUp = stats.GaveUp
		scenarioC.Inc()
		scenarioSecs.Observe(time.Since(start).Seconds())
		// Only clean, complete verdicts are checkpointed: errored
		// scenarios are inconclusive and should be re-attempted on
		// resume, and a scenario whose search was cut short by the
		// sweep's cancellation (best-so-far Truncated plan) would replay
		// a partial result an uninterrupted run never produces. A failed
		// append never fails the sweep — it only costs recompute later.
		if err == nil && ctx.Err() == nil && (scenario.Plan == nil || !scenario.Plan.Truncated) {
			if aerr := in.Journal.Append(unitScenario, key, scenario); aerr != nil {
				appendErrC.Inc()
			}
		}
		scenarios[i], scenarioErrs[i] = scenario, err
		// Debug, not Info: the parallel sweep completes scenarios in
		// nondeterministic order, which a golden log stream cannot pin.
		obslog.From(ctx).DebugContext(ctx, "failure.scenario",
			slog.String("failed_server", scenario.FailedServer),
			slog.Bool("feasible", scenario.Feasible),
			slog.Int("attempts", scenario.Attempts))
	})

	report = &Report{Truncated: done < len(jobs)}
	errored := 0
	for i := 0; i < done; i++ {
		scenario := scenarios[i]
		if err := scenarioErrs[i]; err != nil {
			// Degrade: record the scenario as errored and keep sweeping.
			// The remaining scenarios are independent analyses; one bad
			// solver run must not cost the whole report.
			scenario.Err = fmt.Errorf("failure: scenario %q: %w", scenario.FailedServer, err)
			scenario.ErrText = scenario.Err.Error()
			errorC.Inc()
			errored++
		} else if !scenario.Feasible {
			infeasibleC.Inc()
			report.SpareNeeded = true
		}
		report.Scenarios = append(report.Scenarios, scenario)
	}
	span.SetAttr(
		telemetry.Int("scenarios", len(report.Scenarios)),
		telemetry.Int("errors", errored),
		telemetry.Bool("spare_needed", report.SpareNeeded),
		telemetry.Bool("truncated", report.Truncated))
	if errored > 0 && errored == len(report.Scenarios) {
		return nil, fmt.Errorf("failure: every scenario failed to evaluate: %w", errors.Join(report.Errors()...))
	}
	obslog.From(ctx).InfoContext(ctx, "failure.analyze",
		slog.Int("scenarios", len(report.Scenarios)),
		slog.Int("errors", errored),
		slog.Bool("spare_needed", report.SpareNeeded),
		slog.Bool("truncated", report.Truncated))
	return report, nil
}

// analyzeScenario wraps analyzeOne with the "failure.scenario" fault
// injection point, preserving the scenario's identity (failed server,
// affected apps) even when the analysis errors. ctx is the (possibly
// deadline-bounded) attempt context; parent is the sweep context, used
// to tell an expired attempt deadline — retryable — from cancellation.
func analyzeScenario(ctx, parent context.Context, in Input, basePlan *placement.Plan, srvIdx int, affected []int, key string) (Scenario, error) {
	scenario := Scenario{
		FailedServer: in.Problem.Servers[srvIdx].ID,
		AffectedApps: make([]string, 0, len(affected)),
	}
	for _, a := range affected {
		scenario.AffectedApps = append(scenario.AffectedApps, in.Problem.Apps[a].ID)
	}
	if in.Inject != nil {
		o := in.Inject.Hit("failure.scenario", key)
		if o.Delay > 0 {
			t := time.NewTimer(o.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return scenario, ctx.Err()
			}
		}
		if o.Err != nil {
			return scenario, o.Err
		}
	}
	full, err := analyzeOne(ctx, in, basePlan, srvIdx, affected)
	if err != nil {
		return scenario, err
	}
	// Consolidate reports context expiry as a Truncated plan with a nil
	// error. Under a per-attempt deadline a silently partial plan must
	// become a transient error so the policy retries it; only parent
	// cancellation may truncate a sweep.
	if full.Plan != nil && full.Plan.Truncated && ctx.Err() != nil && parent.Err() == nil {
		return scenario, resilience.MarkTransient(
			fmt.Errorf("failure: scenario %q: attempt deadline cut the search short", scenario.FailedServer))
	}
	return full, nil
}

// analyzeOne re-consolidates after removing server srvIdx.
func analyzeOne(ctx context.Context, in Input, basePlan *placement.Plan, srvIdx int, affected []int) (Scenario, error) {
	p := in.Problem
	scenario := Scenario{
		FailedServer: p.Servers[srvIdx].ID,
		AffectedApps: make([]string, 0, len(affected)),
	}
	for _, a := range affected {
		scenario.AffectedApps = append(scenario.AffectedApps, p.Apps[a].ID)
	}

	if len(p.Servers) == 1 {
		return scenario, nil // nothing left to host the apps: infeasible
	}

	// Build the reduced problem: the failed server disappears; affected
	// applications switch to their failure-mode translation.
	isAffected := make(map[int]bool, len(affected))
	for _, a := range affected {
		isAffected[a] = true
	}
	apps := make([]placement.App, len(p.Apps))
	for i := range p.Apps {
		if isAffected[i] {
			apps[i] = in.FailureApps[i]
		} else {
			apps[i] = p.Apps[i]
		}
	}
	servers := make([]placement.Server, 0, len(p.Servers)-1)
	oldToNew := make([]int, len(p.Servers))
	for i, s := range p.Servers {
		if i == srvIdx {
			oldToNew[i] = -1
			continue
		}
		oldToNew[i] = len(servers)
		servers = append(servers, s)
	}
	reduced := &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    p.Commitment,
		SlotsPerDay:   p.SlotsPerDay,
		DeadlineSlots: p.DeadlineSlots,
		Tolerance:     p.Tolerance,
		Hooks:         in.Hooks,
		Inject:        in.Inject,
		// The shared simulation cache crosses scenario boundaries: a
		// failed server changes which groups are legal, not what a group
		// costs on a survivor, so base-plan results are valid here.
		Cache: p.Cache,
	}

	// Initial assignment: unaffected applications stay put; affected
	// ones are spread round-robin over the remaining servers, letting
	// the genetic search find real homes.
	initial := make(placement.Assignment, len(apps))
	next := 0
	for i, old := range basePlan.Assignment {
		if mapped := oldToNew[old]; mapped >= 0 {
			initial[i] = mapped
			continue
		}
		initial[i] = next % len(servers)
		next++
	}

	plan, err := placement.Consolidate(ctx, reduced, initial, in.GA)
	if errors.Is(err, placement.ErrNoFeasible) {
		return scenario, nil // infeasible, not an error
	}
	if err != nil {
		return Scenario{}, err
	}
	scenario.Feasible = true
	scenario.Plan = plan
	scenario.Servers = servers
	return scenario, nil
}

// Migrations returns the container moves needed to realize this
// scenario's plan starting from the base configuration: applications on
// the failed server evacuate, and the re-consolidation may also
// relocate others. The base problem and plan must be the ones the
// scenario was computed from.
func (s *Scenario) Migrations(base *placement.Problem, basePlan *placement.Plan) ([]placement.Move, error) {
	if !s.Feasible || s.Plan == nil {
		return nil, errors.New("failure: scenario has no feasible plan")
	}
	if base == nil || basePlan == nil {
		return nil, errors.New("failure: need the base problem and plan")
	}
	apps := make([]string, len(base.Apps))
	for i, a := range base.Apps {
		apps[i] = a.ID
	}
	return placement.MigrationsByServerID(apps,
		base.Servers, basePlan.Assignment,
		s.Servers, s.Plan.Assignment)
}

// appsOn lists the applications assigned to server s.
func appsOn(a placement.Assignment, s int) []int {
	var out []int
	for app, srv := range a {
		if srv == s {
			out = append(out, app)
		}
	}
	return out
}
