// Package failure implements R-Opus's failure-mode planning (paper
// section VI-C).
//
// Starting from a consolidated normal-mode plan, the planner removes one
// server at a time, switches the applications that were hosted on it to
// their failure-mode QoS translation, and re-runs the consolidation
// algorithm on the remaining servers. If every single-server failure can
// be absorbed this way, the pool needs no spare server: the affected
// applications can operate under their (typically weaker) failure QoS
// until the server is repaired. Realizing the new configuration requires
// a workload migration mechanism, which is outside the planner's scope.
package failure

import (
	"errors"
	"fmt"
	"time"

	"ropus/internal/placement"
	"ropus/internal/telemetry"
)

// Input is everything the planner needs beyond the base plan.
type Input struct {
	// Problem is the normal-mode consolidation problem the base plan
	// was computed for.
	Problem *placement.Problem
	// FailureApps holds the failure-mode translations, one per
	// application, aligned by index with Problem.Apps (same IDs).
	FailureApps []placement.App
	// GA configures the re-consolidation searches.
	GA placement.GAConfig
	// Hooks receives planning telemetry (scenario counts, timings and
	// per-scenario spans); nil disables it. It is also propagated to the
	// reduced consolidation problems each scenario solves.
	Hooks telemetry.Hooks
}

// Validate checks the input's structural invariants.
func (in Input) Validate() error {
	if in.Problem == nil {
		return errors.New("failure: nil problem")
	}
	if err := in.Problem.Validate(); err != nil {
		return err
	}
	if len(in.FailureApps) != len(in.Problem.Apps) {
		return fmt.Errorf("failure: %d failure-mode apps for %d normal-mode apps",
			len(in.FailureApps), len(in.Problem.Apps))
	}
	for i, a := range in.FailureApps {
		if a.ID != in.Problem.Apps[i].ID {
			return fmt.Errorf("failure: failure-mode app %d is %q, want %q",
				i, a.ID, in.Problem.Apps[i].ID)
		}
		if err := a.Workload.Validate(); err != nil {
			return err
		}
	}
	return in.GA.Validate()
}

// Scenario is the outcome for the failure of one server.
type Scenario struct {
	// FailedServer is the server removed in this scenario.
	FailedServer string
	// AffectedApps are the applications that were hosted on it.
	AffectedApps []string
	// Feasible reports whether the affected applications could be
	// placed on the remaining servers under failure-mode QoS.
	Feasible bool
	// Plan is the re-consolidated plan when feasible; nil otherwise.
	// Server indexes in the plan refer to Servers below.
	Plan *placement.Plan
	// Servers is the reduced server list the plan was computed against.
	Servers []placement.Server
}

// Report aggregates all single-server failure scenarios.
type Report struct {
	Scenarios []Scenario
	// SpareNeeded is true when at least one failure cannot be absorbed
	// by the remaining servers.
	SpareNeeded bool
}

// Analyze evaluates every single-server failure of the servers used by
// basePlan (removing an unused server is a non-event). The base plan
// must have been produced for in.Problem.
func Analyze(in Input, basePlan *placement.Plan) (*Report, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if basePlan == nil {
		return nil, errors.New("failure: nil base plan")
	}
	if err := basePlan.Assignment.Validate(in.Problem); err != nil {
		return nil, err
	}

	h := telemetry.OrNop(in.Hooks)
	span := h.StartSpan("failure.analyze",
		telemetry.Int("servers", len(in.Problem.Servers)))
	defer span.End()
	scenarioC := h.Counter("failure_scenarios_total")
	infeasibleC := h.Counter("failure_infeasible_scenarios_total")
	scenarioSecs := h.Histogram("failure_scenario_seconds", nil)

	report := &Report{}
	for srvIdx, srv := range in.Problem.Servers {
		affected := appsOn(basePlan.Assignment, srvIdx)
		if len(affected) == 0 {
			continue
		}
		start := time.Now()
		scenario, err := analyzeOne(in, basePlan, srvIdx, affected)
		if err != nil {
			return nil, fmt.Errorf("failure: scenario %q: %w", srv.ID, err)
		}
		scenarioC.Inc()
		scenarioSecs.Observe(time.Since(start).Seconds())
		report.Scenarios = append(report.Scenarios, scenario)
		if !scenario.Feasible {
			infeasibleC.Inc()
			report.SpareNeeded = true
		}
	}
	span.SetAttr(
		telemetry.Int("scenarios", len(report.Scenarios)),
		telemetry.Bool("spare_needed", report.SpareNeeded))
	return report, nil
}

// analyzeOne re-consolidates after removing server srvIdx.
func analyzeOne(in Input, basePlan *placement.Plan, srvIdx int, affected []int) (Scenario, error) {
	p := in.Problem
	scenario := Scenario{
		FailedServer: p.Servers[srvIdx].ID,
		AffectedApps: make([]string, 0, len(affected)),
	}
	for _, a := range affected {
		scenario.AffectedApps = append(scenario.AffectedApps, p.Apps[a].ID)
	}

	if len(p.Servers) == 1 {
		return scenario, nil // nothing left to host the apps: infeasible
	}

	// Build the reduced problem: the failed server disappears; affected
	// applications switch to their failure-mode translation.
	isAffected := make(map[int]bool, len(affected))
	for _, a := range affected {
		isAffected[a] = true
	}
	apps := make([]placement.App, len(p.Apps))
	for i := range p.Apps {
		if isAffected[i] {
			apps[i] = in.FailureApps[i]
		} else {
			apps[i] = p.Apps[i]
		}
	}
	servers := make([]placement.Server, 0, len(p.Servers)-1)
	oldToNew := make([]int, len(p.Servers))
	for i, s := range p.Servers {
		if i == srvIdx {
			oldToNew[i] = -1
			continue
		}
		oldToNew[i] = len(servers)
		servers = append(servers, s)
	}
	reduced := &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    p.Commitment,
		SlotsPerDay:   p.SlotsPerDay,
		DeadlineSlots: p.DeadlineSlots,
		Tolerance:     p.Tolerance,
		Hooks:         in.Hooks,
	}

	// Initial assignment: unaffected applications stay put; affected
	// ones are spread round-robin over the remaining servers, letting
	// the genetic search find real homes.
	initial := make(placement.Assignment, len(apps))
	next := 0
	for i, old := range basePlan.Assignment {
		if mapped := oldToNew[old]; mapped >= 0 {
			initial[i] = mapped
			continue
		}
		initial[i] = next % len(servers)
		next++
	}

	plan, err := placement.Consolidate(reduced, initial, in.GA)
	if errors.Is(err, placement.ErrNoFeasible) {
		return scenario, nil // infeasible, not an error
	}
	if err != nil {
		return Scenario{}, err
	}
	scenario.Feasible = true
	scenario.Plan = plan
	scenario.Servers = servers
	return scenario, nil
}

// Migrations returns the container moves needed to realize this
// scenario's plan starting from the base configuration: applications on
// the failed server evacuate, and the re-consolidation may also
// relocate others. The base problem and plan must be the ones the
// scenario was computed from.
func (s *Scenario) Migrations(base *placement.Problem, basePlan *placement.Plan) ([]placement.Move, error) {
	if !s.Feasible || s.Plan == nil {
		return nil, errors.New("failure: scenario has no feasible plan")
	}
	if base == nil || basePlan == nil {
		return nil, errors.New("failure: need the base problem and plan")
	}
	apps := make([]string, len(base.Apps))
	for i, a := range base.Apps {
		apps[i] = a.ID
	}
	return placement.MigrationsByServerID(apps,
		base.Servers, basePlan.Assignment,
		s.Servers, s.Plan.Assignment)
}

// appsOn lists the applications assigned to server s.
func appsOn(a placement.Assignment, s int) []int {
	var out []int
	for app, srv := range a {
		if srv == s {
			out = append(out, app)
		}
	}
	return out
}
