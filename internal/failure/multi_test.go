package failure

import (
	"context"
	"reflect"
	"testing"

	"ropus/internal/placement"
)

func TestCombinations(t *testing.T) {
	tests := []struct {
		name  string
		items []int
		k     int
		want  [][]int
	}{
		{name: "choose 1", items: []int{3, 5}, k: 1, want: [][]int{{3}, {5}}},
		{
			name: "choose 2 of 3", items: []int{0, 1, 2}, k: 2,
			want: [][]int{{0, 1}, {0, 2}, {1, 2}},
		},
		{name: "choose all", items: []int{7, 8}, k: 2, want: [][]int{{7, 8}}},
		{name: "k too big", items: []int{1}, k: 2, want: nil},
		{name: "k zero", items: []int{1}, k: 0, want: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := combinations(tt.items, tt.k)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("combinations = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAnalyzeMultiMatchesSingle(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}

	single, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := AnalyzeMulti(context.Background(), in, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Scenarios) != len(single.Scenarios) {
		t.Fatalf("k=1 has %d scenarios, Analyze has %d", len(multi.Scenarios), len(single.Scenarios))
	}
	for i := range multi.Scenarios {
		if multi.Scenarios[i].Feasible != single.Scenarios[i].Feasible {
			t.Errorf("scenario %d feasibility differs", i)
		}
	}
	if multi.SparesNeeded != single.SpareNeeded {
		t.Error("k=1 verdict differs from single-failure analysis")
	}
}

func TestAnalyzeMultiDoubleFailure(t *testing.T) {
	// Four servers at load 5 each on 10-CPU servers; failure demand is
	// halved. A double failure moves 2*2.5 = 5 extra onto two servers
	// already at 5: feasible (5+2.5 each).
	p := problem([]float64{5, 5, 5, 5}, 4, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := AnalyzeMulti(context.Background(), in, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.K != 2 {
		t.Errorf("K = %d, want 2", report.K)
	}
	if len(report.Scenarios) != 6 { // C(4,2)
		t.Fatalf("%d scenarios, want 6", len(report.Scenarios))
	}
	if report.SparesNeeded {
		t.Error("double failure should be absorbable at factor 0.5")
	}
	for _, sc := range report.Scenarios {
		if len(sc.FailedServers) != 2 || len(sc.AffectedApps) != 2 {
			t.Errorf("scenario %s: %d failed, %d affected", sc.Key(), len(sc.FailedServers), len(sc.AffectedApps))
		}
		if len(sc.Servers) != 2 {
			t.Errorf("scenario %s: %d surviving servers, want 2", sc.Key(), len(sc.Servers))
		}
	}
	if w := report.Worst(); w != nil {
		t.Errorf("Worst() = %v, want nil when all feasible", w)
	}
}

func TestAnalyzeMultiInfeasibleDouble(t *testing.T) {
	// Three servers at load 6 on 10-CPU servers, failure factor 0.66:
	// a single failure moves 3.96 onto one of two survivors (9.96 <=
	// 10, feasible), but a double failure dumps 2 x 3.96 onto the only
	// survivor already at 6 (13.9 > 10).
	p := problem([]float64{6, 6, 6}, 3, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.66), GA: ga()}

	// Single failures are absorbable (5+5 = 10 fits)...
	single, err := AnalyzeMulti(context.Background(), in, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.SparesNeeded {
		t.Error("single failures should be absorbable")
	}
	// ...but double failures are not.
	double, err := AnalyzeMulti(context.Background(), in, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !double.SparesNeeded {
		t.Error("double failures should need spares")
	}
	if w := double.Worst(); w == nil || len(w.AffectedApps) != 2 {
		t.Errorf("Worst() = %+v, want an infeasible 2-app scenario", w)
	}
}

func TestAnalyzeMultiAllServersFail(t *testing.T) {
	p := problem([]float64{5, 5}, 2, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := AnalyzeMulti(context.Background(), in, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !report.SparesNeeded {
		t.Error("losing every server must need spares")
	}
}

func TestAnalyzeMultiArgumentErrors(t *testing.T) {
	p := problem([]float64{5, 5}, 2, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	if _, err := AnalyzeMulti(context.Background(), in, base, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := AnalyzeMulti(context.Background(), in, base, 3); err == nil {
		t.Error("k above used servers accepted")
	}
	if _, err := AnalyzeMulti(context.Background(), in, nil, 1); err == nil {
		t.Error("nil base plan accepted")
	}
	bad := in
	bad.FailureApps = bad.FailureApps[:1]
	if _, err := AnalyzeMulti(context.Background(), bad, base, 1); err == nil {
		t.Error("invalid input accepted")
	}
}
