package failure

import (
	"bytes"
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"ropus/internal/faultinject"
	"ropus/internal/placement"
)

// The acceptance contract of the parallel sweep: for a fixed seed, the
// report is byte-identical at every worker count, with and without the
// shared simulation cache. Run these under -race (the CI race job does)
// to double as the concurrency-safety suite.

// reportJSON canonicalizes a report for byte comparison.
func reportJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// sweepInput builds a 4-server pool whose failures are absorbable, so
// every scenario carries a full re-consolidated plan to compare.
func sweepInput(workers int, cache *placement.SimCache) (Input, *placement.Plan, error) {
	p := problem([]float64{5, 5, 5, 5}, 4, 10)
	p.Cache = cache
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2, 3})
	if err != nil {
		return Input{}, nil, err
	}
	in := Input{
		Problem:     p,
		FailureApps: failureApps(p, 0.5),
		GA:          ga(),
		Workers:     workers,
	}
	return in, base, nil
}

func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	var want []byte
	for _, tc := range []struct {
		name    string
		workers int
		cache   *placement.SimCache
	}{
		{"workers=1/cache=off", 1, nil},
		{"workers=1/cache=on", 1, placement.NewSimCache(0)},
		{"workers=8/cache=off", 8, nil},
		{"workers=8/cache=on", 8, placement.NewSimCache(0)},
		{"workers=8/cache=shared-twice", 8, placement.NewSimCache(0)},
	} {
		in, base, err := sweepInput(tc.workers, tc.cache)
		if err != nil {
			t.Fatal(err)
		}
		runs := 1
		if tc.name == "workers=8/cache=shared-twice" {
			runs = 2 // second pass over a hot cache must not drift either
		}
		for r := 0; r < runs; r++ {
			report, err := Analyze(ctx, in, base)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got := reportJSON(t, report)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s (run %d): report diverges from the sequential baseline", tc.name, r)
			}
		}
	}
}

func TestAnalyzeMultiParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	var want []byte
	for _, workers := range []int{1, 8} {
		in, base, err := sweepInput(workers, placement.NewSimCache(0))
		if err != nil {
			t.Fatal(err)
		}
		report, err := AnalyzeMulti(ctx, in, base, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := reportJSON(t, report)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: multi-failure report diverges from sequential", workers)
		}
	}
}

// TestAnalyzeParallelCancellation cancels mid-sweep at every worker
// count. The set of completed scenarios legitimately depends on cancel
// timing, so the assertions are structural: the completed scenarios are
// a prefix of the scenario order, each matches the sequential run's
// scenario identity at that index, and Truncated is set iff the prefix
// is short.
func TestAnalyzeParallelCancellation(t *testing.T) {
	ctx := context.Background()
	seqIn, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(ctx, seqIn, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		cctx, cancel := context.WithCancel(ctx)
		in, base, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		var fired atomic.Int32
		in.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
			if point == "failure.scenario" && fired.Add(1) == 2 {
				cancel() // cancel while the second scenario is in flight
			}
			return faultinject.Outcome{}
		})
		report, err := Analyze(cctx, in, base)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: cancelled sweep should degrade, got %v", workers, err)
		}
		if len(report.Scenarios) >= len(full.Scenarios) && report.Truncated {
			t.Errorf("workers=%d: full sweep flagged Truncated", workers)
		}
		if len(report.Scenarios) < len(full.Scenarios) && !report.Truncated {
			t.Errorf("workers=%d: short sweep (%d/%d) not flagged Truncated",
				workers, len(report.Scenarios), len(full.Scenarios))
		}
		for i, sc := range report.Scenarios {
			want := full.Scenarios[i]
			if sc.FailedServer != want.FailedServer {
				t.Errorf("workers=%d: scenario %d is %q, want prefix order %q",
					workers, i, sc.FailedServer, want.FailedServer)
			}
			if sc.Err != nil {
				// A scenario caught mid-GA by the cancel may degrade, but
				// its identity must survive.
				if sc.AffectedApps == nil {
					t.Errorf("workers=%d: errored scenario %d lost its identity", workers, i)
				}
			}
		}
	}
}
