package failure

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"ropus/internal/balance"
	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
	"ropus/internal/placement"
)

// specsFor builds a small scenario universe over the sweepInput pool
// (srv-a..srv-d, flat load 5 on 10-CPU servers, failure factor 0.5).
func specsFor() []ScenarioSpec {
	return []ScenarioSpec{
		{Name: "loss/srv-b", Servers: []string{"srv-b"}, Probability: 0.1},
		{Name: "zone-a", Servers: []string{"srv-a", "srv-c"}, Probability: 0.02},
		{Name: "cascade", Servers: []string{"srv-a"}, Cascade: true, OverloadFactor: 0.7, Probability: 0.01},
		{Name: "maintenance", Servers: []string{"srv-d"}, Theta: 0.5, Probability: 1},
	}
}

func testEconomics() *Economics {
	return &Economics{
		DefaultRevenuePerHour: 100,
		DefaultPenaltyPerHour: 10,
		PerApp: map[string]AppValue{
			"app-a": {RevenuePerHour: 500, PenaltyPerHour: 50},
		},
	}
}

func TestAnalyzeScenariosVerdicts(t *testing.T) {
	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := AnalyzeScenarios(context.Background(), in, base, specsFor(), testEconomics())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Scenarios) != 4 {
		t.Fatalf("%d scenarios, want 4", len(report.Scenarios))
	}
	byName := make(map[string]MultiScenario)
	for _, sc := range report.Scenarios {
		byName[sc.Name] = sc
	}

	// Single loss and the two-server zone loss are absorbable at factor
	// 0.5 (2.5 extra per survivor on servers at 5/10).
	for _, name := range []string{"loss/srv-b", "zone-a", "maintenance"} {
		sc := byName[name]
		if !sc.Feasible || sc.Err != nil {
			t.Errorf("%s: Feasible=%v Err=%v, want absorbable", name, sc.Feasible, sc.Err)
		}
	}
	if sc := byName["maintenance"]; sc.Theta != 0.5 {
		t.Errorf("maintenance Theta = %v, want the 0.5 override", sc.Theta)
	}

	// The cascade at factor 0.7 (limit 7) takes down the whole pool:
	// srv-a's evacuee pushes srv-b to 7.5 in round one; round two spreads
	// two evacuees over srv-c/srv-d, 7.5 each.
	casc := byName["cascade"]
	if casc.Feasible {
		t.Error("cascade: whole-pool collapse should be infeasible")
	}
	if casc.CascadeRounds != 2 {
		t.Errorf("cascade rounds = %d, want 2", casc.CascadeRounds)
	}
	if want := []string{"srv-b", "srv-c", "srv-d"}; !reflect.DeepEqual(casc.CascadeAdded, want) {
		t.Errorf("CascadeAdded = %v, want %v", casc.CascadeAdded, want)
	}
	if len(casc.FailedServers) != 4 || len(casc.AffectedApps) != 4 {
		t.Errorf("cascade: failed=%v affected=%v, want the whole pool", casc.FailedServers, casc.AffectedApps)
	}
	if !report.SparesNeeded {
		t.Error("an infeasible scenario must set SparesNeeded")
	}

	// Economics: feasible scenarios risk the penalty alone, the
	// infeasible cascade risks revenue + penalty for all four apps
	// (app-a is priced 500/50, the rest default 100/10).
	if got, want := byName["loss/srv-b"].RevenueAtRisk, 10.0; got != want {
		t.Errorf("loss/srv-b at risk = %v, want %v", got, want)
	}
	if got, want := casc.RevenueAtRisk, (500.0+50)+3*(100.0+10); got != want {
		t.Errorf("cascade at risk = %v, want %v", got, want)
	}
	if got, want := casc.ExpectedRevenueAtRisk, 0.01*casc.RevenueAtRisk; got != want {
		t.Errorf("cascade expected = %v, want %v", got, want)
	}

	// Ranked() orders by expected revenue at risk, descending.
	ranked := report.Ranked()
	for i := 1; i < len(ranked); i++ {
		if ranked[i].ExpectedRevenueAtRisk > ranked[i-1].ExpectedRevenueAtRisk {
			t.Errorf("Ranked()[%d] out of order: %v after %v", i,
				ranked[i].ExpectedRevenueAtRisk, ranked[i-1].ExpectedRevenueAtRisk)
		}
	}
}

// TestScenarioRevenueConservation pins the conservation invariant: the
// per-app risk breakdown sums exactly (same float operations, same
// order) to the scenario total, and the scenario expectations sum to
// the report total.
func TestScenarioRevenueConservation(t *testing.T) {
	in, base, err := sweepInput(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := AnalyzeScenarios(context.Background(), in, base, specsFor(), testEconomics())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, sc := range report.Scenarios {
		var sum float64
		for _, r := range sc.AppRisk {
			sum += r.AtRisk
		}
		if sum != sc.RevenueAtRisk {
			t.Errorf("%s: per-app sum %v != RevenueAtRisk %v", sc.Name, sum, sc.RevenueAtRisk)
		}
		if len(sc.AppRisk) != len(sc.AffectedApps) {
			t.Errorf("%s: %d AppRisk entries for %d affected apps", sc.Name, len(sc.AppRisk), len(sc.AffectedApps))
		}
		if sc.ExpectedRevenueAtRisk != sc.Probability*sc.RevenueAtRisk {
			t.Errorf("%s: expected %v != p %v * at-risk %v", sc.Name,
				sc.ExpectedRevenueAtRisk, sc.Probability, sc.RevenueAtRisk)
		}
		total += sc.ExpectedRevenueAtRisk
	}
	if total != report.TotalExpectedRevenueAtRisk {
		t.Errorf("scenario expectations sum to %v, report total is %v", total, report.TotalExpectedRevenueAtRisk)
	}

	// Nil economics price everything at zero but never error.
	free, err := AnalyzeScenarios(context.Background(), in, base, specsFor(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if free.TotalExpectedRevenueAtRisk != 0 {
		t.Errorf("nil economics priced the sweep at %v", free.TotalExpectedRevenueAtRisk)
	}
}

// TestCascadeClosureBounded pins the termination contract: the closure
// never runs more rounds than MaxRounds, never more than the pool has
// servers, and each bound r produces a casualty set contained in the
// bound-(r+1) set — the first r rounds of the fixed point are identical
// regardless of where the bound falls.
func TestCascadeClosureBounded(t *testing.T) {
	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	failedSet := func() map[int]bool { return map[int]bool{0: true} }

	var prev []int
	for r := 0; r <= len(in.Problem.Servers)+2; r++ {
		added, rounds := cascadeClosure(in, base, failedSet(), r, 0.7)
		if rounds > r {
			t.Fatalf("bound %d: ran %d rounds", r, rounds)
		}
		if rounds > len(in.Problem.Servers) {
			t.Fatalf("bound %d: %d rounds exceeds the server count", r, rounds)
		}
		isPrefixSuperset := len(added) >= len(prev)
		members := make(map[int]bool, len(added))
		for _, s := range added {
			members[s] = true
		}
		for _, s := range prev {
			if !members[s] {
				isPrefixSuperset = false
			}
		}
		if !isPrefixSuperset {
			t.Errorf("bound %d casualties %v do not contain bound %d casualties %v", r, added, r-1, prev)
		}
		prev = added
	}

	// An overload factor of zero fails every survivor instantly; the
	// closure must still return, in at most two rounds (one to fail all
	// survivors, one to observe an empty pool).
	added, rounds := cascadeClosure(in, base, failedSet(), 100, 0)
	if len(added) != 3 || rounds > 2 {
		t.Errorf("factor 0: added %v in %d rounds, want total collapse within 2", added, rounds)
	}
}

// TestBalancedFairnessCrossCheck is the property suite tying the
// balanced-fairness analytical baseline to the simulation: whenever the
// simulated re-consolidation finds a feasible survivor placement, the
// balanced-fairness stability condition must hold for the survivor pool
// (feasibility is strictly stronger), and whenever balanced fairness
// reports instability the simulation must agree nothing fits.
func TestBalancedFairnessCrossCheck(t *testing.T) {
	ctx := context.Background()
	sawFeasible, sawUnstable := false, false
	for _, load := range []float64{2, 4.9, 6, 8.5} {
		p := problem([]float64{load, load, load, load}, 4, 10)
		base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		in := Input{Problem: p, FailureApps: failureApps(p, 1.0), GA: ga()}
		report, err := AnalyzeScenarios(ctx, in, base,
			[]ScenarioSpec{{Name: "loss", Servers: []string{"srv-a"}}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc := report.Scenarios[0]
		if sc.Err != nil {
			t.Fatalf("load %v: %v", load, sc.Err)
		}

		// The analytical side: one class per application (its flat
		// demand), every class served by any survivor.
		classes := make([]balance.Class, len(p.Apps))
		for i, a := range p.Apps {
			classes[i] = balance.Class{
				Name:    a.ID,
				Load:    load,
				Servers: []string{"srv-b", "srv-c", "srv-d"},
			}
		}
		capacity := map[string]float64{"srv-b": 10, "srv-c": 10, "srv-d": 10}
		violation, err := balance.Stable(classes, capacity)
		if err != nil {
			t.Fatal(err)
		}

		if sc.Feasible {
			sawFeasible = true
			if violation != nil {
				t.Errorf("load %v: simulation feasible but balanced fairness unstable: %v", load, violation)
			}
		}
		if violation != nil {
			sawUnstable = true
			if sc.Feasible {
				t.Errorf("load %v: balanced fairness unstable but simulation feasible", load)
			}
		}
	}
	if !sawFeasible || !sawUnstable {
		t.Errorf("property suite vacuous: feasible=%v unstable=%v, want both regimes exercised",
			sawFeasible, sawUnstable)
	}
}

func TestAnalyzeScenariosParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	var want []byte
	for _, tc := range []struct {
		name    string
		workers int
		cache   *placement.SimCache
	}{
		{"workers=1/cache=off", 1, nil},
		{"workers=8/cache=off", 8, nil},
		{"workers=8/cache=on", 8, placement.NewSimCache(0)},
	} {
		in, base, err := sweepInput(tc.workers, tc.cache)
		if err != nil {
			t.Fatal(err)
		}
		report, err := AnalyzeScenarios(ctx, in, base, specsFor(), testEconomics())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := reportJSON(t, report)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: report differs from the workers=1 baseline", tc.name)
		}
	}
}

// TestAnalyzeScenariosJournalResume mirrors the resume contract for the
// scenario-class sweep: a mid-sweep interruption resumed from the
// journal is byte-identical to an uninterrupted, journal-free baseline.
func TestAnalyzeScenariosJournalResume(t *testing.T) {
	ctx := context.Background()
	baseIn, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := AnalyzeScenarios(ctx, baseIn, base, specsFor(), testEconomics())
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, baseline)

	for _, workers := range []int{1, 8} {
		path := filepath.Join(t.TempDir(), "spec.ckpt")
		const run = uint64(0x0905)
		j, err := checkpoint.Open(path, run, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(ctx)
		in, basePlan, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		in.Journal = j
		var fired atomic.Int32
		in.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
			if point == "failure.scenario" && fired.Add(1) == 2 {
				cancel()
			}
			return faultinject.Outcome{}
		})
		if _, err := AnalyzeScenarios(cctx, in, basePlan, specsFor(), testEconomics()); err != nil {
			t.Fatalf("workers=%d: interrupted sweep should degrade: %v", workers, err)
		}
		cancel()
		j.Close()

		j2, err := checkpoint.Open(path, run, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		in2, basePlan2, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		in2.Journal = j2
		resumed, err := AnalyzeScenarios(ctx, in2, basePlan2, specsFor(), testEconomics())
		if err != nil {
			t.Fatalf("workers=%d: resumed sweep: %v", workers, err)
		}
		j2.Close()
		if got := reportJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed scenario report differs from the baseline", workers)
		}
	}
}

// TestAnalyzeScenariosRepricedJournal: economics live outside the
// checkpointed verdict, so replaying a journal under different prices
// re-scores the same verdicts instead of invalidating the records.
func TestAnalyzeScenariosRepricedJournal(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "spec.ckpt")
	const run = uint64(7)

	j, err := checkpoint.Open(path, run, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, base, err := sweepInput(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Journal = j
	first, err := AnalyzeScenarios(ctx, in, base, specsFor(), testEconomics())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := checkpoint.Open(path, run, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	in2, base2, err := sweepInput(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	in2.Journal = j2
	in2.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		t.Errorf("scenario %q recomputed despite a complete journal", key)
		return faultinject.Outcome{}
	})
	doubled := testEconomics()
	doubled.DefaultRevenuePerHour *= 2
	doubled.DefaultPenaltyPerHour *= 2
	repriced, err := AnalyzeScenarios(ctx, in2, base2, specsFor(), doubled)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Replayed() == 0 {
		t.Fatal("nothing replayed from a complete journal")
	}
	for i, sc := range repriced.Scenarios {
		if sc.Feasible != first.Scenarios[i].Feasible {
			t.Errorf("%s: verdict drifted across a re-priced replay", sc.Name)
		}
	}
	// Only apps priced by the defaults double; app-a keeps its explicit
	// price, so compare a default-priced scenario.
	for i, sc := range first.Scenarios {
		if sc.Name == "loss/srv-b" {
			if got, want := repriced.Scenarios[i].RevenueAtRisk, 2*sc.RevenueAtRisk; got != want {
				t.Errorf("re-priced at-risk = %v, want %v", got, want)
			}
		}
	}
}

func TestAnalyzeScenariosRejections(t *testing.T) {
	ctx := context.Background()
	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		specs []ScenarioSpec
		econ  *Economics
	}{
		{name: "no specs", specs: nil},
		{name: "unnamed", specs: []ScenarioSpec{{Servers: []string{"srv-a"}}}},
		{name: "no servers", specs: []ScenarioSpec{{Name: "x"}}},
		{name: "unknown server", specs: []ScenarioSpec{{Name: "x", Servers: []string{"srv-z"}}}},
		{name: "duplicate server", specs: []ScenarioSpec{{Name: "x", Servers: []string{"srv-a", "srv-a"}}}},
		{name: "duplicate name", specs: []ScenarioSpec{
			{Name: "x", Servers: []string{"srv-a"}}, {Name: "x", Servers: []string{"srv-b"}}}},
		{name: "bad theta", specs: []ScenarioSpec{{Name: "x", Servers: []string{"srv-a"}, Theta: 1.5}}},
		{name: "bad probability", specs: []ScenarioSpec{{Name: "x", Servers: []string{"srv-a"}, Probability: 2}}},
		{name: "bad economics", specs: []ScenarioSpec{{Name: "x", Servers: []string{"srv-a"}}},
			econ: &Economics{DefaultRevenuePerHour: -1}},
	}
	for _, tc := range cases {
		if _, err := AnalyzeScenarios(ctx, in, base, tc.specs, tc.econ); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
