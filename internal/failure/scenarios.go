package failure

// Scenario-class failure planning: beyond one-at-a-time server removal
// (Analyze) and brute-force k-combinations (AnalyzeMulti), shared pools
// fail in correlated groups — a rack, a zone, a power feed — and the
// survivors of a correlated loss can cascade past their degradation
// ceiling. AnalyzeScenarios evaluates an explicit list of named
// scenarios, each a concrete failed-server set with optional cascade
// closure and a per-scenario θ commitment override (maintenance
// windows, degraded-pool operation), on the same worker pool,
// retry/checkpoint and simulation-cache machinery as the other sweeps,
// and scores every outcome with per-application revenue economics so
// the report ranks scenarios by expected revenue at risk.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/parallel"
	"ropus/internal/placement"
	"ropus/internal/resilience"
	"ropus/internal/robust"
	"ropus/internal/telemetry"
)

// Journal unit name for checkpointed scenario-class results. It is
// distinct from unitMulti so a scenario journal cannot replay a
// k-combination record or vice versa.
const unitSpec = "failure.scenario_spec"

// DefaultCascadeRounds bounds a cascade closure that does not set its
// own MaxRounds. The closure also terminates unconditionally: every
// round must fail at least one more server, so rounds never exceed the
// surviving-server count.
const DefaultCascadeRounds = 4

// ScenarioSpec names one concrete failure scenario: a set of servers
// lost together, with optional cascade closure and commitment override.
// Specs are produced by the scenario DSL (internal/scenario) or built
// directly.
type ScenarioSpec struct {
	// Name identifies the scenario in reports and checkpoint records.
	Name string
	// Servers is the initially failed server set (IDs from the
	// placement problem).
	Servers []string
	// Theta, when > 0, overrides the pool's CoS2 resource access
	// probability for the survivors — the degraded commitment a pool
	// honours during a maintenance window. 0 keeps the pool default.
	Theta float64
	// Cascade enables the overload closure: load evacuated from failed
	// servers is spread deterministically over the survivors, any
	// survivor pushed past its overload threshold fails too, and the
	// process repeats to a fixed point (bounded by MaxRounds).
	Cascade bool
	// MaxRounds bounds the cascade closure; 0 selects
	// DefaultCascadeRounds. Ignored unless Cascade is set.
	MaxRounds int
	// OverloadFactor scales the overload threshold: a survivor fails
	// when the slot-wise peak of its assigned demands exceeds
	// capacity * OverloadFactor. 0 selects 1.0. Ignored unless Cascade.
	OverloadFactor float64
	// Probability weights the scenario's revenue at risk into its
	// expected value; 0 selects 1.
	Probability float64
}

// normalized returns the spec with defaults filled in; Validate
// accepts only the normalized form's invariants.
func (s ScenarioSpec) normalized() ScenarioSpec {
	if s.MaxRounds == 0 {
		s.MaxRounds = DefaultCascadeRounds
	}
	if s.OverloadFactor == 0 {
		s.OverloadFactor = 1
	}
	if s.Probability == 0 {
		s.Probability = 1
	}
	return s
}

// Validate checks one spec against the problem's server list.
func (s ScenarioSpec) Validate(serverIDs map[string]int) error {
	if s.Name == "" {
		return errors.New("failure: scenario spec needs a name")
	}
	if len(s.Servers) == 0 {
		return fmt.Errorf("failure: scenario %q has no servers", s.Name)
	}
	seen := make(map[string]bool, len(s.Servers))
	for _, id := range s.Servers {
		if _, ok := serverIDs[id]; !ok {
			return fmt.Errorf("failure: scenario %q names unknown server %q", s.Name, id)
		}
		if seen[id] {
			return fmt.Errorf("failure: scenario %q lists server %q twice", s.Name, id)
		}
		seen[id] = true
	}
	if s.Theta < 0 || s.Theta > 1 {
		return fmt.Errorf("failure: scenario %q theta %v outside [0, 1]", s.Name, s.Theta)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("failure: scenario %q MaxRounds %d < 0", s.Name, s.MaxRounds)
	}
	if s.OverloadFactor < 0 {
		return fmt.Errorf("failure: scenario %q OverloadFactor %v < 0", s.Name, s.OverloadFactor)
	}
	if s.Probability < 0 || s.Probability > 1 {
		return fmt.Errorf("failure: scenario %q probability %v outside [0, 1]", s.Name, s.Probability)
	}
	return nil
}

// fold mixes the spec's result-determining fields into a checkpoint
// key. Name is included: it appears in the emitted scenario record, so
// a record replayed under a different name would not be byte-identical.
func (s ScenarioSpec) fold(h *checkpoint.Hasher) {
	h.String(s.Name).Int(int64(len(s.Servers)))
	for _, id := range s.Servers {
		h.String(id)
	}
	h.Float(s.Theta).Bool(s.Cascade).Int(int64(s.MaxRounds)).Float(s.OverloadFactor)
}

// AppValue is one application's economics: the revenue it earns per
// hour when serving normally, and the contractual penalty per hour of
// degraded or lost service.
type AppValue struct {
	RevenuePerHour float64 `json:"revenuePerHour"`
	PenaltyPerHour float64 `json:"penaltyPerHour"`
}

// Economics maps applications to their revenue/penalty values, with
// pool-wide defaults for apps not listed. The zero value prices every
// app at zero, which disables ranking but never errors.
type Economics struct {
	DefaultRevenuePerHour float64             `json:"defaultRevenuePerHour"`
	DefaultPenaltyPerHour float64             `json:"defaultPenaltyPerHour"`
	PerApp                map[string]AppValue `json:"apps,omitempty"`
}

// For returns the economics of one application.
func (e *Economics) For(appID string) AppValue {
	if e == nil {
		return AppValue{}
	}
	if v, ok := e.PerApp[appID]; ok {
		return v
	}
	return AppValue{RevenuePerHour: e.DefaultRevenuePerHour, PenaltyPerHour: e.DefaultPenaltyPerHour}
}

// Validate rejects non-finite or negative values.
func (e *Economics) Validate() error {
	if e == nil {
		return nil
	}
	check := func(name string, v float64) error {
		if v != v || v < 0 || v > 1e18 {
			return fmt.Errorf("failure: economics %s %v is not a finite non-negative value", name, v)
		}
		return nil
	}
	if err := check("defaultRevenuePerHour", e.DefaultRevenuePerHour); err != nil {
		return err
	}
	if err := check("defaultPenaltyPerHour", e.DefaultPenaltyPerHour); err != nil {
		return err
	}
	for id, v := range e.PerApp {
		if err := check("revenuePerHour for "+id, v.RevenuePerHour); err != nil {
			return err
		}
		if err := check("penaltyPerHour for "+id, v.PenaltyPerHour); err != nil {
			return err
		}
	}
	return nil
}

// AppRisk is one application's contribution to a scenario's revenue at
// risk.
type AppRisk struct {
	AppID string `json:"appId"`
	// AtRisk is the per-hour value at risk: revenue + penalty when the
	// scenario is unabsorbable (or inconclusive, as an upper bound),
	// the degradation penalty alone when the survivors absorb it.
	AtRisk float64 `json:"atRisk"`
}

// ScoreScenario prices one scenario outcome: each affected application
// risks its full revenue plus penalty when the scenario is infeasible
// or inconclusive (service down — inconclusive scores as the upper
// bound), and the degradation penalty alone when the survivors absorb
// it under failure-mode QoS. The per-app breakdown sums exactly to the
// returned total (same operations, same order), which is the revenue-
// conservation invariant the property suite pins.
func ScoreScenario(affectedApps []string, feasible bool, econ *Economics) (total float64, perApp []AppRisk) {
	perApp = make([]AppRisk, 0, len(affectedApps))
	for _, id := range affectedApps {
		v := econ.For(id)
		atRisk := v.PenaltyPerHour
		if !feasible {
			atRisk = v.RevenuePerHour + v.PenaltyPerHour
		}
		perApp = append(perApp, AppRisk{AppID: id, AtRisk: atRisk})
		total += atRisk
	}
	return total, perApp
}

// AnalyzeScenarios evaluates a list of named failure scenarios against
// the base plan: correlated domain losses, cascades and maintenance
// windows compiled by the scenario DSL (or built directly). Each
// scenario removes its failed set, applies the cascade closure when
// requested, switches the affected applications to failure-mode QoS and
// re-consolidates the survivors — under the scenario's θ override when
// set. Economics (nil prices everything at zero) score each outcome
// into RevenueAtRisk/ExpectedRevenueAtRisk; scoring happens at report
// assembly, outside the checkpointed verdict, so re-pricing a journal
// does not invalidate it.
//
// Degradation mirrors AnalyzeMulti: errored scenarios are recorded
// (Err and ErrText set) and skipped, cancellation truncates at a
// scenario boundary, and only an all-error sweep fails. Results are
// byte-identical at every worker count and across checkpoint resumes.
func AnalyzeScenarios(ctx context.Context, in Input, basePlan *placement.Plan, specs []ScenarioSpec, econ *Economics) (report *MultiReport, err error) {
	defer robust.Recover("failure.AnalyzeScenarios", &err)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if basePlan == nil {
		return nil, errors.New("failure: nil base plan")
	}
	if err := basePlan.Assignment.Validate(in.Problem); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, errors.New("failure: no scenarios to analyze")
	}
	if err := econ.Validate(); err != nil {
		return nil, err
	}
	serverIdx := make(map[string]int, len(in.Problem.Servers))
	for i, s := range in.Problem.Servers {
		serverIdx[s.ID] = i
	}
	normalized := make([]ScenarioSpec, len(specs))
	seenName := make(map[string]bool, len(specs))
	for i, s := range specs {
		normalized[i] = s.normalized()
		if err := normalized[i].Validate(serverIdx); err != nil {
			return nil, err
		}
		if seenName[s.Name] {
			return nil, fmt.Errorf("failure: duplicate scenario name %q", s.Name)
		}
		seenName[s.Name] = true
	}

	h := telemetry.OrNop(in.Hooks)
	ctx, span := telemetry.StartSpanCtx(ctx, in.Hooks, "failure.analyze_scenarios",
		telemetry.Int("scenarios", len(specs)),
		telemetry.Int("servers", len(in.Problem.Servers)))
	defer span.End()
	scenarioC := h.Counter("failure_scenarios_total")
	infeasibleC := h.Counter("failure_infeasible_scenarios_total")
	errorC := h.Counter("failure_scenario_errors_total")
	replayC := h.Counter("failure_scenarios_replayed_total")
	appendErrC := h.Counter("checkpoint_append_errors_total")
	cascadeC := h.Counter("failure_cascade_failures_total")
	scenarioSecs := h.Histogram("failure_scenario_seconds", nil)

	retry := in.Retry
	if retry.Hooks == nil {
		retry.Hooks = in.Hooks
	}

	scenarios := make([]MultiScenario, len(normalized))
	scenarioErrs := make([]error, len(normalized))
	done := parallel.ForEach(ctx, in.Workers, len(normalized), func(i int) {
		spec := normalized[i]
		hash := checkpoint.NewHasher()
		spec.fold(hash)
		key := hash.Sum()
		var cached MultiScenario
		if ok, cerr := in.Journal.Lookup(unitSpec, key, &cached); cerr == nil && ok {
			scenarios[i] = cached
			scenarioC.Inc()
			replayC.Inc()
			return
		}
		start := time.Now()
		scenario, stats, err := resilience.Do(ctx, retry, spec.Name,
			func(attemptCtx context.Context) (MultiScenario, error) {
				return analyzeSpec(attemptCtx, ctx, in, basePlan, spec, serverIdx)
			})
		scenario.Attempts = stats.Attempts
		scenario.Recovered = stats.Recovered
		scenario.GaveUp = stats.GaveUp
		scenarioC.Inc()
		cascadeC.Add(int64(len(scenario.CascadeAdded)))
		scenarioSecs.Observe(time.Since(start).Seconds())
		// See Analyze: only clean, complete verdicts are checkpointed.
		// Economics are deliberately not part of the record — they are
		// applied at assembly, so re-pricing never invalidates a journal.
		if err == nil && ctx.Err() == nil && (scenario.Plan == nil || !scenario.Plan.Truncated) {
			if aerr := in.Journal.Append(unitSpec, key, scenario); aerr != nil {
				appendErrC.Inc()
			}
		}
		scenarios[i], scenarioErrs[i] = scenario, err
	})

	report = &MultiReport{K: 0, Truncated: done < len(normalized)}
	errored := 0
	for i := 0; i < done; i++ {
		scenario := scenarios[i]
		if err := scenarioErrs[i]; err != nil {
			scenario.Err = fmt.Errorf("failure: scenario %q: %w", scenario.Name, err)
			scenario.ErrText = scenario.Err.Error()
			errorC.Inc()
			errored++
		} else if !scenario.Feasible {
			infeasibleC.Inc()
			report.SparesNeeded = true
		}
		// Price the verdict. Inconclusive scenarios score as infeasible —
		// the conservative upper bound — but stay excluded from
		// SparesNeeded, matching the other sweeps.
		feasible := scenario.Feasible && scenario.Err == nil
		scenario.Probability = normalized[i].Probability
		scenario.RevenueAtRisk, scenario.AppRisk = ScoreScenario(scenario.AffectedApps, feasible, econ)
		scenario.ExpectedRevenueAtRisk = scenario.Probability * scenario.RevenueAtRisk
		report.TotalExpectedRevenueAtRisk += scenario.ExpectedRevenueAtRisk
		report.Scenarios = append(report.Scenarios, scenario)
	}
	span.SetAttr(
		telemetry.Int("scenarios", len(report.Scenarios)),
		telemetry.Int("errors", errored),
		telemetry.Bool("spares_needed", report.SparesNeeded),
		telemetry.Bool("truncated", report.Truncated))
	if errored > 0 && errored == len(report.Scenarios) {
		return nil, fmt.Errorf("failure: every scenario failed to evaluate: %w", errors.Join(report.Errors()...))
	}
	return report, nil
}

// analyzeSpec evaluates one scenario spec: fault injection, cascade
// closure, then the reduced re-consolidation. ctx is the attempt
// context, parent the sweep context (see analyzeScenario).
func analyzeSpec(ctx, parent context.Context, in Input, basePlan *placement.Plan, spec ScenarioSpec, serverIdx map[string]int) (MultiScenario, error) {
	p := in.Problem
	failed := make(map[int]bool, len(spec.Servers))
	for _, id := range spec.Servers {
		failed[serverIdx[id]] = true
	}
	scenario := MultiScenario{Name: spec.Name, Theta: spec.Theta}
	setFailedIDs := func() {
		scenario.FailedServers = scenario.FailedServers[:0]
		for i := range p.Servers {
			if failed[i] {
				scenario.FailedServers = append(scenario.FailedServers, p.Servers[i].ID)
			}
		}
	}
	setFailedIDs()

	if in.Inject != nil {
		o := in.Inject.Hit("failure.scenario", spec.Name)
		if o.Delay > 0 {
			t := time.NewTimer(o.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return scenario, ctx.Err()
			}
		}
		if o.Err != nil {
			return scenario, o.Err
		}
	}

	if spec.Cascade {
		added, rounds := cascadeClosure(in, basePlan, failed, spec.MaxRounds, spec.OverloadFactor)
		scenario.CascadeRounds = rounds
		for _, s := range added {
			scenario.CascadeAdded = append(scenario.CascadeAdded, p.Servers[s].ID)
			failed[s] = true
		}
		setFailedIDs()
	}

	var affected []int
	for app, srv := range basePlan.Assignment {
		if failed[srv] {
			affected = append(affected, app)
		}
	}
	sort.Ints(affected)
	for _, a := range affected {
		scenario.AffectedApps = append(scenario.AffectedApps, p.Apps[a].ID)
	}

	if len(p.Servers) <= len(failed) {
		return scenario, nil // nothing survives
	}
	feasible, plan, servers, err := consolidateSurvivors(ctx, in, basePlan, failed, affected, spec.Theta)
	if err != nil {
		return scenario, err
	}
	if plan != nil && plan.Truncated && ctx.Err() != nil && parent.Err() == nil {
		return scenario, resilience.MarkTransient(
			fmt.Errorf("failure: scenario %q: attempt deadline cut the search short", spec.Name))
	}
	if feasible {
		scenario.Feasible = true
		scenario.Plan = plan
		scenario.Servers = servers
	}
	return scenario, nil
}

// cascadeClosure computes the deterministic overload fixed point: apps
// on failed servers evacuate round-robin (in app order, pool order of
// survivors — the same rule that seeds the re-consolidation search),
// switching to their failure-mode translation; any survivor whose
// slot-wise peak aggregate demand then exceeds capacity * factor fails
// too, and the process repeats. Every round must fail at least one new
// server, so the closure terminates within min(maxRounds, survivors)
// rounds regardless of input. The returned additions are in pool order.
func cascadeClosure(in Input, basePlan *placement.Plan, failed map[int]bool, maxRounds int, factor float64) (added []int, rounds int) {
	p := in.Problem
	down := make(map[int]bool, len(failed))
	for s := range failed {
		down[s] = true
	}
	for rounds = 0; rounds < maxRounds; rounds++ {
		var survivors []int
		for i := range p.Servers {
			if !down[i] {
				survivors = append(survivors, i)
			}
		}
		if len(survivors) == 0 {
			return added, rounds
		}
		// Deterministic evacuation: app index order, survivors in pool
		// order, the same round-robin rule that seeds the re-consolidation
		// search. Residents keep their normal-mode workload; apps from
		// failed servers arrive with their failure-mode one.
		slots := len(p.Apps[0].Workload.CoS1)
		load := make(map[int][]float64, len(survivors))
		for _, s := range survivors {
			load[s] = make([]float64, slots)
		}
		next := 0
		for appIdx, srv := range basePlan.Assignment {
			w, target := p.Apps[appIdx].Workload, srv
			if down[srv] {
				w = in.FailureApps[appIdx].Workload
				target = survivors[next%len(survivors)]
				next++
			}
			agg := load[target]
			for i := 0; i < slots && i < len(w.CoS1); i++ {
				agg[i] += w.CoS1[i] + w.CoS2[i]
			}
		}
		// All overloaded survivors fail simultaneously — membership in the
		// round's casualty set depends only on the round's starting state,
		// never on evaluation order.
		var overloaded []int
		for _, s := range survivors {
			limit := p.Servers[s].Capacity() * factor
			for _, v := range load[s] {
				if v > limit {
					overloaded = append(overloaded, s)
					break
				}
			}
		}
		if len(overloaded) == 0 {
			return added, rounds
		}
		for _, s := range overloaded {
			down[s] = true
		}
		added = append(added, overloaded...)
		sort.Ints(added)
	}
	return added, rounds
}

// consolidateSurvivors builds the reduced problem — failed servers
// removed, affected applications on their failure-mode translation,
// optional θ override — and runs the consolidation search from the
// deterministic evacuation seed. It is the common tail of analyzeCombo
// and analyzeSpec.
func consolidateSurvivors(ctx context.Context, in Input, basePlan *placement.Plan, failed map[int]bool, affected []int, thetaOverride float64) (feasible bool, plan *placement.Plan, servers []placement.Server, err error) {
	p := in.Problem
	isAffected := make(map[int]bool, len(affected))
	for _, a := range affected {
		isAffected[a] = true
	}
	apps := make([]placement.App, len(p.Apps))
	for i := range p.Apps {
		if isAffected[i] {
			apps[i] = in.FailureApps[i]
		} else {
			apps[i] = p.Apps[i]
		}
	}
	servers = make([]placement.Server, 0, len(p.Servers)-len(failed))
	oldToNew := make([]int, len(p.Servers))
	for i, s := range p.Servers {
		if failed[i] {
			oldToNew[i] = -1
			continue
		}
		oldToNew[i] = len(servers)
		servers = append(servers, s)
	}
	commitment := p.Commitment
	if thetaOverride > 0 {
		commitment.Theta = thetaOverride
	}
	reduced := &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    commitment,
		SlotsPerDay:   p.SlotsPerDay,
		DeadlineSlots: p.DeadlineSlots,
		Tolerance:     p.Tolerance,
		Hooks:         in.Hooks,
		Inject:        in.Inject,
		// The shared simulation cache stays valid across scenarios — and
		// across θ overrides, because the commitment is part of the
		// cached entries' content hash.
		Cache: p.Cache,
	}
	initial := make(placement.Assignment, len(apps))
	next := 0
	for i, old := range basePlan.Assignment {
		if mapped := oldToNew[old]; mapped >= 0 {
			initial[i] = mapped
			continue
		}
		initial[i] = next % len(servers)
		next++
	}
	plan, err = placement.Consolidate(ctx, reduced, initial, in.GA)
	if errors.Is(err, placement.ErrNoFeasible) {
		return false, nil, servers, nil
	}
	if err != nil {
		return false, nil, nil, err
	}
	return true, plan, servers, nil
}
