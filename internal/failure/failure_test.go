package failure

import (
	"context"
	"testing"
	"time"

	"ropus/internal/placement"
	"ropus/internal/qos"
	"ropus/internal/sim"
)

// flatApp builds an app with constant allocations (see placement tests:
// flat CoS2 demand makes required capacity exactly cos1+cos2).
func flatApp(id string, cos2 float64, slots int) placement.App {
	c1 := make([]float64, slots)
	c2 := make([]float64, slots)
	for i := range c2 {
		c2[i] = cos2
	}
	return placement.App{ID: id, Workload: sim.Workload{AppID: id, CoS1: c1, CoS2: c2}}
}

// problem builds a normal-mode problem with per-app flat sizes.
func problem(sizes []float64, nServers, cpus int) *placement.Problem {
	apps := make([]placement.App, len(sizes))
	for i, s := range sizes {
		apps[i] = flatApp("app-"+string(rune('a'+i)), s, 28)
	}
	servers := make([]placement.Server, nServers)
	for i := range servers {
		servers[i] = placement.Server{ID: "srv-" + string(rune('a'+i)), CPUs: cpus, CPUCapacity: 1}
	}
	return &placement.Problem{
		Apps:          apps,
		Servers:       servers,
		Commitment:    qos.PoolCommitment{Theta: 0.9, Deadline: time.Hour},
		SlotsPerDay:   4,
		DeadlineSlots: 2,
		Tolerance:     0.01,
	}
}

// failureApps scales every app's demand by factor, standing in for the
// weaker failure-mode translation.
func failureApps(p *placement.Problem, factor float64) []placement.App {
	out := make([]placement.App, len(p.Apps))
	for i, a := range p.Apps {
		c1 := make([]float64, len(a.Workload.CoS1))
		c2 := make([]float64, len(a.Workload.CoS2))
		for j := range c1 {
			c1[j] = a.Workload.CoS1[j] * factor
			c2[j] = a.Workload.CoS2[j] * factor
		}
		out[i] = placement.App{ID: a.ID, Workload: sim.Workload{AppID: a.ID, CoS1: c1, CoS2: c2}}
	}
	return out
}

func ga() placement.GAConfig {
	cfg := placement.DefaultGAConfig(11)
	cfg.MaxGenerations = 60
	return cfg
}

func TestAnalyzeAbsorbableFailure(t *testing.T) {
	// Three servers of 10 CPUs, loads 6/6/6: any one server's apps (at
	// failure-mode factor 0.5 => size 3) fit on the remaining two.
	p := problem([]float64{6, 6, 6}, 3, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatal("base plan should be feasible")
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Scenarios) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(report.Scenarios))
	}
	if report.SpareNeeded {
		t.Error("SpareNeeded = true, want false: every failure absorbable")
	}
	for _, sc := range report.Scenarios {
		if !sc.Feasible {
			t.Errorf("scenario %s infeasible", sc.FailedServer)
		}
		if sc.Plan == nil || len(sc.Servers) != 2 {
			t.Errorf("scenario %s: plan=%v servers=%d", sc.FailedServer, sc.Plan != nil, len(sc.Servers))
		}
		if len(sc.AffectedApps) != 1 {
			t.Errorf("scenario %s affected = %v, want 1 app", sc.FailedServer, sc.AffectedApps)
		}
		// The failed server must not appear in the reduced list.
		for _, s := range sc.Servers {
			if s.ID == sc.FailedServer {
				t.Errorf("failed server %s still present", s.ID)
			}
		}
	}
}

func TestAnalyzeSpareNeeded(t *testing.T) {
	// Two servers loaded 9/9 on 10-CPU servers; failure QoS does not
	// reduce demand, so a failure cannot be absorbed.
	p := problem([]float64{9, 9}, 2, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 1.0), GA: ga()}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	if !report.SpareNeeded {
		t.Error("SpareNeeded = false, want true")
	}
}

func TestAnalyzeWeakerFailureQoSAvoidsSpare(t *testing.T) {
	// Same 9/9 scenario, but failure-mode QoS halves the allocations:
	// 9 + 4.5 > 10 still fails; use factor 0.1 -> 9 + 0.9 <= 10 fits.
	p := problem([]float64{9, 9}, 2, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.1), GA: ga()}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	if report.SpareNeeded {
		t.Error("weak failure QoS should absorb the failure without a spare")
	}
}

func TestAnalyzeSingleServerPool(t *testing.T) {
	p := problem([]float64{5}, 1, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	if !report.SpareNeeded {
		t.Error("losing the only server must need a spare")
	}
}

func TestAnalyzeSkipsUnusedServers(t *testing.T) {
	p := problem([]float64{2, 3}, 4, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Scenarios) != 1 {
		t.Errorf("got %d scenarios, want 1 (only one used server)", len(report.Scenarios))
	}
}

func TestScenarioMigrations(t *testing.T) {
	p := problem([]float64{6, 6, 6}, 3, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range report.Scenarios {
		if !sc.Feasible {
			t.Fatalf("scenario %s infeasible", sc.FailedServer)
		}
		moves, err := sc.Migrations(p, base)
		if err != nil {
			t.Fatal(err)
		}
		// The app on the failed server must appear among the moves.
		found := false
		for _, m := range moves {
			if m.From == sc.FailedServer {
				found = true
			}
			if m.To == sc.FailedServer {
				t.Errorf("move %v targets the failed server", m)
			}
		}
		if !found {
			t.Errorf("scenario %s: no move evacuates the failed server (moves: %v)",
				sc.FailedServer, moves)
		}
	}

	// Infeasible scenarios have no migration plan.
	var infeasible Scenario
	if _, err := infeasible.Migrations(p, base); err == nil {
		t.Error("infeasible scenario produced migrations")
	}
	feasible := report.Scenarios[0]
	if _, err := feasible.Migrations(nil, nil); err == nil {
		t.Error("nil base accepted")
	}
}

func TestAnalyzeInputErrors(t *testing.T) {
	p := problem([]float64{2, 3}, 2, 10)
	base, err := placement.Evaluate(p, placement.Assignment{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	good := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: ga()}

	if _, err := Analyze(context.Background(), Input{Problem: nil, FailureApps: good.FailureApps, GA: good.GA}, base); err == nil {
		t.Error("nil problem should fail")
	}
	short := good
	short.FailureApps = short.FailureApps[:1]
	if _, err := Analyze(context.Background(), short, base); err == nil {
		t.Error("mismatched failure app count should fail")
	}
	renamed := Input{Problem: p, FailureApps: failureApps(p, 0.5), GA: good.GA}
	renamed.FailureApps[0].ID = "zz"
	if _, err := Analyze(context.Background(), renamed, base); err == nil {
		t.Error("mismatched failure app ID should fail")
	}
	badGA := good
	badGA.GA.PopulationSize = 0
	if _, err := Analyze(context.Background(), badGA, base); err == nil {
		t.Error("bad GA config should fail")
	}
	if _, err := Analyze(context.Background(), good, nil); err == nil {
		t.Error("nil base plan should fail")
	}
	badPlan := &placement.Plan{Assignment: placement.Assignment{0}}
	if _, err := Analyze(context.Background(), good, badPlan); err == nil {
		t.Error("base plan with wrong assignment length should fail")
	}
}
