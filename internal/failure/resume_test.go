package failure

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ropus/internal/checkpoint"
	"ropus/internal/faultinject"
	"ropus/internal/resilience"
	"ropus/internal/telemetry"
)

// retryPolicy is a fast deterministic policy for the self-healing tests.
func retryPolicy() resilience.Policy {
	return resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}
}

// TestAnalyzeRetryRecoversTransient is the acceptance criterion: a
// transient injected fault recovered by a retry yields the same verdict
// as a fault-free run.
func TestAnalyzeRetryRecoversTransient(t *testing.T) {
	ctx := context.Background()
	cleanIn, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Analyze(ctx, cleanIn, base)
	if err != nil {
		t.Fatal(err)
	}

	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Retry = retryPolicy()
	in.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "failure.scenario", Key: "srv-b", Nth: 1, Transient: true})
	report, err := Analyze(ctx, in, base)
	if err != nil {
		t.Fatal(err)
	}
	if report.SpareNeeded != clean.SpareNeeded {
		t.Errorf("SpareNeeded = %v after recovery, want %v (the fault-free verdict)",
			report.SpareNeeded, clean.SpareNeeded)
	}
	for i, sc := range report.Scenarios {
		want := clean.Scenarios[i]
		if sc.Err != nil {
			t.Errorf("scenario %s still errored after retry: %v", sc.FailedServer, sc.Err)
		}
		if sc.Feasible != want.Feasible {
			t.Errorf("scenario %s: Feasible = %v, want fault-free %v", sc.FailedServer, sc.Feasible, want.Feasible)
		}
		if sc.FailedServer == "srv-b" {
			if !sc.Recovered || sc.Attempts != 2 {
				t.Errorf("srv-b: Recovered=%v Attempts=%d, want a recovery on attempt 2", sc.Recovered, sc.Attempts)
			}
		} else if sc.Recovered || sc.Attempts != 1 {
			t.Errorf("%s: Recovered=%v Attempts=%d, want a clean first attempt", sc.FailedServer, sc.Recovered, sc.Attempts)
		}
	}
	if extra, recovered, gaveUp := report.Retries(); extra != 1 || recovered != 1 || gaveUp != 0 {
		t.Errorf("Retries() = (%d, %d, %d), want (1, 1, 0)", extra, recovered, gaveUp)
	}
}

// TestAnalyzeRetryGivesUpOnPersistentTransient: a fault that fires on
// every attempt exhausts the policy and the scenario stays inconclusive.
func TestAnalyzeRetryGivesUpOnPersistentTransient(t *testing.T) {
	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Retry = retryPolicy()
	in.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "failure.scenario", Key: "srv-b", Transient: true})
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	var srvB *Scenario
	for i := range report.Scenarios {
		if report.Scenarios[i].FailedServer == "srv-b" {
			srvB = &report.Scenarios[i]
		}
	}
	if srvB == nil || srvB.Err == nil {
		t.Fatal("srv-b should be recorded inconclusive")
	}
	if srvB.Attempts != 3 || srvB.Recovered {
		t.Errorf("srv-b: Attempts=%d Recovered=%v, want 3 exhausted attempts", srvB.Attempts, srvB.Recovered)
	}
	if report.SpareNeeded {
		t.Error("an inconclusive scenario must not set SpareNeeded")
	}
	if _, _, gaveUp := report.Retries(); gaveUp != 1 {
		t.Errorf("Retries() gaveUp = %d, want 1", gaveUp)
	}
}

// TestAnalyzePermanentFaultNotRetried: the permanent default keeps the
// historical single-attempt behaviour even with a retry policy set.
func TestAnalyzePermanentFaultNotRetried(t *testing.T) {
	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Retry = retryPolicy()
	in.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "failure.scenario", Key: "srv-b"}) // permanent by default
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range report.Scenarios {
		if sc.FailedServer == "srv-b" {
			if sc.Err == nil {
				t.Error("permanent fault should leave srv-b inconclusive")
			}
			if sc.Attempts != 1 {
				t.Errorf("permanent fault retried: Attempts = %d, want 1", sc.Attempts)
			}
		}
	}
}

// TestAnalyzeJournalResume interrupts a checkpointed sweep mid-run and
// resumes it: the resumed report must be byte-identical to an
// uninterrupted, journal-free baseline, at every worker count.
func TestAnalyzeJournalResume(t *testing.T) {
	ctx := context.Background()
	baseIn, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Analyze(ctx, baseIn, base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, baseline)

	for _, workers := range []int{1, 8} {
		path := filepath.Join(t.TempDir(), "sweep.ckpt")
		const run = uint64(0x5eed)

		// First pass: cancel after the first scenario completes. The
		// journal keeps whatever scenarios finished cleanly before that.
		j, err := checkpoint.Open(path, run, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(ctx)
		in, basePlan, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		in.Journal = j
		var fired atomic.Int32
		in.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
			if point == "failure.scenario" && fired.Add(1) == 2 {
				cancel()
			}
			return faultinject.Outcome{}
		})
		if _, err := Analyze(cctx, in, basePlan); err != nil {
			t.Fatalf("workers=%d: interrupted sweep should degrade: %v", workers, err)
		}
		cancel()
		j.Close()

		// Resume: replay the journal, compute the rest.
		reg := telemetry.NewRegistry()
		j2, err := checkpoint.Open(path, run, true, telemetry.New(reg, nil))
		if err != nil {
			t.Fatal(err)
		}
		in2, basePlan2, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		in2.Journal = j2
		in2.Hooks = telemetry.New(reg, nil)
		resumed, err := Analyze(ctx, in2, basePlan2)
		if err != nil {
			t.Fatalf("workers=%d: resumed sweep: %v", workers, err)
		}
		j2.Close()
		if got := reportJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed report differs from the uninterrupted baseline", workers)
		}
		if j2.Replayed() > 0 &&
			reg.Snapshot().Counters["failure_scenarios_replayed_total"] != int64(j2.Replayed()) {
			t.Errorf("workers=%d: replay counter %d does not match journal's %d", workers,
				reg.Snapshot().Counters["failure_scenarios_replayed_total"], j2.Replayed())
		}
	}
}

// TestAnalyzeJournalFullReplay: resuming a journal that already holds
// every scenario recomputes nothing and still reports identically.
func TestAnalyzeJournalFullReplay(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	const run = uint64(99)

	j, err := checkpoint.Open(path, run, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, base, err := sweepInput(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	in.Journal = j
	first, err := Analyze(ctx, in, base)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := checkpoint.Open(path, run, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	in2, base2, err := sweepInput(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	in2.Journal = j2
	// A poisoned injector proves no scenario is recomputed on full replay.
	in2.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
		t.Errorf("scenario %q recomputed despite a complete journal", key)
		return faultinject.Outcome{}
	})
	again, err := Analyze(ctx, in2, base2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, first), reportJSON(t, again)) {
		t.Error("full replay drifted from the original report")
	}
}

// TestAnalyzeMultiJournalResume mirrors the resume contract for the
// k-failure sweep.
func TestAnalyzeMultiJournalResume(t *testing.T) {
	ctx := context.Background()
	baseIn, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := AnalyzeMulti(ctx, baseIn, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, baseline)

	for _, workers := range []int{1, 8} {
		path := filepath.Join(t.TempDir(), "multi.ckpt")
		const run = uint64(0xabc)
		j, err := checkpoint.Open(path, run, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(ctx)
		in, basePlan, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		in.Journal = j
		var fired atomic.Int32
		in.Inject = faultinject.Func(func(point, key string) faultinject.Outcome {
			if point == "failure.scenario" && fired.Add(1) == 2 {
				cancel()
			}
			return faultinject.Outcome{}
		})
		if _, err := AnalyzeMulti(cctx, in, basePlan, 2); err != nil {
			t.Fatalf("workers=%d: interrupted sweep should degrade: %v", workers, err)
		}
		cancel()
		j.Close()

		j2, err := checkpoint.Open(path, run, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		in2, basePlan2, err := sweepInput(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		in2.Journal = j2
		resumed, err := AnalyzeMulti(ctx, in2, basePlan2, 2)
		if err != nil {
			t.Fatalf("workers=%d: resumed sweep: %v", workers, err)
		}
		j2.Close()
		if got := reportJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed multi report differs from the baseline", workers)
		}
	}
}

// TestAnalyzeAttemptDeadlineRetries: an attempt cut short by its own
// deadline is retried rather than silently accepted as a partial plan.
func TestAnalyzeAttemptDeadlineRetries(t *testing.T) {
	in, base, err := sweepInput(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The first attempt for srv-a is forced over its deadline by an
	// injected delay; the second attempt runs clean.
	in.Retry = resilience.Policy{MaxAttempts: 2, AttemptTimeout: 30 * time.Millisecond}
	in.Inject = faultinject.MustScript(1,
		faultinject.Rule{Point: "failure.scenario", Key: "srv-a", Nth: 1, Delay: 250 * time.Millisecond})
	report, err := Analyze(context.Background(), in, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range report.Scenarios {
		if sc.FailedServer != "srv-a" {
			continue
		}
		if sc.Err != nil {
			t.Fatalf("srv-a should recover on the second attempt, got %v", sc.Err)
		}
		if sc.Attempts != 2 || !sc.Recovered {
			t.Errorf("srv-a: Attempts=%d Recovered=%v, want a deadline-retry recovery", sc.Attempts, sc.Recovered)
		}
	}
}
